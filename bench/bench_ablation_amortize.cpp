// Ablation C — the prepare-once amortization (paper Section 4: "lines 1-11
// of the pseudocode need to be executed only once for every formula F",
// and Section 5: UniWit "has no way to amortize" the search for m).
//
// Compares k witnesses drawn from one prepared UniGen instance against k
// witnesses each drawn from a freshly constructed instance (so ApproxMC
// and the easy-case check are re-paid every time, UniWit-style).

#include <cstdio>

#include "common.hpp"
#include "workloads/circuits.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const auto k = env_u64("UNIGEN_BENCH_SAMPLES", 12);

  workloads::CircuitParityOptions c;
  c.state_bits = 20;
  c.input_bits = 8;
  c.rounds = 2;
  c.parity_constraints = 5;
  c.seed = 99;
  const Cnf cnf = workloads::make_circuit_parity_bench(c, "ablation_amortize");
  std::printf("Ablation: amortized prepare vs per-witness prepare "
              "(k = %llu witnesses)\ninstance: %s\n\n",
              static_cast<unsigned long long>(k), cnf.summary().c_str());

  UniGenOptions opts;
  opts.epsilon = 6.0;

  // Amortized: one sampler, prepare once, k samples.
  double amortized_total = 0.0, amortized_prepare = 0.0;
  {
    Rng rng(555);
    UniGen sampler(cnf, opts, rng);
    Stopwatch watch;
    if (!sampler.prepare()) {
      std::printf("prepare failed\n");
      return 1;
    }
    amortized_prepare = watch.seconds();
    for (std::uint64_t i = 0; i < k; ++i) sampler.sample();
    amortized_total = watch.seconds();
  }

  // Non-amortized: a fresh sampler per witness.
  double fresh_total = 0.0;
  {
    Stopwatch watch;
    for (std::uint64_t i = 0; i < k; ++i) {
      Rng rng(600 + i);
      UniGen sampler(cnf, opts, rng);
      if (!sampler.prepare()) {
        std::printf("prepare failed\n");
        return 1;
      }
      sampler.sample();
    }
    fresh_total = watch.seconds();
  }

  std::printf("%-28s %12s %14s\n", "mode", "total (s)", "per witness (s)");
  std::printf("%-28s %12.3f %14.4f   (prepare %.3fs paid once)\n",
              "amortized (UniGen)", amortized_total,
              amortized_total / static_cast<double>(k), amortized_prepare);
  std::printf("%-28s %12.3f %14.4f\n", "fresh per witness (UniWit-ish)",
              fresh_total, fresh_total / static_cast<double>(k));
  std::printf("\namortization speedup: %.1fx\n", fresh_total / amortized_total);
  std::printf("Expected shape: the fresh-per-witness mode re-pays ApproxMC "
              "for every witness and loses by roughly prepare/sample-cost; "
              "the gap widens with k.\n");
  return 0;
}
