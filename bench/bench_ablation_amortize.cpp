// Ablation C — the prepare-once amortization (paper Section 4: "lines 1-11
// of the pseudocode need to be executed only once for every formula F",
// and Section 5: UniWit "has no way to amortize" the search for m).
//
// Compares k witnesses drawn from one prepared UniGen instance against k
// witnesses each drawn from a freshly constructed instance (so ApproxMC
// and the easy-case check are re-paid every time, UniWit-style).

#include <cstdio>

#include "common.hpp"
#include "workloads/circuits.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const auto k = env_u64("UNIGEN_BENCH_SAMPLES", 12);

  workloads::CircuitParityOptions c;
  c.state_bits = 20;
  c.input_bits = 8;
  c.rounds = 2;
  c.parity_constraints = 5;
  c.seed = 99;
  const Cnf cnf = workloads::make_circuit_parity_bench(c, "ablation_amortize");
  std::printf("Ablation: amortized prepare vs per-witness prepare "
              "(k = %llu witnesses)\ninstance: %s\n\n",
              static_cast<unsigned long long>(k), cnf.summary().c_str());

  UniGenOptions opts;
  opts.epsilon = 6.0;

  // Amortized: one sampler, prepare once, k samples — one persistent
  // incremental-BSAT solver serves every hashed query.
  double amortized_total = 0.0, amortized_prepare = 0.0;
  std::uint64_t amortized_bsat = 0, amortized_rebuilds = 0,
                amortized_reused = 0, amortized_retracted = 0;
  {
    Rng rng(555);
    UniGen sampler(cnf, opts, rng);
    Stopwatch watch;
    if (!sampler.prepare()) {
      std::printf("prepare failed\n");
      return 1;
    }
    amortized_prepare = watch.seconds();
    for (std::uint64_t i = 0; i < k; ++i) sampler.sample();
    amortized_total = watch.seconds();
    const auto& st = sampler.stats();
    amortized_bsat = st.prepare_bsat_calls + st.sample_bsat_calls;
    amortized_rebuilds = st.solver_rebuilds + st.counter_solver_rebuilds;
    amortized_reused = st.reused_solves;
    amortized_retracted = st.retracted_blocks;
  }

  // Non-amortized: a fresh sampler per witness.
  double fresh_total = 0.0;
  std::uint64_t fresh_bsat = 0, fresh_rebuilds = 0;
  {
    Stopwatch watch;
    for (std::uint64_t i = 0; i < k; ++i) {
      Rng rng(600 + i);
      UniGen sampler(cnf, opts, rng);
      if (!sampler.prepare()) {
        std::printf("prepare failed\n");
        return 1;
      }
      sampler.sample();
      const auto& st = sampler.stats();
      fresh_bsat += st.prepare_bsat_calls + st.sample_bsat_calls;
      fresh_rebuilds += st.solver_rebuilds + st.counter_solver_rebuilds;
    }
    fresh_total = watch.seconds();
  }

  const double speedup = fresh_total / amortized_total;
  std::printf("%-28s %12s %14s %8s %9s\n", "mode", "total (s)",
              "per witness (s)", "bsat", "rebuilds");
  std::printf("%-28s %12.3f %14.4f %8llu %9llu   (prepare %.3fs paid once)\n",
              "amortized (UniGen)", amortized_total,
              amortized_total / static_cast<double>(k),
              static_cast<unsigned long long>(amortized_bsat),
              static_cast<unsigned long long>(amortized_rebuilds),
              amortized_prepare);
  std::printf("%-28s %12.3f %14.4f %8llu %9llu\n",
              "fresh per witness (UniWit-ish)", fresh_total,
              fresh_total / static_cast<double>(k),
              static_cast<unsigned long long>(fresh_bsat),
              static_cast<unsigned long long>(fresh_rebuilds));
  std::printf("\namortization speedup: %.1fx\n", speedup);
  std::printf("Expected shape: the fresh-per-witness mode re-pays ApproxMC "
              "for every witness and loses by roughly prepare/sample-cost; "
              "the gap widens with k.\n");

  BenchJson json("ablation_amortize");
  json.add("witnesses", k);
  json.add("amortized_wall_s", amortized_total);
  json.add("amortized_prepare_s", amortized_prepare);
  json.add("amortized_bsat_calls", amortized_bsat);
  json.add("amortized_solver_rebuilds", amortized_rebuilds);
  json.add("amortized_reused_solves", amortized_reused);
  json.add("amortized_retracted_blocks", amortized_retracted);
  json.add("fresh_wall_s", fresh_total);
  json.add("fresh_bsat_calls", fresh_bsat);
  json.add("fresh_solver_rebuilds", fresh_rebuilds);
  json.add("speedup", speedup);
  json.write("BENCH_amortize.json");
  return 0;
}
