// Ablation D — blocking clauses restricted to the sampling set S (paper
// Section 4, "Implementation issues": the CryptoMiniSAT change credited to
// Mate Soos).  On a formula whose independent support is much smaller than
// its Tseitin support, enumerate the same number of witnesses with
// S-restricted blocking clauses vs full-support blocking clauses.
//
// Expected shape: S-restricted blocking yields shorter clauses (|S| vs |X|
// literals each) and lower enumeration time; with S an independent support
// both enumerate the same witness set.

#include <cstdio>

#include "common.hpp"
#include "sat/enumerator.hpp"
#include "workloads/sketch.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const auto want = env_u64("UNIGEN_BLOCKING_MODELS", 600);

  workloads::SketchOptions sk;
  sk.spec_input_bits = 6;
  sk.selector_bits = 18;
  sk.mode_bits = 12;
  sk.threshold = static_cast<std::uint64_t>(want);
  sk.seed = 31;
  const auto bench = workloads::make_sketch_bench(sk, "ablation_blocking");
  const Cnf& cnf = bench.cnf;
  std::printf("Ablation: blocking clauses over S vs over X\ninstance: %s, "
              "enumerating up to %llu witnesses\n\n",
              cnf.summary().c_str(), static_cast<unsigned long long>(want));
  std::printf("%-22s %10s %12s %12s\n", "blocking set", "witnesses",
              "time (s)", "lits/clause");

  for (const bool restrict_to_s : {true, false}) {
    Solver solver;
    solver.load(cnf);
    EnumerateOptions eopts;
    eopts.max_models = want;
    eopts.store_models = false;
    if (restrict_to_s) {
      eopts.projection = cnf.sampling_set_or_all();
    } else {
      std::vector<Var> all(static_cast<std::size_t>(cnf.num_vars()));
      for (Var v = 0; v < cnf.num_vars(); ++v)
        all[static_cast<std::size_t>(v)] = v;
      eopts.projection = all;
    }
    const Stopwatch watch;
    const auto result = enumerate_models(solver, eopts);
    const double secs = watch.seconds();
    std::printf("%-22s %10llu %12.3f %12zu\n",
                restrict_to_s ? "sampling set S" : "full support X",
                static_cast<unsigned long long>(result.count), secs,
                eopts.projection.size());
    std::fflush(stdout);
  }
  return 0;
}
