// Ablation B — the ε knob ("Trading scalability with uniformity", paper
// Section 4): smaller ε tightens the uniformity guarantee but grows pivot
// and hiThresh, so each BSAT call enumerates more witnesses and sampling
// slows down.  Also measures the empirical uniformity (L1 distance from
// the uniform distribution) on a brute-forceable instance, showing the
// distribution tightening as ε shrinks.

#include <cmath>
#include <cstdio>
#include <map>

#include "common.hpp"
#include "workloads/circuits.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const auto samples = env_u64("UNIGEN_EPS_SAMPLES", 3000);

  // Affine instance with 2^9 = 512 witnesses: big enough for hashed mode,
  // small enough to measure the distribution.
  const auto bench = workloads::make_case110_like(18, 9);
  const auto r_f = bench.witness_count.to_uint64();
  std::printf("Ablation: epsilon sweep on %s (|R_F| = %llu, %llu samples "
              "per point)\n\n",
              bench.cnf.summary().c_str(),
              static_cast<unsigned long long>(r_f),
              static_cast<unsigned long long>(samples));
  std::printf("%8s %6s %6s %9s %9s %8s %12s %10s\n", "epsilon", "pivot",
              "hiTh", "t/wit(ms)", "succ", "q", "L1-to-unif", "max/mean");

  const auto sampling_set = bench.cnf.sampling_set_or_all();
  // Note: ε close to 1.71 makes pivot explode (κ → 0 in Algorithm 2), so
  // hiThresh exceeds |R_F| and UniGen degenerates to exact enumeration —
  // included as ε = 2.0 to show the trivial-mode cliff.
  for (const double eps : {2.0, 2.5, 3.0, 6.0, 10.0, 16.0}) {
    Rng rng(1000 + static_cast<std::uint64_t>(eps * 100));
    UniGenOptions opts;
    opts.epsilon = eps;
    UniGen sampler(bench.cnf, opts, rng);
    if (!sampler.prepare()) {
      std::printf("%8.2f prepare failed\n", eps);
      continue;
    }
    std::map<std::vector<bool>, std::uint64_t> histogram;
    std::uint64_t ok = 0;
    const Stopwatch watch;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const auto r = sampler.sample();
      if (!r.ok()) continue;
      ++ok;
      std::vector<bool> key;
      for (const Var v : sampling_set)
        key.push_back(r.witness[static_cast<std::size_t>(v)] == lbool::True);
      ++histogram[key];
    }
    const double secs = watch.seconds();
    // L1 distance between the empirical distribution and uniform.
    double l1 = 0.0;
    std::uint64_t max_count = 0;
    for (const auto& [key, c] : histogram) {
      l1 += std::abs(static_cast<double>(c) / static_cast<double>(ok) -
                     1.0 / static_cast<double>(r_f));
      max_count = std::max(max_count, c);
    }
    l1 += (static_cast<double>(r_f) - static_cast<double>(histogram.size())) /
          static_cast<double>(r_f);  // unseen witnesses
    const double mean = static_cast<double>(ok) / static_cast<double>(r_f);
    const auto& st = sampler.stats();
    if (ok == 0) {
      // Affine instances have power-of-two cell sizes only; an acceptance
      // window [loThresh, hiThresh] that contains no power of two makes
      // every sample return ⊥.  A real-world (non-affine) formula does not
      // quantize like this.
      std::printf("%8.2f %6llu %6llu %9.2f %9.3f %8d %12s %10s  "
                  "(window has no power-of-2 cell size)\n",
                  eps, static_cast<unsigned long long>(st.pivot),
                  static_cast<unsigned long long>(st.hi_thresh),
                  1000.0 * secs / static_cast<double>(samples),
                  st.success_rate(), st.q, "-", "-");
      std::fflush(stdout);
      continue;
    }
    std::printf("%8.2f %6llu %6llu %9.2f %9.3f %8d %12.4f %10.2f\n", eps,
                static_cast<unsigned long long>(st.pivot),
                static_cast<unsigned long long>(st.hi_thresh),
                1000.0 * secs / static_cast<double>(samples),
                st.success_rate(), st.q, l1,
                static_cast<double>(max_count) / mean);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: pivot/hiThresh and time-per-witness grow "
              "as epsilon shrinks;\nthe empirical distribution is close to "
              "uniform at every epsilon (far inside the guarantee).\n");
  return 0;
}
