// Ablation A — the paper's central design choice (Section 4): hash over an
// independent support S instead of the full support X.  Same formula, same
// algorithm, only the sampling set differs.  Expected shape: XOR rows drop
// from ≈|X|/2 to ≈|S|/2 variables and per-witness time drops with them;
// both runs remain almost-uniform (S is an independent support).

#include <cstdio>

#include "common.hpp"
#include "workloads/sketch.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const auto samples = env_u64("UNIGEN_BENCH_SAMPLES", 10);

  workloads::SketchOptions sk;
  sk.spec_input_bits = 6;
  sk.selector_bits = 20;
  sk.mode_bits = 12;
  sk.threshold = 3000;
  sk.seed = 7;
  auto bench = workloads::make_sketch_bench(sk, "ablation_support");
  const auto independent_support = bench.cnf.sampling_set_or_all();

  std::printf("Ablation: sampling set = independent support vs full support\n");
  std::printf("instance: %s\n\n", bench.cnf.summary().c_str());
  std::printf("%-22s %6s %10s %10s %10s %8s\n", "sampling set", "|S|",
              "xor len", "t/witness", "prep (s)", "succ");

  for (const bool use_independent : {true, false}) {
    Cnf cnf = bench.cnf;
    if (use_independent) {
      cnf.set_sampling_set(independent_support);
    } else {
      std::vector<Var> all(static_cast<std::size_t>(cnf.num_vars()));
      for (Var v = 0; v < cnf.num_vars(); ++v)
        all[static_cast<std::size_t>(v)] = v;
      cnf.set_sampling_set(all);  // legal: X is an independent support too
    }
    Rng rng(4242);
    UniGenOptions opts;
    opts.epsilon = 6.0;
    opts.bsat_timeout_s = env_double("UNIGEN_BSAT_TIMEOUT_S", 10.0);
    opts.prepare_timeout_s = env_double("UNIGEN_PREPARE_TIMEOUT_S", 90.0);
    opts.sample_timeout_s = env_double("UNIGEN_SAMPLE_TIMEOUT_S", 30.0);
    UniGen sampler(cnf, opts, rng);
    if (!sampler.prepare()) {
      std::printf("%-22s %6zu %10s %10s %10s %8s\n",
                  use_independent ? "independent (S)" : "full (X)",
                  cnf.sampling_set_or_all().size(), "-", "-", "(timeout)",
                  "-");
      std::fflush(stdout);
      continue;
    }
    for (std::uint64_t i = 0; i < samples; ++i) sampler.sample();
    const auto& st = sampler.stats();
    std::printf("%-22s %6zu %10.1f %10.3f %10.2f %8.2f\n",
                use_independent ? "independent (S)" : "full (X)",
                cnf.sampling_set_or_all().size(), st.average_xor_length(),
                st.samples_requested
                    ? st.sample_seconds /
                          static_cast<double>(st.samples_requested)
                    : 0.0,
                st.prepare_seconds, st.success_rate());
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: the independent-support run uses ~%zu-var "
              "XOR rows vs ~%d for full support, and is markedly faster.\n",
              independent_support.size() / 2, bench.cnf.num_vars() / 2);
  return 0;
}
