// bench_anytime — what a budget fraction buys on the Table-1 suite, and
// what cancellation costs.
//
// Counting: per instance, a deterministic-unit reference run fixes the
// instance's true unit cost (its total BSAT-probe count); the anytime
// entry point is then re-run at fractions of that grant.  Per fraction
// the bench reports how often a usable estimate exists at all (valid
// rate), the δ the surviving iterations actually achieve (the honesty
// label a Partial result carries), and the estimate's drift from the
// full-budget run (mean |Δlog2|).  The anytime contract itself is
// checked inline: at the half grant, cut + resume(remainder) must be
// byte-identical to the uninterrupted run — a violation fails the bench.
//
// Cancellation: a SamplerPool serves a deliberately oversized request on
// a second thread; the main thread trips the CancelToken mid-epoch and
// measures cancel→pool-idle (the `_within` call returning with every
// slot stamped).  Solvers poll the token between conflict batches, so
// the latency bound is a few solver probes, not a pool teardown.
//
// Deterministic-unit runs forgo the leapfrog hint (cold starts are what
// make the unit cost stream-pure), so a full pass here is several times
// the cost of bench_parallel_count's warm passes.  The default δ is
// therefore 0.2 (3 median iterations) rather than the 0.05 the other
// counting benches use: the anytime curve needs a fraction sweep per
// instance, and the squaring rows do not shrink below scale 0.5.
//
// Env knobs: UNIGEN_BENCH_SCALE     instance scale    (default 0.05)
//            UNIGEN_COUNT_EPSILON   counter tolerance (default 0.8)
//            UNIGEN_COUNT_DELTA     counter 1-confid. (default 0.2)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "counting/approxmc.hpp"
#include "service/sampler_pool.hpp"
#include "util/timer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace unigen;

constexpr std::uint64_t kSeed = 0xDAC14A;
constexpr std::uint64_t kUnlimitedUnits = 1ull << 40;

struct FractionTotals {
  double fraction = 0.0;
  std::size_t runs = 0;
  std::size_t valid = 0;       ///< runs with a usable (Partial/Complete) estimate
  double delta_sum = 0.0;      ///< Σ achieved-δ over valid runs
  double log2_err_sum = 0.0;   ///< Σ |log2 est − log2 full| over valid runs
};

bool identical(const ApproxMcAnytime& a, const ApproxMcAnytime& b) {
  return a.status == b.status && a.result.valid == b.result.valid &&
         a.result.cell_count == b.result.cell_count &&
         a.result.hash_count == b.result.hash_count &&
         a.result.bsat_calls == b.result.bsat_calls &&
         a.result.iterations_succeeded == b.result.iterations_succeeded &&
         a.achieved_delta == b.achieved_delta;
}

}  // namespace

int main() {
  const double scale = workloads::bench_scale_from_env(0.05);
  ApproxMcOptions base;
  base.epsilon = bench::env_double("UNIGEN_COUNT_EPSILON", 0.8);
  base.delta = bench::env_double("UNIGEN_COUNT_DELTA", 0.2);
  const auto suite = workloads::make_table1_suite(scale);

  std::printf(
      "anytime counting — Table-1 suite (scale=%.2f, %zu instances), "
      "eps=%.2f delta=%.2f (%d median iterations)\n\n",
      scale, suite.size(), base.epsilon, base.delta,
      approxmc_iteration_count(base.delta));

  const double fractions[] = {0.25, 0.5, 0.75, 1.0};
  std::vector<FractionTotals> totals;
  for (const double f : fractions) {
    FractionTotals t;
    t.fraction = f;
    totals.push_back(t);
  }
  bool resume_identical = true;

  for (const auto& instance : suite) {
    // Reference: the uninterrupted deterministic run and its unit cost.
    ApproxMcOptions opts = base;
    opts.budget.max_bsat_calls = kUnlimitedUnits;
    Rng ref_rng(kSeed);
    const Stopwatch ref_watch;
    const ApproxMcAnytime full =
        approx_count_anytime(instance.cnf, opts, ref_rng);
    const std::uint64_t total_units = full.result.bsat_calls;
    std::fprintf(stderr, "  %-24s reference: %s, %llu units, %.1f s\n",
                 instance.name.c_str(), to_string(full.status),
                 static_cast<unsigned long long>(total_units),
                 ref_watch.seconds());
    std::fflush(stderr);
    if (!full.result.valid || total_units == 0) continue;

    for (FractionTotals& t : totals) {
      const std::uint64_t grant = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(t.fraction *
                                        static_cast<double>(total_units)));
      // The full grant reproduces the reference run byte-for-byte (that is
      // the determinism contract) — reuse it instead of re-running.
      ApproxMcAnytime rerun;
      if (grant >= total_units) {
        rerun = full;
      } else {
        ApproxMcOptions cut_opts = base;
        cut_opts.budget.max_bsat_calls = grant;
        Rng rng(kSeed);
        rerun = approx_count_anytime(instance.cnf, cut_opts, rng);
      }
      const ApproxMcAnytime& cut = rerun;
      ++t.runs;
      if (cut.result.valid) {
        ++t.valid;
        t.delta_sum += cut.achieved_delta;
        t.log2_err_sum +=
            std::abs(cut.result.log2_value() - full.result.log2_value());
      }
      // Contract check at the half grant: resume(remainder) == full.
      if (t.fraction == 0.5 && grant < total_units) {
        Budget more;
        more.max_bsat_calls = total_units - grant;
        const ApproxMcAnytime resumed =
            approx_count_resume(instance.cnf, cut.state, more);
        if (!identical(resumed, full)) resume_identical = false;
      }
    }
  }

  std::printf("%10s %8s %12s %12s\n", "fraction", "valid", "achieved-d",
              "|dlog2|");
  for (const FractionTotals& t : totals) {
    const double n = t.valid ? static_cast<double>(t.valid) : 1.0;
    std::printf("%9.0f%% %7.0f%% %12.4f %12.3f\n", 100.0 * t.fraction,
                t.runs ? 100.0 * static_cast<double>(t.valid) /
                             static_cast<double>(t.runs)
                       : 0.0,
                t.delta_sum / n, t.log2_err_sum / n);
  }
  std::printf("\ncut@50%% + resume byte-identical to uninterrupted: %s\n",
              resume_identical ? "yes" : "NO — anytime contract violated");

  // --- cancel latency: token trip -> pool idle -------------------------
  // An oversized request keeps the epoch busy past the trip point; the
  // serving thread stamps its own end time the moment the call returns
  // with every slot resolved.
  using Clock = std::chrono::steady_clock;
  double cancel_latency_s = 0.0;
  bool cancel_observed = false;
  const int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    SamplerPoolOptions popts;
    popts.num_threads = 2;
    popts.seed = kSeed + static_cast<std::uint64_t>(rep);
    SamplerPool pool(suite.front().cnf, popts);
    if (!pool.prepare()) break;
    CancelToken token;
    Budget budget;
    budget.cancel = &token;
    RequestStatus status = RequestStatus::kComplete;
    Clock::time_point end;
    std::thread server([&] {
      const SampleManyResult r = pool.sample_many_within(4096, budget);
      end = Clock::now();
      status = r.status;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const Clock::time_point t0 = Clock::now();
    token.cancel();
    server.join();
    if (status == RequestStatus::kCancelled) {
      cancel_observed = true;
      cancel_latency_s =
          std::max(cancel_latency_s,
                   std::chrono::duration<double>(end - t0).count());
    }
  }
  if (cancel_observed) {
    std::printf("cancel -> pool idle (max of %d reps): %.1f ms\n", kReps,
                1e3 * cancel_latency_s);
  } else {
    std::printf(
        "cancel -> pool idle: request finished before the trip "
        "(instance too small at this scale)\n");
  }

  bench::BenchJson json("anytime");
  json.add("suite", "table1");
  json.add("scale", scale);
  json.add("instances", static_cast<std::uint64_t>(suite.size()));
  for (const FractionTotals& t : totals) {
    char key[64];
    const int pct = static_cast<int>(100.0 * t.fraction);
    const double n = t.valid ? static_cast<double>(t.valid) : 1.0;
    std::snprintf(key, sizeof key, "valid_rate_budget_%d", pct);
    json.add(key, t.runs ? static_cast<double>(t.valid) /
                               static_cast<double>(t.runs)
                         : 0.0);
    std::snprintf(key, sizeof key, "achieved_delta_budget_%d", pct);
    json.add(key, t.delta_sum / n);
    std::snprintf(key, sizeof key, "log2_err_budget_%d", pct);
    json.add(key, t.log2_err_sum / n);
  }
  json.add("resume_identical",
           static_cast<std::uint64_t>(resume_identical ? 1 : 0));
  json.add("cancel_observed",
           static_cast<std::uint64_t>(cancel_observed ? 1 : 0));
  json.add("cancel_to_idle_s", cancel_latency_s);
  json.write("BENCH_anytime.json");
  return resume_identical ? 0 : 1;
}
