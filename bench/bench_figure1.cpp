// Reproduces paper Figure 1: uniformity comparison between UniGen and the
// ideal uniform sampler US on a case110-like instance.
//
// The paper's setup: benchmark case110 with |R_F| = 16384 witnesses,
// N = 4x10^6 samples from each of UniGen and US; the plotted histograms
// ("x witnesses were generated exactly c times") are visually
// indistinguishable.
//
// Here the instance is a generated circuit-parity benchmark whose witness
// count is forced by construction (and verified at startup); N defaults to
// a laptop-friendly value.  Output: one CSV block with the two histogram
// series, then summary statistics (mean/std of per-witness counts, min/max
// frequency ratio, chi-square, KL divergence vs uniform).
//
// Paper-fidelity run: UNIGEN_FIG1_INPUTS=32 UNIGEN_FIG1_PARITIES=18
// (16384 witnesses, as case110) with UNIGEN_FIG1_SAMPLES=4000000.
//
//   UNIGEN_FIG1_SAMPLES    samples per sampler (default 12000)
//   UNIGEN_FIG1_INPUTS     circuit input bits  (default 24)
//   UNIGEN_FIG1_PARITIES   parity constraints  (default 15 -> 512 witnesses)

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "common.hpp"
#include "core/unigen.hpp"
#include "sat/enumerator.hpp"
#include "workloads/circuits.hpp"

namespace {

using namespace unigen;

struct Series {
  std::vector<std::uint64_t> per_witness;  // hits per witness index
  double mean = 0.0, stddev = 0.0, chi_square = 0.0, kl = 0.0;
  std::uint64_t min = 0, max = 0, total = 0;

  void finalize() {
    total = 0;
    min = UINT64_MAX;
    max = 0;
    for (const auto c : per_witness) {
      total += c;
      min = std::min(min, c);
      max = std::max(max, c);
    }
    const double n = static_cast<double>(per_witness.size());
    mean = static_cast<double>(total) / n;
    double var = 0.0;
    for (const auto c : per_witness) {
      const double d = static_cast<double>(c) - mean;
      var += d * d;
    }
    stddev = std::sqrt(var / n);
    chi_square = 0.0;
    kl = 0.0;
    for (const auto c : per_witness) {
      const double d = static_cast<double>(c) - mean;
      chi_square += d * d / mean;
      if (c > 0) {
        const double p = static_cast<double>(c) / static_cast<double>(total);
        kl += p * std::log2(p * n);
      }
    }
  }
};

}  // namespace

int main() {
  using namespace unigen::bench;
  const auto n_samples = env_u64("UNIGEN_FIG1_SAMPLES", 12000);
  const auto inputs = static_cast<std::size_t>(env_u64("UNIGEN_FIG1_INPUTS", 24));
  const auto parities =
      static_cast<std::size_t>(env_u64("UNIGEN_FIG1_PARITIES", 15));

  const auto bench = workloads::make_case110_like(inputs, parities);
  std::printf("Figure 1 reproduction: %s, |R_F| = %s (by construction), "
              "N = %llu samples per sampler\n",
              bench.cnf.summary().c_str(),
              bench.witness_count.to_string().c_str(),
              static_cast<unsigned long long>(n_samples));
  if (!bench.witness_count.fits_uint64()) {
    std::printf("witness count too large for this harness\n");
    return 1;
  }
  const std::uint64_t r_f = bench.witness_count.to_uint64();

  // Verify the constructed count by exhaustive projected enumeration.
  {
    Solver solver;
    solver.load(bench.cnf);
    EnumerateOptions eopts;
    eopts.store_models = false;
    eopts.projection = bench.cnf.sampling_set_or_all();
    const auto r = enumerate_models(solver, eopts);
    if (!r.exhausted || r.count != r_f) {
      std::printf("count verification FAILED: enumerated %llu\n",
                  static_cast<unsigned long long>(r.count));
      return 1;
    }
    std::printf("count verified by exhaustive enumeration: %llu\n\n",
                static_cast<unsigned long long>(r.count));
  }

  // --- UniGen series ---
  Rng rng(110);
  UniGenOptions opts;
  opts.epsilon = 6.0;
  UniGen sampler(bench.cnf, opts, rng);
  if (!sampler.prepare()) {
    std::printf("UniGen prepare failed\n");
    return 1;
  }
  const auto sampling_set = bench.cnf.sampling_set_or_all();
  std::map<std::vector<bool>, std::uint64_t> histogram;
  std::uint64_t ok = 0;
  const Stopwatch watch;
  while (ok < n_samples) {
    const auto r = sampler.sample();
    if (!r.ok()) continue;
    std::vector<bool> key;
    key.reserve(sampling_set.size());
    for (const Var v : sampling_set)
      key.push_back(r.witness[static_cast<std::size_t>(v)] == lbool::True);
    ++histogram[key];
    ++ok;
  }
  const double unigen_seconds = watch.seconds();

  Series unigen_series;
  unigen_series.per_witness.assign(r_f, 0);
  std::size_t slot = 0;
  for (const auto& [key, count] : histogram)
    unigen_series.per_witness[slot++] = count;
  // witnesses never produced stay at 0 (slots r_f-1 .. histogram.size()).
  unigen_series.finalize();

  // --- US series ---
  // Exactly the paper's US: |R_F| is known (verified above), and each
  // sample is "a random number i in {1 ... |R_F|}".
  Rng us_rng(111);
  Series us_series;
  us_series.per_witness.assign(r_f, 0);
  for (std::uint64_t i = 0; i < n_samples; ++i)
    ++us_series.per_witness[us_rng.below(r_f)];
  us_series.finalize();

  // --- histogram CSV: count -> #witnesses generated that many times ---
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> figure;
  for (const auto c : us_series.per_witness) ++figure[c].first;
  for (const auto c : unigen_series.per_witness) ++figure[c].second;
  std::printf("count,US_witnesses,UniGen_witnesses\n");
  for (const auto& [count, pair] : figure)
    std::printf("%llu,%llu,%llu\n", static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(pair.first),
                static_cast<unsigned long long>(pair.second));

  std::printf("\nseries      mean    std    min    max   chi2/df    KL(bits)\n");
  std::printf("US       %7.2f %6.2f %6llu %6llu %9.3f %10.5f\n",
              us_series.mean, us_series.stddev,
              static_cast<unsigned long long>(us_series.min),
              static_cast<unsigned long long>(us_series.max),
              us_series.chi_square / static_cast<double>(r_f - 1),
              us_series.kl);
  std::printf("UniGen   %7.2f %6.2f %6llu %6llu %9.3f %10.5f\n",
              unigen_series.mean, unigen_series.stddev,
              static_cast<unsigned long long>(unigen_series.min),
              static_cast<unsigned long long>(unigen_series.max),
              unigen_series.chi_square / static_cast<double>(r_f - 1),
              unigen_series.kl);
  std::printf("\nUniGen: %llu samples in %.1fs (%.1f ms/witness), "
              "success rate %.3f, distinct witnesses %zu of %llu\n",
              static_cast<unsigned long long>(ok), unigen_seconds,
              1000.0 * unigen_seconds / static_cast<double>(ok),
              sampler.stats().success_rate(), histogram.size(),
              static_cast<unsigned long long>(r_f));
  std::printf("Expected shape: the two count-histograms are near-identical "
              "(paper Fig. 1);\nchi2/df close to 1 for both series.\n");
  return 0;
}
