// bench_fleet — the process fleet's crash-isolation contract, gated:
//
//   * count identity: approx_count over the fleet backend at 1/2/4 workers
//     returns the exact estimate the in-process path returns (the
//     keyed-stream determinism contract crossing a process boundary);
//   * sample-stream identity: a fleet-backed SamplerPool's sample_many /
//     sample_batches streams byte-equal the in-process pool's at every
//     worker count;
//   * crash recovery: with a deterministic process-level fault plan
//     (UNIGEN_WORKERD_FAULTS) SIGKILLing workers mid-task, the streams are
//     STILL byte-identical — every crashed task was re-dispatched and its
//     retry produced the same bytes — with zero poisoned tasks;
//   * hang recovery: a worker that sleeps forever is caught by heartbeat
//     silence, killed, replaced, and its task re-served identically;
//   * clean-run hygiene: an un-faulted run records zero crashes and zero
//     poisoned tasks (the supervisor doesn't kill healthy workers).
//
// The headline numbers are the recovery latencies (crash observed →
// re-dispatch of the orphaned task) recorded in BENCH_fleet.json.  Wall
// times per backend are recorded but not gated — on a 1-core container the
// determinism gates are the trustworthy signal, not the clock.
//
// `--smoke` shrinks the request counts so the whole run fits in the tier-1
// ctest budget; every gate is identical in both modes.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "counting/approxmc.hpp"
#include "service/process_fleet.hpp"
#include "service/sampler_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace unigen;

constexpr std::uint64_t kSeed = 0xF1EE7DAC14ull;

struct Instance {
  std::string name;
  Cnf cnf;
};

/// Hashed-mode formulas (the workers actually solve) plus one easy case
/// (the fleet must be byte-transparent on the exact path too).
std::vector<Instance> instances() {
  std::vector<Instance> out;
  {
    Cnf cnf(10);
    cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
    cnf.add_clause({Lit(3, false), Lit(4, true)});
    cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
    cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
    out.push_back({"hashed_a", std::move(cnf)});
  }
  {
    Cnf cnf(10);
    cnf.add_clause({Lit(0, false), Lit(1, false)});
    cnf.add_clause({Lit(2, false), Lit(3, false), Lit(4, false)});
    cnf.add_clause({Lit(5, true), Lit(6, false)});
    cnf.add_clause({Lit(7, false), Lit(8, false), Lit(9, true)});
    out.push_back({"hashed_b", std::move(cnf)});
  }
  {
    Cnf cnf(3);
    cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
    out.push_back({"trivial_c", std::move(cnf)});
  }
  return out;
}

SamplerPoolOptions pool_options(std::size_t threads, std::size_t workers,
                                const std::string& fault_plan = {}) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = kSeed;
  if (workers > 0) {
    o.unigen.fleet.backend = ExecBackend::kProcessFleet;
    o.unigen.fleet.num_workers = workers;
    o.unigen.fleet.fault_plan = fault_plan;
  }
  return o;
}

bool same_samples(const std::vector<SampleResult>& a,
                  const std::vector<SampleResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].status != b[i].status || a[i].witness != b[i].witness)
      return false;
  return true;
}

bool same_batches(const std::vector<BatchResult>& a,
                  const std::vector<BatchResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].status != b[i].status || a[i].models != b[i].models)
      return false;
  return true;
}

struct SampleRun {
  std::vector<SampleResult> singles;
  std::vector<BatchResult> batches;
  FleetStats stats;          // zero for the in-process reference
  bool fleet_up = false;     // the fleet backend actually came up
  double wall_s = 0.0;
};

SampleRun run_samples(const Cnf& cnf, std::size_t threads,
                      std::size_t workers, std::size_t singles,
                      std::size_t batches, std::size_t batch_size,
                      const std::string& fault_plan = {}) {
  SampleRun out;
  SamplerPool pool(cnf, pool_options(threads, workers, fault_plan));
  const Stopwatch watch;
  out.singles = pool.sample_many(singles);
  out.batches = pool.sample_batches(batches, batch_size);
  out.wall_s = watch.seconds();
  if (pool.fleet() != nullptr) {
    out.fleet_up = true;
    out.stats = pool.fleet()->stats();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t singles =
      smoke ? 10 : bench::env_u64("UNIGEN_FLEET_SAMPLES", 40);
  const std::size_t batches =
      smoke ? 4 : bench::env_u64("UNIGEN_FLEET_BATCHES", 12);
  const std::size_t batch_size = 5;
  const std::size_t worker_counts[] = {1, 2, 4};
  const unsigned hw = std::thread::hardware_concurrency();

  const auto suite = instances();
  std::printf(
      "process fleet — %zu formulas, %zu singles + %zu batches(x%zu) per "
      "run, %u hardware thread(s)\n\n",
      suite.size(), singles, batches, batch_size, hw);

  bool count_identity = true;
  bool sample_identity = true;
  bool crash_identity = true;
  bool crash_recovered = true;
  bool hang_recovered = true;
  bool clean_hygiene = true;
  bool fleet_came_up = true;

  std::uint64_t crashes_total = 0;
  std::uint64_t redispatches_total = 0;
  std::uint64_t hang_kills_total = 0;
  std::uint64_t respawns_total = 0;
  std::uint64_t poisoned_total = 0;
  double recovery_total_s = 0.0;
  double recovery_max_s = 0.0;
  std::uint64_t recovery_events = 0;
  double inproc_wall_s = 0.0;
  double fleet_wall_s = 0.0;  // 2-worker clean runs

  for (const Instance& inst : suite) {
    // --- counting: the fleet-backed estimate must be the in-process one.
    ApproxMcOptions co;
    Rng ref_rng(kSeed);
    const ApproxMcResult ref_count = approx_count(inst.cnf, co, ref_rng);
    for (const std::size_t workers : worker_counts) {
      ApproxMcOptions fo = co;
      fo.fleet.backend = ExecBackend::kProcessFleet;
      fo.fleet.num_workers = workers;
      Rng rng(kSeed);
      const ApproxMcResult got = approx_count(inst.cnf, fo, rng);
      if (got.valid != ref_count.valid ||
          got.cell_count != ref_count.cell_count ||
          got.hash_count != ref_count.hash_count ||
          got.exact != ref_count.exact) {
        count_identity = false;
        std::printf("COUNT MISMATCH %s workers=%zu\n", inst.name.c_str(),
                    workers);
      }
    }
    // Counting with two iterations killed on their first attempt: the
    // retries must land on the same estimate.
    {
      ApproxMcOptions fo = co;
      fo.fleet.backend = ExecBackend::kProcessFleet;
      fo.fleet.num_workers = 2;
      fo.fleet.fault_plan =
          ProcessFaultPlan().kill_task(0).kill_task(2).to_env();
      Rng rng(kSeed);
      const ApproxMcResult got = approx_count(inst.cnf, fo, rng);
      if (got.valid != ref_count.valid ||
          got.cell_count != ref_count.cell_count ||
          got.hash_count != ref_count.hash_count) {
        crash_identity = false;
        std::printf("COUNT CRASH-RUN MISMATCH %s\n", inst.name.c_str());
      }
    }

    // --- sampling: in-process reference streams.
    const SampleRun ref =
        run_samples(inst.cnf, 2, /*workers=*/0, singles, batches, batch_size);
    inproc_wall_s += ref.wall_s;

    // Clean fleet runs across worker counts.
    for (const std::size_t workers : worker_counts) {
      const SampleRun got = run_samples(inst.cnf, 2, workers, singles,
                                        batches, batch_size);
      // The easy-case formula never goes hashed, so no fleet is built for
      // it — the identity gate still applies (served in-process).
      if (!got.fleet_up && inst.name != "trivial_c") fleet_came_up = false;
      if (workers == 2) fleet_wall_s += got.wall_s;
      if (!same_samples(ref.singles, got.singles) ||
          !same_batches(ref.batches, got.batches)) {
        sample_identity = false;
        std::printf("SAMPLE MISMATCH %s workers=%zu\n", inst.name.c_str(),
                    workers);
      }
      if (got.fleet_up &&
          (got.stats.crashes != 0 || got.stats.poisoned_tasks != 0 ||
           got.stats.hang_kills != 0))
        clean_hygiene = false;
    }

    if (inst.name == "trivial_c") continue;  // fault runs need live workers

    // Crash run: three request streams lose their worker mid-task.
    {
      const std::string plan =
          ProcessFaultPlan().kill_task(2).kill_task(5).kill_task(8).to_env();
      const SampleRun got =
          run_samples(inst.cnf, 2, 2, singles, batches, batch_size, plan);
      if (!got.fleet_up) fleet_came_up = false;
      if (!same_samples(ref.singles, got.singles) ||
          !same_batches(ref.batches, got.batches)) {
        crash_identity = false;
        std::printf("SAMPLE CRASH-RUN MISMATCH %s\n", inst.name.c_str());
      }
      if (got.stats.crashes < 3 || got.stats.redispatches < 3 ||
          got.stats.poisoned_tasks != 0)
        crash_recovered = false;
      crashes_total += got.stats.crashes;
      redispatches_total += got.stats.redispatches;
      respawns_total += got.stats.respawns;
      poisoned_total += got.stats.poisoned_tasks;
      recovery_total_s += got.stats.total_recovery_seconds;
      recovery_max_s =
          recovery_max_s > got.stats.max_recovery_seconds
              ? recovery_max_s
              : got.stats.max_recovery_seconds;
      recovery_events += got.stats.redispatches;
    }

    // Hang run: one stream sleeps forever; heartbeat silence must catch it.
    {
      SamplerPoolOptions o = pool_options(
          2, 2, ProcessFaultPlan().sleep_task(3).to_env());
      o.unigen.fleet.heartbeat_interval_s = 0.05;
      o.unigen.fleet.heartbeat_timeout_s = 0.6;
      SamplerPool pool(inst.cnf, o);
      const auto got = pool.sample_many(singles);
      if (pool.fleet() == nullptr) {
        fleet_came_up = false;
      } else {
        const FleetStats& fs = pool.fleet()->stats();
        if (fs.hang_kills < 1 || fs.poisoned_tasks != 0)
          hang_recovered = false;
        hang_kills_total += fs.hang_kills;
      }
      if (!same_samples(ref.singles, got)) {
        hang_recovered = false;
        std::printf("SAMPLE HANG-RUN MISMATCH %s\n", inst.name.c_str());
      }
    }
  }

  const double recovery_avg_s =
      recovery_events == 0
          ? 0.0
          : recovery_total_s / static_cast<double>(recovery_events);

  std::printf("fleet came up:                        %s\n",
              fleet_came_up ? "yes" : "NO");
  std::printf("count identity (1/2/4 workers):       %s\n",
              count_identity ? "yes" : "NO");
  std::printf("sample identity (1/2/4 workers):      %s\n",
              sample_identity ? "yes" : "NO");
  std::printf("crash-run identity:                   %s\n",
              crash_identity ? "yes" : "NO");
  std::printf("crashed tasks all recovered:          %s (%llu crashes, %llu "
              "re-dispatches, %llu poisoned)\n",
              crash_recovered ? "yes" : "NO",
              static_cast<unsigned long long>(crashes_total),
              static_cast<unsigned long long>(redispatches_total),
              static_cast<unsigned long long>(poisoned_total));
  std::printf("hung workers caught and replaced:     %s (%llu hang kills)\n",
              hang_recovered ? "yes" : "NO",
              static_cast<unsigned long long>(hang_kills_total));
  std::printf("clean runs crash/poison free:         %s\n",
              clean_hygiene ? "yes" : "NO");
  std::printf("recovery latency avg / max:           %.4f s / %.4f s\n",
              recovery_avg_s, recovery_max_s);
  std::printf("wall (2 threads in-process / 2-worker fleet): %.3f s / "
              "%.3f s\n",
              inproc_wall_s, fleet_wall_s);

  bench::BenchJson json("fleet");
  json.add("suite", smoke ? "smoke" : "full");
  json.add("formulas", static_cast<std::uint64_t>(suite.size()));
  json.add("singles_per_run", static_cast<std::uint64_t>(singles));
  json.add("batches_per_run", static_cast<std::uint64_t>(batches));
  json.add("inproc_wall_s", inproc_wall_s);
  json.add("fleet_wall_s", fleet_wall_s);
  json.add("crashes", crashes_total);
  json.add("redispatches", redispatches_total);
  json.add("respawns", respawns_total);
  json.add("hang_kills", hang_kills_total);
  json.add("poisoned_tasks", poisoned_total);
  json.add("recovery_avg_s", recovery_avg_s);
  json.add("recovery_max_s", recovery_max_s);
  json.add("count_identity",
           static_cast<std::uint64_t>(count_identity ? 1 : 0));
  json.add("sample_identity",
           static_cast<std::uint64_t>(sample_identity ? 1 : 0));
  json.add("crash_identity",
           static_cast<std::uint64_t>(crash_identity ? 1 : 0));
  json.add("crash_recovered",
           static_cast<std::uint64_t>(crash_recovered ? 1 : 0));
  json.add("hang_recovered",
           static_cast<std::uint64_t>(hang_recovered ? 1 : 0));
  json.add("clean_hygiene",
           static_cast<std::uint64_t>(clean_hygiene ? 1 : 0));
  json.add("invariant_violations",
           static_cast<std::uint64_t>(
               (fleet_came_up ? 0 : 1) + (count_identity ? 0 : 1) +
               (sample_identity ? 0 : 1) + (crash_identity ? 0 : 1) +
               (crash_recovered ? 0 : 1) + (hang_recovered ? 0 : 1) +
               (clean_hygiene ? 0 : 1)));
  json.write("BENCH_fleet.json");

  const bool gates = fleet_came_up && count_identity && sample_identity &&
                     crash_identity && crash_recovered && hang_recovered &&
                     clean_hygiene;
  return gates ? 0 : 1;
}
