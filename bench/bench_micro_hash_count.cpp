// Micro-benchmarks (google-benchmark) for hashing and counting: drawing
// hash functions, exact counting, and ApproxMC.  After the benchmark suite
// runs, a fixed hashed-counting workload is measured once and written to
// BENCH_hash_count.json (wall-clock + BSAT-call + solver-rebuild counters)
// so the perf trajectory is tracked across PRs.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "counting/approxmc.hpp"
#include "counting/exact_counter.hpp"
#include "hashing/xor_hash.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace unigen;

void BM_DrawXorHash(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Var> vars(n);
  for (std::size_t i = 0; i < n; ++i) vars[i] = static_cast<Var>(i);
  Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(draw_xor_hash(vars, 20, rng).rows.size());
}
BENCHMARK(BM_DrawXorHash)->Arg(32)->Arg(1024)->Arg(1u << 17);

void BM_ExactCountRandomCnf(benchmark::State& state) {
  Rng rng(5);
  Cnf cnf(static_cast<Var>(state.range(0)));
  const auto clauses = static_cast<std::size_t>(state.range(0)) * 3;
  for (std::size_t i = 0; i < clauses; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < 3; ++j)
      clause.emplace_back(
          static_cast<Var>(rng.below(static_cast<std::uint64_t>(cnf.num_vars()))),
          rng.flip());
    cnf.add_clause(std::move(clause));
  }
  for (auto _ : state) {
    ExactCounter counter;
    benchmark::DoNotOptimize(counter.count(cnf));
  }
}
BENCHMARK(BM_ExactCountRandomCnf)->Arg(20)->Arg(30)->Arg(40);

void BM_ExactCountParitySystem(benchmark::State& state) {
  Rng rng(7);
  Cnf cnf(static_cast<Var>(state.range(0)));
  for (int i = 0; i < state.range(0) / 3; ++i) {
    std::vector<Var> vars;
    for (Var v = 0; v < cnf.num_vars(); ++v)
      if (rng.flip(0.25)) vars.push_back(v);
    if (vars.empty()) vars.push_back(0);
    cnf.add_xor(std::move(vars), rng.flip());
  }
  for (auto _ : state) {
    ExactCounter counter;
    benchmark::DoNotOptimize(counter.count(cnf));
  }
}
BENCHMARK(BM_ExactCountParitySystem)->Arg(15)->Arg(21);

void BM_ApproxMcFreeVars(benchmark::State& state) {
  // 2^n models; exercises the full hashed counting path.
  Cnf cnf(static_cast<Var>(state.range(0)));
  cnf.add_clause({Lit(0, false), Lit(0, true)});
  for (auto _ : state) {
    Rng rng(11);
    ApproxMcOptions opts;
    benchmark::DoNotOptimize(approx_count(cnf, opts, rng).cell_count);
  }
}
BENCHMARK(BM_ApproxMcFreeVars)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void write_hash_count_json() {
  // Fixed reference workload: ApproxMC over 20 free variables (2^20
  // models), fully hashed path.
  Cnf cnf(20);
  cnf.add_clause({Lit(0, false), Lit(0, true)});
  Rng rng(17);
  ApproxMcOptions opts;
  Stopwatch watch;
  const ApproxMcResult r = approx_count(cnf, opts, rng);
  const double wall = watch.seconds();

  unigen::bench::BenchJson json("micro_hash_count");
  json.add("workload", "approxmc_free_vars_20");
  json.add("wall_s", wall);
  json.add("valid", static_cast<std::uint64_t>(r.valid ? 1 : 0));
  json.add("log2_estimate", r.valid ? r.log2_value() : 0.0);
  json.add("bsat_calls", r.bsat_calls);
  json.add("solver_rebuilds", r.solver_rebuilds);
  json.add("reused_solves", r.reused_solves);
  json.add("retracted_blocks", r.retracted_blocks);
  json.write("BENCH_hash_count.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_hash_count_json();
  return 0;
}
