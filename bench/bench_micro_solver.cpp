// Micro-benchmarks (google-benchmark) for the SAT substrate: CDCL solving,
// native XOR propagation vs CNF expansion, and BSAT enumeration.

#include <benchmark/benchmark.h>

#include "cnf/cnf.hpp"
#include "sat/enumerator.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using namespace unigen;

Cnf random_3sat(Var n, double ratio, std::uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  const auto clauses = static_cast<std::size_t>(ratio * static_cast<double>(n));
  for (std::size_t i = 0; i < clauses; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < 3; ++j)
      clause.emplace_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(n))),
                          rng.flip());
    cnf.add_clause(std::move(clause));
  }
  return cnf;
}

Cnf xor_chain(Var n, std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Cnf cnf(n);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Var> vars;
    for (Var v = 0; v < n; ++v)
      if (rng.flip()) vars.push_back(v);
    if (vars.empty()) vars.push_back(0);
    cnf.add_xor(std::move(vars), rng.flip());
  }
  return cnf;
}

void BM_SolveRandom3SatEasy(benchmark::State& state) {
  const Cnf cnf = random_3sat(static_cast<Var>(state.range(0)), 3.0, 11);
  for (auto _ : state) {
    Solver s;
    s.load(cnf);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SolveRandom3SatEasy)->Arg(100)->Arg(400)->Arg(1600);

void BM_SolveRandom3SatNearThreshold(benchmark::State& state) {
  const Cnf cnf = random_3sat(static_cast<Var>(state.range(0)), 4.2, 17);
  for (auto _ : state) {
    Solver s;
    s.load(cnf);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SolveRandom3SatNearThreshold)->Arg(60)->Arg(100)->Arg(140);

void BM_XorNativeSolve(benchmark::State& state) {
  const auto n = static_cast<Var>(state.range(0));
  const Cnf cnf = xor_chain(n, static_cast<std::size_t>(n) / 2, 23);
  for (auto _ : state) {
    Solver s;
    s.load(cnf);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_XorNativeSolve)->Arg(16)->Arg(24)->Arg(32);

void BM_XorExpandedSolve(benchmark::State& state) {
  // The same parity system through CNF expansion: what UniGen would pay
  // (args stay small: dense parity is exponential for clause learning
  // without algebraic reasoning — the point this bench makes)
  // without a native-XOR solver (the paper's CryptoMiniSAT argument).
  const auto n = static_cast<Var>(state.range(0));
  const Cnf cnf = xor_chain(n, static_cast<std::size_t>(n) / 2, 23).expand_xors();
  for (auto _ : state) {
    Solver s;
    s.options().xor_gauss = false;
    s.load(cnf);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_XorExpandedSolve)->Arg(16)->Arg(24)->Arg(32);

void BM_EnumerateBounded(benchmark::State& state) {
  const Cnf cnf = random_3sat(40, 2.0, 31);
  for (auto _ : state) {
    Solver s;
    s.load(cnf);
    EnumerateOptions opts;
    opts.max_models = static_cast<std::uint64_t>(state.range(0));
    opts.store_models = false;
    benchmark::DoNotOptimize(enumerate_models(s, opts).count);
  }
}
BENCHMARK(BM_EnumerateBounded)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
