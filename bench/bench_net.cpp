// bench_net — the TCP transport's byte-transparency contract, gated:
//
//   * three-way count identity: approx_count over the TCP-loopback fleet
//     at 1/2/4 workers equals both the socketpair fleet and the in-process
//     path exactly (the keyed-stream determinism contract crossing the
//     network stack);
//   * three-way stream identity: a TCP-fleet SamplerPool's sample_many /
//     sample_batches streams byte-equal the socketpair fleet's and the
//     in-process pool's at every worker count;
//   * crash-run identity: with a deterministic fault plan SIGKILLing
//     workers mid-task, the TCP fleet's streams are STILL byte-identical —
//     a killed connection costs one re-dispatched attempt, never a changed
//     byte — with zero poisoned tasks;
//   * remote identity: the multi-host shape (pre-started `unigen_workerd
//     --listen` servers the supervisor dials; nothing spawned) serves the
//     same bytes again;
//   * clean hygiene: un-faulted TCP runs record zero crashes, zero
//     poisoned tasks, zero send stalls and zero protocol errors.
//
// The headline numbers are the TCP fleet's crash-recovery latencies and
// the wall-clock comparison across the three execution shapes, recorded in
// BENCH_net.json.  On a 1-core container the identity gates are the
// trustworthy signal; the clocks are context.
//
// `--smoke` shrinks the request counts so the whole run fits in the tier-1
// ctest budget; every gate is identical in both modes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "common.hpp"
#include "counting/approxmc.hpp"
#include "service/net_transport.hpp"
#include "service/process_fleet.hpp"
#include "service/sampler_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace unigen;

constexpr std::uint64_t kSeed = 0xF1EE7DAC14ull;

struct Instance {
  std::string name;
  Cnf cnf;
};

/// Hashed-mode formulas (the workers actually solve) plus one easy case
/// (the transport must be byte-transparent on the exact path too).
std::vector<Instance> instances() {
  std::vector<Instance> out;
  {
    Cnf cnf(10);
    cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
    cnf.add_clause({Lit(3, false), Lit(4, true)});
    cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
    cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
    out.push_back({"hashed_a", std::move(cnf)});
  }
  {
    Cnf cnf(10);
    cnf.add_clause({Lit(0, false), Lit(1, false)});
    cnf.add_clause({Lit(2, false), Lit(3, false), Lit(4, false)});
    cnf.add_clause({Lit(5, true), Lit(6, false)});
    cnf.add_clause({Lit(7, false), Lit(8, false), Lit(9, true)});
    out.push_back({"hashed_b", std::move(cnf)});
  }
  {
    Cnf cnf(3);
    cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
    out.push_back({"trivial_c", std::move(cnf)});
  }
  return out;
}

SamplerPoolOptions pool_options(std::size_t threads, std::size_t workers,
                                FleetTransport transport,
                                const std::string& fault_plan = {},
                                std::vector<std::string> endpoints = {}) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = kSeed;
  if (workers > 0 || !endpoints.empty()) {
    o.unigen.fleet.backend = ExecBackend::kProcessFleet;
    o.unigen.fleet.num_workers = workers;
    o.unigen.fleet.transport = transport;
    o.unigen.fleet.fault_plan = fault_plan;
    o.unigen.fleet.endpoints = std::move(endpoints);
  }
  return o;
}

bool same_samples(const std::vector<SampleResult>& a,
                  const std::vector<SampleResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].status != b[i].status || a[i].witness != b[i].witness)
      return false;
  return true;
}

bool same_batches(const std::vector<BatchResult>& a,
                  const std::vector<BatchResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].status != b[i].status || a[i].models != b[i].models)
      return false;
  return true;
}

struct SampleRun {
  std::vector<SampleResult> singles;
  std::vector<BatchResult> batches;
  FleetStats stats;          // zero for the in-process reference
  bool fleet_up = false;
  double wall_s = 0.0;
};

SampleRun run_samples(const Cnf& cnf, std::size_t workers,
                      FleetTransport transport, std::size_t singles,
                      std::size_t batches, std::size_t batch_size,
                      const std::string& fault_plan = {},
                      std::vector<std::string> endpoints = {}) {
  SampleRun out;
  SamplerPool pool(cnf, pool_options(2, workers, transport, fault_plan,
                                     std::move(endpoints)));
  const Stopwatch watch;
  out.singles = pool.sample_many(singles);
  out.batches = pool.sample_batches(batches, batch_size);
  out.wall_s = watch.seconds();
  if (pool.fleet() != nullptr) {
    out.fleet_up = true;
    out.stats = pool.fleet()->stats();
  }
  return out;
}

/// A pre-started `unigen_workerd --listen 127.0.0.1:0` server; its
/// ephemeral endpoint is scraped from the announce line on stdout.
struct RemoteWorkerd {
  pid_t pid = -1;
  net::Endpoint endpoint;

  static std::string workerd_path() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) return {};
    buf[n] = '\0';
    std::string path(buf);
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos) return {};
    return path.substr(0, slash + 1) + "unigen_workerd";
  }

  bool start() {
    int out[2];
    if (::pipe(out) != 0) return false;
    const std::string path = workerd_path();
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::dup2(out[1], 1);
      ::close(out[0]);
      ::close(out[1]);
      // A real remote server starts with its own clean environment; this
      // process's env still carries the crash run's fault plan.
      ::unsetenv("UNIGEN_WORKERD_FAULTS");
      ::execl(path.c_str(), path.c_str(), "--listen", "127.0.0.1:0",
              static_cast<char*>(nullptr));
      _exit(127);
    }
    ::close(out[1]);
    FILE* f = ::fdopen(out[0], "r");
    char line[256] = {0};
    const bool got = f != nullptr && std::fgets(line, sizeof(line), f);
    if (f != nullptr) std::fclose(f);
    if (!got) return false;
    const char* marker = std::strstr(line, "listening ");
    if (marker == nullptr) return false;
    std::string ep_text(marker + std::strlen("listening "));
    while (!ep_text.empty() &&
           (ep_text.back() == '\n' || ep_text.back() == '\r'))
      ep_text.pop_back();
    return net::parse_endpoint(ep_text, endpoint);
  }
  ~RemoteWorkerd() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t singles =
      smoke ? 10 : bench::env_u64("UNIGEN_NET_SAMPLES", 40);
  const std::size_t batches =
      smoke ? 4 : bench::env_u64("UNIGEN_NET_BATCHES", 12);
  const std::size_t batch_size = 5;
  const std::size_t worker_counts[] = {1, 2, 4};
  const unsigned hw = std::thread::hardware_concurrency();

  const auto suite = instances();
  std::printf(
      "tcp transport — %zu formulas, %zu singles + %zu batches(x%zu) per "
      "run, %u hardware thread(s)\n\n",
      suite.size(), singles, batches, batch_size, hw);

  bool count_identity = true;
  bool sample_identity = true;
  bool crash_identity = true;
  bool crash_recovered = true;
  bool remote_identity = true;
  bool clean_hygiene = true;
  bool fleet_came_up = true;

  std::uint64_t crashes_total = 0;
  std::uint64_t redispatches_total = 0;
  std::uint64_t dials_total = 0;
  std::uint64_t dial_failures_total = 0;
  std::uint64_t send_stalls_total = 0;
  std::uint64_t protocol_errors_total = 0;
  std::uint64_t poisoned_total = 0;
  double recovery_total_s = 0.0;
  double recovery_max_s = 0.0;
  std::uint64_t recovery_events = 0;
  double inproc_wall_s = 0.0;
  double socketpair_wall_s = 0.0;  // 2-worker clean runs
  double tcp_wall_s = 0.0;         // 2-worker clean runs
  double remote_wall_s = 0.0;

  for (const Instance& inst : suite) {
    // --- counting: TCP fleet vs socketpair fleet vs in-process.
    ApproxMcOptions co;
    Rng ref_rng(kSeed);
    const ApproxMcResult ref_count = approx_count(inst.cnf, co, ref_rng);
    for (const std::size_t workers : worker_counts) {
      for (const FleetTransport transport :
           {FleetTransport::kSocketpair, FleetTransport::kTcp}) {
        ApproxMcOptions fo = co;
        fo.fleet.backend = ExecBackend::kProcessFleet;
        fo.fleet.transport = transport;
        fo.fleet.num_workers = workers;
        Rng rng(kSeed);
        const ApproxMcResult got = approx_count(inst.cnf, fo, rng);
        if (got.valid != ref_count.valid ||
            got.cell_count != ref_count.cell_count ||
            got.hash_count != ref_count.hash_count ||
            got.exact != ref_count.exact) {
          count_identity = false;
          std::printf("COUNT MISMATCH %s workers=%zu transport=%s\n",
                      inst.name.c_str(), workers,
                      transport == FleetTransport::kTcp ? "tcp" : "sp");
        }
      }
    }

    // --- sampling: in-process reference streams.
    const SampleRun ref = run_samples(inst.cnf, /*workers=*/0,
                                      FleetTransport::kSocketpair, singles,
                                      batches, batch_size);
    inproc_wall_s += ref.wall_s;

    // Clean runs, both fleet transports, across worker counts.
    for (const std::size_t workers : worker_counts) {
      for (const FleetTransport transport :
           {FleetTransport::kSocketpair, FleetTransport::kTcp}) {
        const SampleRun got = run_samples(inst.cnf, workers, transport,
                                          singles, batches, batch_size);
        // The easy-case formula never goes hashed, so no fleet is built
        // for it — the identity gate still applies (served in-process).
        if (!got.fleet_up && inst.name != "trivial_c") fleet_came_up = false;
        if (workers == 2) {
          if (transport == FleetTransport::kTcp)
            tcp_wall_s += got.wall_s;
          else
            socketpair_wall_s += got.wall_s;
        }
        if (!same_samples(ref.singles, got.singles) ||
            !same_batches(ref.batches, got.batches)) {
          sample_identity = false;
          std::printf("SAMPLE MISMATCH %s workers=%zu transport=%s\n",
                      inst.name.c_str(), workers,
                      transport == FleetTransport::kTcp ? "tcp" : "sp");
        }
        if (got.fleet_up &&
            (got.stats.crashes != 0 || got.stats.poisoned_tasks != 0 ||
             got.stats.send_stalls != 0 || got.stats.protocol_errors != 0))
          clean_hygiene = false;
        if (got.fleet_up && transport == FleetTransport::kTcp) {
          dials_total += got.stats.dials;
          if (got.stats.dials == 0) clean_hygiene = false;  // not TCP at all
        }
      }
    }

    if (inst.name == "trivial_c") continue;  // fault runs need live workers

    // Crash run over TCP: three request streams lose their connection
    // mid-task (the child is SIGKILLed, the supervisor sees EOF on the
    // accepted socket) — recovery must be invisible in the bytes.
    {
      const std::string plan =
          ProcessFaultPlan().kill_task(2).kill_task(5).kill_task(8).to_env();
      const SampleRun got = run_samples(inst.cnf, 2, FleetTransport::kTcp,
                                        singles, batches, batch_size, plan);
      if (!got.fleet_up) fleet_came_up = false;
      if (!same_samples(ref.singles, got.singles) ||
          !same_batches(ref.batches, got.batches)) {
        crash_identity = false;
        std::printf("TCP CRASH-RUN MISMATCH %s\n", inst.name.c_str());
      }
      if (got.stats.crashes < 3 || got.stats.redispatches < 3 ||
          got.stats.poisoned_tasks != 0)
        crash_recovered = false;
      crashes_total += got.stats.crashes;
      redispatches_total += got.stats.redispatches;
      dial_failures_total += got.stats.dial_failures;
      send_stalls_total += got.stats.send_stalls;
      protocol_errors_total += got.stats.protocol_errors;
      poisoned_total += got.stats.poisoned_tasks;
      recovery_total_s += got.stats.total_recovery_seconds;
      recovery_max_s = recovery_max_s > got.stats.max_recovery_seconds
                           ? recovery_max_s
                           : got.stats.max_recovery_seconds;
      recovery_events += got.stats.redispatches;
    }

    // Remote shape: two pre-started --listen servers, nothing spawned.
    {
      RemoteWorkerd a, b;
      if (!a.start() || !b.start()) {
        remote_identity = false;
        std::printf("REMOTE SERVERS FAILED TO START %s\n", inst.name.c_str());
        continue;
      }
      const SampleRun got = run_samples(
          inst.cnf, /*workers=*/0, FleetTransport::kTcp, singles, batches,
          batch_size, /*fault_plan=*/{},
          {net::to_string(a.endpoint), net::to_string(b.endpoint)});
      remote_wall_s += got.wall_s;
      if (!got.fleet_up) fleet_came_up = false;
      if (!same_samples(ref.singles, got.singles) ||
          !same_batches(ref.batches, got.batches)) {
        remote_identity = false;
        std::printf("REMOTE MISMATCH %s\n", inst.name.c_str());
      }
      if (got.fleet_up && got.stats.dials < 2) remote_identity = false;
    }
  }

  const double recovery_avg_s =
      recovery_events == 0
          ? 0.0
          : recovery_total_s / static_cast<double>(recovery_events);

  std::printf("fleet came up:                          %s\n",
              fleet_came_up ? "yes" : "NO");
  std::printf("count identity (sp+tcp, 1/2/4 workers): %s\n",
              count_identity ? "yes" : "NO");
  std::printf("stream identity (sp+tcp, 1/2/4):        %s\n",
              sample_identity ? "yes" : "NO");
  std::printf("tcp crash-run identity:                 %s (%llu crashes, "
              "%llu re-dispatches, %llu poisoned)\n",
              crash_identity && crash_recovered ? "yes" : "NO",
              static_cast<unsigned long long>(crashes_total),
              static_cast<unsigned long long>(redispatches_total),
              static_cast<unsigned long long>(poisoned_total));
  std::printf("remote (--listen) identity:             %s\n",
              remote_identity ? "yes" : "NO");
  std::printf("clean runs stall/protocol/crash free:   %s (%llu dials)\n",
              clean_hygiene ? "yes" : "NO",
              static_cast<unsigned long long>(dials_total));
  std::printf("tcp recovery latency avg / max:         %.4f s / %.4f s\n",
              recovery_avg_s, recovery_max_s);
  std::printf("wall 2-worker (inproc / sp / tcp / remote): %.3f / %.3f / "
              "%.3f / %.3f s\n",
              inproc_wall_s, socketpair_wall_s, tcp_wall_s, remote_wall_s);

  bench::BenchJson json("net");
  json.add("suite", smoke ? "smoke" : "full");
  json.add("formulas", static_cast<std::uint64_t>(suite.size()));
  json.add("singles_per_run", static_cast<std::uint64_t>(singles));
  json.add("batches_per_run", static_cast<std::uint64_t>(batches));
  json.add("inproc_wall_s", inproc_wall_s);
  json.add("socketpair_wall_s", socketpair_wall_s);
  json.add("tcp_wall_s", tcp_wall_s);
  json.add("remote_wall_s", remote_wall_s);
  json.add("dials", dials_total);
  json.add("dial_failures", dial_failures_total);
  json.add("send_stalls", send_stalls_total);
  json.add("protocol_errors", protocol_errors_total);
  json.add("crashes", crashes_total);
  json.add("redispatches", redispatches_total);
  json.add("poisoned_tasks", poisoned_total);
  json.add("recovery_avg_s", recovery_avg_s);
  json.add("recovery_max_s", recovery_max_s);
  json.add("count_identity",
           static_cast<std::uint64_t>(count_identity ? 1 : 0));
  json.add("sample_identity",
           static_cast<std::uint64_t>(sample_identity ? 1 : 0));
  json.add("crash_identity",
           static_cast<std::uint64_t>(crash_identity ? 1 : 0));
  json.add("crash_recovered",
           static_cast<std::uint64_t>(crash_recovered ? 1 : 0));
  json.add("remote_identity",
           static_cast<std::uint64_t>(remote_identity ? 1 : 0));
  json.add("clean_hygiene",
           static_cast<std::uint64_t>(clean_hygiene ? 1 : 0));
  json.add("invariant_violations",
           static_cast<std::uint64_t>(
               (fleet_came_up ? 0 : 1) + (count_identity ? 0 : 1) +
               (sample_identity ? 0 : 1) + (crash_identity ? 0 : 1) +
               (crash_recovered ? 0 : 1) + (remote_identity ? 0 : 1) +
               (clean_hygiene ? 0 : 1)));
  json.write("BENCH_net.json");

  const bool gates = fleet_came_up && count_identity && sample_identity &&
                     crash_identity && crash_recovered && remote_identity &&
                     clean_hygiene;
  return gates ? 0 : 1;
}
