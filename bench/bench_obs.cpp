// bench_obs — the observability layer's two contracts, gated:
//
//   * byte-transparency: turning tracing on changes NOTHING the service
//     returns.  A SamplerPool's sample_many / sample_batches streams and an
//     approx_count estimate are compared byte-for-byte between an untraced
//     run and a traced run (fresh engines each time, same seed) — the spans
//     live strictly outside the RNG/keyed-stream paths, and this is the
//     gate that keeps them there;
//   * disabled-path overhead: with tracing off (the default), every
//     instrumentation site costs one relaxed atomic load.  The gate
//     measures that op directly (a tight microbench of the disabled Span +
//     Counter path), multiplies by the number of events the traced run
//     actually recorded, and requires the projected overhead to stay ≤ 2%
//     of the untraced wall time.  Projection instead of wall-vs-wall
//     because on a 1-core container two wall clocks differ by scheduler
//     noise far larger than the effect being measured.
//
// The traced run's span count, drop count, and the per-op cost land in
// BENCH_obs.json.  `--smoke` shrinks the request counts so the run fits in
// the tier-1 ctest budget; every gate is identical in both modes.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "counting/approxmc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/sampler_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace unigen;

constexpr std::uint64_t kSeed = 0x0B5DAC14ull;

Cnf hashed_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

struct RunBytes {
  std::vector<SampleResult> singles;
  std::vector<BatchResult> batches;
  double count_log2 = 0.0;
  std::uint64_t count_cells = 0;
  unsigned count_hashes = 0;
  double wall_s = 0.0;
};

/// One full service pass — fresh pool, fresh counter RNG — whose result
/// bytes must not depend on whether tracing is on.
RunBytes run_service(const Cnf& cnf, std::size_t singles,
                     std::size_t batches, std::size_t batch_size) {
  RunBytes out;
  const Stopwatch watch;
  SamplerPoolOptions options;
  options.num_threads = 2;
  options.seed = kSeed;
  SamplerPool pool(cnf, options);
  out.singles = pool.sample_many(singles);
  out.batches = pool.sample_batches(batches, batch_size);
  ApproxMcOptions copts;
  copts.num_threads = 2;
  Rng rng(kSeed);
  const ApproxMcResult r = approx_count(cnf, copts, rng);
  out.count_log2 = r.log2_value();
  out.count_cells = r.cell_count;
  out.count_hashes = r.hash_count;
  out.wall_s = watch.seconds();
  return out;
}

bool same_bytes(const RunBytes& a, const RunBytes& b) {
  if (a.singles.size() != b.singles.size()) return false;
  for (std::size_t i = 0; i < a.singles.size(); ++i)
    if (a.singles[i].status != b.singles[i].status ||
        a.singles[i].witness != b.singles[i].witness)
      return false;
  if (a.batches.size() != b.batches.size()) return false;
  for (std::size_t i = 0; i < a.batches.size(); ++i)
    if (a.batches[i].status != b.batches[i].status ||
        a.batches[i].models != b.batches[i].models)
      return false;
  return a.count_log2 == b.count_log2 && a.count_cells == b.count_cells &&
         a.count_hashes == b.count_hashes;
}

/// The per-event cost when tracing is off: a Span whose init path sees
/// enabled() == false plus one disabled Counter::add — exactly what a hot
/// site pays per event.  Volatile sink so the loop cannot be elided.
double disabled_op_ns(std::uint64_t reps) {
  obs::set_enabled(false);
  obs::Counter& c = obs::metrics().counter("obs.bench.disabled_probe");
  volatile std::uint64_t sink = 0;
  const Stopwatch watch;
  for (std::uint64_t i = 0; i < reps; ++i) {
    obs::Span s("bench.noop");
    c.add();
    sink = sink + 1;
  }
  const double ns = watch.seconds() * 1e9;
  return ns / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const std::size_t singles = smoke ? 24 : 200;
  const std::size_t batches = smoke ? 6 : 40;
  const std::size_t batch_size = 4;
  const Cnf cnf = hashed_formula();

  std::printf("obs bench: %zu singles, %zu batches of %zu%s\n", singles,
              batches, batch_size, smoke ? " (smoke)" : "");

  // Untraced reference (tracing defaults off; make it explicit).
  obs::set_enabled(false);
  obs::metrics().reset();
  obs::clear_all();
  const RunBytes off = run_service(cnf, singles, batches, batch_size);

  // Traced run: identical request sequence, spans and metrics recording.
  obs::set_enabled(true);
  const RunBytes on = run_service(cnf, singles, batches, batch_size);
  const std::vector<obs::TraceEvent> events = obs::snapshot_events();
  const std::uint64_t dropped = obs::dropped_events();
  std::uint64_t metric_events = 0;
  const obs::MetricsSnapshot snap = obs::metrics().snapshot();
  for (const auto& row : snap.counters) metric_events += row.value;
  for (const auto& row : snap.histograms) metric_events += row.count;
  obs::set_enabled(false);

  const bool identical = same_bytes(off, on);
  const bool traced = !events.empty() && metric_events > 0;

  // Projected disabled-path overhead over the untraced wall time.
  const std::uint64_t reps = smoke ? 2'000'000 : 20'000'000;
  const double op_ns = disabled_op_ns(reps);
  const std::uint64_t event_total =
      static_cast<std::uint64_t>(events.size()) + dropped + metric_events;
  const double overhead_off_pct =
      off.wall_s > 0.0
          ? 100.0 * (op_ns * static_cast<double>(event_total) / 1e9) /
                off.wall_s
          : 0.0;
  const bool overhead_ok = overhead_off_pct <= 2.0;

  std::printf("tracing on/off byte-identity:   %s\n",
              identical ? "identical" : "DIVERGED");
  std::printf("traced run recorded:            %zu spans (%llu dropped), "
              "%llu metric events\n",
              events.size(), static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(metric_events));
  std::printf("disabled-path op:               %.2f ns\n", op_ns);
  std::printf("projected overhead (off):       %.4f%% of %.3f s wall  %s\n",
              overhead_off_pct, off.wall_s,
              overhead_ok ? "(<= 2% gate)" : "(OVER the 2% gate)");

  unigen::bench::BenchJson json("obs");
  json.add("suite", smoke ? "smoke" : "full");
  json.add("singles", static_cast<std::uint64_t>(singles));
  json.add("batches", static_cast<std::uint64_t>(batches));
  json.add("wall_s_untraced", off.wall_s);
  json.add("wall_s_traced", on.wall_s);
  json.add("spans_recorded", static_cast<std::uint64_t>(events.size()));
  json.add("spans_dropped", dropped);
  json.add("metric_events", metric_events);
  json.add("disabled_op_ns", op_ns);
  json.add("overhead_off_pct", overhead_off_pct);
  json.add("identical_on_off",
           static_cast<std::uint64_t>(identical ? 1 : 0));
  json.add("traced_run_recorded",
           static_cast<std::uint64_t>(traced ? 1 : 0));
  json.add("overhead_gate_ok",
           static_cast<std::uint64_t>(overhead_ok ? 1 : 0));
  json.add("invariant_violations",
           static_cast<std::uint64_t>((identical ? 0 : 1) +
                                      (traced ? 0 : 1) +
                                      (overhead_ok ? 0 : 1)));
  json.write("BENCH_obs.json");

  return (identical && traced && overhead_ok) ? 0 : 1;
}
