// bench_parallel_count — the counting service's scaling and leapfrog
// numbers on the Table-1 suite, with the correctness invariants the
// parallel counter advertises checked inline:
//
//   * byte-identical counts for a fixed seed across 1/2/4 threads (the
//     keyed-stream + canonical-fold determinism contract), and
//   * exactly one solver build per worker that served an iteration.
//
// Per thread count the run records wall-clock, total BSAT probes and the
// leapfrog hit-rate (warm starts / iterations started): the serial path
// leapfrogs every iteration after the first, the parallel path every
// iteration that finds a completed predecessor, so the aggregate rate
// should sit well above 1/2 (the acceptance bar tracked in
// BENCH_parallel_count.json).  Speedup is bounded by the machine:
// `hardware_threads` is recorded so a 1-core container's flat curve is not
// misread as a service regression.
//
// Both gates are calibrated for the default configuration below:
//   * per-BSAT timeouts default to OFF — a probe that beats its budget on
//     one thread count but not another would fail an iteration on one run
//     only, which is the documented determinism caveat, not a bug.  Turn
//     UNIGEN_BSAT_TIMEOUT_S on only for stress runs and read the
//     determinism line accordingly.
//   * at scales far above the default, a single worker can retire more
//     than IncrementalBsatOptions::max_retired_rows hash rows and the
//     engine legitimately compacts itself (solver_rebuilds = 2); the
//     one-build gate asserts the acceptance configuration, not a
//     scale-independent law.
//
// Env knobs: UNIGEN_BENCH_SCALE        instance scale     (default 0.1)
//            UNIGEN_COUNT_EPSILON      counter tolerance  (default 0.8)
//            UNIGEN_COUNT_DELTA       counter 1-confid.   (default 0.05)
//            UNIGEN_BSAT_TIMEOUT_S     per-BSAT timeout   (default 0 = off)
//            UNIGEN_PREPARE_TIMEOUT_S  per-count budget   (default 1200)

#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "counting/approxmc.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace unigen;

constexpr std::uint64_t kSeed = 0xDAC14C;

struct ThreadTotals {
  double seconds = 0.0;
  std::uint64_t bsat_calls = 0;
  std::uint64_t warm = 0;
  std::uint64_t cold = 0;
  bool one_build_per_worker = true;
  std::vector<ApproxMcResult> counts;

  double hit_rate() const {
    const std::uint64_t started = warm + cold;
    return started == 0 ? 0.0
                        : static_cast<double>(warm) /
                              static_cast<double>(started);
  }
};

bool same_count(const ApproxMcResult& a, const ApproxMcResult& b) {
  return a.valid == b.valid && a.exact == b.exact &&
         a.cell_count == b.cell_count && a.hash_count == b.hash_count;
}

}  // namespace

int main() {
  const double scale = workloads::bench_scale_from_env(0.1);
  ApproxMcOptions base;
  base.epsilon = bench::env_double("UNIGEN_COUNT_EPSILON", 0.8);
  base.delta = bench::env_double("UNIGEN_COUNT_DELTA", 0.05);
  // 0 = no per-probe timeout (see header: the determinism gate requires
  // it; env_double treats the knob as unset unless positive).
  base.budget.bsat_timeout_s = bench::env_double("UNIGEN_BSAT_TIMEOUT_S", 0.0);
  const double budget_s =
      bench::env_double("UNIGEN_PREPARE_TIMEOUT_S", 1200.0);

  const auto suite = workloads::make_table1_suite(scale);
  const unsigned hw = std::thread::hardware_concurrency();
  const int iterations = approxmc_iteration_count(base.delta);
  std::printf(
      "parallel counting service — Table-1 suite (scale=%.2f, %zu "
      "instances), eps=%.2f delta=%.2f (%d median iterations), %u hardware "
      "thread(s)\n\n",
      scale, suite.size(), base.epsilon, base.delta, iterations, hw);
  std::printf("%8s %10s %12s %10s %14s\n", "threads", "time (s)",
              "bsat calls", "hit-rate", "speedup");

  const std::size_t thread_counts[] = {1, 2, 4};
  // A/B: the classic last-completed-m hint (window = 1) against the
  // windowed-median policy (window = 5).  The hint is outcome-neutral by
  // construction, so the B runs must produce the same counts byte-for-byte
  // — what varies is only the cost profile (warm/cold starts, BSAT calls).
  const std::size_t kMedianWindow = 5;
  std::vector<ThreadTotals> runs;        // window = 1 (the default)
  std::vector<ThreadTotals> median_runs; // window = 5
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t window : {std::size_t{1}, kMedianWindow}) {
      ThreadTotals totals;
      for (const auto& instance : suite) {
        ApproxMcOptions opts = base;
        opts.num_threads = threads;
        opts.leapfrog_window = window;
        opts.budget.deadline = Deadline::in_seconds(budget_s);
        Rng rng(kSeed);  // same seed per instance across thread counts
        const Stopwatch watch;
        ApproxMcResult r = approx_count(instance.cnf, opts, rng);
        totals.seconds += watch.seconds();
        totals.bsat_calls += r.bsat_calls;
        totals.warm += r.leapfrog_warm_starts;
        totals.cold += r.leapfrog_cold_starts;
        for (std::size_t w = 0; w < r.workers.size(); ++w)
          if (r.workers[w].solver_rebuilds > 1)
            totals.one_build_per_worker = false;
        totals.counts.push_back(std::move(r));
      }
      (window == 1 ? runs : median_runs).push_back(std::move(totals));
    }
    const ThreadTotals& t = runs.back();
    std::printf("%8zu %10.2f %12llu %9.0f%% %13.2fx\n", threads, t.seconds,
                static_cast<unsigned long long>(t.bsat_calls),
                100.0 * t.hit_rate(), runs.front().seconds / t.seconds);
    std::fflush(stdout);
  }

  bool identical = true;
  for (std::size_t i = 0; i < suite.size(); ++i)
    for (std::size_t r = 1; r < runs.size(); ++r)
      if (!same_count(runs[0].counts[i], runs[r].counts[i]))
        identical = false;
  // The A/B gate: the hint policy must not move any count.
  bool policy_neutral = true;
  for (std::size_t i = 0; i < suite.size(); ++i)
    for (std::size_t r = 0; r < median_runs.size(); ++r)
      if (!same_count(runs[0].counts[i], median_runs[r].counts[i]))
        policy_neutral = false;
  const bool one_build = runs[0].one_build_per_worker &&
                         runs[1].one_build_per_worker &&
                         runs[2].one_build_per_worker;
  std::uint64_t warm = 0, cold = 0;
  for (const auto& t : runs) {
    warm += t.warm;
    cold += t.cold;
  }
  const double aggregate_hit_rate =
      warm + cold == 0
          ? 0.0
          : static_cast<double>(warm) / static_cast<double>(warm + cold);

  std::printf("\nbyte-identical counts across thread counts: %s\n",
              identical ? "yes" : "NO — determinism contract violated");
  std::printf("one solver build per serving worker:        %s\n",
              one_build ? "yes" : "NO");
  std::printf("aggregate leapfrog hit-rate:                %.0f%%\n",
              100.0 * aggregate_hit_rate);

  // The windowed-median verdict.  Publication timing is identical under
  // every policy (only *which* m a late iteration starts from changes), so
  // the median cannot recover the cold starts that matter — iterations
  // that began before any predecessor published.  The A/B documents that:
  // the default stays window = 1 unless cold-start misses actually drop.
  std::printf("\nleapfrog A/B (median window %zu vs last-m):\n",
              kMedianWindow);
  std::uint64_t median_cold = 0;
  for (std::size_t r = 0; r < median_runs.size(); ++r) {
    std::printf(
        "  threads=%zu: window1 cold=%llu hit=%.0f%%  window%zu cold=%llu "
        "hit=%.0f%%\n",
        thread_counts[r], static_cast<unsigned long long>(runs[r].cold),
        100.0 * runs[r].hit_rate(), kMedianWindow,
        static_cast<unsigned long long>(median_runs[r].cold),
        100.0 * median_runs[r].hit_rate());
    median_cold += median_runs[r].cold;
  }
  const bool median_improves_cold = median_cold < cold;
  std::printf("  counts unchanged under the median policy:  %s\n",
              policy_neutral ? "yes" : "NO — hint is not outcome-neutral");
  std::printf("  median reduces cold-start misses:          %s (default "
              "stays window=1)\n",
              median_improves_cold ? "yes" : "no");

  bench::BenchJson json("parallel_count");
  json.add("suite", "table1");
  json.add("scale", scale);
  json.add("instances", static_cast<std::uint64_t>(suite.size()));
  json.add("iterations_per_count", static_cast<std::uint64_t>(iterations));
  json.add("wall_s_threads_1", runs[0].seconds);
  json.add("wall_s_threads_2", runs[1].seconds);
  json.add("wall_s_threads_4", runs[2].seconds);
  json.add("bsat_calls_threads_1", runs[0].bsat_calls);
  json.add("bsat_calls_threads_2", runs[1].bsat_calls);
  json.add("bsat_calls_threads_4", runs[2].bsat_calls);
  json.add("leapfrog_hit_rate_threads_1", runs[0].hit_rate());
  json.add("leapfrog_hit_rate_threads_2", runs[1].hit_rate());
  json.add("leapfrog_hit_rate_threads_4", runs[2].hit_rate());
  json.add("leapfrog_hit_rate", aggregate_hit_rate);
  json.add("speedup_4_over_1", runs[0].seconds / runs[2].seconds);
  json.add("identical_across_threads",
           static_cast<std::uint64_t>(identical ? 1 : 0));
  json.add("one_build_per_worker",
           static_cast<std::uint64_t>(one_build ? 1 : 0));
  json.add("median_window", static_cast<std::uint64_t>(kMedianWindow));
  json.add("cold_starts_window1_threads_1", runs[0].cold);
  json.add("cold_starts_window1_threads_2", runs[1].cold);
  json.add("cold_starts_window1_threads_4", runs[2].cold);
  json.add("cold_starts_median_threads_1", median_runs[0].cold);
  json.add("cold_starts_median_threads_2", median_runs[1].cold);
  json.add("cold_starts_median_threads_4", median_runs[2].cold);
  json.add("leapfrog_hit_rate_median_threads_4", median_runs[2].hit_rate());
  json.add("median_policy_outcome_neutral",
           static_cast<std::uint64_t>(policy_neutral ? 1 : 0));
  json.add("median_improves_cold_starts",
           static_cast<std::uint64_t>(median_improves_cold ? 1 : 0));
  json.write("BENCH_parallel_count.json");
  return (identical && one_build && policy_neutral) ? 0 : 1;
}
