// bench_parallel_scaling — throughput of the SamplerPool service at 1, 2
// and 4 worker threads on a circuit-parity workload, with the two
// correctness invariants the service advertises checked inline:
//
//   * byte-identical sample sets for a fixed seed across thread counts
//     (the keyed-stream determinism contract), and
//   * exactly one solver build per worker thread that served requests.
//
// Writes BENCH_parallel.json.  Speedup is bounded by the machine:
// `hardware_threads` is recorded so a 1-core container's flat curve is not
// misread as a service regression — the fan-out is embarrassingly parallel
// (zero shared mutable state after prepare), so on an N-core box the curve
// tracks min(threads, N).
//
// Env knobs: UNIGEN_BENCH_SAMPLES   requests per measured run (default 64)
//            UNIGEN_PARALLEL_STATE  circuit state bits        (default 14)

#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "service/sampler_pool.hpp"
#include "workloads/circuits.hpp"

namespace {

using namespace unigen;

constexpr std::uint64_t kSeed = 0xDAC14;
// Identical warm-up for every pool so the measured run covers the same
// request streams regardless of thread count (streams are global).
constexpr std::size_t kWarmup = 4;

struct RunResult {
  bool valid = false;  ///< prepare succeeded and the run was measured
  double seconds = 0.0;
  double sps = 0.0;
  std::uint64_t ok = 0;
  bool one_build_per_worker = true;
  std::vector<SampleResult> samples;
};

RunResult run_at(const Cnf& cnf, std::size_t threads, std::size_t requests) {
  SamplerPoolOptions opts;
  opts.num_threads = threads;
  opts.seed = kSeed;
  opts.unigen.bsat_timeout_s = bench::env_double("UNIGEN_BSAT_TIMEOUT_S", 60.0);
  opts.unigen.prepare_timeout_s =
      bench::env_double("UNIGEN_PREPARE_TIMEOUT_S", 600.0);
  opts.unigen.sample_timeout_s =
      bench::env_double("UNIGEN_SAMPLE_TIMEOUT_S", 300.0);
  SamplerPool pool(cnf, opts);
  RunResult out;
  if (!pool.prepare()) {
    std::fprintf(stderr, "prepare timed out at %zu threads\n", threads);
    return out;
  }
  out.valid = true;
  pool.sample_many(kWarmup);
  const Stopwatch watch;
  out.samples = pool.sample_many(requests);
  out.seconds = watch.seconds();
  out.sps = static_cast<double>(requests) / out.seconds;
  for (const auto& r : out.samples) out.ok += r.ok() ? 1 : 0;
  for (const auto& w : pool.stats().workers)
    if (w.requests_served > 0 && w.solver_rebuilds != 1)
      out.one_build_per_worker = false;
  return out;
}

bool same_samples(const std::vector<SampleResult>& a,
                  const std::vector<SampleResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].status != b[i].status || a[i].witness != b[i].witness)
      return false;
  return true;
}

}  // namespace

int main() {
  const std::size_t requests = bench::env_u64("UNIGEN_BENCH_SAMPLES", 64);
  const std::size_t state_bits = bench::env_u64("UNIGEN_PARALLEL_STATE", 14);

  workloads::CircuitParityOptions co;
  co.state_bits = state_bits;
  co.input_bits = state_bits / 2;
  co.rounds = 2;
  co.parity_constraints = 3;
  co.seed = 7;
  const Cnf cnf =
      workloads::make_circuit_parity_bench(co, "parallel_scaling_bench");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("parallel sampling service scaling — %s (%d vars), %zu "
              "requests, %u hardware thread(s)\n\n",
              cnf.name.c_str(), cnf.num_vars(), requests, hw);
  std::printf("%8s %10s %12s %8s %12s\n", "threads", "time (s)", "samples/s",
              "succ", "speedup");

  const std::size_t counts[] = {1, 2, 4};
  std::vector<RunResult> runs;
  for (const std::size_t t : counts) {
    runs.push_back(run_at(cnf, t, requests));
    const RunResult& r = runs.back();
    if (!r.valid) {
      // No silent success: an unmeasured run must not pass the invariant
      // comparison below as a vacuous triple of empty sample sets.
      std::fprintf(stderr, "run at %zu thread(s) did not complete; "
                           "raise UNIGEN_PREPARE_TIMEOUT_S or shrink "
                           "UNIGEN_PARALLEL_STATE\n", t);
      return 1;
    }
    std::printf("%8zu %10.3f %12.1f %8.2f %11.2fx\n", t, r.seconds, r.sps,
                static_cast<double>(r.ok) / static_cast<double>(requests),
                r.sps / runs.front().sps);
  }

  const bool identical = same_samples(runs[0].samples, runs[1].samples) &&
                         same_samples(runs[0].samples, runs[2].samples);
  const bool one_build = runs[0].one_build_per_worker &&
                         runs[1].one_build_per_worker &&
                         runs[2].one_build_per_worker;
  std::printf("\nbyte-identical samples across thread counts: %s\n",
              identical ? "yes" : "NO — determinism contract violated");
  std::printf("one solver build per serving worker:         %s\n",
              one_build ? "yes" : "NO");

  bench::BenchJson json("parallel_scaling");
  json.add("workload", cnf.name.c_str());
  json.add("requests", static_cast<std::uint64_t>(requests));
  json.add("hardware_threads", static_cast<std::uint64_t>(hw));
  json.add("sps_threads_1", runs[0].sps);
  json.add("sps_threads_2", runs[1].sps);
  json.add("sps_threads_4", runs[2].sps);
  json.add("speedup_4_over_1", runs[2].sps / runs[0].sps);
  json.add("identical_across_threads",
           static_cast<std::uint64_t>(identical ? 1 : 0));
  json.add("one_build_per_worker",
           static_cast<std::uint64_t>(one_build ? 1 : 0));
  json.add("success_rate",
           static_cast<double>(runs[0].ok) / static_cast<double>(requests));
  json.write("BENCH_parallel.json");
  return (identical && one_build) ? 0 : 1;
}
