// bench_server — the session server's cache economics on the Table-1
// suite, with the registry's correctness invariants checked inline:
//
//   * byte-identical responses for a fixed seed across 1/2/4 worker
//     threads (the per-session determinism contract, surviving the
//     registry layer);
//   * warm ≡ cold: every session's concatenated responses equal a fresh
//     SamplerPool over the same formula serving the same request script
//     (stream continuation — a warm hit is indistinguishable from a pool
//     that never went cold);
//   * at most one engine build per worker per session (the warm handoff's
//     point: the old design built a transient counting pool and threw its
//     N warmed engines away, i.e. ~2N builds per hashed formula; the cap
//     asserted here is N, observable via IncrementalBsat::
//     total_constructions — workers build lazily on first task, so *when*
//     a build happens is scheduler-dependent, but the total cannot exceed
//     the worker count);
//   * deterministic LRU arithmetic under a session cap (a scripted
//     register/evict sequence with exact expected hit/miss/eviction
//     counts).
//
// The headline number is warm_speedup: average cold request latency
// (simplify + prepare + N samples) over average warm request latency
// (N samples on live engines) — the registry's reason to exist, tracked
// in BENCH_server.json.
//
// `--smoke` swaps the suite for three built-in formulas and shrinks the
// request script so the whole run (gates included) fits in the tier-1
// ctest budget; gates are identical except the timing-based speedup gate,
// which is recorded but not enforced (a 1-core CI container's clock is
// not a contract).
//
// Env knobs: UNIGEN_BENCH_SCALE        instance scale      (default 0.1)
//            UNIGEN_SERVER_SAMPLES     witnesses/request   (default 8)
//            UNIGEN_SERVER_ROUNDS      warm rounds         (default 4)
//            UNIGEN_PREPARE_TIMEOUT_S  per-cold-request    (default 1200)

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "sat/incremental_bsat.hpp"
#include "service/sampling_server.hpp"
#include "util/timer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace unigen;

constexpr std::uint64_t kSeed = 0x5E55DAC14ull;

struct Instance {
  std::string name;
  Cnf cnf;
};

/// Three cheap, structurally distinct formulas: two hashed-mode (different
/// model counts, so distinct canonical keys) and one easy-case — enough to
/// exercise cold/warm/evict without suite-scale prepare cost.
std::vector<Instance> smoke_instances() {
  std::vector<Instance> out;
  {
    Cnf cnf(10);
    cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
    cnf.add_clause({Lit(3, false), Lit(4, true)});
    cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
    cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
    out.push_back({"hashed_a", std::move(cnf)});
  }
  {
    Cnf cnf(10);
    cnf.add_clause({Lit(0, false), Lit(1, false)});
    cnf.add_clause({Lit(2, false), Lit(3, false), Lit(4, false)});
    cnf.add_clause({Lit(5, true), Lit(6, false)});
    cnf.add_clause({Lit(7, false), Lit(8, false), Lit(9, true)});
    out.push_back({"hashed_b", std::move(cnf)});
  }
  {
    Cnf cnf(3);
    cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
    out.push_back({"trivial_c", std::move(cnf)});
  }
  return out;
}

SamplerPoolOptions pool_template(std::size_t threads) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = kSeed;
  return o;
}

/// The whole request script against one server: register every instance
/// cold, then `rounds` round-robin warm passes.  Responses are collected
/// per instance in call order — the unit of every identity gate.
struct ScriptRun {
  std::vector<std::vector<SampleResult>> responses;  // per instance
  std::vector<char> prepared;                        // cold prepare ok
  std::vector<char> hashed;                          // session went hashed
  double cold_s = 0.0;
  double warm_s = 0.0;
  std::uint64_t warm_requests = 0;
  std::uint64_t builds_total = 0;
  std::uint64_t builds_warm_phase = 0;
  bool warm_flags_ok = true;  ///< cold reported !warm, warm reported warm
  SessionRegistryStats stats;
};

ScriptRun run_script(const std::vector<Instance>& instances,
                     std::size_t threads, std::size_t samples,
                     std::size_t rounds, double cold_budget_s) {
  SamplingServerOptions so;
  so.registry.pool = pool_template(threads);
  so.registry.max_sessions = 0;  // the capped pass measures eviction
  SamplingServer server(so);

  ScriptRun out;
  out.responses.resize(instances.size());
  out.prepared.assign(instances.size(), 0);
  out.hashed.assign(instances.size(), 0);
  const std::uint64_t builds_before = IncrementalBsat::total_constructions();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::uint64_t failures_before =
        server.stats().prepare_failures;
    const Stopwatch watch;
    ServerSampleResponse r = server.sample(
        instances[i].cnf, samples, Budget::within_seconds(cold_budget_s));
    out.cold_s += watch.seconds();
    if (r.warm) out.warm_flags_ok = false;
    out.prepared[i] =
        server.stats().prepare_failures == failures_before ? 1 : 0;
    out.responses[i].insert(out.responses[i].end(), r.samples.begin(),
                            r.samples.end());
    if (out.prepared[i]) {
      // A warm hit: classifies the session (hashed vs easy-case/UNSAT)
      // without disturbing anything but the hit counter.
      const ServerCountResponse c = server.count(instances[i].cnf);
      if (!c.warm) out.warm_flags_ok = false;
      out.hashed[i] = (!c.exact && !c.unsat) ? 1 : 0;
    }
  }
  const std::uint64_t builds_after_cold =
      IncrementalBsat::total_constructions();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (!out.prepared[i]) continue;
      const Stopwatch watch;
      ServerSampleResponse r = server.sample(instances[i].cnf, samples);
      out.warm_s += watch.seconds();
      ++out.warm_requests;
      if (!r.warm) out.warm_flags_ok = false;
      out.responses[i].insert(out.responses[i].end(), r.samples.begin(),
                              r.samples.end());
    }
  }
  out.builds_total = IncrementalBsat::total_constructions() - builds_before;
  out.builds_warm_phase =
      IncrementalBsat::total_constructions() - builds_after_cold;
  out.stats = server.stats();
  return out;
}

bool same_samples(const std::vector<SampleResult>& a,
                  const std::vector<SampleResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].status != b[i].status || a[i].witness != b[i].witness)
      return false;
  return true;
}

/// Fresh-pool reference: one SamplerPool per instance serving the same
/// call script (1 cold-shaped + `rounds` calls of `samples` each) — what
/// the server's responses must byte-equal.
std::vector<std::vector<SampleResult>> reference_responses(
    const std::vector<Instance>& instances, const std::vector<char>& prepared,
    std::size_t samples, std::size_t rounds) {
  std::vector<std::vector<SampleResult>> out(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (!prepared[i]) continue;
    SamplerPool pool(instances[i].cnf, pool_template(1));
    for (std::size_t call = 0; call < rounds + 1; ++call) {
      const auto r = pool.sample_many(samples);
      out[i].insert(out[i].end(), r.begin(), r.end());
    }
  }
  return out;
}

/// Scripted LRU check under max_sessions = 2 with three formulas:
///   acquire a, b      -> miss, miss              (cache {b, a})
///   acquire c         -> miss, evicts a          (cache {c, b})
///   acquire a         -> miss, evicts b          (cache {a, c})
///   acquire c         -> HIT  (c still live)     (cache {c, a})
/// Exact arithmetic, same on every machine — the determinism gate for the
/// eviction path.
bool capped_lru_ok(SessionRegistryStats* out_stats) {
  const auto trio = smoke_instances();
  SessionRegistryOptions ro;
  ro.pool = pool_template(1);
  ro.max_sessions = 2;
  SessionRegistry registry(ro);
  const std::size_t order[] = {0, 1, 2, 0, 2};
  for (const std::size_t i : order) registry.acquire(trio[i].cnf);
  const SessionRegistryStats st = registry.stats();
  if (out_stats != nullptr) *out_stats = st;
  return st.requests == 5 && st.misses == 4 && st.hits == 1 &&
         st.evictions == 2 && st.sessions == 2 && st.prepare_failures == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double scale = workloads::bench_scale_from_env(0.1);
  const std::size_t samples =
      smoke ? 4 : bench::env_u64("UNIGEN_SERVER_SAMPLES", 8);
  const std::size_t rounds =
      smoke ? 2 : bench::env_u64("UNIGEN_SERVER_ROUNDS", 4);
  const double cold_budget_s =
      bench::env_double("UNIGEN_PREPARE_TIMEOUT_S", 1200.0);

  std::vector<Instance> instances;
  if (smoke) {
    instances = smoke_instances();
  } else {
    for (auto& si : workloads::make_table1_suite(scale))
      instances.push_back({si.name, std::move(si.cnf)});
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "sampling server — %s (%zu formulas), %zu witnesses/request, 1 cold + "
      "%zu warm rounds, %u hardware thread(s)\n\n",
      smoke ? "smoke trio" : "Table-1 suite", instances.size(), samples,
      rounds, hw);

  // The measured run (threads = 2) plus the determinism sweep.
  const std::size_t thread_counts[] = {1, 2, 4};
  std::vector<ScriptRun> runs;
  for (const std::size_t threads : thread_counts) {
    runs.push_back(
        run_script(instances, threads, samples, rounds, cold_budget_s));
    const ScriptRun& r = runs.back();
    std::printf(
        "threads=%zu: cold %.2f s (%zu formulas), warm %.3f s (%llu "
        "requests), %llu engine builds (%llu in warm phase)\n",
        threads, r.cold_s, instances.size(), r.warm_s,
        static_cast<unsigned long long>(r.warm_requests),
        static_cast<unsigned long long>(r.builds_total),
        static_cast<unsigned long long>(r.builds_warm_phase));
    std::fflush(stdout);
  }
  const ScriptRun& measured = runs[1];  // threads = 2

  bool identical_across_threads = true;
  for (std::size_t i = 0; i < instances.size(); ++i)
    for (std::size_t r = 1; r < runs.size(); ++r)
      if (!same_samples(runs[0].responses[i], runs[r].responses[i]))
        identical_across_threads = false;

  const auto reference = reference_responses(instances, runs[0].prepared,
                                             samples, rounds);
  bool warm_equals_cold = true;
  for (std::size_t i = 0; i < instances.size(); ++i)
    if (runs[0].prepared[i] &&
        !same_samples(runs[0].responses[i], reference[i]))
      warm_equals_cold = false;

  bool build_cap_ok = true;
  bool warm_flags_ok = true;
  bool registry_arithmetic_ok = true;
  std::size_t prepared_count = 0;
  for (std::size_t i = 0; i < instances.size(); ++i)
    if (runs[0].prepared[i]) ++prepared_count;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const ScriptRun& run = runs[r];
    // The handoff's build cap: a hashed session may build up to one engine
    // per worker (lazily — a worker's first task may land in any phase);
    // an easy-case/UNSAT session builds exactly the one enumeration
    // engine.  The pre-handoff design paid ~2 per worker (transient
    // counting pool + sampling pool), which this cap catches.
    std::uint64_t cap = 0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (!run.prepared[i] || run.hashed[i])
        cap += thread_counts[r];  // failed prepares conservatively too
      else
        cap += 1;
    }
    if (run.builds_total > cap) build_cap_ok = false;
    if (!run.warm_flags_ok) warm_flags_ok = false;
    // Expected ledger: one miss per formula, one hit per warm request plus
    // the classification count() per prepared formula, no evictions.
    if (run.stats.misses != instances.size() ||
        run.stats.hits != run.warm_requests + prepared_count ||
        run.stats.evictions != 0 || run.stats.sessions != prepared_count)
      registry_arithmetic_ok = false;
  }

  SessionRegistryStats capped;
  const bool lru_ok = capped_lru_ok(&capped);

  const double cold_avg =
      instances.empty() ? 0.0
                        : measured.cold_s /
                              static_cast<double>(instances.size());
  const double warm_avg =
      measured.warm_requests == 0
          ? 0.0
          : measured.warm_s / static_cast<double>(measured.warm_requests);
  const double warm_speedup = warm_avg > 0.0 ? cold_avg / warm_avg : 0.0;

  std::printf("\ncold request latency (avg):          %.4f s\n", cold_avg);
  std::printf("warm request latency (avg):          %.4f s\n", warm_avg);
  std::printf("warm speedup:                        %.1fx\n", warm_speedup);
  std::printf("byte-identical across thread counts: %s\n",
              identical_across_threads ? "yes" : "NO");
  std::printf("warm responses == fresh-pool bytes:  %s\n",
              warm_equals_cold ? "yes" : "NO");
  std::printf("engine builds within handoff cap:    %s\n",
              build_cap_ok ? "yes (<= 1 per worker per session)"
                           : "NO — transient engines are back");
  std::printf("registry hit/miss arithmetic:        %s\n",
              registry_arithmetic_ok ? "exact" : "WRONG");
  std::printf("capped LRU script:                   %s\n",
              lru_ok ? "exact" : "WRONG");

  bench::BenchJson json("server");
  json.add("suite", smoke ? "smoke" : "table1");
  json.add("scale", scale);
  json.add("formulas", static_cast<std::uint64_t>(instances.size()));
  json.add("prepared", static_cast<std::uint64_t>(prepared_count));
  json.add("samples_per_request", static_cast<std::uint64_t>(samples));
  json.add("warm_rounds", static_cast<std::uint64_t>(rounds));
  json.add("cold_wall_s", measured.cold_s);
  json.add("warm_wall_s", measured.warm_s);
  json.add("cold_request_avg_s", cold_avg);
  json.add("warm_request_avg_s", warm_avg);
  json.add("warm_speedup", warm_speedup);
  json.add("hits", measured.stats.hits);
  json.add("misses", measured.stats.misses);
  json.add("hit_rate", measured.stats.hit_rate());
  json.add("resident_bytes", static_cast<std::uint64_t>(
                                 measured.stats.resident_bytes));
  json.add("engine_builds", measured.builds_total);
  json.add("engine_builds_warm_phase", measured.builds_warm_phase);
  json.add("capped_lru_evictions", capped.evictions);
  json.add("identical_across_threads",
           static_cast<std::uint64_t>(identical_across_threads ? 1 : 0));
  json.add("warm_equals_cold",
           static_cast<std::uint64_t>(warm_equals_cold ? 1 : 0));
  json.add("build_cap_ok", static_cast<std::uint64_t>(build_cap_ok ? 1 : 0));
  json.add("invariant_violations",
           static_cast<std::uint64_t>(
               (identical_across_threads ? 0 : 1) +
               (warm_equals_cold ? 0 : 1) + (build_cap_ok ? 0 : 1) +
               (warm_flags_ok ? 0 : 1) + (registry_arithmetic_ok ? 0 : 1) +
               (lru_ok ? 0 : 1)));
  json.write("BENCH_server.json");

  const bool gates = identical_across_threads && warm_equals_cold &&
                     build_cap_ok && warm_flags_ok &&
                     registry_arithmetic_ok && lru_ok &&
                     // Timing gate only where the clock means something.
                     (smoke || warm_speedup > 1.0);
  return gates ? 0 : 1;
}
