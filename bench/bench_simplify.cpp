// Count-safe simplification A/B: end-to-end ApproxMC counts and UniGen
// sampling on the workload suite with the preprocessing pipeline on vs
// off.  Three claims are measured per instance and aggregated into
// BENCH_simplify.json:
//
//   * total solver propagations (clause + XOR) drop with simplification on,
//   * end-to-end wall-time does not regress (the pipeline pays for itself),
//   * correctness is byte-identical: every exact count and every seed-fixed
//     sample matches the simplification-off path bit for bit (the suite's
//     sampling sets are independent supports, so each S-projection has a
//     unique witness extension and the streams must coincide).
//
// Budgets follow the table benches: UNIGEN_BENCH_SCALE shrinks the
// instances, UNIGEN_BENCH_SAMPLES sets the per-instance witness count.

#include <cstdio>

#include "common.hpp"
#include "counting/approxmc.hpp"
#include "simplify/simplify.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const double scale = workloads::bench_scale_from_env(0.05);
  const auto samples = env_u64("UNIGEN_BENCH_SAMPLES", 8);
  const double bsat_timeout_s = env_double("UNIGEN_BSAT_TIMEOUT_S", 15.0);
  const double count_budget_s = env_double("UNIGEN_PREPARE_TIMEOUT_S", 240.0);
  const double sample_budget_s = env_double("UNIGEN_SAMPLE_TIMEOUT_S", 45.0);

  auto suite = workloads::make_table1_suite(scale);
  std::printf("Simplification A/B on the Table-1 suite "
              "(scale=%.2f, %llu samples/instance)\n\n",
              scale, static_cast<unsigned long long>(samples));
  std::printf("%-22s | %9s %9s | %12s %12s | %7s %7s | %5s %5s\n",
              "instance", "t_off(s)", "t_on(s)", "props_off", "props_on",
              "cls-", "vars-", "count", "samps");
  std::printf("%s\n", std::string(110, '-').c_str());

  double wall_off = 0.0, wall_on = 0.0;
  std::uint64_t props_off = 0, props_on = 0;
  SimplifyStats total_simplify;  // per-instance on-leg stats, merge()d
  std::uint64_t counts_identical = 0, samples_identical = 0, instances = 0;
  std::uint64_t comparable_instances = 0;

  for (const auto& instance : suite) {
    struct Leg {
      double seconds = 0.0;
      std::uint64_t propagations = 0;
      ApproxMcResult count;
      std::vector<Model> witnesses;
      std::uint64_t ok = 0;
      SimplifyStats simplify;
      bool clean = true;  ///< no budget expiry anywhere (identity holds)
    };
    const auto run_leg = [&](bool simplify_on) {
      Leg leg;
      const Stopwatch watch;
      {
        ApproxMcOptions amc;
        amc.budget.bsat_timeout_s = bsat_timeout_s;
        amc.budget.deadline = Deadline::in_seconds(count_budget_s);
        amc.simplify.enabled = simplify_on;
        Rng rng(20140001);
        leg.count = approx_count(instance.cnf, amc, rng);
        leg.propagations += leg.count.solver_propagations;
        leg.simplify = leg.count.simplify;
        leg.clean = leg.clean && !leg.count.timed_out;
      }
      {
        UniGenOptions opts;
        opts.epsilon = 6.0;
        opts.bsat_timeout_s = bsat_timeout_s;
        opts.prepare_timeout_s = count_budget_s;
        opts.sample_timeout_s = sample_budget_s;
        opts.simplify.enabled = simplify_on;
        Rng rng(20140002);
        UniGen sampler(instance.cnf, opts, rng);
        if (sampler.prepare()) {
          for (std::uint64_t i = 0; i < samples; ++i) {
            const SampleResult r = sampler.sample();
            leg.witnesses.push_back(r.witness);
            leg.ok += r.ok() ? 1 : 0;
            leg.clean =
                leg.clean && r.status != SampleResult::Status::kTimeout;
          }
        } else {
          leg.clean = false;
        }
        leg.propagations += sampler.stats().solver_propagations;
        // Both pipelines of this leg count: approx_count's own run (above)
        // and the one UniGen::prepare performed.
        leg.simplify.merge(sampler.stats().simplify);
      }
      leg.seconds = watch.seconds();
      return leg;
    };

    const Leg off = run_leg(false);
    const Leg on = run_leg(true);
    ++instances;
    wall_off += off.seconds;
    wall_on += on.seconds;
    props_off += off.propagations;
    props_on += on.propagations;
    total_simplify.merge(on.simplify);

    // Byte-identity only holds when neither leg hit a budget (a timeout
    // retry draws extra randomness and the trajectories fork legally).
    const bool comparable = on.clean && off.clean;
    comparable_instances += comparable ? 1 : 0;
    const bool count_same =
        comparable && on.count.valid == off.count.valid &&
        on.count.cell_count == off.count.cell_count &&
        on.count.hash_count == off.count.hash_count;
    const bool samples_same = comparable && on.witnesses == off.witnesses;
    counts_identical += count_same ? 1 : 0;
    samples_identical += samples_same ? 1 : 0;

    std::printf("%-22s | %9.3f %9.3f | %12llu %12llu | %7lld %7llu | %5s %5s\n",
                instance.name.c_str(), off.seconds, on.seconds,
                static_cast<unsigned long long>(off.propagations),
                static_cast<unsigned long long>(on.propagations),
                static_cast<long long>(on.simplify.clauses_removed()),
                static_cast<unsigned long long>(on.simplify.eliminated_vars),
                !comparable ? "t/o" : (count_same ? "==" : "DIFF"),
                !comparable ? "t/o" : (samples_same ? "==" : "DIFF"));
    std::fflush(stdout);
  }

  const double prop_reduction =
      props_off == 0 ? 0.0
                     : 1.0 - static_cast<double>(props_on) /
                                 static_cast<double>(props_off);
  std::printf("\ntotals: wall %.3fs -> %.3fs  propagations %llu -> %llu "
              "(-%.1f%%)  simplify cost %.3fs\n",
              wall_off, wall_on, static_cast<unsigned long long>(props_off),
              static_cast<unsigned long long>(props_on),
              100.0 * prop_reduction, total_simplify.seconds);
  std::printf("identical results (over %llu budget-clean instances): "
              "counts %llu, sample streams %llu\n",
              static_cast<unsigned long long>(comparable_instances),
              static_cast<unsigned long long>(counts_identical),
              static_cast<unsigned long long>(samples_identical));

  BenchJson json("simplify_ab");
  json.add("scale", scale);
  json.add("instances", instances);
  json.add("samples_per_instance", samples);
  json.add("wall_off_s", wall_off);
  json.add("wall_on_s", wall_on);
  json.add("simplify_seconds", total_simplify.seconds);
  json.add("propagations_off", props_off);
  json.add("propagations_on", props_on);
  json.add("propagation_reduction", prop_reduction);
  json.add("clauses_removed",
           static_cast<std::uint64_t>(
               std::max<std::int64_t>(0, total_simplify.clauses_removed())));
  json.add("literals_removed",
           static_cast<std::uint64_t>(
               std::max<std::int64_t>(0, total_simplify.literals_removed())));
  json.add("vars_eliminated", total_simplify.eliminated_vars);
  json.add("comparable_instances", comparable_instances);
  json.add("counts_identical", counts_identical);
  json.add("sample_streams_identical", samples_identical);
  json.write("BENCH_simplify.json");
  // Non-zero exit when correctness drifted — or when every instance hit a
  // budget and nothing was actually compared.
  return comparable_instances > 0 &&
                 counts_identical == comparable_instances &&
                 samples_identical == comparable_instances
             ? 0
             : 1;
}
