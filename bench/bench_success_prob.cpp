// Reproduces the paper's headline success-probability claim: Theorem 1
// guarantees Pr[UniGen != ⊥] >= 0.62; Tables 1/2 observe ~1.0 in practice.
// This bench measures observed success probability over many samples on a
// spread of instances, alongside the theoretical floor.
//
//   UNIGEN_SUCC_SAMPLES   samples per instance (default 200)

#include <cstdio>

#include "common.hpp"
#include "workloads/circuits.hpp"
#include "workloads/sketch.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const auto n = env_u64("UNIGEN_SUCC_SAMPLES", 200);
  std::printf("UniGen observed success probability (n=%llu per instance; "
              "Theorem 1 floor = 0.62)\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-24s %8s %5s %10s %10s\n", "instance", "|X|", "|S|",
              "succ", "fail(⊥)");

  std::vector<workloads::SuiteInstance> instances;
  {
    workloads::CircuitParityOptions c;
    c.state_bits = 20;
    c.input_bits = 8;
    c.rounds = 2;
    c.parity_constraints = 5;
    c.seed = 61;
    workloads::SuiteInstance inst;
    inst.name = "circuit_parity_28";
    inst.cnf = workloads::make_circuit_parity_bench(c, inst.name);
    instances.push_back(std::move(inst));
  }
  {
    const auto affine = workloads::make_case110_like(24, 10);
    workloads::SuiteInstance inst;
    inst.name = "affine_2^14";
    inst.cnf = affine.cnf;
    instances.push_back(std::move(inst));
  }
  {
    workloads::SketchOptions s;
    s.spec_input_bits = 6;
    s.selector_bits = 18;
    s.mode_bits = 12;
    s.threshold = 3000;
    s.seed = 62;
    workloads::SuiteInstance inst;
    inst.name = "sketch_30";
    inst.cnf = workloads::make_sketch_bench(s, inst.name).cnf;
    instances.push_back(std::move(inst));
  }

  for (const auto& inst : instances) {
    Rng rng(777);
    UniGenOptions opts;
    opts.epsilon = 6.0;
    opts.bsat_timeout_s = env_double("UNIGEN_BSAT_TIMEOUT_S", 10.0);
    UniGen sampler(inst.cnf, opts, rng);
    if (!sampler.prepare()) {
      std::printf("%-24s prepare failed\n", inst.name.c_str());
      continue;
    }
    for (std::uint64_t i = 0; i < n; ++i) sampler.sample();
    const auto& st = sampler.stats();
    std::printf("%-24s %8d %5zu %10.3f %10llu\n", inst.name.c_str(),
                inst.cnf.num_vars(), inst.cnf.sampling_set_or_all().size(),
                st.success_rate(),
                static_cast<unsigned long long>(st.samples_failed));
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: succ ≈ 1.0 on every row, well above the "
              "0.62 floor.\n");
  return 0;
}
