// Reproduces paper Table 1: runtime performance comparison of UniGen and
// UniWit on the 12-instance suite (generated analogs; see DESIGN.md §3).
//
// Expected shape (paper Section 5):
//   * UniGen's observed success probability is ~1 (>= 0.62 guaranteed);
//   * UniGen's average XOR length ≈ |S|/2, UniWit's ≈ |X|/2;
//   * UniWit is 2-3 orders of magnitude slower per witness and DNFs ("-")
//     on the large sketch-family instances;
//   * UniGen's expensive prepare step is paid once, not per witness.

#include "common.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const double scale = workloads::bench_scale_from_env(0.1);
  const TableBudgets budgets;
  std::printf(
      "Table 1 reproduction (scale=%.2f, %llu UniGen / %llu UniWit samples "
      "per row,\n  bsat timeout %.0fs, per-witness timeout %.0fs; '-' = no "
      "witness within budget)\n\n",
      scale, static_cast<unsigned long long>(budgets.unigen_samples),
      static_cast<unsigned long long>(budgets.uniwit_samples),
      budgets.bsat_timeout_s, budgets.sample_timeout_s);

  print_table_header("");
  const auto suite = workloads::make_table1_suite(scale);
  std::uint64_t seed = 20140601;  // DAC'14 publication date
  for (const auto& instance : suite) {
    const TableRow row = run_instance(instance, budgets, seed);
    print_table_row(row);
    std::fflush(stdout);
    seed += 2;
  }
  return 0;
}
