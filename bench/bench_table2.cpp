// Reproduces paper Table 2 (appendix): the extended 31-instance comparison
// of UniGen and UniWit.  Same columns and expectations as bench_table1.

#include "common.hpp"

int main() {
  using namespace unigen;
  using namespace unigen::bench;
  const double scale = workloads::bench_scale_from_env(0.05);
  TableBudgets budgets;
  // The extended table has 31 rows; trim per-row sampling and budgets so
  // the default run stays time-boxed.  Env overrides still apply.
  budgets.unigen_samples = env_u64("UNIGEN_BENCH_SAMPLES", 3);
  budgets.uniwit_samples = env_u64("UNIGEN_UNIWIT_SAMPLES", 1);
  budgets.prepare_timeout_s = env_double("UNIGEN_PREPARE_TIMEOUT_S", 120.0);
  budgets.sample_timeout_s = env_double("UNIGEN_SAMPLE_TIMEOUT_S", 30.0);
  std::printf(
      "Table 2 reproduction (scale=%.2f, %llu UniGen / %llu UniWit samples "
      "per row)\n\n",
      scale, static_cast<unsigned long long>(budgets.unigen_samples),
      static_cast<unsigned long long>(budgets.uniwit_samples));

  print_table_header("");
  const auto suite = unigen::workloads::make_table2_suite(scale);
  std::uint64_t seed = 424214;
  for (const auto& instance : suite) {
    const TableRow row = run_instance(instance, budgets, seed);
    print_table_row(row);
    std::fflush(stdout);
    seed += 2;
  }
  return 0;
}
