#pragma once
// Shared infrastructure for the table/figure reproduction benches: row
// formatting, environment-variable budgets, and the per-instance
// UniGen-vs-UniWit measurement loop used by bench_table1/bench_table2.
//
// Budgets default to laptop-friendly values and can be raised toward the
// paper's setup (2500 s per BSAT call, 20 h per run, 1000+ samples):
//   UNIGEN_BENCH_SCALE        instance scale (0..1], default per-bench
//   UNIGEN_BENCH_SAMPLES      UniGen samples per instance   (default 10)
//   UNIGEN_UNIWIT_SAMPLES     UniWit samples per instance   (default 2)
//   UNIGEN_BSAT_TIMEOUT_S     per-BSAT timeout              (default 5)
//   UNIGEN_PREPARE_TIMEOUT_S  UniGen prepare budget         (default 120)
//   UNIGEN_SAMPLE_TIMEOUT_S   per-witness budget            (default 20)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/unigen.hpp"
#include "core/uniwit.hpp"
#include "util/timer.hpp"
#include "workloads/suite.hpp"

// Baked in at configure time (CMake runs `git describe`); "unknown" when
// building outside a checkout.
#ifndef UNIGEN_GIT_DESCRIBE
#define UNIGEN_GIT_DESCRIBE "unknown"
#endif

namespace unigen::bench {

/// Bumped whenever the shared BENCH_*.json preamble changes shape.
/// v2: bench/schema_version/hardware_threads/git_describe header fields.
inline constexpr std::uint64_t kBenchSchemaVersion = 2;

/// Minimal flat-JSON emitter for machine-readable bench results
/// (BENCH_*.json), so the perf trajectory can be tracked across PRs:
/// wall-clock, BSAT-call and solver-rebuild counters per bench.
class BenchJson {
 public:
  BenchJson() = default;
  /// The versioned preamble every BENCH_*.json shares, so a committed
  /// file says what produced it: bench name, schema_version,
  /// hardware_threads, and the configure-time git describe.
  explicit BenchJson(const char* bench) {
    add("bench", bench);
    add("schema_version", kBenchSchemaVersion);
    add("hardware_threads",
        static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    add("git_describe", UNIGEN_GIT_DESCRIBE);
  }

  void add(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    field(key, buf, /*quote=*/false);
  }
  void add(const char* key, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    field(key, buf, /*quote=*/false);
  }
  void add(const char* key, const char* v) { field(key, v, /*quote=*/true); }

  std::string str() const { return "{" + body_ + "}\n"; }

  /// Writes `{...}` to `path`; returns false (and warns) on I/O failure.
  bool write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path);
      return false;
    }
    const std::string s = str();
    std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return true;
  }

 private:
  void field(const char* key, const char* value, bool quote) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"";
    body_ += key;
    body_ += "\":";
    if (quote) body_ += "\"";
    body_ += value;
    if (quote) body_ += "\"";
  }
  std::string body_;
};

inline double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const double v = std::atof(raw);
  return v > 0 ? v : fallback;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const long long v = std::atoll(raw);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

struct TableBudgets {
  std::uint64_t unigen_samples = env_u64("UNIGEN_BENCH_SAMPLES", 5);
  std::uint64_t uniwit_samples = env_u64("UNIGEN_UNIWIT_SAMPLES", 2);
  double bsat_timeout_s = env_double("UNIGEN_BSAT_TIMEOUT_S", 15.0);
  double prepare_timeout_s = env_double("UNIGEN_PREPARE_TIMEOUT_S", 240.0);
  double sample_timeout_s = env_double("UNIGEN_SAMPLE_TIMEOUT_S", 45.0);
};

struct TableRow {
  std::string name;
  int num_vars = 0;
  std::size_t support_size = 0;
  // UniGen
  bool unigen_ran = false;
  double unigen_succ = 0.0;
  double unigen_avg_time_s = 0.0;
  double unigen_prepare_s = 0.0;
  double unigen_xor_len = 0.0;
  // UniWit
  bool uniwit_ran = false;
  double uniwit_succ = 0.0;
  double uniwit_avg_time_s = 0.0;
  double uniwit_xor_len = 0.0;
};

/// Runs both samplers on one instance under the given budgets.
inline TableRow run_instance(const workloads::SuiteInstance& instance,
                             const TableBudgets& budgets,
                             std::uint64_t seed) {
  TableRow row;
  row.name = instance.name;
  row.num_vars = instance.cnf.num_vars();
  row.support_size = instance.cnf.sampling_set_or_all().size();

  {
    Rng rng(seed);
    UniGenOptions opts;
    opts.epsilon = 6.0;  // the paper's experimental setting
    opts.bsat_timeout_s = budgets.bsat_timeout_s;
    opts.prepare_timeout_s = budgets.prepare_timeout_s;
    opts.sample_timeout_s = budgets.sample_timeout_s;
    UniGen sampler(instance.cnf, opts, rng);
    if (sampler.prepare()) {
      for (std::uint64_t i = 0; i < budgets.unigen_samples; ++i)
        sampler.sample();
      const auto& st = sampler.stats();
      row.unigen_ran = st.samples_ok > 0;
      row.unigen_succ = st.success_rate();
      row.unigen_avg_time_s =
          st.samples_ok > 0 ? st.sample_seconds /
                                  static_cast<double>(st.samples_requested)
                            : 0.0;
      row.unigen_prepare_s = st.prepare_seconds;
      row.unigen_xor_len = st.average_xor_length();
    }
  }
  {
    Rng rng(seed + 1);
    UniWitOptions opts;
    opts.epsilon = 6.0;
    opts.bsat_timeout_s = budgets.bsat_timeout_s;
    opts.sample_timeout_s = budgets.sample_timeout_s;
    UniWit sampler(instance.cnf, opts, rng);
    for (std::uint64_t i = 0; i < budgets.uniwit_samples; ++i)
      sampler.sample();
    const auto& st = sampler.stats();
    row.uniwit_ran = st.samples_ok > 0;
    row.uniwit_succ = st.success_rate();
    row.uniwit_avg_time_s =
        st.samples_ok > 0
            ? st.sample_seconds / static_cast<double>(st.samples_requested)
            : 0.0;
    row.uniwit_xor_len = st.average_xor_length();
  }
  return row;
}

inline void print_table_header(const char* title) {
  std::printf("%s\n", title);
  std::printf(
      "%-22s %8s %5s | %8s %10s %8s %9s | %10s %8s %8s | %8s\n", "Benchmark",
      "|X|", "|S|", "succ", "avg t (s)", "xor len", "prep (s)", "avg t (s)",
      "xor len", "succ", "speedup");
  std::printf(
      "%-22s %8s %5s | %8s %10s %8s %9s | %10s %8s %8s | %8s\n", "", "", "",
      "UniGen", "UniGen", "UniGen", "UniGen", "UniWit", "UniWit", "UniWit",
      "");
  std::printf("%s\n", std::string(126, '-').c_str());
}

inline void print_table_row(const TableRow& row) {
  char unigen_time[32], uniwit_time[32], uniwit_succ[16], speedup[16];
  if (row.unigen_ran)
    std::snprintf(unigen_time, sizeof unigen_time, "%10.3f",
                  row.unigen_avg_time_s);
  else
    std::snprintf(unigen_time, sizeof unigen_time, "%10s", "-");
  if (row.uniwit_ran) {
    std::snprintf(uniwit_time, sizeof uniwit_time, "%10.3f",
                  row.uniwit_avg_time_s);
    std::snprintf(uniwit_succ, sizeof uniwit_succ, "%8.2f", row.uniwit_succ);
  } else {
    std::snprintf(uniwit_time, sizeof uniwit_time, "%10s", "-");
    std::snprintf(uniwit_succ, sizeof uniwit_succ, "%8s", "-");
  }
  if (row.unigen_ran && row.uniwit_ran && row.unigen_avg_time_s > 0)
    std::snprintf(speedup, sizeof speedup, "%7.1fx",
                  row.uniwit_avg_time_s / row.unigen_avg_time_s);
  else if (row.unigen_ran && !row.uniwit_ran)
    std::snprintf(speedup, sizeof speedup, "%8s", ">>1");
  else
    std::snprintf(speedup, sizeof speedup, "%8s", "-");

  std::printf("%-22s %8d %5zu | %8.2f %s %8.1f %9.2f | %s %8.1f %s | %s\n",
              row.name.c_str(), row.num_vars, row.support_size,
              row.unigen_succ, unigen_time, row.unigen_xor_len,
              row.unigen_prepare_s, uniwit_time, row.uniwit_xor_len,
              uniwit_succ, speedup);
}

}  // namespace unigen::bench
