// Constrained-random verification testbench — the paper's motivating
// scenario (Section 1).
//
// A small ALU design is verified by simulation.  The verification engineer
// writes *environment constraints* over the stimulus (operands and opcode);
// a constraint solver then generates stimuli.  This example contrasts two
// generators on functional-coverage grounds:
//
//   * a naive generator that asks a SAT solver for "any solution"
//     repeatedly with a randomized polarity heuristic (cheap, but the
//     distribution is whatever the solver's heuristics produce), and
//   * UniGen, which guarantees almost-uniform coverage of the constrained
//     stimulus space.
//
// Coverage is measured over cross bins (opcode x operand-magnitude
// corners).  Expected outcome: UniGen covers the bins evenly; the naive
// sampler piles up on a few bins and leaves corners unexercised — exactly
// the "diverse corners of the design's behavior space" problem from the
// paper's introduction.

#include <cstdio>
#include <map>
#include <vector>

#include "cnf/circuit.hpp"
#include "cnf/tseitin.hpp"
#include "core/unigen.hpp"
#include "sat/solver.hpp"

namespace {

using namespace unigen;
using Sig = Circuit::Sig;

constexpr std::size_t kWidth = 8;

/// Design under test: an 8-bit ALU slice (software reference model).
std::uint64_t alu_reference(std::uint64_t a, std::uint64_t b, unsigned op) {
  switch (op & 3u) {
    case 0: return (a + b) & 0xffu;
    case 1: return a & b;
    case 2: return a | b;
    default: return a ^ b;
  }
}

struct Stimulus {
  std::uint64_t a = 0, b = 0;
  unsigned op = 0;
};

/// Decodes a witness (full model) into a stimulus via the input variables.
Stimulus decode(const Model& m, const std::vector<Var>& inputs) {
  Stimulus s;
  for (std::size_t i = 0; i < kWidth; ++i) {
    if (m[static_cast<std::size_t>(inputs[i])] == lbool::True)
      s.a |= 1ull << i;
    if (m[static_cast<std::size_t>(inputs[kWidth + i])] == lbool::True)
      s.b |= 1ull << i;
  }
  for (int i = 0; i < 2; ++i)
    if (m[static_cast<std::size_t>(inputs[2 * kWidth + i])] == lbool::True)
      s.op |= 1u << i;
  return s;
}

/// Coverage bin: opcode x (a magnitude corner) x (b magnitude corner).
int bin_of(const Stimulus& s) {
  auto corner = [](std::uint64_t v) { return v < 32 ? 0 : (v >= 224 ? 2 : 1); };
  return static_cast<int>(s.op) * 9 + corner(s.a) * 3 + corner(s.b);
}

}  // namespace

int main() {
  // Environment constraints, written at circuit level:
  //   - if op is ADD, the sum must not overflow (a + b < 256),
  //   - operands are never both zero,
  //   - AND-mode requires a's low nibble nonzero.
  Circuit env;
  const auto a = env.input_word(kWidth, "a");
  const auto b = env.input_word(kWidth, "b");
  const auto op = env.input_word(2, "op");

  const Sig is_add = env.land(Circuit::lnot(op[0]), Circuit::lnot(op[1]));
  const auto sum = env.add_word(a, b, /*keep_carry=*/true);
  env.add_output(env.implies(is_add, Circuit::lnot(sum[kWidth])));

  std::vector<Sig> any_bit;
  for (const Sig s : a) any_bit.push_back(s);
  for (const Sig s : b) any_bit.push_back(s);
  env.add_output(env.or_n(any_bit));

  const Sig is_and = env.land(op[0], Circuit::lnot(op[1]));
  env.add_output(env.implies(
      is_and, env.or_n({a[0], a[1], a[2], a[3]})));

  const auto enc = tseitin_encode(env);
  std::printf("environment constraints: %s\n", enc.cnf.summary().c_str());

  constexpr int kStimuli = 400;

  // --- naive generator: repeated solver calls with random polarities ---
  std::map<int, int> naive_bins;
  {
    Rng rng(1);
    int produced = 0;
    while (produced < kStimuli) {
      Solver solver;
      solver.set_rng(&rng);
      solver.options().random_initial_phase = true;
      solver.load(enc.cnf);
      if (solver.solve() != lbool::True) break;
      ++naive_bins[bin_of(decode(solver.model(), enc.input_vars))];
      ++produced;
    }
  }

  // --- UniGen ---
  std::map<int, int> unigen_bins;
  {
    Rng rng(2);
    UniGenOptions opts;
    opts.epsilon = 6.0;
    UniGen sampler(enc.cnf, opts, rng);
    if (!sampler.prepare()) {
      std::printf("UniGen prepare failed\n");
      return 1;
    }
    int produced = 0;
    while (produced < kStimuli) {
      const auto r = sampler.sample();
      if (!r.ok()) continue;
      const Stimulus s = decode(r.witness, enc.input_vars);
      // Run the stimulus through the DUT reference model (the "simulation"
      // step of CRV) — a real testbench would compare RTL vs reference.
      (void)alu_reference(s.a, s.b, s.op);
      ++unigen_bins[bin_of(s)];
      ++produced;
    }
  }

  // --- coverage report ---
  int naive_hit = 0, unigen_hit = 0;
  int naive_max = 0, unigen_max = 0;
  for (int bin = 0; bin < 36; ++bin) {
    naive_hit += naive_bins.count(bin) > 0;
    unigen_hit += unigen_bins.count(bin) > 0;
    naive_max = std::max(naive_max, naive_bins[bin]);
    unigen_max = std::max(unigen_max, unigen_bins[bin]);
  }
  std::printf("\ncoverage over 36 cross bins (op x |a| corner x |b| corner), "
              "%d stimuli each:\n", kStimuli);
  std::printf("%-18s %14s %22s\n", "generator", "bins hit", "max bin occupancy");
  std::printf("%-18s %10d/36 %22d\n", "naive solver", naive_hit, naive_max);
  std::printf("%-18s %10d/36 %22d\n", "UniGen", unigen_hit, unigen_max);
  std::printf("\nExpected: UniGen hits (nearly) all satisfiable bins with "
              "even occupancy;\nthe naive generator clusters on "
              "solver-preferred corners.\n");
  return 0;
}
