// dimacs_sampler — the command-line tool UX of the original UniGen release:
// read a DIMACS CNF (with optional `c ind` sampling-set lines and `x` XOR
// clauses), draw K almost-uniform witnesses, print them as v-lines.
//
//   usage: dimacs_sampler <file.cnf> [num_samples=10] [epsilon=6] [seed]
//
// With no file argument, a small demo formula is sampled instead so the
// example is runnable out of the box.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cnf/dimacs.hpp"
#include "core/unigen.hpp"

int main(int argc, char** argv) {
  using namespace unigen;

  Cnf cnf;
  if (argc > 1) {
    try {
      cnf = parse_dimacs_file(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("no input file; sampling a built-in demo formula\n");
    cnf = parse_dimacs_string(
        "c ind 1 2 3 4 5 6 0\n"
        "p cnf 6 3\n"
        "1 2 3 0\n"
        "-3 4 0\n"
        "x5 6 0\n");
  }
  const int num_samples = argc > 2 ? std::atoi(argv[2]) : 10;
  const double epsilon = argc > 3 ? std::atof(argv[3]) : 6.0;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 0xDAC14;

  std::printf("c %s\n", cnf.summary().c_str());
  if (!cnf.sampling_set().has_value())
    std::printf("c note: no `c ind` lines; hashing over the full support "
                "(correct, but slower on large formulas)\n");

  Rng rng(seed);
  UniGenOptions options;
  options.epsilon = epsilon;
  UniGen sampler(std::move(cnf), options, rng);
  if (!sampler.prepare()) {
    std::fprintf(stderr, "error: prepare exceeded its budget\n");
    return 1;
  }

  int produced = 0, failures = 0;
  while (produced < num_samples) {
    const SampleResult r = sampler.sample();
    if (r.status == SampleResult::Status::kUnsat) {
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    if (r.status == SampleResult::Status::kTimeout) {
      std::fprintf(stderr, "error: sampling timed out\n");
      return 1;
    }
    if (!r.ok()) {
      if (++failures > 10 * num_samples + 100) {
        std::fprintf(stderr, "error: persistent sampling failure\n");
        return 1;
      }
      continue;
    }
    std::printf("v");
    for (std::size_t v = 0; v < r.witness.size(); ++v)
      std::printf(" %s%zu", r.witness[v] == lbool::True ? "" : "-", v + 1);
    std::printf(" 0\n");
    ++produced;
  }
  std::printf("c success rate %.3f, avg xor length %.1f, q=%d\n",
              sampler.stats().success_rate(),
              sampler.stats().average_xor_length(), sampler.stats().q);
  return 0;
}
