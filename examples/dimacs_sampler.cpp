// dimacs_sampler — the command-line tool UX of the original UniGen release:
// read a DIMACS CNF (with optional `c ind` sampling-set lines and `x` XOR
// clauses), draw K almost-uniform witnesses, print them as v-lines.
//
//   usage: dimacs_sampler [--trace-out t.jsonl] [--stats-json s.json]
//                         <file.cnf> [num_samples=10] [epsilon=6] [seed]
//
// With no file argument, a small demo formula is sampled instead so the
// example is runnable out of the box.
// --trace-out / --stats-json switch the observability layer on and export
// the sample.request span trees and the sampler's UniGenStats as JSON.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cnf/dimacs.hpp"
#include "core/unigen.hpp"
#include "obs/stats_json.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace unigen;

  std::string trace_out, stats_json;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace-out") == 0)
      trace_out = next("--trace-out");
    else if (std::strcmp(argv[i], "--stats-json") == 0)
      stats_json = next("--stats-json");
    else
      pos.push_back(argv[i]);
  }
  if (!trace_out.empty() || !stats_json.empty()) obs::set_enabled(true);

  Cnf cnf;
  if (!pos.empty()) {
    try {
      cnf = parse_dimacs_file(pos[0]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("no input file; sampling a built-in demo formula\n");
    cnf = parse_dimacs_string(
        "c ind 1 2 3 4 5 6 0\n"
        "p cnf 6 3\n"
        "1 2 3 0\n"
        "-3 4 0\n"
        "x5 6 0\n");
  }
  const int num_samples = pos.size() > 1 ? std::atoi(pos[1]) : 10;
  const double epsilon = pos.size() > 2 ? std::atof(pos[2]) : 6.0;
  const std::uint64_t seed =
      pos.size() > 3 ? static_cast<std::uint64_t>(std::atoll(pos[3]))
                     : 0xDAC14;

  std::printf("c %s\n", cnf.summary().c_str());
  if (!cnf.sampling_set().has_value())
    std::printf("c note: no `c ind` lines; hashing over the full support "
                "(correct, but slower on large formulas)\n");

  Rng rng(seed);
  UniGenOptions options;
  options.epsilon = epsilon;
  UniGen sampler(std::move(cnf), options, rng);
  if (!sampler.prepare()) {
    std::fprintf(stderr, "error: prepare exceeded its budget\n");
    return 1;
  }

  int produced = 0, failures = 0;
  while (produced < num_samples) {
    const SampleResult r = sampler.sample();
    if (r.status == SampleResult::Status::kUnsat) {
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    if (r.status == SampleResult::Status::kTimeout) {
      std::fprintf(stderr, "error: sampling %s\n", obs::to_string(r.status));
      return 1;
    }
    if (!r.ok()) {
      if (++failures > 10 * num_samples + 100) {
        std::fprintf(stderr, "error: persistent sampling failure\n");
        return 1;
      }
      continue;
    }
    std::printf("v");
    for (std::size_t v = 0; v < r.witness.size(); ++v)
      std::printf(" %s%zu", r.witness[v] == lbool::True ? "" : "-", v + 1);
    std::printf(" 0\n");
    ++produced;
  }
  std::printf("c success rate %.3f, avg xor length %.1f, q=%d\n",
              sampler.stats().success_rate(),
              sampler.stats().average_xor_length(), sampler.stats().q);
  if (!trace_out.empty() && obs::write_trace_jsonl(trace_out))
    std::printf("c wrote %s\n", trace_out.c_str());
  if (!stats_json.empty()) {
    std::FILE* f = std::fopen(stats_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", stats_json.c_str());
      return 1;
    }
    const std::string text = obs::to_json(sampler.stats()).dump() + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("c wrote %s\n", stats_json.c_str());
  }
  return 0;
}
