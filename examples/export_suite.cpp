// Exports the generated benchmark suite as DIMACS files (with `c ind`
// sampling-set lines and native `x` XOR clauses), so the instances can be
// fed to external tools — or back into `dimacs_sampler`.
//
//   usage: export_suite [output_dir=./suite_cnf] [scale=0.1]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "cnf/dimacs.hpp"
#include "workloads/circuits.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace unigen;
  const std::string dir = argc > 1 ? argv[1] : "./suite_cnf";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::size_t exported = 0;
  for (const auto& instance : workloads::make_table2_suite(scale)) {
    const std::string path = dir + "/" + instance.name + ".cnf";
    write_dimacs_file(instance.cnf, path);
    std::printf("%-26s -> %s  (%s)\n", instance.name.c_str(), path.c_str(),
                instance.cnf.summary().c_str());
    ++exported;
  }
  // The Figure-1 instance as well.
  const auto fig1 = workloads::make_case110_like(24, 15);
  const std::string path = dir + "/case110_like.cnf";
  write_dimacs_file(fig1.cnf, path);
  std::printf("%-26s -> %s  (|R_F| = %s)\n", "case110_like", path.c_str(),
              fig1.witness_count.to_string().c_str());

  std::printf("\nexported %zu instances; sample one with:\n"
              "  ./dimacs_sampler %s 5\n", exported + 1, path.c_str());
  return 0;
}
