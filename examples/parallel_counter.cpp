// parallel_counter — the counting-service CLI: approximate a DIMACS
// instance's (projected) model count on N threads.
//
//   $ ./parallel_counter formula.cnf [threads] [epsilon] [delta]
//   $ ./parallel_counter                       # built-in demo workload
//
// The count is a deterministic function of (formula, epsilon, delta, seed)
// alone: running with 1, 4 or 32 threads returns the same estimate, only
// faster — thread count is a deployment knob, not a semantics knob.  The
// report shows where the parallel counter's time went: per-worker engine
// builds (one each), BSAT probes, and how many hash-count searches
// leapfrogged off a completed iteration instead of galloping cold.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "cnf/dimacs.hpp"
#include "counting/approxmc.hpp"
#include "util/timer.hpp"
#include "workloads/circuits.hpp"

int main(int argc, char** argv) {
  using namespace unigen;

  Cnf cnf;
  if (argc > 1) {
    try {
      cnf = parse_dimacs_file(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot read %s: %s\n", argv[1], e.what());
      return 1;
    }
  } else {
    workloads::CircuitParityOptions co;
    co.state_bits = 24;
    co.input_bits = 12;
    co.rounds = 2;
    co.parity_constraints = 3;
    co.seed = 7;
    cnf = workloads::make_circuit_parity_bench(co, "demo");
    std::printf("no input file; counting the built-in demo circuit\n");
  }

  ApproxMcOptions opts;
  opts.num_threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
  if (argc > 3) opts.epsilon = std::atof(argv[3]);
  if (argc > 4) opts.delta = std::atof(argv[4]);

  const std::size_t display_threads =
      opts.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : opts.num_threads;
  std::printf("counting %s on %zu thread(s), eps=%.2f delta=%.2f\n",
              cnf.summary().c_str(), display_threads, opts.epsilon,
              opts.delta);

  Rng rng(0xDAC14);
  const Stopwatch watch;
  const ApproxMcResult r = approx_count(cnf, opts, rng);
  const double seconds = watch.seconds();

  if (!r.valid) {
    std::printf("no estimate (%s)\n", r.timed_out ? "timed out" : "failed");
    return 1;
  }
  if (r.exact)
    std::printf("exact count: %llu  (small solution space)\n",
                static_cast<unsigned long long>(r.cell_count));
  else
    std::printf("estimate: %llu * 2^%u  (log2 = %.2f)\n",
                static_cast<unsigned long long>(r.cell_count), r.hash_count,
                r.log2_value());
  std::printf(
      "  %.2fs wall, %llu BSAT probes, %d/%d iterations succeeded\n",
      seconds, static_cast<unsigned long long>(r.bsat_calls),
      r.iterations_succeeded, r.iterations_requested);
  std::printf(
      "  fan-out: %zu worker(s), leapfrog warm/cold = %llu/%llu\n",
      r.threads_used,
      static_cast<unsigned long long>(r.leapfrog_warm_starts),
      static_cast<unsigned long long>(r.leapfrog_cold_starts));
  for (std::size_t w = 0; w < r.workers.size(); ++w)
    std::printf("  worker %zu: %llu solver build(s), %llu reused solves\n",
                w,
                static_cast<unsigned long long>(r.workers[w].solver_rebuilds),
                static_cast<unsigned long long>(r.workers[w].reused_solves));
  return 0;
}
