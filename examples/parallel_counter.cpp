// parallel_counter — the counting-service CLI: approximate a DIMACS
// instance's (projected) model count on N threads.
//
//   $ ./parallel_counter [--trace-out t.jsonl] [--stats-json s.json]
//                        [--fleet N] [--fleet-tcp]
//                        [--fleet-endpoints host:port[,host:port...]]
//                        formula.cnf [threads] [epsilon] [delta]
//   $ ./parallel_counter                       # built-in demo workload
//
// --trace-out / --stats-json switch the observability layer on and export
// the count's span tree (count.request → count.iteration → hash.probe →
// bsat.call) and the metric registry.  --fleet N runs the iterations on N
// crash-isolated unigen_workerd processes, --fleet-tcp over TCP loopback,
// --fleet-endpoints against pre-started `unigen_workerd --listen` servers;
// the estimate is identical in every configuration.
//
// The count is a deterministic function of (formula, epsilon, delta, seed)
// alone: running with 1, 4 or 32 threads returns the same estimate, only
// faster — thread count is a deployment knob, not a semantics knob.  The
// report shows where the parallel counter's time went: per-worker engine
// builds (one each), BSAT probes, and how many hash-count searches
// leapfrogged off a completed iteration instead of galloping cold.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cnf/dimacs.hpp"
#include "counting/approxmc.hpp"
#include "obs/trace.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "workloads/circuits.hpp"

int main(int argc, char** argv) {
  using namespace unigen;

  std::string trace_out, stats_json;
  std::size_t fleet_workers = 0;
  bool fleet_tcp = false;
  std::vector<std::string> fleet_endpoints;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace-out") == 0)
      trace_out = next("--trace-out");
    else if (std::strcmp(argv[i], "--stats-json") == 0)
      stats_json = next("--stats-json");
    else if (std::strcmp(argv[i], "--fleet") == 0)
      fleet_workers = static_cast<std::size_t>(std::atoll(next("--fleet")));
    else if (std::strcmp(argv[i], "--fleet-tcp") == 0)
      fleet_tcp = true;
    else if (std::strcmp(argv[i], "--fleet-endpoints") == 0) {
      const std::string list = next("--fleet-endpoints");
      for (std::size_t b = 0; b < list.size();) {
        std::size_t e = list.find(',', b);
        if (e == std::string::npos) e = list.size();
        if (e > b) fleet_endpoints.push_back(list.substr(b, e - b));
        b = e + 1;
      }
    } else
      pos.push_back(argv[i]);
  }
  if (!trace_out.empty() || !stats_json.empty()) obs::set_enabled(true);

  Cnf cnf;
  if (!pos.empty()) {
    try {
      cnf = parse_dimacs_file(pos[0]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot read %s: %s\n", pos[0], e.what());
      return 1;
    }
  } else {
    workloads::CircuitParityOptions co;
    co.state_bits = 24;
    co.input_bits = 12;
    co.rounds = 2;
    co.parity_constraints = 3;
    co.seed = 7;
    cnf = workloads::make_circuit_parity_bench(co, "demo");
    std::printf("no input file; counting the built-in demo circuit\n");
  }

  ApproxMcOptions opts;
  opts.num_threads = pos.size() > 1 ? std::strtoul(pos[1], nullptr, 10) : 0;
  if (pos.size() > 2) opts.epsilon = std::atof(pos[2]);
  if (pos.size() > 3) opts.delta = std::atof(pos[3]);
  if (fleet_workers > 0 || !fleet_endpoints.empty()) {
    opts.fleet.backend = ExecBackend::kProcessFleet;
    opts.fleet.num_workers = fleet_workers;
    if (fleet_tcp || !fleet_endpoints.empty())
      opts.fleet.transport = FleetTransport::kTcp;
    opts.fleet.endpoints = fleet_endpoints;
  }

  const std::size_t display_threads =
      opts.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : opts.num_threads;
  std::printf("counting %s on %zu thread(s), eps=%.2f delta=%.2f\n",
              cnf.summary().c_str(), display_threads, opts.epsilon,
              opts.delta);

  Rng rng(0xDAC14);
  const Stopwatch watch;
  const ApproxMcResult r = approx_count(cnf, opts, rng);
  const double seconds = watch.seconds();

  if (!r.valid) {
    std::printf("no estimate (%s)\n", r.timed_out ? "timed out" : "failed");
    return 1;
  }
  if (r.exact)
    std::printf("exact count: %llu  (small solution space)\n",
                static_cast<unsigned long long>(r.cell_count));
  else
    std::printf("estimate: %llu * 2^%u  (log2 = %.2f)\n",
                static_cast<unsigned long long>(r.cell_count), r.hash_count,
                r.log2_value());
  std::printf(
      "  %.2fs wall, %llu BSAT probes, %d/%d iterations succeeded\n",
      seconds, static_cast<unsigned long long>(r.bsat_calls),
      r.iterations_succeeded, r.iterations_requested);
  std::printf(
      "  fan-out: %zu worker(s), leapfrog warm/cold = %llu/%llu\n",
      r.threads_used,
      static_cast<unsigned long long>(r.leapfrog_warm_starts),
      static_cast<unsigned long long>(r.leapfrog_cold_starts));
  for (std::size_t w = 0; w < r.workers.size(); ++w)
    std::printf("  worker %zu: %llu solver build(s), %llu reused solves\n",
                w,
                static_cast<unsigned long long>(r.workers[w].solver_rebuilds),
                static_cast<unsigned long long>(r.workers[w].reused_solves));
  if (!trace_out.empty() && obs::write_trace_jsonl(trace_out))
    std::printf("wrote %s\n", trace_out.c_str());
  if (!stats_json.empty() && obs::write_metrics_json(stats_json))
    std::printf("wrote %s\n", stats_json.c_str());
  return 0;
}
