// parallel_sampler — the dimacs_sampler CLI served by the SamplerPool:
// read a DIMACS CNF, prepare once, then draw K almost-uniform witnesses
// across N worker threads.  For a fixed seed the printed v-lines are
// identical for every N — the service's determinism contract — so the
// thread count is purely a throughput knob.
//
//   usage: parallel_sampler [--trace-out t.jsonl] [--stats-json s.json]
//                           [--fleet N] [--fleet-tcp]
//                           [--fleet-endpoints host:port[,host:port...]]
//                           <file.cnf> [num_samples=10] [threads=0(auto)]
//                           [epsilon=6] [seed]
//
// With no file argument, a built-in demo formula is sampled instead.
// --trace-out / --stats-json switch the observability layer on and export
// the pool.request span tree and the pool's stats struct as JSON.
// --fleet N serves the hashed path from N crash-isolated unigen_workerd
// processes; --fleet-tcp moves their frames onto TCP loopback, and
// --fleet-endpoints dials pre-started `unigen_workerd --listen` servers
// (any host) instead of spawning — the printed v-lines are identical in
// every configuration.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cnf/dimacs.hpp"
#include "obs/stats_json.hpp"
#include "obs/trace.hpp"
#include "service/sampler_pool.hpp"

int main(int argc, char** argv) {
  using namespace unigen;

  std::string trace_out, stats_json;
  std::size_t fleet_workers = 0;
  bool fleet_tcp = false;
  std::vector<std::string> fleet_endpoints;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace-out") == 0)
      trace_out = next("--trace-out");
    else if (std::strcmp(argv[i], "--stats-json") == 0)
      stats_json = next("--stats-json");
    else if (std::strcmp(argv[i], "--fleet") == 0)
      fleet_workers = static_cast<std::size_t>(std::atoll(next("--fleet")));
    else if (std::strcmp(argv[i], "--fleet-tcp") == 0)
      fleet_tcp = true;
    else if (std::strcmp(argv[i], "--fleet-endpoints") == 0) {
      const std::string list = next("--fleet-endpoints");
      for (std::size_t b = 0; b < list.size();) {
        std::size_t e = list.find(',', b);
        if (e == std::string::npos) e = list.size();
        if (e > b) fleet_endpoints.push_back(list.substr(b, e - b));
        b = e + 1;
      }
    } else
      pos.push_back(argv[i]);
  }
  if (!trace_out.empty() || !stats_json.empty()) obs::set_enabled(true);

  Cnf cnf;
  if (!pos.empty()) {
    try {
      cnf = parse_dimacs_file(pos[0]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("no input file; sampling a built-in demo formula\n");
    // 336 witnesses: above hiThresh(ε=6) = 89, so the demo runs the hashed
    // path and actually fans out across the workers.
    cnf = parse_dimacs_string(
        "c ind 1 2 3 4 5 6 7 8 9 10 0\n"
        "p cnf 10 3\n"
        "1 2 3 0\n"
        "-3 4 0\n"
        "x5 6 7 0\n");
  }
  const std::size_t num_samples =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoll(pos[1])) : 10;
  const std::size_t threads =
      pos.size() > 2 ? static_cast<std::size_t>(std::atoll(pos[2])) : 0;
  const double epsilon = pos.size() > 3 ? std::atof(pos[3]) : 6.0;
  const std::uint64_t seed =
      pos.size() > 4 ? static_cast<std::uint64_t>(std::atoll(pos[4]))
                     : 0xDAC14;

  std::printf("c %s\n", cnf.summary().c_str());

  SamplerPoolOptions options;
  options.num_threads = threads;
  options.seed = seed;
  options.unigen.epsilon = epsilon;
  if (fleet_workers > 0 || !fleet_endpoints.empty()) {
    options.unigen.fleet.backend = ExecBackend::kProcessFleet;
    options.unigen.fleet.num_workers = fleet_workers;
    if (fleet_tcp || !fleet_endpoints.empty())
      options.unigen.fleet.transport = FleetTransport::kTcp;
    options.unigen.fleet.endpoints = fleet_endpoints;
  }
  SamplerPool pool(std::move(cnf), options);
  if (!pool.prepare()) {
    std::fprintf(stderr, "error: prepare exceeded its budget\n");
    return 1;
  }
  std::printf("c serving with %zu worker thread(s), seed %llu\n",
              pool.num_threads(), static_cast<unsigned long long>(seed));
  if (pool.fleet() != nullptr)
    std::printf("c process fleet up: %zu worker(s), transport %s\n",
                pool.fleet()->num_workers(),
                !fleet_endpoints.empty()
                    ? "tcp-remote"
                    : (fleet_tcp ? "tcp-loopback" : "socketpair"));
  else if (fleet_workers > 0 || !fleet_endpoints.empty())
    std::printf("c process fleet unavailable; serving in-process\n");

  const auto results = pool.sample_many(num_samples);
  for (const auto& r : results) {
    if (r.status == SampleResult::Status::kUnsat) {
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    if (!r.ok()) continue;  // ⊥ / timeout: accounted below
    std::printf("v");
    for (std::size_t v = 0; v < r.witness.size(); ++v)
      std::printf(" %s%zu", r.witness[v] == lbool::True ? "" : "-", v + 1);
    std::printf(" 0\n");
  }

  const auto st = pool.stats();
  std::printf("c %llu/%llu ok (%llu bottom, %llu timeout), q=%d, "
              "service %.3f s\n",
              static_cast<unsigned long long>(st.samples_ok),
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.samples_failed),
              static_cast<unsigned long long>(st.samples_timed_out),
              st.prepare.q, st.service_seconds);
  for (std::size_t w = 0; w < st.workers.size(); ++w)
    std::printf("c worker %zu: %llu served, %llu BSAT calls, %llu solver "
                "build(s)\n",
                w, static_cast<unsigned long long>(st.workers[w].requests_served),
                static_cast<unsigned long long>(st.workers[w].sample_bsat_calls),
                static_cast<unsigned long long>(st.workers[w].solver_rebuilds));
  if (!trace_out.empty() && obs::write_trace_jsonl(trace_out))
    std::printf("c wrote %s\n", trace_out.c_str());
  if (!stats_json.empty()) {
    std::FILE* f = std::fopen(stats_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", stats_json.c_str());
      return 1;
    }
    const std::string text = obs::to_json(st).dump() + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("c wrote %s\n", stats_json.c_str());
  }
  return 0;
}
