// parallel_sampler — the dimacs_sampler CLI served by the SamplerPool:
// read a DIMACS CNF, prepare once, then draw K almost-uniform witnesses
// across N worker threads.  For a fixed seed the printed v-lines are
// identical for every N — the service's determinism contract — so the
// thread count is purely a throughput knob.
//
//   usage: parallel_sampler <file.cnf> [num_samples=10] [threads=0(auto)]
//                           [epsilon=6] [seed]
//
// With no file argument, a built-in demo formula is sampled instead.

#include <cstdio>
#include <cstdlib>

#include "cnf/dimacs.hpp"
#include "service/sampler_pool.hpp"

int main(int argc, char** argv) {
  using namespace unigen;

  Cnf cnf;
  if (argc > 1) {
    try {
      cnf = parse_dimacs_file(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::printf("no input file; sampling a built-in demo formula\n");
    // 336 witnesses: above hiThresh(ε=6) = 89, so the demo runs the hashed
    // path and actually fans out across the workers.
    cnf = parse_dimacs_string(
        "c ind 1 2 3 4 5 6 7 8 9 10 0\n"
        "p cnf 10 3\n"
        "1 2 3 0\n"
        "-3 4 0\n"
        "x5 6 7 0\n");
  }
  const std::size_t num_samples =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 10;
  const std::size_t threads =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 0;
  const double epsilon = argc > 4 ? std::atof(argv[4]) : 6.0;
  const std::uint64_t seed =
      argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 0xDAC14;

  std::printf("c %s\n", cnf.summary().c_str());

  SamplerPoolOptions options;
  options.num_threads = threads;
  options.seed = seed;
  options.unigen.epsilon = epsilon;
  SamplerPool pool(std::move(cnf), options);
  if (!pool.prepare()) {
    std::fprintf(stderr, "error: prepare exceeded its budget\n");
    return 1;
  }
  std::printf("c serving with %zu worker thread(s), seed %llu\n",
              pool.num_threads(), static_cast<unsigned long long>(seed));

  const auto results = pool.sample_many(num_samples);
  for (const auto& r : results) {
    if (r.status == SampleResult::Status::kUnsat) {
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    if (!r.ok()) continue;  // ⊥ / timeout: accounted below
    std::printf("v");
    for (std::size_t v = 0; v < r.witness.size(); ++v)
      std::printf(" %s%zu", r.witness[v] == lbool::True ? "" : "-", v + 1);
    std::printf(" 0\n");
  }

  const auto st = pool.stats();
  std::printf("c %llu/%llu ok (%llu bottom, %llu timeout), q=%d, "
              "service %.3f s\n",
              static_cast<unsigned long long>(st.samples_ok),
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.samples_failed),
              static_cast<unsigned long long>(st.samples_timed_out),
              st.prepare.q, st.service_seconds);
  for (std::size_t w = 0; w < st.workers.size(); ++w)
    std::printf("c worker %zu: %llu served, %llu BSAT calls, %llu solver "
                "build(s)\n",
                w, static_cast<unsigned long long>(st.workers[w].requests_served),
                static_cast<unsigned long long>(st.workers[w].sample_bsat_calls),
                static_cast<unsigned long long>(st.workers[w].solver_rebuilds));
  return 0;
}
