// Quickstart: build a small constraint formula through the public API,
// declare its sampling set, and draw almost-uniform witnesses with UniGen.
//
//   $ ./quickstart
//
// Walks through the three core steps: (1) describe constraints as a Cnf
// (clauses + native XOR constraints), (2) construct a UniGen sampler with a
// tolerance ε, (3) prepare once and sample many times.

#include <cstdio>

#include "core/unigen.hpp"

int main() {
  using namespace unigen;

  // Step 1: constraints.  An 8-bit "opcode" word with a few validity
  // rules, the kind of thing a CRV environment constraint might say:
  //   - at least one of bits 0..2 is set,
  //   - bit 3 implies bit 4,
  //   - bits 5,6,7 have odd parity.
  Cnf cnf(8);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, true), Lit(4, false)});
  cnf.add_xor({5, 6, 7}, true);
  // All 8 variables are inputs here, so the full support is the natural
  // sampling set.  (With a Tseitin-encoded circuit you would pass the
  // primary inputs — see the crv_testbench example.)
  cnf.set_sampling_set({0, 1, 2, 3, 4, 5, 6, 7});

  // Step 2: a sampler.  ε must exceed 1.71 (Theorem 1); smaller ε means
  // tighter uniformity at higher cost.  The Rng seed makes runs repeatable.
  Rng rng(2014);
  UniGenOptions options;
  options.epsilon = 6.0;
  UniGen sampler(cnf, options, rng);

  // Step 3: prepare once (thresholds + model-count estimate), then sample.
  if (!sampler.prepare()) {
    std::printf("prepare failed (budget exceeded)\n");
    return 1;
  }
  std::printf("sampling 10 witnesses of: %s\n\n", cnf.summary().c_str());
  for (int i = 0; i < 10; ++i) {
    const SampleResult r = sampler.sample();
    if (!r.ok()) {
      std::printf("sample %2d: no witness (this is allowed, p(fail) <= 0.38)\n",
                  i);
      continue;
    }
    std::printf("sample %2d: ", i);
    for (Var v = 0; v < cnf.num_vars(); ++v)
      std::printf("%c", r.witness[static_cast<std::size_t>(v)] == lbool::True
                            ? '1'
                            : '0');
    std::printf("\n");
  }
  std::printf("\nobserved success rate: %.2f (Theorem 1 floor: 0.62)\n",
              sampler.stats().success_rate());
  return 0;
}
