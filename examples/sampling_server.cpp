// sampling_server — the multi-formula serving front end as a CLI: feed it
// any number of DIMACS files and it answers witness requests through the
// session registry, printing per request whether it was served cold (one
// simplify + prepare, engines built and warmed) or warm (live session,
// lines 12–22 cost only), plus the registry's cache economics at the end.
//
//   usage: sampling_server [--samples N] [--rounds R] [--threads T]
//                          [--max-sessions M] [--seed S]
//                          [--fleet N] [--fleet-tcp]
//                          [--fleet-endpoints host:port[,host:port...]]
//                          [--trace-out trace.jsonl] [--stats-json stats.json]
//                          [file.cnf ...]
//
// --fleet N serves every session's hashed path from N crash-isolated
// unigen_workerd processes (--fleet-tcp: over TCP loopback;
// --fleet-endpoints: dialing pre-started `unigen_workerd --listen`
// servers); the served witnesses are identical in every configuration.
//
// --trace-out / --stats-json switch the observability layer on and export
// the run: per-request span trees as JSONL, and a JSON document holding the
// registry stats plus the global metric registry.
//
// Each round requests N witnesses from every formula in order; rounds
// after the first are warm (unless M forced an eviction — try
// --max-sessions 1 with several files to watch LRU thrash).  With no
// files, a built-in demo trio is served.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cnf/dimacs.hpp"
#include "obs/stats_json.hpp"
#include "obs/trace.hpp"
#include "service/sampling_server.hpp"

int main(int argc, char** argv) {
  using namespace unigen;

  std::size_t samples = 5;
  std::size_t rounds = 2;
  std::size_t threads = 0;
  std::size_t max_sessions = 8;
  std::uint64_t seed = 0xDAC14;
  std::string trace_out, stats_json;
  std::size_t fleet_workers = 0;
  bool fleet_tcp = false;
  std::vector<std::string> fleet_endpoints;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--samples") == 0)
      samples = static_cast<std::size_t>(std::atoll(next("--samples")));
    else if (std::strcmp(argv[i], "--rounds") == 0)
      rounds = static_cast<std::size_t>(std::atoll(next("--rounds")));
    else if (std::strcmp(argv[i], "--threads") == 0)
      threads = static_cast<std::size_t>(std::atoll(next("--threads")));
    else if (std::strcmp(argv[i], "--max-sessions") == 0)
      max_sessions =
          static_cast<std::size_t>(std::atoll(next("--max-sessions")));
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    else if (std::strcmp(argv[i], "--trace-out") == 0)
      trace_out = next("--trace-out");
    else if (std::strcmp(argv[i], "--stats-json") == 0)
      stats_json = next("--stats-json");
    else if (std::strcmp(argv[i], "--fleet") == 0)
      fleet_workers = static_cast<std::size_t>(std::atoll(next("--fleet")));
    else if (std::strcmp(argv[i], "--fleet-tcp") == 0)
      fleet_tcp = true;
    else if (std::strcmp(argv[i], "--fleet-endpoints") == 0) {
      const std::string list = next("--fleet-endpoints");
      for (std::size_t b = 0; b < list.size();) {
        std::size_t e = list.find(',', b);
        if (e == std::string::npos) e = list.size();
        if (e > b) fleet_endpoints.push_back(list.substr(b, e - b));
        b = e + 1;
      }
    } else
      files.emplace_back(argv[i]);
  }
  if (!trace_out.empty() || !stats_json.empty()) obs::set_enabled(true);

  std::vector<std::pair<std::string, Cnf>> formulas;
  if (files.empty()) {
    std::printf("c no input files; serving a built-in demo trio\n");
    formulas.emplace_back("demo_a", parse_dimacs_string(
                                        "p cnf 10 3\n"
                                        "1 2 3 0\n"
                                        "-3 4 0\n"
                                        "5 6 7 0\n"));
    formulas.emplace_back("demo_b", parse_dimacs_string(
                                        "p cnf 8 3\n"
                                        "1 2 0\n"
                                        "3 -4 0\n"
                                        "5 6 -7 0\n"));
    formulas.emplace_back("demo_c", parse_dimacs_string(
                                        "p cnf 3 1\n"
                                        "1 2 3 0\n"));
  } else {
    for (const std::string& path : files) {
      try {
        formulas.emplace_back(path, parse_dimacs_file(path));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
        return 1;
      }
    }
  }

  SamplingServerOptions options;
  options.registry.pool.num_threads = threads;
  options.registry.pool.seed = seed;
  options.registry.max_sessions = max_sessions;
  if (fleet_workers > 0 || !fleet_endpoints.empty()) {
    options.registry.pool.unigen.fleet.backend = ExecBackend::kProcessFleet;
    options.registry.pool.unigen.fleet.num_workers = fleet_workers;
    if (fleet_tcp || !fleet_endpoints.empty())
      options.registry.pool.unigen.fleet.transport = FleetTransport::kTcp;
    options.registry.pool.unigen.fleet.endpoints = fleet_endpoints;
  }
  SamplingServer server(options);

  for (std::size_t round = 0; round < rounds; ++round) {
    for (const auto& [name, cnf] : formulas) {
      const ServerSampleResponse r = server.sample(cnf, samples);
      std::size_t ok = 0;
      for (const auto& s : r.samples)
        if (s.ok()) ++ok;
      std::printf(
          "c round %zu  %-20s %s  %s  %zu/%zu witnesses  session %s\n",
          round, name.c_str(), r.warm ? "warm" : "COLD", to_string(r.status),
          ok, r.samples.size(), r.key.hex().c_str());
      if (round == 0)
        for (const auto& s : r.samples) {
          if (!s.ok()) continue;
          std::printf("v");
          for (std::size_t v = 0; v < s.witness.size(); ++v)
            std::printf(" %s%zu", s.witness[v] == lbool::True ? "" : "-",
                        v + 1);
          std::printf(" 0\n");
        }
    }
  }

  const SessionRegistryStats st = server.stats();
  std::printf(
      "c registry: %llu requests, %llu hits (%.0f%%), %llu misses, %llu "
      "evictions, %llu prepare failures, %zu live sessions, ~%zu bytes "
      "resident\n",
      static_cast<unsigned long long>(st.requests),
      static_cast<unsigned long long>(st.hits), 100.0 * st.hit_rate(),
      static_cast<unsigned long long>(st.misses),
      static_cast<unsigned long long>(st.evictions),
      static_cast<unsigned long long>(st.prepare_failures), st.sessions,
      st.resident_bytes);

  if (!trace_out.empty() && server.write_trace_jsonl(trace_out))
    std::printf("c wrote %s\n", trace_out.c_str());
  if (!stats_json.empty()) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("registry", obs::to_json(st));
    doc.set("metrics", obs::JsonValue::parse(server.metrics_json()));
    std::FILE* f = std::fopen(stats_json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", stats_json.c_str());
      return 1;
    }
    const std::string text = doc.dump() + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("c wrote %s\n", stats_json.c_str());
  }
  return 0;
}
