// Uniformity study: a fast, self-contained version of the paper's Figure-1
// experiment that also demonstrates the US (ideal sampler) API.
//
// Builds an instance with exactly 512 witnesses, draws N samples from
// UniGen and from US (materialized mode, so US returns real witnesses
// too), and prints the two frequency histograms side by side.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "core/uniform_sampler.hpp"
#include "core/unigen.hpp"
#include "workloads/circuits.hpp"

int main() {
  using namespace unigen;

  const auto bench = workloads::make_case110_like(18, 9);  // 2^9 witnesses
  std::printf("instance: %s, |R_F| = %s\n", bench.cnf.summary().c_str(),
              bench.witness_count.to_string().c_str());

  const auto sampling_set = bench.cnf.sampling_set_or_all();
  auto key_of = [&](const Model& m) {
    std::vector<bool> key;
    key.reserve(sampling_set.size());
    for (const Var v : sampling_set)
      key.push_back(m[static_cast<std::size_t>(v)] == lbool::True);
    return key;
  };

  constexpr int kSamples = 6000;

  std::map<std::vector<bool>, int> unigen_hist;
  {
    Rng rng(42);
    UniGen sampler(bench.cnf, {}, rng);
    if (!sampler.prepare()) return 1;
    int produced = 0;
    while (produced < kSamples) {
      const auto r = sampler.sample();
      if (!r.ok()) continue;
      ++unigen_hist[key_of(r.witness)];
      ++produced;
    }
  }

  std::map<std::vector<bool>, int> us_hist;
  {
    Rng rng(43);
    UniformSampler us(bench.cnf, {}, rng);
    if (!us.prepare()) return 1;
    std::printf("US exact count agrees: %s\n", us.count().to_string().c_str());
    for (int i = 0; i < kSamples; ++i) {
      const auto r = us.sample();
      if (r.ok()) ++us_hist[key_of(r.witness)];
    }
  }

  // Histogram of histograms, as in Figure 1: how many witnesses were seen
  // exactly c times?
  std::map<int, std::pair<int, int>> figure;
  for (const auto& [key, c] : us_hist) ++figure[c].first;
  for (const auto& [key, c] : unigen_hist) ++figure[c].second;
  std::printf("\n%8s %14s %14s\n", "count", "US witnesses", "UniGen witnesses");
  for (const auto& [count, pair] : figure)
    std::printf("%8d %14d %14d\n", count, pair.first, pair.second);

  std::printf("\nBoth columns should trace the same binomial bump — the "
              "paper's\n\"can hardly be distinguished in practice\" claim.\n");
  return 0;
}
