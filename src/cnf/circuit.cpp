#include "cnf/circuit.hpp"

#include <stdexcept>

namespace unigen {
namespace {

std::uint64_t strash_key(Circuit::NodeKind kind, Circuit::Sig a,
                         Circuit::Sig b) {
  return (static_cast<std::uint64_t>(kind) << 62) |
         (static_cast<std::uint64_t>(a) << 31) | b;
}

}  // namespace

Circuit::Circuit() {
  nodes_.push_back(Node{NodeKind::Const, 0, 0});  // node 0 == constant false
}

Circuit::Sig Circuit::add_input(std::string name) {
  nodes_.push_back(Node{NodeKind::Input, 0, 0});
  const Sig s = static_cast<Sig>((nodes_.size() - 1) << 1);
  inputs_.push_back(s);
  input_names_.push_back(std::move(name));
  return s;
}

void Circuit::add_output(Sig s, std::string name) {
  outputs_.push_back(s);
  output_names_.push_back(std::move(name));
}

Circuit::Sig Circuit::make_node(NodeKind kind, Sig a, Sig b) {
  if (a > b) std::swap(a, b);  // canonical operand order (AND/XOR commute)
  const std::uint64_t key = strash_key(kind, a, b);
  if (const auto it = strash_.find(key); it != strash_.end()) return it->second;
  nodes_.push_back(Node{kind, a, b});
  const Sig s = static_cast<Sig>((nodes_.size() - 1) << 1);
  strash_.emplace(key, s);
  return s;
}

Circuit::Sig Circuit::land(Sig a, Sig b) {
  // Constant folding and trivial cases.
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == lnot(b)) return kFalse;
  return make_node(NodeKind::And, a, b);
}

Circuit::Sig Circuit::lxor(Sig a, Sig b) {
  if (a == kFalse) return b;
  if (b == kFalse) return a;
  if (a == kTrue) return lnot(b);
  if (b == kTrue) return lnot(a);
  if (a == b) return kFalse;
  if (a == lnot(b)) return kTrue;
  // Canonical form: store XOR with both operands un-complemented; the
  // complement bits commute out: (~a ^ b) == ~(a ^ b).
  bool neg = false;
  if (sig_negated(a)) {
    a = lnot(a);
    neg = !neg;
  }
  if (sig_negated(b)) {
    b = lnot(b);
    neg = !neg;
  }
  const Sig s = make_node(NodeKind::Xor, a, b);
  return neg ? lnot(s) : s;
}

Circuit::Sig Circuit::mux(Sig s, Sig t, Sig e) {
  return lor(land(s, t), land(lnot(s), e));
}

Circuit::Sig Circuit::maj3(Sig a, Sig b, Sig c) {
  return lor(land(a, b), lor(land(a, c), land(b, c)));
}

Circuit::Sig Circuit::and_n(const std::vector<Sig>& xs) {
  if (xs.empty()) return kTrue;
  std::vector<Sig> layer = xs;
  while (layer.size() > 1) {
    std::vector<Sig> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(land(layer[i], layer[i + 1]));
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

Circuit::Sig Circuit::or_n(const std::vector<Sig>& xs) {
  std::vector<Sig> inv;
  inv.reserve(xs.size());
  for (const Sig x : xs) inv.push_back(lnot(x));
  return lnot(and_n(inv));
}

Circuit::Sig Circuit::xor_n(const std::vector<Sig>& xs) {
  Sig acc = kFalse;
  for (const Sig x : xs) acc = lxor(acc, x);
  return acc;
}

std::vector<Circuit::Sig> Circuit::add_word(const std::vector<Sig>& a,
                                            const std::vector<Sig>& b,
                                            bool keep_carry) {
  if (a.size() != b.size()) throw std::invalid_argument("add_word width mismatch");
  std::vector<Sig> sum;
  sum.reserve(a.size() + (keep_carry ? 1 : 0));
  Sig carry = kFalse;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Sig axb = lxor(a[i], b[i]);
    sum.push_back(lxor(axb, carry));
    carry = maj3(a[i], b[i], carry);
  }
  if (keep_carry) sum.push_back(carry);
  return sum;
}

std::vector<Circuit::Sig> Circuit::mul_word(const std::vector<Sig>& a,
                                            const std::vector<Sig>& b,
                                            std::size_t out_width) {
  // Shift-and-add array multiplier, truncated to out_width bits.
  std::vector<Sig> acc(out_width, kFalse);
  for (std::size_t i = 0; i < b.size() && i < out_width; ++i) {
    std::vector<Sig> partial(out_width, kFalse);
    for (std::size_t j = 0; j < a.size() && i + j < out_width; ++j)
      partial[i + j] = land(a[j], b[i]);
    acc = add_word(acc, partial);
  }
  return acc;
}

Circuit::Sig Circuit::eq_word(const std::vector<Sig>& a,
                              const std::vector<Sig>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("eq_word width mismatch");
  std::vector<Sig> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) bits.push_back(lxnor(a[i], b[i]));
  return and_n(bits);
}

Circuit::Sig Circuit::ult_word(const std::vector<Sig>& a,
                               const std::vector<Sig>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("ult_word width mismatch");
  Sig lt = kFalse;  // from LSB upward: lt' = (a<b at this bit) | (a==b)&lt
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Sig bit_lt = land(lnot(a[i]), b[i]);
    const Sig bit_eq = lxnor(a[i], b[i]);
    lt = lor(bit_lt, land(bit_eq, lt));
  }
  return lt;
}

std::vector<Circuit::Sig> Circuit::constant_word(std::uint64_t value,
                                                 std::size_t width) {
  std::vector<Sig> w(width);
  for (std::size_t i = 0; i < width; ++i)
    w[i] = ((value >> i) & 1u) ? kTrue : kFalse;
  return w;
}

std::vector<Circuit::Sig> Circuit::input_word(std::size_t width,
                                              const std::string& prefix) {
  std::vector<Sig> w(width);
  for (std::size_t i = 0; i < width; ++i)
    w[i] = add_input(prefix + "[" + std::to_string(i) + "]");
  return w;
}

std::vector<Circuit::Sig> Circuit::append(const Circuit& sub,
                                          const std::vector<Sig>& bindings) {
  if (bindings.size() != sub.num_inputs())
    throw std::invalid_argument("append: binding count mismatch");
  // Map sub node index -> signal in this circuit.
  std::vector<Sig> map(sub.nodes_.size());
  map[0] = kFalse;
  std::size_t next_input = 0;
  for (std::size_t idx = 1; idx < sub.nodes_.size(); ++idx) {
    const Node& n = sub.nodes_[idx];
    auto xlat = [&](Sig s) {
      return map[sig_node(s)] ^ (s & 1u);
    };
    switch (n.kind) {
      case NodeKind::Input:
        map[idx] = bindings[next_input++];
        break;
      case NodeKind::And:
        map[idx] = land(xlat(n.a), xlat(n.b));
        break;
      case NodeKind::Xor:
        map[idx] = lxor(xlat(n.a), xlat(n.b));
        break;
      case NodeKind::Const:
        map[idx] = kFalse;
        break;
    }
  }
  std::vector<Sig> outs;
  outs.reserve(sub.outputs_.size());
  for (const Sig o : sub.outputs_)
    outs.push_back(map[sig_node(o)] ^ (o & 1u));
  return outs;
}

std::vector<bool> Circuit::simulate(const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size())
    throw std::invalid_argument("simulate: input count mismatch");
  std::vector<bool> val(nodes_.size(), false);
  std::size_t next_input = 0;
  for (std::size_t idx = 1; idx < nodes_.size(); ++idx) {
    const Node& n = nodes_[idx];
    auto get = [&](Sig s) { return val[sig_node(s)] ^ sig_negated(s); };
    switch (n.kind) {
      case NodeKind::Input:
        val[idx] = input_values[next_input++];
        break;
      case NodeKind::And:
        val[idx] = get(n.a) && get(n.b);
        break;
      case NodeKind::Xor:
        val[idx] = get(n.a) != get(n.b);
        break;
      case NodeKind::Const:
        val[idx] = false;
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const Sig o : outputs_) out.push_back(val[sig_node(o)] ^ sig_negated(o));
  return out;
}

}  // namespace unigen
