#pragma once
// A small combinational circuit IR (AIG + XOR nodes) with structural
// hashing, plus word-level helper operations (adders, multipliers,
// comparators).  Circuits are the source domain for the benchmark families
// in this reproduction: Tseitin-encoding a circuit yields a CNF whose
// auxiliary variables form a *dependent* support, so the primary inputs are
// an independent support — the exact situation Section 4 of the paper
// exploits ("the variables introduced by the encoding form a dependent
// support of F").

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace unigen {

class Circuit {
 public:
  /// A signal: node index with a complement bit (AIG-literal style).
  using Sig = std::uint32_t;

  static constexpr Sig kFalse = 0;  // node 0 is the constant-false node
  static constexpr Sig kTrue = 1;

  Circuit();

  /// Number of structural nodes (including the constant node).
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }

  /// Primary inputs.
  Sig add_input(std::string name = "");
  const std::vector<Sig>& inputs() const { return inputs_; }

  /// Primary outputs (named signals of interest).
  void add_output(Sig s, std::string name = "");
  const std::vector<Sig>& outputs() const { return outputs_; }
  const std::vector<std::string>& output_names() const { return output_names_; }

  // --- gate constructors (constant-folding + structural hashing) ---
  static Sig lnot(Sig a) { return a ^ 1u; }
  Sig land(Sig a, Sig b);
  Sig lor(Sig a, Sig b) { return lnot(land(lnot(a), lnot(b))); }
  Sig lxor(Sig a, Sig b);
  Sig lxnor(Sig a, Sig b) { return lnot(lxor(a, b)); }
  Sig nand2(Sig a, Sig b) { return lnot(land(a, b)); }
  Sig nor2(Sig a, Sig b) { return lnot(lor(a, b)); }
  Sig implies(Sig a, Sig b) { return lor(lnot(a), b); }
  /// if s then t else e.
  Sig mux(Sig s, Sig t, Sig e);
  /// Majority of three (full-adder carry).
  Sig maj3(Sig a, Sig b, Sig c);

  // --- n-ary trees ---
  Sig and_n(const std::vector<Sig>& xs);
  Sig or_n(const std::vector<Sig>& xs);
  Sig xor_n(const std::vector<Sig>& xs);

  // --- word-level helpers; words are little-endian vectors of Sig ---
  std::vector<Sig> add_word(const std::vector<Sig>& a,
                            const std::vector<Sig>& b, bool keep_carry = false);
  std::vector<Sig> mul_word(const std::vector<Sig>& a,
                            const std::vector<Sig>& b, std::size_t out_width);
  Sig eq_word(const std::vector<Sig>& a, const std::vector<Sig>& b);
  /// a < b, unsigned.
  Sig ult_word(const std::vector<Sig>& a, const std::vector<Sig>& b);
  std::vector<Sig> constant_word(std::uint64_t value, std::size_t width);
  std::vector<Sig> input_word(std::size_t width, const std::string& prefix);

  // --- module instantiation ---
  /// Copies `sub` into this circuit, binding sub's inputs to `bindings`
  /// (bindings.size() must equal sub.num_inputs()).  Returns sub's outputs
  /// translated into this circuit.
  std::vector<Sig> append(const Circuit& sub, const std::vector<Sig>& bindings);

  // --- node inspection (used by the Tseitin encoder) ---
  enum class NodeKind : std::uint8_t { Const, Input, And, Xor };
  struct Node {
    NodeKind kind;
    Sig a = 0, b = 0;  // fanins (valid for And/Xor)
  };
  const Node& node(std::size_t idx) const { return nodes_[idx]; }
  static std::size_t sig_node(Sig s) { return s >> 1; }
  static bool sig_negated(Sig s) { return (s & 1u) != 0; }

  /// Evaluates all outputs under the given input values (simulation).
  std::vector<bool> simulate(const std::vector<bool>& input_values) const;

 private:
  Sig make_node(NodeKind kind, Sig a, Sig b);

  std::vector<Node> nodes_;
  std::vector<Sig> inputs_;
  std::vector<std::string> input_names_;
  std::vector<Sig> outputs_;
  std::vector<std::string> output_names_;
  // structural hashing: (kind, a, b) -> node signal
  std::unordered_map<std::uint64_t, Sig> strash_;
};

}  // namespace unigen
