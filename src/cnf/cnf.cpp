#include "cnf/cnf.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace unigen {

void Cnf::add_clause(std::vector<Lit> lits) {
  for (const Lit l : lits) {
    if (!l.valid()) throw std::invalid_argument("invalid literal in clause");
    ensure_vars(l.var() + 1);
  }
  clauses_.push_back(std::move(lits));
}

void Cnf::add_xor(XorConstraint x) {
  for (const Var v : x.vars) {
    if (v < 0) throw std::invalid_argument("invalid variable in xor");
    ensure_vars(v + 1);
  }
  xors_.push_back(std::move(x));
}

void Cnf::set_sampling_set(std::vector<Var> vars) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  for (const Var v : vars) {
    if (v < 0 || v >= num_vars_)
      throw std::invalid_argument("sampling variable out of range");
  }
  sampling_set_ = std::move(vars);
}

std::vector<Var> Cnf::sampling_set_or_all() const {
  if (sampling_set_) return *sampling_set_;
  std::vector<Var> all(static_cast<std::size_t>(num_vars_));
  for (Var v = 0; v < num_vars_; ++v) all[static_cast<std::size_t>(v)] = v;
  return all;
}

bool Cnf::satisfied_by(const Model& m) const {
  if (m.size() < static_cast<std::size_t>(num_vars_)) return false;
  for (const auto& clause : clauses_) {
    bool sat = false;
    for (const Lit l : clause) {
      if (eval(m, l) == lbool::True) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  for (const auto& x : xors_) {
    bool parity = false;
    for (const Var v : x.vars) {
      const lbool val = m[static_cast<std::size_t>(v)];
      if (val == lbool::Undef) return false;
      parity ^= (val == lbool::True);
    }
    if (parity != x.rhs) return false;
  }
  return true;
}

namespace {

/// Emits CNF clauses for XOR(lits) = true, where |lits| <= chunk.  All
/// 2^(n-1) clauses with an even number of negations.
void emit_small_xor(Cnf& out, const std::vector<Lit>& lits) {
  const std::size_t n = lits.size();
  if (n == 0) throw std::logic_error("unsatisfiable empty xor");
  // Clause set: every polarity pattern with an even number of negations.
  // (For n=2 this yields (a v b), (~a v ~b), i.e. a != b.)
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (std::popcount(mask) % 2 != 0) continue;
    std::vector<Lit> clause;
    clause.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool flip = (mask >> i) & 1u;
      clause.push_back(flip ? ~lits[i] : lits[i]);
    }
    out.add_clause(std::move(clause));
  }
}

}  // namespace

Cnf Cnf::expand_xors(int chunk) const {
  if (chunk < 2) throw std::invalid_argument("chunk must be >= 2");
  Cnf out(num_vars_);
  out.name = name;
  for (const auto& clause : clauses_) out.add_clause(clause);
  if (sampling_set_) out.set_sampling_set(*sampling_set_);

  for (const auto& x : xors_) {
    // Normalize: duplicated variables cancel.
    std::vector<Var> vars = x.vars;
    std::sort(vars.begin(), vars.end());
    std::vector<Var> norm;
    for (std::size_t i = 0; i < vars.size();) {
      std::size_t j = i;
      while (j < vars.size() && vars[j] == vars[i]) ++j;
      if ((j - i) % 2 == 1) norm.push_back(vars[i]);
      i = j;
    }
    bool rhs = x.rhs;
    if (norm.empty()) {
      if (rhs) {
        // 0 = 1: unsatisfiable; encode with the empty clause.
        out.add_clause({});
      }
      continue;
    }
    // lits such that XOR(lits) = true encodes XOR(norm) = rhs: flip the
    // polarity of one literal when rhs is false.
    std::vector<Lit> lits;
    lits.reserve(norm.size());
    for (const Var v : norm) lits.emplace_back(v, false);
    if (!rhs) lits[0] = ~lits[0];

    // Chunk long XORs: XOR(l1..lk) = t1, XOR(t1, lk+1..) = t2, ...
    while (lits.size() > static_cast<std::size_t>(chunk)) {
      std::vector<Lit> head(lits.begin(), lits.begin() + (chunk - 1));
      const Var t = out.new_var();
      head.emplace_back(t, true);  // XOR(head_vars) ^ t = 0  i.e. t = XOR(head)
      emit_small_xor(out, head);
      std::vector<Lit> rest;
      rest.emplace_back(t, false);
      rest.insert(rest.end(), lits.begin() + (chunk - 1), lits.end());
      lits = std::move(rest);
    }
    emit_small_xor(out, lits);
  }
  return out;
}

std::string Cnf::summary() const {
  std::ostringstream os;
  os << (name.empty() ? std::string("<cnf>") : name) << ": vars=" << num_vars_
     << " clauses=" << clauses_.size() << " xors=" << xors_.size();
  if (sampling_set_) os << " |S|=" << sampling_set_->size();
  return os.str();
}

}  // namespace unigen
