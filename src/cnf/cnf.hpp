#pragma once
// In-memory CNF-XOR formula: a conjunction of OR-clauses and XOR-clauses
// plus an optional sampling set (the paper's set S of sampling variables,
// intended to be an independent support).
//
// This is the interchange type between the front end (DIMACS / Tseitin), the
// solver, the counters and the samplers.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cnf/types.hpp"

namespace unigen {

/// An XOR constraint: XOR of `vars` equals `rhs`.
struct XorConstraint {
  std::vector<Var> vars;
  bool rhs = false;

  bool operator==(const XorConstraint&) const = default;
};

class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(Var num_vars) : num_vars_(num_vars) {}

  Var num_vars() const { return num_vars_; }
  /// Grows the variable space to at least `n` variables.
  void ensure_vars(Var n) {
    if (n > num_vars_) num_vars_ = n;
  }
  /// Allocates and returns a fresh variable.
  Var new_var() { return num_vars_++; }

  void add_clause(std::vector<Lit> lits);
  void add_unit(Lit l) { add_clause({l}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }
  void add_xor(XorConstraint x);
  void add_xor(std::vector<Var> vars, bool rhs) {
    add_xor(XorConstraint{std::move(vars), rhs});
  }

  const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }
  const std::vector<XorConstraint>& xors() const { return xors_; }

  std::size_t num_clauses() const { return clauses_.size(); }
  std::size_t num_xors() const { return xors_.size(); }

  /// The sampling set S (paper Section 4).  Empty optional = not declared;
  /// samplers then default to the full support.
  void set_sampling_set(std::vector<Var> vars);
  const std::optional<std::vector<Var>>& sampling_set() const {
    return sampling_set_;
  }
  /// Sampling set if declared, otherwise all variables.
  std::vector<Var> sampling_set_or_all() const;

  /// True iff `m` (a total assignment over num_vars()) satisfies every
  /// clause and every XOR constraint.
  bool satisfied_by(const Model& m) const;

  /// Expands every XOR constraint into equivalent OR-clauses, chunking long
  /// XORs with fresh auxiliary variables so no clause group exceeds
  /// 2^(chunk-1) clauses.  Auxiliary variables are functionally defined by
  /// the chunk they cut, so the total model count is preserved.  Returns the
  /// purely-CNF formula; `this` is unchanged.
  Cnf expand_xors(int chunk = 5) const;

  /// Human-readable one-line summary for logs.
  std::string summary() const;

  /// Optional instance name (benchmark id) carried through experiments.
  std::string name;

 private:
  Var num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<XorConstraint> xors_;
  std::optional<std::vector<Var>> sampling_set_;
};

}  // namespace unigen
