#include "cnf/dimacs.hpp"

#include <cctype>

#include "cnf/dimacs_write.hpp"
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace unigen {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("dimacs parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

/// Drops trailing whitespace (including the '\r' of CRLF files).
void strip_trailing_whitespace(std::string& s) {
  while (!s.empty() &&
         (s.back() == '\r' || s.back() == ' ' || s.back() == '\t'))
    s.pop_back();
}

/// Strict integer parse of one whitespace-delimited token: the whole token
/// must be a number, so "1a" or "foo" report the offending line instead of
/// being silently mis-consumed.
long long parse_int_token(const std::string& tok, std::size_t line_no) {
  std::size_t consumed = 0;
  long long v = 0;
  try {
    v = std::stoll(tok, &consumed);
  } catch (const std::exception&) {
    fail(line_no, "expected integer, got '" + tok + "'");
  }
  if (consumed != tok.size())
    fail(line_no, "expected integer, got '" + tok + "'");
  return v;
}

/// True for a comment token: "c" or "c<non-digit>..." ("c1" is more likely
/// a typo'd literal than a comment, so it is left to fail as a clause).
bool is_comment_token(const std::string& tok) {
  return tok[0] == 'c' &&
         (tok.size() == 1 ||
          !std::isdigit(static_cast<unsigned char>(tok[1])));
}

/// Payload of a `c ind v1 v2 ... 0` line, `ls` positioned after "ind".
void parse_ind_payload(std::istringstream& ls, std::size_t line_no,
                       std::vector<Var>& sampling) {
  std::string num;
  while (ls >> num) {
    const long long v = parse_int_token(num, line_no);
    if (v == 0) break;  // an unterminated ind line is tolerated too
    if (v < 0) fail(line_no, "negative variable in c ind");
    sampling.push_back(static_cast<Var>(v - 1));
  }
}

}  // namespace

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  std::vector<Var> sampling;
  bool saw_ind = false;
  bool saw_header = false;
  Var declared_vars = 0;
  std::size_t declared_clauses = 0;
  std::size_t parsed_clauses = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    strip_trailing_whitespace(line);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank (or whitespace-only) line

    if (is_comment_token(tok)) {
      if (tok != "c") continue;  // "cfoo"-style comment, no ind payload
      std::string kind;
      if (ls >> kind && kind == "ind") {
        saw_ind = true;
        parse_ind_payload(ls, line_no, sampling);
      }
      continue;
    }
    if (tok == "p") {
      std::string fmt;
      long long nv = 0, nc = 0;
      if (!(ls >> fmt >> nv >> nc) || (fmt != "cnf" && fmt != "pcnf"))
        fail(line_no, "malformed problem line");
      if (nv < 0 || nc < 0) fail(line_no, "negative count in problem line");
      saw_header = true;
      declared_vars = static_cast<Var>(nv);
      declared_clauses = static_cast<std::size_t>(nc);
      cnf.ensure_vars(declared_vars);
      continue;
    }

    // Clause or xor-clause tokens.  Clauses may wrap across physical lines
    // (reading integers until the terminating 0, with blank lines and `c`
    // comments tolerated in between) and several clauses may share one
    // physical line — tokens after a terminating 0 start the next clause
    // rather than being silently dropped.
    for (;;) {
      bool is_xor = false;
      std::string first = tok;
      if (!first.empty() && first[0] == 'x') {
        is_xor = true;
        first = first.substr(1);
        if (first.empty()) {
          if (!(ls >> first)) fail(line_no, "empty xor line");
        }
      }
      std::vector<long long> nums;
      nums.push_back(parse_int_token(first, line_no));
      while (nums.back() != 0) {
        std::string num;
        if (!(ls >> num)) {
          // Clause continues on the next physical line; skip blank lines
          // and comments in between — `c ind` directives landing mid-clause
          // are still honored, not silently swallowed as comments.
          for (;;) {
            if (!std::getline(in, line)) fail(line_no, "unterminated clause");
            ++line_no;
            strip_trailing_whitespace(line);
            std::istringstream probe(line);
            std::string head;
            if (!(probe >> head)) continue;  // blank
            if (is_comment_token(head)) {
              std::string kind;
              if (head == "c" && probe >> kind && kind == "ind") {
                saw_ind = true;
                parse_ind_payload(probe, line_no, sampling);
              }
              continue;
            }
            break;
          }
          ls.clear();
          ls.str(line);
          continue;
        }
        nums.push_back(parse_int_token(num, line_no));
      }
      nums.pop_back();  // drop terminating 0

      if (is_xor) {
        // CryptoMiniSAT convention: negated literal flips the rhs.
        XorConstraint x;
        x.rhs = true;
        for (const long long n : nums) {
          if (n == 0) continue;
          if (n < 0) x.rhs = !x.rhs;
          x.vars.push_back(static_cast<Var>(std::llabs(n) - 1));
        }
        cnf.add_xor(std::move(x));
      } else {
        std::vector<Lit> lits;
        lits.reserve(nums.size());
        for (const long long n : nums)
          lits.push_back(Lit::from_dimacs(static_cast<std::int32_t>(n)));
        cnf.add_clause(std::move(lits));
        ++parsed_clauses;
      }
      if (!(ls >> tok)) break;  // no further clause starts on this line
      if (is_comment_token(tok)) {
        // Trailing same-line comment after the terminating 0 (an `ind`
        // directive there is honored like everywhere else).
        std::string kind;
        if (tok == "c" && ls >> kind && kind == "ind") {
          saw_ind = true;
          parse_ind_payload(ls, line_no, sampling);
        }
        break;
      }
    }
  }

  if (!saw_header) fail(line_no, "missing p cnf header");
  if (declared_clauses != 0 && parsed_clauses > declared_clauses + cnf.num_xors())
    fail(line_no, "more clauses than declared");
  cnf.ensure_vars(declared_vars);
  if (saw_ind) cnf.set_sampling_set(std::move(sampling));
  return cnf;
}

Cnf parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

Cnf parse_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  Cnf cnf = parse_dimacs(in);
  cnf.name = path;
  return cnf;
}

void write_dimacs(const Cnf& cnf, std::ostream& out) {
  if (!cnf.name.empty()) out << "c " << cnf.name << "\n";
  write_dimacs_canonical(cnf, out);
}

std::string to_dimacs_string(const Cnf& cnf) {
  std::ostringstream os;
  write_dimacs(cnf, os);
  return os.str();
}

void write_dimacs_file(const Cnf& cnf, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_dimacs(cnf, out);
}

}  // namespace unigen
