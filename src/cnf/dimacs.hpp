#pragma once
// DIMACS CNF reader/writer with the two extensions used by the paper's
// toolchain:
//   * `c ind v1 v2 ... 0` comment lines declaring the sampling set (the
//     format the UniGen/ApproxMC tool family standardized), and
//   * `x`-prefixed XOR clause lines (CryptoMiniSAT convention):
//     `x1 -2 3 0` means  v1 XOR ~v2 XOR v3  = true.

#include <iosfwd>
#include <string>

#include "cnf/cnf.hpp"

namespace unigen {

/// Parses DIMACS text.  Throws std::runtime_error with a line number on
/// malformed input.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs_string(const std::string& text);
Cnf parse_dimacs_file(const std::string& path);

/// Serializes; XOR constraints are written as `x...` lines and the sampling
/// set (if any) as `c ind` lines of at most 10 variables each.
void write_dimacs(const Cnf& cnf, std::ostream& out);
std::string to_dimacs_string(const Cnf& cnf);
void write_dimacs_file(const Cnf& cnf, const std::string& path);

}  // namespace unigen
