#include "cnf/dimacs_write.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace unigen {

void write_dimacs_canonical(const Cnf& cnf, std::ostream& out) {
  if (const auto& ss = cnf.sampling_set()) {
    if (ss->empty()) {
      // Declared-empty S: without this line the reader would default to the
      // full support — a different projection, not a round-trip.
      out << "c ind 0\n";
    } else {
      for (std::size_t i = 0; i < ss->size(); i += 10) {
        out << "c ind";
        for (std::size_t j = i; j < std::min(ss->size(), i + 10); ++j)
          out << ' ' << ((*ss)[j] + 1);
        out << " 0\n";
      }
    }
  }
  out << "p cnf " << cnf.num_vars() << ' '
      << (cnf.num_clauses() + cnf.num_xors()) << "\n";
  for (const auto& clause : cnf.clauses()) {
    for (const Lit l : clause) out << l.to_dimacs() << ' ';
    out << "0\n";
  }
  for (const auto& x : cnf.xors()) {
    if (x.vars.empty()) {
      // Constant row — inexpressible as an x-line.  rhs = false is a
      // tautology (elided); rhs = true is the empty clause (written as
      // one).  Satisfiability-preserving, not structure-preserving; see
      // the header contract.
      if (x.rhs) out << "0\n";
      continue;
    }
    out << 'x';
    // rhs rides in the sign of the first literal (CryptoMiniSAT style):
    // the reader flips its rhs once per negative literal, so exactly one
    // negation on a true-rhs-free row encodes rhs = false.
    for (std::size_t i = 0; i < x.vars.size(); ++i) {
      const long long v = x.vars[i] + 1;
      out << (i == 0 && !x.rhs ? -v : v) << ' ';
    }
    out << "0\n";
  }
}

std::string to_dimacs_canonical_string(const Cnf& cnf) {
  std::ostringstream os;
  write_dimacs_canonical(cnf, os);
  return os.str();
}

}  // namespace unigen
