#pragma once
// Canonical DIMACS/XOR writer.
//
// The parser (cnf/dimacs.hpp) accepts a liberal surface — wrapped clauses,
// interleaved comments, CRLF, several clauses per line.  This module is the
// inverse direction pinned down: ONE byte-exact serialization per formula
// structure, so that
//
//   * the IPC layer (service/ipc.hpp) can ship a formula to an
//     out-of-process worker and both sides agree on every byte (the frame
//     is hashable / comparable, and a re-sent formula re-serializes
//     identically), and
//   * parse(write(F)) reproduces F structurally: num_vars, clauses in
//     order with literals in order, XOR constraints in order (rhs encoded
//     in the sign of the row's first literal, CryptoMiniSAT style), and
//     the sampling set in stored order (Cnf::set_sampling_set sorts and
//     dedupes, so both sides agree) — including the declared-empty set,
//     which is written as a bare `c ind 0` line because "S = {}" and
//     "no S declared" (= full support) mean different projections.
//
// What canonical form deliberately drops: the instance name (presentation,
// not meaning — two differently-named copies of a formula must serialize
// identically) and constant XOR rows (an empty row cannot be expressed in
// the x-line format; rhs = false is a tautology and is elided, rhs = true
// is the empty clause and is written as one, preserving satisfiability —
// asserted by the round-trip tests, and no simplified formula the IPC
// layer ships contains constant rows).
//
// The legacy write_dimacs (cnf/dimacs.hpp) keeps its name-comment header
// and now delegates its body here, so the two writers cannot drift.

#include <iosfwd>
#include <string>

#include "cnf/cnf.hpp"

namespace unigen {

/// Canonical serialization: header, `c ind` lines (10 vars each, stored
/// order), `p cnf`, OR-clauses, XOR rows.  A pure function of the formula
/// structure — no name, no timestamps, byte-identical across runs.
void write_dimacs_canonical(const Cnf& cnf, std::ostream& out);
std::string to_dimacs_canonical_string(const Cnf& cnf);

}  // namespace unigen
