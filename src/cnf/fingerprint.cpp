#include "cnf/fingerprint.hpp"

#include <algorithm>

namespace unigen {
namespace {

/// splitmix64 finalizer — the same mixer rng.cpp seeds from; strong enough
/// that summing mixed values over a multiset keeps 128 bits of spread.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Hash of one element (a sorted clause / XOR) for the commutative bags:
/// chain the parts through mix64 so the element hash itself is
/// order-sensitive in its contents, then the bag sums element hashes.
struct ElementHasher {
  std::uint64_t h = 0x243F6A8885A308D3ull;  // distinct from the seq seed
  void feed(std::uint64_t v) { h = mix64(h ^ v); }
};

}  // namespace

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xF];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

void FingerprintBuilder::add_scalar(std::uint64_t v) {
  seq_ = mix64(seq_ ^ v);
}

void FingerprintBuilder::add_double(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  add_scalar(bits);
}

void FingerprintBuilder::add_clause(const std::vector<Lit>& clause) {
  std::vector<Lit> sorted = clause;
  std::sort(sorted.begin(), sorted.end());
  ElementHasher eh;
  eh.feed(0xC1A05Eull);  // domain tag: OR-clause
  eh.feed(sorted.size());
  for (Lit l : sorted) eh.feed(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(l.index())));
  // Two independently re-mixed lanes: a multiset collision must defeat two
  // unrelated sums simultaneously.
  bag_lo_ += eh.h;
  bag_hi_ += mix64(eh.h);
  ++bag_count_;
}

void FingerprintBuilder::add_xor(const XorConstraint& x) {
  std::vector<Var> sorted = x.vars;
  std::sort(sorted.begin(), sorted.end());
  ElementHasher eh;
  eh.feed(0x0Full);  // domain tag: XOR constraint
  eh.feed(x.rhs ? 1 : 0);
  eh.feed(sorted.size());
  for (Var v : sorted) eh.feed(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(v)));
  bag_lo_ += eh.h;
  bag_hi_ += mix64(eh.h);
  ++bag_count_;
}

void FingerprintBuilder::add_ordered_clause(const std::vector<Lit>& clause) {
  add_scalar(0x5EBull);  // framing tag: keeps [a][b,c] distinct from [a,b][c]
  add_scalar(clause.size());
  for (Lit l : clause)
    add_scalar(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(l.index())));
}

Fingerprint FingerprintBuilder::digest() const {
  // Fold the chain and the bags so that every accumulator influences both
  // output words; re-mix per word with distinct tweaks.
  const std::uint64_t a = seq_;
  const std::uint64_t b = bag_lo_;
  const std::uint64_t c = bag_hi_;
  const std::uint64_t d = bag_count_;
  Fingerprint f;
  f.hi = mix64(a ^ mix64(b ^ mix64(d)));
  f.lo = mix64(c ^ mix64(a + 0x1234567ull) ^ b);
  return f;
}

void fold_cnf(FingerprintBuilder& fb, const Cnf& cnf) {
  fb.add_scalar(static_cast<std::uint64_t>(cnf.num_vars()));
  fb.add_scalar(cnf.num_clauses());
  fb.add_scalar(cnf.num_xors());
  for (const auto& c : cnf.clauses()) fb.add_clause(c);
  for (const auto& x : cnf.xors()) fb.add_xor(x);
  // The sampling set changes what counting and sampling *mean*; declared-
  // as-full and undeclared hash identically on purpose (sampling_set_or_all
  // is what every algorithm consumes).
  const std::vector<Var> ss = cnf.sampling_set_or_all();
  fb.add_scalar(ss.size());
  for (Var v : ss)
    fb.add_scalar(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}

Fingerprint fingerprint_cnf(const Cnf& cnf) {
  FingerprintBuilder fb;
  fold_cnf(fb, cnf);
  return fb.digest();
}

}  // namespace unigen
