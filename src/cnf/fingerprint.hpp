#pragma once
// Canonical formula fingerprints — the keying primitive of the session
// server (service/session_registry.hpp).
//
// A serving system wants one prepared session per *formula*, not per
// request, and the same formula arrives in many syntactic guises: clauses
// in a different order, literals permuted within a clause, a different
// DIMACS writer.  The fingerprint is therefore order-independent where
// presentation can vary and order-sensitive where order is meaning:
//
//   * clauses and XOR constraints form an unordered multiset — each is
//     hashed with its literals sorted, and the per-element hashes combine
//     commutatively (wrapping sums over two independently mixed lanes, so
//     duplicate clauses still count and a swapped pair cannot cancel the
//     way XOR-folding would);
//   * scalars that carry meaning in sequence (variable counts, the sorted
//     sampling set, option values, the simplifier's reconstruction stack)
//     fold order-sensitively into a running splitmix chain.
//
// Two formulas with equal fingerprints have the same clause multiset, the
// same XOR multiset, the same variable space and the same sampling set —
// hence the same model set and the same witness set, which is what makes a
// fingerprint hit safe to serve from a cached session.  The 128-bit digest
// makes accidental collision (~2^-64 per pair) a non-concern at any
// realistic registry size; adversarial inputs are out of scope (this is a
// cache key, not a MAC).

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/types.hpp"

namespace unigen {

/// 128-bit digest; value type with equality, usable as a hash-map key via
/// Fingerprint::Hash.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint&) const = default;

  /// 32 hex digits, hi then lo — the stable spelling for logs and JSON.
  std::string hex() const;

  struct Hash {
    std::size_t operator()(const Fingerprint& f) const noexcept {
      // The lanes are already well mixed; fold them.
      return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9E3779B97F4A7C15ull));
    }
  };
};

/// Incremental fingerprint accumulator.  add_clause/add_xor contribute to
/// the commutative bags (call order irrelevant); add_scalar and
/// add_ordered_clause extend the order-sensitive chain.  digest() may be
/// called at any point and does not reset the builder.
class FingerprintBuilder {
 public:
  /// Order-sensitive scalar fold (counts, options, framing tags).
  void add_scalar(std::uint64_t v);
  /// add_scalar on the raw bits of a double (options like epsilon; NaN
  /// payloads are caller's problem — options are never NaN here).
  void add_double(double v);

  /// One OR-clause into the commutative clause bag; literal order within
  /// the clause is canonicalized by sorting a copy.
  void add_clause(const std::vector<Lit>& clause);
  /// One XOR constraint into the commutative XOR bag (variables sorted).
  void add_xor(const XorConstraint& x);

  /// One clause into the order-sensitive chain (for sequences whose order
  /// is meaning, e.g. the simplifier's reconstruction stack).
  void add_ordered_clause(const std::vector<Lit>& clause);

  Fingerprint digest() const;

 private:
  std::uint64_t seq_ = 0x14DAC14DAC14DACull;  // order-sensitive chain
  std::uint64_t bag_lo_ = 0;                  // commutative lanes
  std::uint64_t bag_hi_ = 0;
  std::uint64_t bag_count_ = 0;
};

/// Fingerprint of a formula as presented: variable space, clause multiset,
/// XOR multiset, and the (sorted) sampling set.  Order-independent across
/// clauses/XORs and across literals within them; `cnf.name` is ignored
/// (presentation, not meaning).
Fingerprint fingerprint_cnf(const Cnf& cnf);

/// Folds the same content into an existing builder (so a caller can chain
/// formula + options + reconstruction data into one digest).
void fold_cnf(FingerprintBuilder& fb, const Cnf& cnf);

}  // namespace unigen
