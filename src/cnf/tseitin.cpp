#include "cnf/tseitin.hpp"

namespace unigen {

TseitinResult tseitin_encode(const Circuit& circuit,
                             const TseitinOptions& options) {
  TseitinResult result;
  Cnf& cnf = result.cnf;

  // One variable per node.  Node 0 (constant false) gets a variable pinned
  // to false so that signal translation stays uniform.
  const std::size_t n = circuit.num_nodes();
  std::vector<Var> node_var(n);
  for (std::size_t i = 0; i < n; ++i) node_var[i] = cnf.new_var();

  auto sig_lit = [&](Circuit::Sig s) {
    return Lit(node_var[Circuit::sig_node(s)], Circuit::sig_negated(s));
  };

  cnf.add_unit(Lit(node_var[0], true));  // constant node is false

  for (std::size_t idx = 1; idx < n; ++idx) {
    const auto& nd = circuit.node(idx);
    const Lit g(node_var[idx], false);
    switch (nd.kind) {
      case Circuit::NodeKind::Input:
        result.input_vars.push_back(node_var[idx]);
        break;
      case Circuit::NodeKind::And: {
        const Lit a = sig_lit(nd.a), b = sig_lit(nd.b);
        cnf.add_binary(~g, a);
        cnf.add_binary(~g, b);
        cnf.add_ternary(g, ~a, ~b);
        break;
      }
      case Circuit::NodeKind::Xor: {
        const Lit a = sig_lit(nd.a), b = sig_lit(nd.b);
        if (options.native_xor_gates) {
          // x_g = (x_a ⊕ s_a) ⊕ (x_b ⊕ s_b)  ⟺  x_g ⊕ x_a ⊕ x_b = s_a ⊕ s_b.
          cnf.add_xor({g.var(), a.var(), b.var()}, a.sign() ^ b.sign());
        } else {
          cnf.add_ternary(~g, a, b);
          cnf.add_ternary(~g, ~a, ~b);
          cnf.add_ternary(g, ~a, b);
          cnf.add_ternary(g, a, ~b);
        }
        break;
      }
      case Circuit::NodeKind::Const:
        break;
    }
  }

  for (const auto o : circuit.outputs()) result.output_lits.push_back(sig_lit(o));
  if (options.assert_outputs) {
    for (const Lit l : result.output_lits) cnf.add_unit(l);
  }
  if (options.mark_inputs_as_sampling_set)
    cnf.set_sampling_set(result.input_vars);
  return result;
}

}  // namespace unigen
