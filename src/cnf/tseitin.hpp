#pragma once
// Tseitin encoding of a Circuit into CNF.
//
// Every circuit node receives one CNF variable; gate semantics become 3–4
// clauses per node.  The resulting CNF's sampling set is set to the primary
// input variables: in any satisfying assignment the auxiliary (gate)
// variables are uniquely determined by the inputs, so the inputs are an
// independent support — the property UniGen relies on (paper Section 4).

#include <vector>

#include "cnf/circuit.hpp"
#include "cnf/cnf.hpp"

namespace unigen {

struct TseitinResult {
  Cnf cnf;
  /// CNF variable of each primary input, in circuit input order.
  std::vector<Var> input_vars;
  /// CNF literal of each primary output, in circuit output order.
  std::vector<Lit> output_lits;
};

struct TseitinOptions {
  /// Add a unit clause asserting every primary output true (the usual way a
  /// constraint circuit becomes a constraint CNF).
  bool assert_outputs = true;
  /// Declare the primary inputs as the CNF sampling set.
  bool mark_inputs_as_sampling_set = true;
  /// Encode XOR gates as native 3-variable XOR constraints (g ⊕ a ⊕ b = c)
  /// instead of 4 OR-clauses.  CryptoMiniSAT recovers exactly these XORs
  /// from the clausal encoding anyway ("xor recovery"); emitting them
  /// natively lets the solver's Gaussian elimination and parity propagation
  /// see the circuit's linear structure, which is essential for refuting
  /// empty hash cells efficiently.
  bool native_xor_gates = true;
};

TseitinResult tseitin_encode(const Circuit& circuit,
                             const TseitinOptions& options = {});

}  // namespace unigen
