#pragma once
// Fundamental SAT types: variables, literals, and three-valued logic.
// Conventions follow MiniSat: a variable is a 0-based index, a literal packs
// variable and sign as 2*var+sign, and `lbool` is {True, False, Undef}.

#include <cassert>
#include <cstdint>
#include <ostream>
#include <vector>

namespace unigen {

using Var = std::int32_t;
inline constexpr Var kNoVar = -1;

/// A literal: variable with polarity.  Internally 2*var + (negated ? 1 : 0).
class Lit {
 public:
  constexpr Lit() : x_(-2) {}
  constexpr Lit(Var v, bool negated) : x_(2 * v + (negated ? 1 : 0)) {
    assert(v >= 0);
  }

  static constexpr Lit from_index(std::int32_t idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }

  /// Parses DIMACS convention: +k is variable k-1 positive, -k negative.
  static constexpr Lit from_dimacs(std::int32_t d) {
    assert(d != 0);
    return d > 0 ? Lit(d - 1, false) : Lit(-d - 1, true);
  }

  constexpr Var var() const { return x_ >> 1; }
  constexpr bool sign() const { return (x_ & 1) != 0; }  // true = negated
  constexpr std::int32_t index() const { return x_; }    // for array indexing
  constexpr std::int32_t to_dimacs() const {
    return sign() ? -(var() + 1) : (var() + 1);
  }

  constexpr Lit operator~() const { return from_index(x_ ^ 1); }
  constexpr bool operator==(const Lit&) const = default;
  constexpr bool operator<(const Lit& o) const { return x_ < o.x_; }

  constexpr bool valid() const { return x_ >= 0; }

 private:
  std::int32_t x_;
};

inline constexpr Lit kUndefLit{};

inline std::ostream& operator<<(std::ostream& os, Lit l) {
  return os << l.to_dimacs();
}

/// Three-valued logic.
enum class lbool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline constexpr lbool to_lbool(bool b) { return b ? lbool::True : lbool::False; }

/// Negation; Undef is a fixed point.
inline constexpr lbool operator~(lbool v) {
  return v == lbool::Undef
             ? lbool::Undef
             : (v == lbool::True ? lbool::False : lbool::True);
}

/// A total assignment (model), indexed by variable.
using Model = std::vector<lbool>;

/// Evaluates a literal under a model.
inline lbool eval(const Model& m, Lit l) {
  const lbool v = m[static_cast<std::size_t>(l.var())];
  return l.sign() ? ~v : v;
}

}  // namespace unigen
