#include "core/kappa_pivot.hpp"

#include <cmath>
#include <stdexcept>

namespace unigen {
namespace {

/// ε as a function of κ; strictly increasing on [0, 1).
double epsilon_of_kappa(double kappa) {
  const double d = 1.0 - kappa;
  return (1.0 + kappa) * (2.23 + 0.48 / (d * d)) - 1.0;
}

}  // namespace

KappaPivot compute_kappa_pivot(double epsilon) {
  if (!(epsilon > kUniGenMinEpsilon))
    throw std::invalid_argument(
        "UniGen requires epsilon > 1.71 (paper Algorithm 2)");

  // Bisection on the monotone map κ -> ε(κ) over [0, 1).
  double lo = 0.0, hi = 1.0 - 1e-12;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (epsilon_of_kappa(mid) < epsilon)
      lo = mid;
    else
      hi = mid;
  }
  KappaPivot result;
  result.kappa = 0.5 * (lo + hi);

  const double inv = 1.0 + 1.0 / result.kappa;
  result.pivot = static_cast<std::uint64_t>(
      std::ceil(3.0 * std::exp(0.5) * inv * inv));
  // Algorithm 2's acceptance band is √2 wider than [pivot/(1+κ),
  // (1+κ)·pivot] on each side; dropping the √2 factors rejects cells the
  // analysis counts as good and voids the Theorem-1 uniformity bound.
  const double sqrt2 = std::sqrt(2.0);
  result.hi_thresh = static_cast<std::uint64_t>(
      std::ceil(1.0 + sqrt2 * (1.0 + result.kappa) *
                          static_cast<double>(result.pivot)));
  result.lo_thresh =
      static_cast<double>(result.pivot) / (sqrt2 * (1.0 + result.kappa));
  return result;
}

}  // namespace unigen
