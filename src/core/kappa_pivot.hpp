#pragma once
// ComputeKappaPivot (paper Algorithm 2) and the derived cell-size
// thresholds of Algorithm 1:
//
//   find κ ∈ [0,1)  with  ε = (1+κ)(2.23 + 0.48/(1−κ)²) − 1
//   pivot    = ⌈3·e^{1/2}·(1 + 1/κ)²⌉
//   hiThresh = ⌈1 + √2·(1+κ)·pivot⌉
//   loThresh = pivot / (√2·(1+κ))
//
// The tolerance must exceed 1.71: at κ → 0 the defining expression evaluates
// to 1.71, so smaller ε admits no κ (the paper's "for technical reasons").

#include <cstdint>

namespace unigen {

/// Smallest usable tolerance (exclusive bound).
inline constexpr double kUniGenMinEpsilon = 1.71;

struct KappaPivot {
  double kappa = 0.0;
  std::uint64_t pivot = 0;
  /// Cell-size acceptance window: loThresh <= |cell| <= hiThresh.
  double lo_thresh = 0.0;
  std::uint64_t hi_thresh = 0;
};

/// Throws std::invalid_argument when epsilon <= 1.71.
KappaPivot compute_kappa_pivot(double epsilon);

}  // namespace unigen
