#pragma once
// Common interface for probabilistic witness generators (paper Section 2).
// All samplers in src/core/ — UniGen, UniWit, XORSample', and the ideal US —
// implement it, which is what lets the benchmark harnesses compare them
// uniformly.

#include <string>

#include "cnf/types.hpp"

namespace unigen {

struct SampleResult {
  enum class Status {
    kOk,         ///< `witness` holds a satisfying assignment
    kFail,       ///< the generator returned ⊥ (allowed; bounded probability)
    kTimeout,    ///< a resource budget expired
    kUnsat,      ///< the formula has no witnesses
    kCancelled,  ///< the caller's cancellation token fired
  };
  Status status = Status::kFail;
  Model witness;

  bool ok() const { return status == Status::kOk; }

  static SampleResult failure() { return {}; }
  static SampleResult timeout() {
    SampleResult r;
    r.status = Status::kTimeout;
    return r;
  }
  static SampleResult cancelled() {
    SampleResult r;
    r.status = Status::kCancelled;
    return r;
  }
  static SampleResult unsat() {
    SampleResult r;
    r.status = Status::kUnsat;
    return r;
  }
  static SampleResult success(Model witness) {
    SampleResult r;
    r.status = Status::kOk;
    r.witness = std::move(witness);
    return r;
  }
};

class WitnessSampler {
 public:
  virtual ~WitnessSampler() = default;

  /// One-time per-formula work (UniGen lines 1–11).  Returns false when the
  /// sampler could not get ready within its budgets; sample() then reports
  /// kTimeout.  Idempotent.
  virtual bool prepare() = 0;

  /// Draws one witness (UniGen lines 12–22).
  virtual SampleResult sample() = 0;

  virtual std::string name() const = 0;
};

}  // namespace unigen
