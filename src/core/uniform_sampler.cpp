#include "core/uniform_sampler.hpp"

#include "sat/enumerator.hpp"

namespace unigen {

UniformSampler::UniformSampler(Cnf cnf, UniformSamplerOptions options,
                               Rng& rng)
    : cnf_(std::move(cnf)),
      sampling_set_(cnf_.sampling_set_or_all()),
      options_(options),
      rng_(rng) {}

bool UniformSampler::prepare() {
  if (prepared_) return !timed_out_;
  prepared_ = true;
  const Deadline deadline = Deadline::in_seconds(options_.timeout_s);

  // Prefer materialization: it both counts and enables witness output.
  {
    Solver solver;
    solver.load(cnf_);
    EnumerateOptions eopts;
    eopts.max_models = options_.materialize_bound + 1;
    eopts.deadline = deadline;
    eopts.projection = sampling_set_;
    eopts.store_models = true;
    const EnumerateResult r = enumerate_models(solver, eopts);
    if (r.timed_out) {
      timed_out_ = true;
      return false;
    }
    if (r.exhausted) {
      models_ = r.models;
      count_ = BigUint(r.count);
      materialized_ = true;
      return true;
    }
  }

  // Too many witnesses to materialize: exact count only.  Note the counter
  // works over the full variable space; with S an independent support this
  // equals the projected count.
  ExactCounterOptions copts;
  copts.deadline = deadline;
  ExactCounter counter(copts);
  const auto counted = counter.count(cnf_);
  if (!counted.has_value()) {
    timed_out_ = true;
    return false;
  }
  count_ = *counted;
  return true;
}

SampleResult UniformSampler::sample() {
  if (!prepare()) return SampleResult::timeout();
  if (count_.is_zero()) return SampleResult::unsat();
  if (!materialized_) return SampleResult::failure();
  const auto j = rng_.below(models_.size());
  return SampleResult::success(models_[j]);
}

BigUint UniformSampler::sample_index() {
  if (!prepare() || count_.is_zero()) return BigUint{};
  return BigUint::random_below(count_, rng_);
}

}  // namespace unigen
