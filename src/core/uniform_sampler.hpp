#pragma once
// US — the ideal uniform sampler of paper Section 5 (Figure 1's reference).
//
// Exactly as in the paper: US first determines |R_F| with an exact model
// counter (our DPLL# counter standing in for sharpSAT), then "to mimic
// generating a random witness, US simply generates a random number i in
// {1 ... |R_F|}".  For small solution spaces we additionally materialize the
// witness list by enumeration, so sample() can return real witnesses; for
// large spaces only sample_index() is available (which is all the
// uniformity experiment needs).

#include <cstdint>
#include <optional>
#include <vector>

#include "cnf/cnf.hpp"
#include "core/sampler.hpp"
#include "counting/exact_counter.hpp"
#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace unigen {

struct UniformSamplerOptions {
  /// Materialize witnesses when |R_F| (projected on S) is at most this.
  std::uint64_t materialize_bound = 1u << 17;
  double timeout_s = 72000.0;
};

class UniformSampler final : public WitnessSampler {
 public:
  UniformSampler(Cnf cnf, UniformSamplerOptions options, Rng& rng);

  /// Runs the exact counter (and the enumeration when small enough).
  bool prepare() override;
  /// Returns a real witness in materialized mode; kFail otherwise (use
  /// sample_index() for index-only mode).
  SampleResult sample() override;
  std::string name() const override { return "US"; }

  /// |R_F| projected onto the sampling set (== |R_F| when S is an
  /// independent support).  Valid after prepare().
  const BigUint& count() const { return count_; }

  /// Uniform index in [0, count) — the paper's "random number i".
  BigUint sample_index();

  bool materialized() const { return materialized_; }

 private:
  Cnf cnf_;
  std::vector<Var> sampling_set_;
  UniformSamplerOptions options_;
  Rng& rng_;
  bool prepared_ = false;
  bool timed_out_ = false;
  bool materialized_ = false;
  BigUint count_;
  std::vector<Model> models_;
};

}  // namespace unigen
