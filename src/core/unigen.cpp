#include "core/unigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hashing/xor_hash.hpp"
#include "obs/trace.hpp"
#include "service/worker_pool.hpp"
#include "util/timer.hpp"

namespace unigen {
namespace {

/// Lexicographic order on equal-length total assignments.  lbool's
/// underlying values (False=0, True=1) make this the natural 0/1-string
/// order over the formula variables.
bool model_lex_less(const Model& a, const Model& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](lbool x, lbool y) {
        return static_cast<std::uint8_t>(x) < static_cast<std::uint8_t>(y);
      });
}

/// Copies the engine counters of `engine` into `stats` (totals, not
/// deltas: the engine already accumulates across rebuilds).
void sync_engine_stats(const IncrementalBsat& engine, UniGenStats& stats) {
  const SolverStats st = engine.stats();
  stats.solver_rebuilds = st.solver_rebuilds;
  stats.reused_solves = st.reused_solves;
  stats.retracted_blocks = st.retracted_blocks;
  stats.solver_propagations = st.propagations + st.xor_propagations;
}

}  // namespace

std::unique_ptr<IncrementalBsat> unigen_prepare(
    const Cnf& cnf, const std::vector<Var>& sampling_set,
    const UniGenOptions& options, Rng& rng, UniGenPrepared& prep,
    UniGenStats& stats) {
  const Stopwatch watch;
  // prepare_timeout_s, tightened by the caller's overall anytime deadline
  // when that one is nearer.
  Deadline deadline = Deadline::in_seconds(options.prepare_timeout_s);
  if (options.budget.deadline.armed() &&
      options.budget.deadline.remaining_seconds() <
          deadline.remaining_seconds())
    deadline = options.budget.deadline;

  // Lines 1–3: thresholds.
  prep.kp = compute_kappa_pivot(options.epsilon);
  stats.kappa = prep.kp.kappa;
  stats.pivot = prep.kp.pivot;
  stats.hi_thresh = prep.kp.hi_thresh;
  stats.lo_thresh = prep.kp.lo_thresh;

  // Count-safe simplification, once per formula: every cell enumerated
  // below — prepare's easy-case check, the ApproxMC call, and all
  // accept_cell engines (single-instance and pool workers) — runs on the
  // shrunk formula.  |R_S| is invariant, so thresholds, q and acceptance
  // statistics are untouched; witnesses are reconstructed back onto the
  // original formula before anything leaves this layer.
  // Precondition (header contract): `sampling_set` is the formula's
  // effective sampling set.  Everything downstream assumes the two agree —
  // the Simplifier freezes it, and the nested approx_count projects over
  // the formula's own declared set.  Checked in all build types: the
  // silent failure mode (wrong q/thresholds) is far worse than the one
  // O(|S|) comparison per prepare.
  if (sampling_set != cnf.sampling_set_or_all())
    throw std::invalid_argument(
        "unigen_prepare: sampling_set must equal the formula's "
        "sampling_set_or_all()");
  if (options.simplify.enabled) {
    // A presimplified pipeline (the registry ran one to compute the session
    // key) is adopted as-is — the pipeline is deterministic, so this is the
    // same object a fresh run would produce, minus the second run.
    prep.simplifier =
        options.presimplified != nullptr
            ? options.presimplified
            : std::make_shared<const Simplifier>(cnf, options.simplify,
                                                 sampling_set);
    stats.simplify = prep.simplifier->stats();
  }
  const Cnf& formula = prep.formula(cnf);

  // Lines 4–7: the easy case — enumerate up to hiThresh+1 witnesses; when
  // at most hiThresh exist, uniform sampling is exact.  This builds the
  // persistent engine a later accept_cell can reuse; the blocking clauses
  // of the check are retracted, so the hashed queries start from the
  // unblocked formula plus whatever the solver learnt here.
  auto engine = std::make_unique<IncrementalBsat>(formula, sampling_set);
  {
    // The caller's cancellation token rides along with the (already
    // combined) deadline, so a service-level cut interrupts the one-time
    // phase too.
    ProbeLimits limits;
    limits.deadline = deadline;
    limits.cancel = options.budget.cancel != nullptr
                        ? options.budget.cancel->flag()
                        : nullptr;
    EnumerateResult r =
        engine->enumerate_cell(0, prep.kp.hi_thresh + 1, limits, true);
    ++stats.prepare_bsat_calls;
    sync_engine_stats(*engine, stats);
    if (r.timed_out || r.cancelled) {
      prep.mode = UniGenPrepared::Mode::kTimedOut;
      stats.prepare_seconds = watch.seconds();
      return nullptr;
    }
    if (r.count == 0) {
      prep.mode = UniGenPrepared::Mode::kUnsat;
      stats.prepare_seconds = watch.seconds();
      return nullptr;  // no hashed query will ever run
    }
    if (r.count <= prep.kp.hi_thresh) {
      prep.trivial_models =
          project_models_to_formula(std::move(r.models), cnf.num_vars());
      if (prep.simplifier)
        prep.trivial_models =
            prep.simplifier->extend_models(std::move(prep.trivial_models));
      // Canonical order: trivial_models[j] must denote the same witness no
      // matter which solver history produced the enumeration.
      std::sort(prep.trivial_models.begin(), prep.trivial_models.end(),
                model_lex_less);
      stats.trivial = true;
      prep.mode = UniGenPrepared::Mode::kTrivial;
      stats.prepare_seconds = watch.seconds();
      return nullptr;
    }
  }

  // The counter→sampler warm handoff: the instance is hashed, so the
  // embedding's pool (when it wired one through) starts *now* — worker 0
  // adopting the easy-case engine — and the ApproxMC call below fans its
  // iterations across those same workers.  Every engine the count builds
  // and warms keeps serving samples for the pool's lifetime; nothing is
  // discarded between the two phases.
  WorkerPool* pool = options.shared_pool;
  if (pool != nullptr)
    pool->start(formula, sampling_set, std::move(engine));

  // Lines 9–10: C <- ApproxModelCounter(F, 0.8, 0.8);
  //             q <- ceil(log C + log 1.8 - log pivot)    (logs base 2).
  ApproxMcOptions amc;
  amc.epsilon = options.counter_epsilon;
  amc.delta = 1.0 - options.counter_confidence;
  amc.budget.deadline = deadline;
  amc.budget.bsat_timeout_s = options.bsat_timeout_s;
  // Cancellation reaches the nested count; the deterministic per-request
  // knobs (max_bsat_calls, fault) deliberately do not — they are scoped to
  // sampling requests, and a fault plan keyed by request streams must not
  // also fire inside prepare's iteration-keyed count.
  amc.budget.cancel = options.budget.cancel;
  // 0 = "embedding decides"; for a caller that did not wire a pool through
  // (plain UniGen), that is the serial in-place path.  SamplerPool::prepare
  // resolves 0 to its own width before calling here.  With a shared pool
  // the pool's width rules and num_threads is ignored.
  amc.num_threads =
      options.counter_threads == 0 ? 1 : options.counter_threads;
  amc.shared_pool = pool;
  amc.simplify.enabled = false;  // `formula` is already simplified
  const ApproxMcResult count = approx_count(formula, amc, rng);
  stats.prepare_bsat_calls += count.bsat_calls;
  stats.counter_solver_rebuilds = count.solver_rebuilds;
  if (!count.valid) {
    prep.mode = UniGenPrepared::Mode::kTimedOut;
    stats.prepare_seconds = watch.seconds();
    return nullptr;
  }
  prep.approx_log2_count = count.log2_value();
  stats.approx_log2_count = prep.approx_log2_count;
  prep.q = static_cast<int>(std::ceil(
      prep.approx_log2_count + std::log2(1.8) -
      std::log2(static_cast<double>(prep.kp.pivot))));
  stats.q = prep.q;

  prep.mode = UniGenPrepared::Mode::kHashed;
  stats.prepare_seconds = watch.seconds();
  return engine;
}

AcceptCellResult unigen_accept_cell(IncrementalBsat& engine,
                                    const std::vector<Var>& sampling_set,
                                    const UniGenPrepared& prep,
                                    const UniGenOptions& options,
                                    Var formula_vars, Rng& rng,
                                    UniGenStats& stats,
                                    std::uint64_t fault_key) {
  // Lines 12–17.  i ranges over {q-3, ..., q}, clamped to valid hash sizes.
  AcceptCellResult out;
  // Observability only: one span per sampling request, tagged with the
  // request's stream/fault key.  Strictly outside every RNG draw.
  obs::Span request_span("sample.request");
  request_span.set_value(fault_key);
  const Budget& budget = options.budget;
  // Per-request wall deadline: sample_timeout_s tightened by the overall
  // anytime deadline when that one is nearer.
  Deadline deadline = Deadline::in_seconds(options.sample_timeout_s);
  if (budget.deadline.armed() &&
      budget.deadline.remaining_seconds() < deadline.remaining_seconds())
    deadline = budget.deadline;
  const int n = static_cast<int>(sampling_set.size());
  const int i_last = std::clamp(prep.q, 1, n);
  const int i_first = std::clamp(prep.q - 3, 1, i_last);
  // Per-request probe ordinal: the deterministic-unit ledger and the fault
  // plan's call index in one.  Counting probes (not attempts) keeps the
  // ordinal a pure function of the request's stream.
  std::uint64_t calls = 0;

  for (int i = i_first; i <= i_last; ++i) {
    for (;;) {  // BSAT-timeout retry loop: repeat lines 14-16 with same i
      if (budget.cancelled()) {
        out.status = RequestStatus::kCancelled;
        return out;
      }
      if (deadline.expired() ||
          (budget.max_bsat_calls != 0 && calls >= budget.max_bsat_calls)) {
        out.status = RequestStatus::kTimedOut;
        return out;
      }

      // Observability only: one span per probe attempt (hash draw + BSAT),
      // tagged with the candidate hash count i.
      obs::Span probe_span("hash.probe");
      probe_span.set_value(static_cast<std::uint64_t>(i));

      // Lines 14–15: random h from H_xor(|S|, i, 3), random α.
      const XorHash hash =
          draw_xor_hash(sampling_set, static_cast<std::size_t>(i), rng);
      stats.total_xor_rows += hash.m();
      stats.total_xor_row_length +=
          hash.average_row_length() * static_cast<double>(hash.m());

      // A scheduled fault is a probe that "ran" and returned Undef: it
      // charges a unit and drives the same Section-5 retry (same i, fresh
      // hash) a real timeout would, deterministically.
      if (budget.fault_fires(fault_key, calls)) {
        ++calls;
        ++stats.sample_bsat_calls;
        ++stats.bsat_timeout_retries;
        continue;
      }

      // Line 16: Y <- BSAT(F ∧ (h = α), hiThresh), on the persistent
      // engine: the rows go in absorber-activated (the previous attempt's
      // rows become inert), so no CNF copy and no solver rebuild happens —
      // and everything learnt in earlier samples keeps working for us.
      engine.begin_hash();
      engine.push_rows(hash);
      ProbeLimits limits;
      limits.deadline = Deadline::in_seconds(std::min(
          options.bsat_timeout_s, deadline.remaining_seconds()));
      limits.conflict_budget = budget.conflicts_per_call;
      limits.cancel = budget.cancel != nullptr ? budget.cancel->flag()
                                               : nullptr;
      EnumerateResult r = engine.enumerate_cell(
          static_cast<std::size_t>(i), prep.kp.hi_thresh + 1, limits, true);
      ++calls;
      ++stats.sample_bsat_calls;
      sync_engine_stats(engine, stats);

      if (r.cancelled) {
        out.status = RequestStatus::kCancelled;
        return out;
      }
      if (r.timed_out) {
        ++stats.bsat_timeout_retries;
        continue;  // same i, fresh hash (paper Section 5)
      }
      // Line 17 acceptance test: loThresh <= |Y| <= hiThresh.
      if (static_cast<double>(r.count) >= prep.kp.lo_thresh &&
          r.count <= prep.kp.hi_thresh) {
        std::vector<Model> cell =
            project_models_to_formula(std::move(r.models), formula_vars);
        // Witnesses of the simplified formula become witnesses of the
        // original: BVE'd variables get their reconstructed values.
        if (prep.simplifier)
          cell = prep.simplifier->extend_models(std::move(cell));
        // Canonical order (see the header contract): the index a caller's
        // RNG then draws selects the same witness on every replica.
        std::sort(cell.begin(), cell.end(), model_lex_less);
        out.status = RequestStatus::kComplete;
        out.cell = std::move(cell);
        return out;
      }
      break;  // cell out of range: next i
    }
  }
  out.status = RequestStatus::kFailed;  // line 19: ⊥
  return out;
}

SampleResult::Status sample_status_from_request(RequestStatus status) {
  switch (status) {
    case RequestStatus::kComplete:
      return SampleResult::Status::kOk;
    case RequestStatus::kTimedOut:
      return SampleResult::Status::kTimeout;
    case RequestStatus::kCancelled:
      return SampleResult::Status::kCancelled;
    default:
      return SampleResult::Status::kFail;  // ⊥ (kFailed / kPartial)
  }
}

Model unigen_trivial_single(const UniGenPrepared& prep, Rng& rng) {
  return prep.trivial_models[rng.below(prep.trivial_models.size())];
}

std::vector<Model> unigen_trivial_batch(const UniGenPrepared& prep,
                                        std::size_t max_batch, Rng& rng) {
  std::vector<std::size_t> order(prep.trivial_models.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  rng.shuffle(order);
  const std::size_t take = std::min(max_batch, prep.trivial_models.size());
  std::vector<Model> batch;
  batch.reserve(take);
  for (std::size_t k = 0; k < take; ++k)
    batch.push_back(prep.trivial_models[order[k]]);
  return batch;
}

UniGen::UniGen(Cnf cnf, UniGenOptions options, Rng& rng)
    : cnf_(std::move(cnf)),
      sampling_set_(cnf_.sampling_set_or_all()),
      options_(options),
      rng_(rng) {}

bool UniGen::prepare() {
  if (prepared_) return prep_.usable();
  engine_ = unigen_prepare(cnf_, sampling_set_, options_, rng_, prep_, stats_);
  prepared_ = true;
  return prep_.usable();
}

SampleResult UniGen::sample() {
  if (!prepared_ && !prepare()) {
    ++stats_.samples_requested;
    ++stats_.samples_timed_out;
    return SampleResult::timeout();
  }
  ++stats_.samples_requested;
  const Stopwatch watch;
  SampleResult result;
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      result = SampleResult::unsat();
      break;
    case UniGenPrepared::Mode::kTimedOut:
      result = SampleResult::timeout();
      break;
    case UniGenPrepared::Mode::kTrivial:
      // Lines 5–7: a uniformly random element of the full witness list.
      result = SampleResult::success(unigen_trivial_single(prep_, rng_));
      break;
    case UniGenPrepared::Mode::kHashed:
      result = sample_hashed();
      break;
  }
  stats_.sample_seconds += watch.seconds();
  switch (result.status) {
    case SampleResult::Status::kOk:
      ++stats_.samples_ok;
      break;
    case SampleResult::Status::kFail:
      ++stats_.samples_failed;
      break;
    case SampleResult::Status::kTimeout:
      ++stats_.samples_timed_out;
      break;
    case SampleResult::Status::kCancelled:
      ++stats_.samples_cancelled;
      break;
    case SampleResult::Status::kUnsat:
      break;
  }
  return result;
}

AcceptCellResult UniGen::accept_cell() {
  // Fault plans see request ordinals: the k-th hashed request of this
  // instance reports as key k-1 (requested was already bumped), matching
  // the pool's stream-keyed convention.
  return unigen_accept_cell(*engine_, sampling_set_, prep_, options_,
                            cnf_.num_vars(), rng_, stats_,
                            stats_.samples_requested - 1);
}

SampleResult UniGen::sample_hashed() {
  AcceptCellResult r = accept_cell();
  if (r.ok()) {
    // Lines 21–22: uniform element of the cell.
    const auto j = rng_.below(r.cell.size());
    return SampleResult::success(std::move(r.cell[j]));
  }
  SampleResult out;
  out.status = sample_status_from_request(r.status);
  return out;
}

std::vector<Model> UniGen::sample_batch(std::size_t max_batch) {
  if (max_batch == 0) return {};
  if (!prepared_ && !prepare()) {
    ++stats_.samples_requested;
    ++stats_.samples_timed_out;
    return {};
  }
  // One batch request is one line-12–22 run: account it exactly like
  // sample() so success_rate() means the same thing on both paths.
  ++stats_.samples_requested;
  const Stopwatch watch;
  std::vector<Model> batch;
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      break;  // like sample(): kUnsat is neither success nor failure
    case UniGenPrepared::Mode::kTimedOut:
      ++stats_.samples_timed_out;
      break;
    case UniGenPrepared::Mode::kTrivial:
      batch = unigen_trivial_batch(prep_, max_batch, rng_);
      ++stats_.samples_ok;
      break;
    case UniGenPrepared::Mode::kHashed: {
      AcceptCellResult r = accept_cell();
      if (r.status == RequestStatus::kCancelled) {
        ++stats_.samples_cancelled;
        break;
      }
      if (r.status == RequestStatus::kTimedOut) {
        ++stats_.samples_timed_out;
        break;
      }
      if (!r.ok()) {
        ++stats_.samples_failed;  // ⊥, distinct from a timeout
        break;
      }
      rng_.shuffle(r.cell);
      if (r.cell.size() > max_batch) r.cell.resize(max_batch);
      batch = std::move(r.cell);
      ++stats_.samples_ok;
      break;
    }
  }
  stats_.sample_seconds += watch.seconds();
  return batch;
}

}  // namespace unigen
