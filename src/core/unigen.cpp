#include "core/unigen.hpp"

#include <algorithm>
#include <cmath>

#include "hashing/xor_hash.hpp"
#include "util/timer.hpp"

namespace unigen {

UniGen::UniGen(Cnf cnf, UniGenOptions options, Rng& rng)
    : cnf_(std::move(cnf)),
      sampling_set_(cnf_.sampling_set_or_all()),
      options_(options),
      rng_(rng) {}

void UniGen::sync_engine_stats() {
  if (!engine_) return;
  const SolverStats st = engine_->stats();
  stats_.solver_rebuilds = st.solver_rebuilds;
  stats_.reused_solves = st.reused_solves;
  stats_.retracted_blocks = st.retracted_blocks;
}

bool UniGen::prepare() {
  if (mode_ != Mode::kUnprepared) return mode_ != Mode::kTimedOut;
  const Stopwatch watch;
  const Deadline deadline = Deadline::in_seconds(options_.prepare_timeout_s);

  // Lines 1–3: thresholds.
  kp_ = compute_kappa_pivot(options_.epsilon);
  stats_.kappa = kp_.kappa;
  stats_.pivot = kp_.pivot;
  stats_.hi_thresh = kp_.hi_thresh;
  stats_.lo_thresh = kp_.lo_thresh;

  // Lines 4–7: the easy case — enumerate up to hiThresh+1 witnesses; when
  // at most hiThresh exist, uniform sampling is exact.  This builds the
  // persistent engine that every later accept_cell reuses; the blocking
  // clauses of the check are retracted, so the hashed queries start from
  // the unblocked formula plus whatever the solver learnt here.
  engine_ = std::make_unique<IncrementalBsat>(cnf_, sampling_set_);
  {
    EnumerateResult r =
        engine_->enumerate_cell(0, kp_.hi_thresh + 1, deadline, true);
    ++stats_.prepare_bsat_calls;
    sync_engine_stats();
    if (r.timed_out) {
      mode_ = Mode::kTimedOut;
      stats_.prepare_seconds = watch.seconds();
      return false;
    }
    if (r.count == 0) {
      engine_.reset();  // no hashed query will ever run
      mode_ = Mode::kUnsat;
      stats_.prepare_seconds = watch.seconds();
      return true;
    }
    if (r.count <= kp_.hi_thresh) {
      trivial_models_ =
          project_models_to_formula(std::move(r.models), cnf_.num_vars());
      engine_.reset();
      stats_.trivial = true;
      mode_ = Mode::kTrivial;
      stats_.prepare_seconds = watch.seconds();
      return true;
    }
  }

  // Lines 9–10: C <- ApproxModelCounter(F, 0.8, 0.8);
  //             q <- ceil(log C + log 1.8 - log pivot)    (logs base 2).
  ApproxMcOptions amc;
  amc.epsilon = options_.counter_epsilon;
  amc.delta = 1.0 - options_.counter_confidence;
  amc.deadline = deadline;
  amc.bsat_timeout_s = options_.bsat_timeout_s;
  const ApproxMcResult count = approx_count(cnf_, amc, rng_);
  stats_.prepare_bsat_calls += count.bsat_calls;
  stats_.counter_solver_rebuilds = count.solver_rebuilds;
  if (!count.valid) {
    mode_ = Mode::kTimedOut;
    stats_.prepare_seconds = watch.seconds();
    return false;
  }
  stats_.approx_log2_count = count.log2_value();
  stats_.q = static_cast<int>(std::ceil(
      count.log2_value() + std::log2(1.8) -
      std::log2(static_cast<double>(kp_.pivot))));

  mode_ = Mode::kHashed;
  stats_.prepare_seconds = watch.seconds();
  return true;
}

SampleResult UniGen::sample() {
  if (mode_ == Mode::kUnprepared && !prepare()) {
    ++stats_.samples_requested;
    ++stats_.samples_timed_out;
    return SampleResult::timeout();
  }
  ++stats_.samples_requested;
  const Stopwatch watch;
  SampleResult result;
  switch (mode_) {
    case Mode::kUnsat:
      result = SampleResult::unsat();
      break;
    case Mode::kTimedOut:
      result = SampleResult::timeout();
      break;
    case Mode::kTrivial: {
      // Lines 5–7: a uniformly random element of the full witness list.
      const auto j = rng_.below(trivial_models_.size());
      result = SampleResult::success(trivial_models_[j]);
      break;
    }
    case Mode::kHashed:
      result = sample_hashed();
      break;
    case Mode::kUnprepared:
      result = SampleResult::timeout();  // unreachable
      break;
  }
  stats_.sample_seconds += watch.seconds();
  switch (result.status) {
    case SampleResult::Status::kOk:
      ++stats_.samples_ok;
      break;
    case SampleResult::Status::kFail:
      ++stats_.samples_failed;
      break;
    case SampleResult::Status::kTimeout:
      ++stats_.samples_timed_out;
      break;
    case SampleResult::Status::kUnsat:
      break;
  }
  return result;
}

std::vector<Model> UniGen::accept_cell(bool& timed_out) {
  // Lines 12–17.  i ranges over {q-3, ..., q}, clamped to valid hash sizes.
  timed_out = false;
  const Deadline deadline = Deadline::in_seconds(options_.sample_timeout_s);
  const int n = static_cast<int>(sampling_set_.size());
  const int i_last = std::clamp(stats_.q, 1, n);
  const int i_first = std::clamp(stats_.q - 3, 1, i_last);

  for (int i = i_first; i <= i_last; ++i) {
    for (;;) {  // BSAT-timeout retry loop: repeat lines 14-16 with same i
      if (deadline.expired()) {
        timed_out = true;
        return {};
      }

      // Lines 14–15: random h from H_xor(|S|, i, 3), random α.
      const XorHash hash =
          draw_xor_hash(sampling_set_, static_cast<std::size_t>(i), rng_);
      stats_.total_xor_rows += hash.m();
      stats_.total_xor_row_length +=
          hash.average_row_length() * static_cast<double>(hash.m());

      // Line 16: Y <- BSAT(F ∧ (h = α), hiThresh), on the persistent
      // engine: the rows go in absorber-activated (the previous attempt's
      // rows become inert), so no CNF copy and no solver rebuild happens —
      // and everything learnt in earlier samples keeps working for us.
      engine_->begin_hash();
      engine_->push_rows(hash);
      const double budget = std::min(options_.bsat_timeout_s,
                                     deadline.remaining_seconds());
      EnumerateResult r = engine_->enumerate_cell(
          static_cast<std::size_t>(i), kp_.hi_thresh + 1,
          Deadline::in_seconds(budget), true);
      ++stats_.sample_bsat_calls;
      sync_engine_stats();

      if (r.timed_out) {
        ++stats_.bsat_timeout_retries;
        continue;  // same i, fresh hash (paper Section 5)
      }
      // Line 17 acceptance test: loThresh <= |Y| <= hiThresh.
      if (static_cast<double>(r.count) >= kp_.lo_thresh &&
          r.count <= kp_.hi_thresh) {
        return project_models_to_formula(std::move(r.models), cnf_.num_vars());
      }
      break;  // cell out of range: next i
    }
  }
  return {};  // line 19: ⊥
}

SampleResult UniGen::sample_hashed() {
  bool timed_out = false;
  std::vector<Model> cell = accept_cell(timed_out);
  if (timed_out) return SampleResult::timeout();
  if (cell.empty()) return SampleResult::failure();
  // Lines 21–22: uniform element of the cell.
  const auto j = rng_.below(cell.size());
  return SampleResult::success(std::move(cell[j]));
}

std::vector<Model> UniGen::sample_batch(std::size_t max_batch) {
  if (max_batch == 0) return {};
  if (mode_ == Mode::kUnprepared && !prepare()) return {};
  switch (mode_) {
    case Mode::kUnsat:
    case Mode::kTimedOut:
      return {};
    case Mode::kTrivial: {
      // A uniform subset of the full witness list.
      std::vector<std::size_t> order(trivial_models_.size());
      for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
      rng_.shuffle(order);
      std::vector<Model> batch;
      const std::size_t take = std::min(max_batch, trivial_models_.size());
      batch.reserve(take);
      for (std::size_t k = 0; k < take; ++k)
        batch.push_back(trivial_models_[order[k]]);
      return batch;
    }
    case Mode::kHashed:
      break;
    case Mode::kUnprepared:
      return {};  // unreachable
  }
  bool timed_out = false;
  std::vector<Model> cell = accept_cell(timed_out);
  if (cell.empty()) return {};
  rng_.shuffle(cell);
  if (cell.size() > max_batch) cell.resize(max_batch);
  return cell;
}

}  // namespace unigen
