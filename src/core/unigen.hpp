#pragma once
// UniGen (paper Algorithm 1): hashing-based almost-uniform SAT witness
// generator.  For every witness y of F and tolerance ε > 1.71,
//
//      1/((1+ε)(|R_F|−1))  <=  Pr[UniGen(F,ε,S) = y]  <=  (1+ε)/(|R_F|−1),
//
// with success probability >= 0.62 (Theorem 1), provided S is an
// independent support of F.
//
// The implementation mirrors the paper's structure:
//   prepare()  = lines 1–11: ComputeKappaPivot, the easy case (|R_F| <=
//                hiThresh: exact enumeration, perfectly uniform draws), and
//                otherwise one ApproxMC call fixing the candidate hash-count
//                range {q−3, …, q}.  Runs once per formula.
//   sample()   = lines 12–22: iterate i over the 4 candidate values, draw
//                h ∈ H_xor(|S|, i, 3) and α, enumerate the cell with BSAT,
//                accept when loThresh <= |cell| <= hiThresh, return a random
//                element; ⊥ (kFail) when no i works.
// A BSAT timeout repeats the same i with a fresh hash (paper Section 5).
//
// This split is the paper's amortization argument: unlike "leapfrogging" it
// loses no guarantee, because lines 12–22 are i.i.d. across samples.

#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/cnf.hpp"
#include "core/kappa_pivot.hpp"
#include "core/sampler.hpp"
#include "counting/approxmc.hpp"
#include "sat/incremental_bsat.hpp"
#include "util/rng.hpp"

namespace unigen {

struct UniGenOptions {
  /// Tolerance ε (> 1.71).  The paper's experiments use 6.
  double epsilon = 6.0;
  /// Per-BSAT-invocation timeout in seconds (paper: 2500 s).
  double bsat_timeout_s = 2500.0;
  /// Budget for prepare() in seconds (paper: part of the 20 h total).
  double prepare_timeout_s = 72000.0;
  /// Budget for one sample() call in seconds.
  double sample_timeout_s = 72000.0;
  /// ApproxModelCounter tolerance/confidence (paper line 9: 0.8 and 0.8).
  double counter_epsilon = 0.8;
  double counter_confidence = 0.8;
};

struct UniGenStats {
  // prepare-time quantities
  double kappa = 0.0;
  std::uint64_t pivot = 0;
  std::uint64_t hi_thresh = 0;
  double lo_thresh = 0.0;
  double approx_log2_count = 0.0;  ///< log2 of the ApproxMC estimate C
  int q = 0;                       ///< ⌈log C + log 1.8 − log pivot⌉
  double prepare_seconds = 0.0;
  std::uint64_t prepare_bsat_calls = 0;
  bool trivial = false;  ///< easy case: |R_F| <= hiThresh

  // per-sample aggregates
  std::uint64_t samples_requested = 0;
  std::uint64_t samples_ok = 0;
  std::uint64_t samples_failed = 0;   ///< ⊥ outcomes
  std::uint64_t samples_timed_out = 0;
  std::uint64_t sample_bsat_calls = 0;
  std::uint64_t bsat_timeout_retries = 0;
  double sample_seconds = 0.0;
  /// Incremental-BSAT engine counters for the sampling engine shared by the
  /// easy-case check and every accept_cell: one persistent solver per
  /// UniGen instance, so solver_rebuilds stays at 1 across all samples.
  /// (prepare's ApproxMC run owns a second engine; its rebuild count is
  /// counter_solver_rebuilds.)
  std::uint64_t solver_rebuilds = 0;
  std::uint64_t reused_solves = 0;
  std::uint64_t retracted_blocks = 0;
  std::uint64_t counter_solver_rebuilds = 0;
  /// Average XOR-row length over all hash rows drawn (≈ |S|/2).
  double total_xor_row_length = 0.0;
  std::uint64_t total_xor_rows = 0;
  double average_xor_length() const {
    return total_xor_rows == 0 ? 0.0
                               : total_xor_row_length /
                                     static_cast<double>(total_xor_rows);
  }
  double success_rate() const {
    return samples_requested == 0
               ? 0.0
               : static_cast<double>(samples_ok) /
                     static_cast<double>(samples_requested);
  }
};

class UniGen final : public WitnessSampler {
 public:
  /// `cnf` is copied.  The sampling set S is taken from the formula
  /// (Cnf::sampling_set()); when absent the full support is used — legal,
  /// but without the paper's scalability benefit.
  UniGen(Cnf cnf, UniGenOptions options, Rng& rng);

  bool prepare() override;
  SampleResult sample() override;
  std::string name() const override { return "UniGen"; }

  /// UniGen2-style batched sampling (the successor paper's key
  /// optimization, implemented here as an extension; see DESIGN.md):
  /// draws up to `max_batch` *distinct* witnesses from a single accepted
  /// hash cell, amortizing one hashed BSAT query over many witnesses.
  /// Within a batch, witnesses are exchangeable (a uniform subset of the
  /// cell) but not independent across the batch; callers wanting i.i.d.
  /// draws should use sample().  Returns an empty vector on ⊥/timeout.
  std::vector<Model> sample_batch(std::size_t max_batch);

  const UniGenStats& stats() const { return stats_; }
  const UniGenOptions& options() const { return options_; }

 private:
  enum class Mode { kUnprepared, kTrivial, kHashed, kUnsat, kTimedOut };

  /// Lines 12–17: draws hashes until a cell lands in the acceptance
  /// window; returns its witnesses (empty = ⊥, timeout signalled via
  /// `timed_out`).
  std::vector<Model> accept_cell(bool& timed_out);
  SampleResult sample_hashed();

  /// Copies the sampling-engine counters into stats_.
  void sync_engine_stats();

  Cnf cnf_;
  std::vector<Var> sampling_set_;
  UniGenOptions options_;
  Rng& rng_;
  KappaPivot kp_;
  Mode mode_ = Mode::kUnprepared;
  std::vector<Model> trivial_models_;  // the easy case's full witness list
  /// The persistent BSAT engine: built once in prepare(), reused by every
  /// accept_cell across all samples (released again when the instance turns
  /// out to be trivial/UNSAT and no hashed queries will ever run).
  std::unique_ptr<IncrementalBsat> engine_;
  UniGenStats stats_;
};

}  // namespace unigen
