#pragma once
// UniGen (paper Algorithm 1): hashing-based almost-uniform SAT witness
// generator.  For every witness y of F and tolerance ε > 1.71,
//
//      1/((1+ε)(|R_F|−1))  <=  Pr[UniGen(F,ε,S) = y]  <=  (1+ε)/(|R_F|−1),
//
// with success probability >= 0.62 (Theorem 1), provided S is an
// independent support of F.
//
// The implementation mirrors the paper's structure:
//   prepare()  = lines 1–11: ComputeKappaPivot, the easy case (|R_F| <=
//                hiThresh: exact enumeration, perfectly uniform draws), and
//                otherwise one ApproxMC call fixing the candidate hash-count
//                range {q−3, …, q}.  Runs once per formula.
//   sample()   = lines 12–22: iterate i over the 4 candidate values, draw
//                h ∈ H_xor(|S|, i, 3) and α, enumerate the cell with BSAT,
//                accept when loThresh <= |cell| <= hiThresh, return a random
//                element; ⊥ (kFail) when no i works.
// A BSAT timeout repeats the same i with a fresh hash (paper Section 5).
//
// This split is the paper's amortization argument: unlike "leapfrogging" it
// loses no guarantee, because lines 12–22 are i.i.d. across samples.

#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/cnf.hpp"
#include "core/kappa_pivot.hpp"
#include "core/sampler.hpp"
#include "counting/approxmc.hpp"
#include "sat/incremental_bsat.hpp"
#include "service/budget.hpp"
#include "service/fleet_options.hpp"
#include "simplify/simplify.hpp"
#include "util/rng.hpp"

namespace unigen {

class WorkerPool;  // service/worker_pool.hpp

struct UniGenOptions {
  /// Tolerance ε (> 1.71).  The paper's experiments use 6.
  double epsilon = 6.0;
  /// Count-safe CNF simplification, run once in prepare(); every engine
  /// (single-instance and pool workers) then solves the shrunk formula.
  /// Witnesses are reconstructed onto the original formula, so samples are
  /// genuine models of the input (simplify/simplify.hpp).
  SimplifyOptions simplify;
  /// Per-BSAT-invocation timeout in seconds (paper: 2500 s).
  double bsat_timeout_s = 2500.0;
  /// Budget for prepare() in seconds (paper: part of the 20 h total).
  double prepare_timeout_s = 72000.0;
  /// Budget for one sample() call in seconds.
  double sample_timeout_s = 72000.0;
  /// ApproxModelCounter tolerance/confidence (paper line 9: 0.8 and 0.8).
  double counter_epsilon = 0.8;
  double counter_confidence = 0.8;
  /// Threads the one-time ApproxMC call fans its median iterations across
  /// (ApproxMcOptions::num_threads).  0 = let the embedding decide: a
  /// single UniGen instance counts serially, a SamplerPool counts on as
  /// many threads as it samples with.  The parallel count is byte-identical
  /// across thread counts, so q — and every downstream sample — is too,
  /// under the usual timeout caveat: a bsat_timeout_s or prepare budget
  /// that fires mid-count is schedule-dependent and can shift the median
  /// (ApproxMcOptions::num_threads documents the same caveat).
  std::size_t counter_threads = 0;
  /// Anytime/robustness controls, scoped *per request* (one accept_cell
  /// run), except for `deadline` and `cancel` which are shared seams the
  /// embedding arms per service call:
  ///   * budget.max_bsat_calls — deterministic cap on BSAT probes within
  ///     one request; it bounds the otherwise-unbounded fresh-hash retry
  ///     loop machine-independently (expiry reports kTimedOut).
  ///   * budget.conflicts_per_call — deterministic per-probe conflict cap,
  ///     threaded into every solver call.
  ///   * budget.cancel — cooperative cancellation token, polled between
  ///     probes and inside the solver's periodic conflict check.
  ///   * budget.fault — deterministic fault injector; a request keyed k
  ///     reports each probe as (key = k, call = per-request ordinal), so
  ///     the schedule never shifts which probe a plan hits.
  ///   * budget.deadline — wall-clock deadline combined (min) with
  ///     sample_timeout_s; prepare() also observes it.
  /// The default (unlimited, no token, no plan) reproduces the original
  /// behavior byte-for-byte.
  Budget budget;
  /// Borrowed, *not yet started* WorkerPool the embedding will serve
  /// samples from (SamplerPool wires its own pool through here).  When set
  /// and the instance turns out hashed, unigen_prepare starts the pool
  /// itself — worker 0 adopting the easy-case engine — and hands it to the
  /// nested ApproxMC as ApproxMcOptions::shared_pool, so the one-time
  /// count warms the very engines that will serve samples: one solver
  /// build per worker across both phases instead of a counting pool built
  /// and discarded.  Sample bytes are unchanged (canonical cell ordering
  /// makes them independent of engine history).  unigen_prepare then
  /// returns nullptr — the warmed engine lives in the pool.
  WorkerPool* shared_pool = nullptr;
  /// An already-run Simplifier for exactly (cnf, this->simplify,
  /// sampling_set), adopted instead of running the pipeline again.  The
  /// session registry computes one while fingerprinting a cold request
  /// (the key hashes the simplified clauses and the reconstruction stack)
  /// and hands it through here so prepare does not pay the pipeline twice.
  /// The pipeline is deterministic, so adoption is outcome-neutral.
  /// Ignored when simplify.enabled is false.
  std::shared_ptr<const Simplifier> presimplified;
  /// Execution backend for the sampling fan-out (SamplerPool): in-process
  /// threads, or the supervised process fleet (service/process_fleet.hpp)
  /// whose worker crashes cost one request retry instead of the service.
  /// Sample bytes are identical on both backends (requests are pure
  /// functions of their keyed streams).  The nested one-time count always
  /// runs in-process — this switch moves only the per-sample fan-out.
  /// Falls back to the in-process pool when no worker can be spawned.
  FleetOptions fleet;
};

struct UniGenStats {
  // prepare-time quantities
  double kappa = 0.0;
  std::uint64_t pivot = 0;
  std::uint64_t hi_thresh = 0;
  double lo_thresh = 0.0;
  double approx_log2_count = 0.0;  ///< log2 of the ApproxMC estimate C
  int q = 0;                       ///< ⌈log C + log 1.8 − log pivot⌉
  double prepare_seconds = 0.0;
  std::uint64_t prepare_bsat_calls = 0;
  bool trivial = false;  ///< easy case: |R_F| <= hiThresh

  // per-sample aggregates
  std::uint64_t samples_requested = 0;
  std::uint64_t samples_ok = 0;
  std::uint64_t samples_failed = 0;   ///< ⊥ outcomes
  std::uint64_t samples_timed_out = 0;
  std::uint64_t samples_cancelled = 0;
  std::uint64_t sample_bsat_calls = 0;
  /// Probes that reported Undef and triggered the paper's Section-5 retry
  /// (same i, fresh hash) — injected faults land here too, which is what
  /// the fault-injection tests assert on.
  std::uint64_t bsat_timeout_retries = 0;
  double sample_seconds = 0.0;
  /// Incremental-BSAT engine counters for the sampling engine shared by the
  /// easy-case check and every accept_cell: one persistent solver per
  /// UniGen instance, so solver_rebuilds stays at 1 across all samples.
  /// (prepare's ApproxMC run owns its own engines — one on the serial
  /// path, one per serving worker when counter_threads fans it out; their
  /// build total is counter_solver_rebuilds.)
  std::uint64_t solver_rebuilds = 0;
  std::uint64_t reused_solves = 0;
  std::uint64_t retracted_blocks = 0;
  /// Total propagations (clause + XOR) on the sampling engine.
  std::uint64_t solver_propagations = 0;
  std::uint64_t counter_solver_rebuilds = 0;
  /// What the prepare-time simplification did (ran == false when off).
  SimplifyStats simplify;
  /// Average XOR-row length over all hash rows drawn (≈ |S|/2).
  double total_xor_row_length = 0.0;
  std::uint64_t total_xor_rows = 0;
  double average_xor_length() const {
    return total_xor_rows == 0 ? 0.0
                               : total_xor_row_length /
                                     static_cast<double>(total_xor_rows);
  }
  /// Fraction of requests that produced a witness.  Every terminal status
  /// counts in the denominator — ⊥, timeout and cancellation alike — so
  /// the ratio stays comparable to the paper's success probability no
  /// matter which degraded paths fired (cancelled requests are requests
  /// the caller asked for and did not get).
  double success_rate() const {
    return samples_requested == 0
               ? 0.0
               : static_cast<double>(samples_ok) /
                     static_cast<double>(samples_requested);
  }
};

/// Everything Algorithm 1's one-time phase (lines 1–11) produces: the
/// acceptance thresholds, the candidate hash-count anchor q, and — in the
/// easy case — the complete witness list.  Immutable after unigen_prepare
/// returns, which is what makes it shareable: N per-thread samplers
/// (service/sampler_pool.hpp) run lines 12–22 concurrently against one
/// UniGenPrepared, each with a private engine and RNG stream.
struct UniGenPrepared {
  enum class Mode { kTrivial, kHashed, kUnsat, kTimedOut };
  Mode mode = Mode::kTimedOut;
  KappaPivot kp;
  int q = 0;  ///< ⌈log C + log 1.8 − log pivot⌉ (hashed mode only)
  double approx_log2_count = 0.0;
  std::vector<Model> trivial_models;  ///< easy case: the full witness list
  /// The count-safe preprocessing run (null when simplification is off).
  /// Owns the simplified formula every engine references — workers resolve
  /// it through formula() — and the reconstruction that maps its models
  /// back onto the original's (unigen_accept_cell applies it before the
  /// canonical sort).  Shared because the pool's N workers and the
  /// prepare-warmed engine all outlive different scopes.
  std::shared_ptr<const Simplifier> simplifier;

  /// The formula engines should solve: the simplified one when available,
  /// otherwise the caller's original.
  const Cnf& formula(const Cnf& original) const {
    return simplifier ? simplifier->result() : original;
  }

  bool usable() const { return mode != Mode::kTimedOut; }
};

/// Lines 1–11 run once per formula: ComputeKappaPivot, the easy-case
/// enumeration, and (when the instance is hashed) one ApproxMC call fixing
/// q.  `sampling_set` must equal cnf.sampling_set_or_all() (asserted): the
/// simplifier's frozen set, the engines' projection and the nested
/// ApproxMC's projection all have to be the same set.  Fills `prep` and
/// the prepare-time fields of `stats`.  Returns the
/// persistent engine the easy-case check warmed up when the instance ends
/// up in hashed mode — the caller's first cell sampler can adopt it instead
/// of building its own — and nullptr otherwise.  With
/// options.shared_pool the hashed-mode return is always nullptr: the pool
/// was started here, worker 0 adopted that engine, and the ApproxMC call
/// ran on the pool's workers (see UniGenOptions::shared_pool).
std::unique_ptr<IncrementalBsat> unigen_prepare(
    const Cnf& cnf, const std::vector<Var>& sampling_set,
    const UniGenOptions& options, Rng& rng, UniGenPrepared& prep,
    UniGenStats& stats);

/// Outcome of one accept-cell run (Algorithm 1 lines 12–17), with every
/// degraded path kept distinct: kComplete = a cell in the acceptance
/// window, kFailed = the paper's ⊥ (all candidate i exhausted — an allowed,
/// bounded-probability outcome, *not* an error), kTimedOut = a wall or
/// deterministic-unit budget expired first, kCancelled = the caller's token
/// fired.  The ad-hoc `bool& timed_out` this replaces could not tell ⊥
/// from cancellation.
struct AcceptCellResult {
  RequestStatus status = RequestStatus::kFailed;
  /// Non-empty iff status == kComplete.
  std::vector<Model> cell;

  bool ok() const { return status == RequestStatus::kComplete; }
};

/// Lines 12–17 against a caller-owned engine and RNG stream: draws hashes
/// until a cell lands in [loThresh, hiThresh]; returns its witnesses in
/// *canonical (lexicographic) order* — enumeration order depends on the
/// solver's learnt-clause history, so sorting is what makes the drawn
/// witness a pure function of (formula, prep, rng), the determinism
/// contract the parallel service relies on.  `formula_vars` is
/// Cnf::num_vars() (models are projected back onto the formula's
/// variables).  `fault_key` identifies this request to
/// options.budget.fault (use the request's stream index so plans are
/// schedule-independent).  Thread-safe as long as engine/rng/stats are
/// private to the calling thread; the budget's token/plan may be shared.
AcceptCellResult unigen_accept_cell(IncrementalBsat& engine,
                                    const std::vector<Var>& sampling_set,
                                    const UniGenPrepared& prep,
                                    const UniGenOptions& options,
                                    Var formula_vars, Rng& rng,
                                    UniGenStats& stats,
                                    std::uint64_t fault_key = 0);

/// Canonical projection of a request's terminal status onto the sampler's
/// result status: kComplete → kOk, kTimedOut → kTimeout, kCancelled →
/// kCancelled, everything else ⊥ (kFail).  Shared by every embedding —
/// single instance, pool, fleet worker — so the mapping cannot drift.
SampleResult::Status sample_status_from_request(RequestStatus status);

/// Lines 5–7 (easy case): one uniform draw from the full witness list.
/// Shared by UniGen and the pool so trivial-mode semantics cannot drift
/// between the single-engine and the parallel path.
Model unigen_trivial_single(const UniGenPrepared& prep, Rng& rng);

/// Easy-case batch: a uniform subset of up to `max_batch` distinct
/// witnesses from the full list.
std::vector<Model> unigen_trivial_batch(const UniGenPrepared& prep,
                                        std::size_t max_batch, Rng& rng);

class UniGen final : public WitnessSampler {
 public:
  /// `cnf` is copied.  The sampling set S is taken from the formula
  /// (Cnf::sampling_set()); when absent the full support is used — legal,
  /// but without the paper's scalability benefit.
  UniGen(Cnf cnf, UniGenOptions options, Rng& rng);

  bool prepare() override;
  SampleResult sample() override;
  std::string name() const override { return "UniGen"; }

  /// UniGen2-style batched sampling (the successor paper's key
  /// optimization, implemented here as an extension; see DESIGN.md):
  /// draws up to `max_batch` *distinct* witnesses from a single accepted
  /// hash cell, amortizing one hashed BSAT query over many witnesses.
  /// Within a batch, witnesses are exchangeable (a uniform subset of the
  /// cell) but not independent across the batch; callers wanting i.i.d.
  /// draws should use sample().  Returns an empty vector on ⊥/timeout; the
  /// outcome is accounted in stats() exactly like sample() (one request,
  /// with ⊥ and timeout kept distinct), so success_rate() is comparable
  /// across both entry points.
  std::vector<Model> sample_batch(std::size_t max_batch);

  const UniGenStats& stats() const { return stats_; }
  const UniGenOptions& options() const { return options_; }
  /// The shared-state view of this instance after prepare() (what a
  /// SamplerPool hands to its per-thread workers).
  const UniGenPrepared& prepared() const { return prep_; }

 private:
  /// Lines 12–17: draws hashes until a cell lands in the acceptance
  /// window; the result keeps ⊥ / timeout / cancellation distinct.
  AcceptCellResult accept_cell();
  SampleResult sample_hashed();

  Cnf cnf_;
  std::vector<Var> sampling_set_;
  UniGenOptions options_;
  Rng& rng_;
  bool prepared_ = false;
  UniGenPrepared prep_;
  /// The persistent BSAT engine: built once in prepare(), reused by every
  /// accept_cell across all samples (absent when the instance turns out to
  /// be trivial/UNSAT and no hashed queries will ever run).
  std::unique_ptr<IncrementalBsat> engine_;
  UniGenStats stats_;
};

}  // namespace unigen
