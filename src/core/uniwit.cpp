#include "core/uniwit.hpp"

#include <algorithm>

#include "hashing/xor_hash.hpp"
#include "sat/incremental_bsat.hpp"
#include "util/timer.hpp"

namespace unigen {

UniWit::UniWit(Cnf cnf, UniWitOptions options, Rng& rng)
    : cnf_(std::move(cnf)), options_(options), rng_(rng) {
  full_support_.resize(static_cast<std::size_t>(cnf_.num_vars()));
  for (Var v = 0; v < cnf_.num_vars(); ++v)
    full_support_[static_cast<std::size_t>(v)] = v;
}

bool UniWit::prepare() {
  if (!prepared_) {
    kp_ = compute_kappa_pivot(options_.epsilon);
    // The formula-level shrink is shared across samples (it is a pure
    // function of the input, not per-witness amortization — UniWit still
    // pays the easy-case check and the full m-scan on every sample).
    // Freezing the full support limits the pipeline to model-set-
    // preserving passes, which is what UniWit's full-support hashing and
    // blocking require.
    if (options_.simplify.enabled) {
      simplifier_.emplace(cnf_, options_.simplify, full_support_);
      stats_.simplify = simplifier_->stats();
    }
    prepared_ = true;
  }
  return true;
}

SampleResult UniWit::sample() {
  prepare();
  ++stats_.samples_requested;
  const Stopwatch watch;
  const Deadline deadline = Deadline::in_seconds(options_.sample_timeout_s);

  auto finish = [&](SampleResult r) {
    stats_.sample_seconds += watch.seconds();
    switch (r.status) {
      case SampleResult::Status::kOk:
        ++stats_.samples_ok;
        break;
      case SampleResult::Status::kFail:
        ++stats_.samples_failed;
        break;
      case SampleResult::Status::kTimeout:
        ++stats_.samples_timed_out;
        break;
      case SampleResult::Status::kUnsat:
        break;
      case SampleResult::Status::kCancelled:
        // UniWit takes no cancellation token; nothing produces this here.
        break;
    }
    return r;
  };

  // One engine per sample() call: UniWit by design amortizes nothing
  // ACROSS witnesses (that is the baseline the paper argues against), but
  // within a single witness's m-scan the engine still avoids re-copying
  // the CNF and rebuilding a solver for every hash level.
  const Cnf& formula = simplifier_ ? simplifier_->result() : cnf_;
  IncrementalBsat engine(formula, full_support_);
  auto witness_of = [&](Model m) {
    return project_model_to_formula(std::move(m), cnf_.num_vars());
  };
  auto bounded_enumerate = [&](std::size_t level,
                               EnumerateResult& out) -> bool {
    const double budget =
        std::min(options_.bsat_timeout_s, deadline.remaining_seconds());
    out = engine.enumerate_cell(level, kp_.hi_thresh + 1,
                                Deadline::in_seconds(budget), true);
    ++stats_.bsat_calls;
    return !out.timed_out;
  };

  // Easy case: few enough witnesses overall.  UniWit pays for this check on
  // EVERY sample — nothing is cached across calls.
  EnumerateResult base;
  if (!bounded_enumerate(0, base)) return finish(SampleResult::timeout());
  if (base.count == 0) return finish(SampleResult::unsat());
  if (base.count <= kp_.hi_thresh) {
    const auto j = rng_.below(base.models.size());
    return finish(SampleResult::success(witness_of(std::move(base.models[j]))));
  }

  // Sequential scan over m, hashing over the FULL support: fresh for every
  // witness, long XOR rows (~|X|/2).
  const int n = cnf_.num_vars();
  for (int m = 1; m <= n; ++m) {
    if (deadline.expired()) return finish(SampleResult::timeout());
    const XorHash hash =
        draw_xor_hash(full_support_, static_cast<std::size_t>(m), rng_);
    stats_.total_xor_rows += hash.m();
    stats_.total_xor_row_length +=
        hash.average_row_length() * static_cast<double>(hash.m());
    engine.begin_hash();
    engine.push_rows(hash);
    EnumerateResult cell;
    if (!bounded_enumerate(static_cast<std::size_t>(m), cell)) {
      --m;  // BSAT timeout: retry the same m with a fresh hash
      if (deadline.expired()) return finish(SampleResult::timeout());
      continue;
    }
    if (cell.count >= 1 && cell.count <= kp_.hi_thresh) {
      const auto j = rng_.below(cell.models.size());
      return finish(SampleResult::success(witness_of(std::move(cell.models[j]))));
    }
    if (cell.count == 0) break;  // cells only shrink; give up (⊥)
  }
  return finish(SampleResult::failure());
}

}  // namespace unigen
