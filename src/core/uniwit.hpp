#pragma once
// UniWit (Chakraborty, Meel, Vardi, CAV 2013) — the near-uniform baseline
// the paper compares against in Tables 1 and 2.
//
// Reconstruction notes (documented in DESIGN.md §4): we implement UniWit
// with exactly the characteristics the DAC-14 paper attributes to it when
// motivating UniGen:
//   * hashing over the FULL support X, so XOR rows average |X|/2 variables
//     (the scalability bottleneck; paper Section 4);
//   * blocking clauses over the full support as well;
//   * NO approximate counter: for every single witness the algorithm scans
//     m = 1, 2, ... afresh until a cell of acceptable size appears (the
//     cost UniGen amortizes away; paper Section 5's "no way to amortize");
//   * "leapfrogging" disabled, as in the paper's experiments, because it
//     voids the near-uniformity guarantee;
//   * success probability lower-bounded by a constant (0.125 in the paper)
//     rather than UniGen's 0.62.
// Cell-size thresholds reuse ComputeKappaPivot so that both algorithms
// target comparable cell sizes for a given ε.

#include <optional>

#include "cnf/cnf.hpp"
#include "core/kappa_pivot.hpp"
#include "core/sampler.hpp"
#include "simplify/simplify.hpp"
#include "util/rng.hpp"

namespace unigen {

struct UniWitOptions {
  double epsilon = 6.0;
  /// Per-BSAT-invocation timeout in seconds (paper: 2500 s).
  double bsat_timeout_s = 2500.0;
  /// Budget for one sample() call (paper: 20 h per invocation).
  double sample_timeout_s = 72000.0;
  /// Count-safe simplification of the input formula.  UniWit hashes and
  /// blocks over the FULL support, so the frozen set is the full support:
  /// only the model-set-preserving passes (UP, tautologies, subsumption)
  /// ever fire — |R_F| and the per-witness distribution are untouched.
  SimplifyOptions simplify;
};

struct UniWitStats {
  std::uint64_t samples_requested = 0;
  std::uint64_t samples_ok = 0;
  std::uint64_t samples_failed = 0;
  std::uint64_t samples_timed_out = 0;
  std::uint64_t bsat_calls = 0;
  double sample_seconds = 0.0;
  /// What the prepare-time simplification did (ran == false when off).
  SimplifyStats simplify;
  double total_xor_row_length = 0.0;
  std::uint64_t total_xor_rows = 0;
  double average_xor_length() const {
    return total_xor_rows == 0 ? 0.0
                               : total_xor_row_length /
                                     static_cast<double>(total_xor_rows);
  }
  double success_rate() const {
    return samples_requested == 0
               ? 0.0
               : static_cast<double>(samples_ok) /
                     static_cast<double>(samples_requested);
  }
};

class UniWit final : public WitnessSampler {
 public:
  UniWit(Cnf cnf, UniWitOptions options, Rng& rng);

  /// UniWit has no amortizable preparation; prepare() only computes the
  /// thresholds.
  bool prepare() override;
  SampleResult sample() override;
  std::string name() const override { return "UniWit"; }

  const UniWitStats& stats() const { return stats_; }

 private:
  Cnf cnf_;
  std::vector<Var> full_support_;
  UniWitOptions options_;
  Rng& rng_;
  KappaPivot kp_;
  bool prepared_ = false;
  /// Prepare-time preprocessing (frozen = full support, so purely
  /// model-set-preserving); every per-sample engine loads its result.
  std::optional<Simplifier> simplifier_;
  UniWitStats stats_;
};

}  // namespace unigen
