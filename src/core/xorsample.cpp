#include "core/xorsample.hpp"

#include "sat/enumerator.hpp"
#include "util/timer.hpp"

namespace unigen {

XorSamplePrime::XorSamplePrime(Cnf cnf, XorSampleOptions options, Rng& rng)
    : cnf_(std::move(cnf)), options_(options), rng_(rng) {
  full_support_.resize(static_cast<std::size_t>(cnf_.num_vars()));
  for (Var v = 0; v < cnf_.num_vars(); ++v)
    full_support_[static_cast<std::size_t>(v)] = v;
}

SampleResult XorSamplePrime::sample() {
  ++stats_.samples_requested;
  const Deadline deadline = Deadline::in_seconds(options_.sample_timeout_s);

  // Draw s XOR rows; each variable joins a row with probability q.
  Cnf hashed = cnf_;
  for (std::size_t row = 0; row < options_.s; ++row) {
    std::vector<Var> vars;
    for (const Var v : full_support_) {
      if (rng_.flip(options_.q)) vars.push_back(v);
    }
    stats_.total_xor_row_length += static_cast<double>(vars.size());
    ++stats_.total_xor_rows;
    if (vars.empty()) {
      if (rng_.flip()) {
        // Constant-false row: empty cell, sample fails outright.
        ++stats_.samples_failed;
        return SampleResult::failure();
      }
      continue;  // constant-true row constrains nothing
    }
    hashed.add_xor(std::move(vars), rng_.flip());
  }

  // Enumerate the cell exhaustively and pick uniformly.
  Solver solver;
  solver.load(hashed);
  EnumerateOptions eopts;
  eopts.max_models = options_.cell_bound + 1;
  eopts.deadline = deadline;
  eopts.projection = full_support_;
  eopts.store_models = true;
  const EnumerateResult r = enumerate_models(solver, eopts);
  ++stats_.bsat_calls;

  if (r.timed_out) {
    ++stats_.samples_timed_out;
    return SampleResult::timeout();
  }
  if (r.count == 0 || r.count > options_.cell_bound) {
    // Empty cell (s too large / unlucky) or oversized cell (s too small).
    ++stats_.samples_failed;
    return SampleResult::failure();
  }
  const auto j = rng_.below(r.models.size());
  ++stats_.samples_ok;
  return SampleResult::success(r.models[j]);
}

}  // namespace unigen
