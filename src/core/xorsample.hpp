#pragma once
// XORSample' (Gomes, Sabharwal, Selman, NIPS 2007) — the earlier
// hashing-based near-uniform generator, included for ablations.
//
// Unlike UniGen/UniWit it requires the user to supply the number of XOR
// constraints `s` (the "difficult-to-estimate input parameter" the paper
// criticizes): the guarantee and the success probability both degrade when
// s is far from log2 |R_F|.  The variant knob `q` (probability that a
// variable joins an XOR row) reproduces the short-XOR trade-off of
// [Gomes et al., SAT 2007]: q < 0.5 shortens rows and speeds up solving but
// voids the 3-independence the guarantees rest on.

#include "cnf/cnf.hpp"
#include "core/sampler.hpp"
#include "util/rng.hpp"

namespace unigen {

struct XorSampleOptions {
  /// Number of XOR constraints (user-supplied; ideally ≈ log2 |R_F|).
  std::size_t s = 10;
  /// Per-variable inclusion probability for each row (0.5 = H_xor).
  double q = 0.5;
  /// The surviving cell is enumerated exhaustively; abort when it exceeds
  /// this bound (s was chosen too small).
  std::uint64_t cell_bound = 4096;
  double sample_timeout_s = 72000.0;
};

struct XorSampleStats {
  std::uint64_t samples_requested = 0;
  std::uint64_t samples_ok = 0;
  std::uint64_t samples_failed = 0;
  std::uint64_t samples_timed_out = 0;
  std::uint64_t bsat_calls = 0;
  double total_xor_row_length = 0.0;
  std::uint64_t total_xor_rows = 0;
  double average_xor_length() const {
    return total_xor_rows == 0 ? 0.0
                               : total_xor_row_length /
                                     static_cast<double>(total_xor_rows);
  }
};

class XorSamplePrime final : public WitnessSampler {
 public:
  XorSamplePrime(Cnf cnf, XorSampleOptions options, Rng& rng);

  bool prepare() override { return true; }  // nothing to amortize
  SampleResult sample() override;
  std::string name() const override { return "XORSample'"; }

  const XorSampleStats& stats() const { return stats_; }

 private:
  Cnf cnf_;
  std::vector<Var> full_support_;
  XorSampleOptions options_;
  Rng& rng_;
  XorSampleStats stats_;
};

}  // namespace unigen
