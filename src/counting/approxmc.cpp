#include "counting/approxmc.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <thread>

#include "counting/approxmc_core.hpp"
#include "counting/parallel_approxmc.hpp"
#include "sat/incremental_bsat.hpp"

namespace unigen {
namespace {

struct Estimate {
  std::uint64_t cell_count;
  std::uint32_t hash_count;
  double log2_value() const {
    return std::log2(static_cast<double>(cell_count)) + hash_count;
  }
};

Deadline per_call_deadline(const ApproxMcOptions& options) {
  if (options.bsat_timeout_s <= 0.0) return options.deadline;
  const double remaining = options.deadline.remaining_seconds();
  return Deadline::in_seconds(std::min(remaining, options.bsat_timeout_s));
}

}  // namespace

void fold_solver_stats(ApproxMcResult& result, const SolverStats& st) {
  result.solver_rebuilds += st.solver_rebuilds;
  result.reused_solves += st.reused_solves;
  result.retracted_blocks += st.retracted_blocks;
  result.solver_propagations += st.propagations + st.xor_propagations;
}

std::uint64_t approxmc_pivot(double epsilon) {
  if (epsilon <= 0.0) throw std::invalid_argument("approxmc: epsilon must be > 0");
  return 2 * static_cast<std::uint64_t>(std::ceil(
                 3.0 * std::exp(0.5) * (1.0 + 1.0 / epsilon) *
                 (1.0 + 1.0 / epsilon)));
}

int approxmc_iteration_count(double delta) {
  if (delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("approxmc: delta must be in (0,1)");
  const double p = 1.0 - std::exp(-1.5);  // per-iteration success probability
  for (int t = 1; t <= 999; t += 2) {
    // Median of t fails iff at least ceil(t/2) iterations fail:
    // tail = sum_{k=ceil(t/2)}^{t} C(t,k) (1-p)^k p^(t-k).
    double fail = 0.0;
    for (int k = (t + 1) / 2; k <= t; ++k) {
      double log_c = 0.0;
      for (int i = 0; i < k; ++i)
        log_c += std::log(static_cast<double>(t - i)) -
                 std::log(static_cast<double>(i + 1));
      fail += std::exp(log_c + k * std::log(1.0 - p) +
                       (t - k) * std::log(p));
    }
    if (fail <= delta) return t;
  }
  return 999;
}

ApproxMcResult approx_count(const Cnf& cnf, const ApproxMcOptions& options,
                            Rng& rng) {
  ApproxMcResult result;
  result.pivot = approxmc_pivot(options.epsilon);
  const std::vector<Var> sampling_set = cnf.sampling_set_or_all();
  const auto n = static_cast<std::uint32_t>(sampling_set.size());

  // Count-safe preprocessing: ApproxMC only ever reports |R_S|, which every
  // simplification pass preserves (simplify/simplify.hpp), and it never
  // hands out witnesses, so no model reconstruction is needed here.
  std::optional<Simplifier> simplifier;
  if (options.simplify.enabled) {
    simplifier.emplace(cnf, options.simplify);
    result.simplify = simplifier->stats();
  }
  const Cnf& formula = simplifier ? simplifier->result() : cnf;

  // One persistent solver for the prologue (and, on the serial path, the
  // whole count); the parallel path moves it into worker 0 so the probe's
  // warm-up is not wasted and each worker still builds exactly one solver.
  auto engine = std::make_unique<IncrementalBsat>(formula, sampling_set);
  const auto fold_engine = [&result, &engine] {
    fold_solver_stats(result, engine->stats());
  };

  // Unhashed first: small solution spaces are counted exactly.
  {
    const EnumerateResult r = engine->enumerate_cell(
        0, result.pivot + 1, per_call_deadline(options), false);
    ++result.bsat_calls;
    if (r.timed_out) {
      result.timed_out = true;
      fold_engine();
      return result;
    }
    if (r.count <= result.pivot) {
      result.valid = true;
      result.exact = true;
      result.cell_count = r.count;
      result.hash_count = 0;
      fold_engine();
      return result;
    }
  }
  if (n == 0) {
    // Sampling set exhausted but more than pivot projections exist — cannot
    // happen; defensive.
    fold_engine();
    return result;
  }

  result.iterations_requested = approxmc_iteration_count(options.delta);
  // Per-iteration keyed RNG streams: iteration i draws everything from
  // fork_stream(i) of a one-draw fork of the caller's rng.  Serial and
  // parallel paths advance the caller's rng identically (that one draw)
  // and hand iteration i identical randomness, which — together with the
  // canonical fold below — makes the count a pure function of
  // (formula, options, seed), thread count excluded.
  Rng iter_base = rng.fork();
  std::size_t threads =
      options.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.num_threads;
  // More workers than iterations would only build idle engines.
  threads = std::min(threads,
                     static_cast<std::size_t>(result.iterations_requested));

  std::vector<ApproxMcCoreOutcome> outcomes(
      static_cast<std::size_t>(result.iterations_requested));
  if (threads > 1) {
    parallel_approxmc_iterations(formula, sampling_set, options, threads,
                                 iter_base, std::move(engine), outcomes,
                                 result);
  } else {
    std::uint32_t prev_m = 0;  // 0 = cold start for the first iteration
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (options.deadline.expired()) break;  // later slots stay "skipped"
      Rng it_rng = iter_base.fork_stream(i);
      outcomes[i] = approxmc_core_iteration(*engine, n, result.pivot,
                                            options, prev_m, it_rng);
      // ApproxMC2-style leapfrog: the next search starts from this m.
      if (outcomes[i].ok) prev_m = outcomes[i].hash_count;
    }
    fold_engine();
  }

  // Canonical fold: walk outcomes in iteration order — whatever schedule
  // produced them — then take the median by value.  Identical on the
  // serial and every parallel schedule because each outcome is a pure
  // function of its iteration's stream (approxmc_core.hpp).
  std::vector<Estimate> estimates;
  for (const ApproxMcCoreOutcome& o : outcomes) {
    result.bsat_calls += o.bsat_calls;
    if (o.bsat_calls > 0)  // the iteration actually started
      ++(o.leapfrogged ? result.leapfrog_warm_starts
                       : result.leapfrog_cold_starts);
    if (o.ok) {
      estimates.push_back(Estimate{o.cell_count, o.hash_count});
      ++result.iterations_succeeded;
    }
  }
  if (estimates.empty()) {
    result.timed_out = options.deadline.expired();
    return result;
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const Estimate& a, const Estimate& b) {
              return a.log2_value() < b.log2_value();
            });
  const Estimate median = estimates[estimates.size() / 2];
  result.valid = true;
  result.cell_count = median.cell_count;
  result.hash_count = median.hash_count;
  return result;
}

}  // namespace unigen
