#include "counting/approxmc.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "hashing/xor_hash.hpp"
#include "sat/incremental_bsat.hpp"

namespace unigen {
namespace {

struct Estimate {
  std::uint64_t cell_count;
  std::uint32_t hash_count;
  double log2_value() const {
    return std::log2(static_cast<double>(cell_count)) + hash_count;
  }
};

struct ProbeOutcome {
  std::uint64_t count = 0;
  bool small = false;     // count <= pivot with the space exhausted
  bool timed_out = false;
};

Deadline per_call_deadline(const ApproxMcOptions& options) {
  if (options.bsat_timeout_s <= 0.0) return options.deadline;
  const double remaining = options.deadline.remaining_seconds();
  return Deadline::in_seconds(std::min(remaining, options.bsat_timeout_s));
}

/// BSAT on F ∧ (first m rows of the iteration's hash), bounded at pivot+1.
/// Runs on the persistent engine: rows are drawn lazily as m climbs and
/// activated by assumption, so no CNF copy and no solver construction
/// happens per call (ApproxMC2 uses the same nested-prefix hash levels).
ProbeOutcome probe(IncrementalBsat& engine, std::uint32_t m,
                   std::uint64_t pivot, const ApproxMcOptions& options,
                   Rng& rng, std::uint64_t& bsat_calls) {
  if (m > engine.hash_level())
    engine.push_rows(draw_xor_hash(engine.projection(),
                                   m - engine.hash_level(), rng));
  const EnumerateResult r =
      engine.enumerate_cell(m, pivot + 1, per_call_deadline(options), false);
  ++bsat_calls;

  ProbeOutcome out;
  out.count = r.count;
  out.timed_out = r.timed_out;
  out.small = !r.timed_out && r.count <= pivot;
  return out;
}

}  // namespace

std::uint64_t approxmc_pivot(double epsilon) {
  if (epsilon <= 0.0) throw std::invalid_argument("approxmc: epsilon must be > 0");
  return 2 * static_cast<std::uint64_t>(std::ceil(
                 3.0 * std::exp(0.5) * (1.0 + 1.0 / epsilon) *
                 (1.0 + 1.0 / epsilon)));
}

int approxmc_iteration_count(double delta) {
  if (delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("approxmc: delta must be in (0,1)");
  const double p = 1.0 - std::exp(-1.5);  // per-iteration success probability
  for (int t = 1; t <= 999; t += 2) {
    // Median of t fails iff at least ceil(t/2) iterations fail:
    // tail = sum_{k=ceil(t/2)}^{t} C(t,k) (1-p)^k p^(t-k).
    double fail = 0.0;
    for (int k = (t + 1) / 2; k <= t; ++k) {
      double log_c = 0.0;
      for (int i = 0; i < k; ++i)
        log_c += std::log(static_cast<double>(t - i)) -
                 std::log(static_cast<double>(i + 1));
      fail += std::exp(log_c + k * std::log(1.0 - p) +
                       (t - k) * std::log(p));
    }
    if (fail <= delta) return t;
  }
  return 999;
}

ApproxMcResult approx_count(const Cnf& cnf, const ApproxMcOptions& options,
                            Rng& rng) {
  ApproxMcResult result;
  result.pivot = approxmc_pivot(options.epsilon);
  const std::vector<Var> sampling_set = cnf.sampling_set_or_all();
  const auto n = static_cast<std::uint32_t>(sampling_set.size());

  // Count-safe preprocessing: ApproxMC only ever reports |R_S|, which every
  // simplification pass preserves (simplify/simplify.hpp), and it never
  // hands out witnesses, so no model reconstruction is needed here.
  std::optional<Simplifier> simplifier;
  if (options.simplify.enabled) {
    simplifier.emplace(cnf, options.simplify);
    result.simplify = simplifier->stats();
  }
  const Cnf& formula = simplifier ? simplifier->result() : cnf;

  // One persistent solver for the whole count; every BSAT call below runs
  // on it.  Engine counters are folded into the result before returning.
  IncrementalBsat engine(formula, sampling_set);
  const auto finish = [&](ApproxMcResult r) {
    const SolverStats st = engine.stats();
    r.solver_rebuilds = st.solver_rebuilds;
    r.reused_solves = st.reused_solves;
    r.retracted_blocks = st.retracted_blocks;
    r.solver_propagations = st.propagations + st.xor_propagations;
    return r;
  };

  // Unhashed first: small solution spaces are counted exactly.
  {
    const EnumerateResult r = engine.enumerate_cell(
        0, result.pivot + 1, per_call_deadline(options), false);
    ++result.bsat_calls;
    if (r.timed_out) {
      result.timed_out = true;
      return finish(result);
    }
    if (r.count <= result.pivot) {
      result.valid = true;
      result.exact = true;
      result.cell_count = r.count;
      result.hash_count = 0;
      return finish(result);
    }
  }
  if (n == 0) {
    // Sampling set exhausted but more than pivot projections exist — cannot
    // happen; defensive.
    return finish(result);
  }

  result.iterations_requested = approxmc_iteration_count(options.delta);
  std::vector<Estimate> estimates;
  std::uint32_t prev_m = 1;

  for (int iter = 0; iter < result.iterations_requested; ++iter) {
    if (options.deadline.expired()) {
      result.timed_out = estimates.empty();
      break;
    }
    // ApproxMC2-style search for the smallest m with a small cell:
    // lo = largest m known big, hi = smallest m known small.
    std::uint32_t lo = 0;
    std::uint32_t hi = n + 1;
    std::uint64_t hi_count = 0;
    std::uint32_t m = std::clamp<std::uint32_t>(prev_m, 1, n);
    bool iteration_failed = false;
    engine.begin_hash();  // fresh hash per iteration; levels nest within it
    for (;;) {
      const ProbeOutcome pr =
          probe(engine, m, result.pivot, options, rng, result.bsat_calls);
      if (pr.timed_out) {
        iteration_failed = true;
        break;
      }
      if (pr.small) {
        hi = m;
        hi_count = pr.count;
      } else {
        lo = m;
      }
      if (hi == lo + 1) break;
      if (hi == n + 1) {
        // still galloping upward
        m = std::min(n, std::max(lo + 1, 2 * m));
      } else {
        m = (lo + hi) / 2;
      }
      if (m > n) {
        iteration_failed = true;
        break;
      }
    }
    if (iteration_failed || hi == n + 1 || hi_count == 0) continue;
    estimates.push_back(Estimate{hi_count, hi});
    prev_m = hi;
    ++result.iterations_succeeded;
  }

  if (estimates.empty()) {
    result.timed_out = result.timed_out || options.deadline.expired();
    return finish(result);
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const Estimate& a, const Estimate& b) {
              return a.log2_value() < b.log2_value();
            });
  const Estimate median = estimates[estimates.size() / 2];
  result.valid = true;
  result.cell_count = median.cell_count;
  result.hash_count = median.hash_count;
  return finish(result);
}

}  // namespace unigen
