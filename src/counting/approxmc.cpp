#include "counting/approxmc.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <thread>

#include "counting/parallel_approxmc.hpp"
#include "obs/trace.hpp"
#include "sat/incremental_bsat.hpp"
#include "service/process_fleet.hpp"
#include "service/worker_pool.hpp"

namespace unigen {
namespace {

struct Estimate {
  std::uint64_t cell_count;
  std::uint32_t hash_count;
  double log2_value() const {
    return std::log2(static_cast<double>(cell_count)) + hash_count;
  }
};

/// Did this iteration run to an end that is a pure function of its stream
/// (+ fault plan)?  Those are the outcomes a resume may keep; anything else
/// — never started, cancelled, or cut by a wall clock — is treated as
/// never run and re-executed.  An injected-fault timeout IS deterministic
/// (the plan is keyed on schedule-independent coordinates); a conflict-cap
/// timeout is deterministic exactly when no wall clock could also have
/// fired (`wall_free`), since the two are indistinguishable after the fact.
bool deterministic_end(const ApproxMcCoreOutcome& o, bool wall_free) {
  if (o.bsat_calls == 0 || o.cancelled) return false;
  if (o.ok || o.faulted) return true;
  if (o.timed_out) return wall_free;
  return true;  // ran out of hash counts without a small cell: stream-pure
}

/// Executes (or continues) the run described by `st` under
/// st.options.budget, and folds the anytime result.  `rng` is the caller's
/// generator on the first slice (to fork the iteration base, preserving the
/// classic entry point's rng advancement) and null on resume.
ApproxMcAnytime run_anytime(const Cnf& cnf, ApproxMcAnytimeState st,
                            Rng* rng) {
  const ApproxMcOptions& options = st.options;
  const Budget& budget = options.budget;
  ApproxMcAnytime any;
  ApproxMcResult& result = any.result;

  // Observability only: one span per counting run — child of the caller's
  // context when a service request is in flight, root of a fresh trace for
  // standalone counts.  Strictly outside every RNG path.
  obs::Span count_span("count.request");

  if (!st.prologue_done) st.pivot = approxmc_pivot(options.epsilon);
  result.pivot = st.pivot;
  const std::vector<Var> sampling_set = cnf.sampling_set_or_all();

  // Count-safe preprocessing: ApproxMC only ever reports |R_S|, which every
  // simplification pass preserves (simplify/simplify.hpp), and it never
  // hands out witnesses, so no model reconstruction is needed here.  The
  // pipeline is deterministic, so a resume re-derives the same formula.
  std::optional<Simplifier> simplifier;
  if (options.simplify.enabled) {
    simplifier.emplace(cnf, options.simplify);
    result.simplify = simplifier->stats();
  }
  const Cnf& formula = simplifier ? simplifier->result() : cnf;

  const auto finish = [&any, &st](RequestStatus status) -> ApproxMcAnytime& {
    any.status = status;
    st.options.budget = Budget{};  // scrub borrowed pointers / stale clocks
    st.options.shared_pool = nullptr;  // ditto: resumes run self-contained
    any.state = std::move(st);
    return any;
  };

  // Degenerate budget admitted nothing: report before building a solver or
  // issuing a probe, so a zero/negative deadline (or pre-tripped cancel)
  // yields the same status on every machine instead of racing the first
  // deadline check.
  if (const RequestStatus adm = budget.admission_status();
      adm != RequestStatus::kComplete && !st.exact_done) {
    result.timed_out = adm == RequestStatus::kTimedOut;
    return finish(adm);
  }

  // Replaying a run that already concluded: reconstruct, touch nothing.
  if (st.exact_done) {
    result.valid = true;
    result.exact = true;
    result.cell_count = st.exact_cell_count;
    result.bsat_calls = 1;
    any.achieved_delta = 0.0;
    return finish(RequestStatus::kComplete);
  }

  // One persistent solver for the prologue (and, on the serial path, the
  // whole count); the parallel path moves it into worker 0 so the probe's
  // warm-up is not wasted and each worker still builds exactly one solver.
  // With a shared pool (the warm-handoff path) even that build is skipped:
  // the prologue probes worker 0's persistent engine — legal because the
  // dispatcher owns the pool between runs — so nothing this count warms up
  // is ever thrown away.
  WorkerPool* pool = options.shared_pool;
  std::unique_ptr<IncrementalBsat> engine;
  if (pool == nullptr)
    engine = std::make_unique<IncrementalBsat>(formula, sampling_set);
  IncrementalBsat& prologue_engine =
      pool != nullptr ? pool->dispatcher_engine(0) : *engine;
  const auto fold_engine = [&result, &prologue_engine] {
    fold_solver_stats(result, prologue_engine.stats());
  };

  if (!st.prologue_done) {
    st.n = static_cast<std::uint32_t>(sampling_set.size());
    if (budget.cancelled()) {
      fold_engine();
      return finish(RequestStatus::kCancelled);
    }
    // Unhashed first: small solution spaces are counted exactly.  Charged
    // as 1 deterministic unit; no fault key (the plan addresses iterations).
    ProbeLimits limits;
    limits.deadline = budget.per_call_deadline();
    limits.conflict_budget = budget.conflicts_per_call;
    limits.cancel = budget.cancel != nullptr ? budget.cancel->flag() : nullptr;
    const EnumerateResult r =
        prologue_engine.enumerate_cell(0, st.pivot + 1, limits, false);
    result.bsat_calls = 1;
    if (r.cancelled) {
      fold_engine();
      return finish(RequestStatus::kCancelled);
    }
    if (r.timed_out) {
      // Nothing settled; a resume retries the prologue from scratch.
      result.timed_out = true;
      fold_engine();
      return finish(RequestStatus::kTimedOut);
    }
    if (r.count <= st.pivot) {
      st.prologue_done = true;
      st.exact_done = true;
      st.exact_cell_count = r.count;
      result.valid = true;
      result.exact = true;
      result.cell_count = r.count;
      result.hash_count = 0;
      any.achieved_delta = 0.0;
      fold_engine();
      return finish(RequestStatus::kComplete);
    }
    if (st.n == 0) {
      // Sampling set exhausted but more than pivot projections exist —
      // cannot happen; defensive.
      fold_engine();
      return finish(RequestStatus::kFailed);
    }
    st.prologue_done = true;
    st.iterations_requested = approxmc_iteration_count(options.delta);
    // Per-iteration keyed RNG streams: iteration i draws everything from
    // fork_stream(i) of a one-draw fork of the caller's rng.  Serial and
    // parallel paths advance the caller's rng identically (that one draw)
    // and hand iteration i identical randomness, which — together with the
    // canonical fold below — makes the count a pure function of
    // (formula, options, seed), thread count excluded.
    // On the first slice this advances the caller's rng exactly as the
    // classic entry point always has; a resume that reaches here (the
    // first slice's prologue was cut) forks the entry snapshot instead —
    // the identical value, since the snapshot was taken before that fork.
    st.iter_base = rng != nullptr ? rng->fork() : st.entry_rng.fork();
    st.outcomes.assign(static_cast<std::size_t>(st.iterations_requested),
                       ApproxMcCoreOutcome{});
    st.settled.assign(static_cast<std::size_t>(st.iterations_requested), 0);
  } else {
    result.bsat_calls = 1;  // the original slice's prologue probe
  }

  result.iterations_requested = st.iterations_requested;
  count_span.set_value(static_cast<std::uint64_t>(st.iterations_requested));
  // Deterministic mode follows the *cumulative* grant (a resume that adds
  // units continues a deterministic run even if its own Budget carries no
  // fault plan), so the cold-start policy cannot flip between slices.
  const bool det = st.units_granted > 0 || budget.fault != nullptr;
  const std::uint64_t grant = st.units_granted;

  // Unit ledger entering this slice: the prologue plus every settled
  // iteration, all of whose costs are stream-pure in deterministic mode.
  std::uint64_t spent = 1;
  for (std::size_t i = 0; i < st.outcomes.size(); ++i)
    if (st.settled[i]) spent += st.outcomes[i].bsat_calls;

  std::size_t threads =
      options.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.num_threads;
  // More workers than iterations would only build idle engines.
  threads = std::min(
      threads, static_cast<std::size_t>(st.iterations_requested));

  // Process-fleet backend: ship the unsettled iterations to supervised
  // worker processes instead of the in-process fan-out.  Each task frame
  // carries its iteration's raw RNG state and the shared Setup carried the
  // canonical formula, so every outcome is the same pure function of its
  // stream the in-process paths compute — a worker crash costs one retry,
  // a poisoned task just leaves its slot unsettled for the fold below
  // (partial accounting / resume).  Fleet dispatch always cold-starts
  // (start_m = 0, the deterministic-mode policy) — outcome-neutral, only
  // probe counts move.  Falls through to the in-process dispatch when no
  // worker can be spawned.
  bool fleet_served = false;
  if (options.fleet.backend == ExecBackend::kProcessFleet && pool == nullptr) {
    ProcessFleet fleet(options.fleet);
    if (fleet.start(ProcessFleet::make_count_setup(formula, sampling_set,
                                                   st.n, st.pivot, options),
                    threads)) {
      std::vector<ProcessFleet::TaskSpec> specs;
      std::vector<std::size_t> slot;
      for (std::size_t i = 0; i < st.outcomes.size(); ++i) {
        if (st.settled[i]) continue;
        ProcessFleet::TaskSpec s;
        s.id = i;
        s.rng_state = st.iter_base.fork_stream(i).state();
        // Trace propagation (observability only): worker spans land under
        // this run's count.request span, in this run's trace.
        const obs::TraceContext tctx = obs::current_context();
        s.trace_id = tctx.trace_id;
        s.parent_span = tctx.span_id;
        specs.push_back(s);
        slot.push_back(i);
      }
      ProcessFleet::RunControl control;
      control.units_granted = grant;
      control.units_spent = spent;
      const std::vector<ProcessFleet::TaskOutcome> served =
          fleet.run(specs, budget, &control);
      for (std::size_t j = 0; j < served.size(); ++j) {
        if (!served[j].served) continue;  // poisoned/cut → stays unsettled
        const ipc::ResultMsg& r = served[j].result;
        ApproxMcCoreOutcome& o = st.outcomes[slot[j]];
        o.ok = r.ok != 0;
        o.timed_out = r.timed_out != 0;
        o.cancelled = r.cancelled != 0;
        o.faulted = r.faulted != 0;
        o.leapfrogged = r.leapfrogged != 0;
        o.cell_count = r.cell_count;
        o.hash_count = r.hash_count;
        o.bsat_calls = r.bsat_calls;
      }
      fold_engine();  // the prologue engine's stats; workers are external
      fleet_served = true;
    }
  }

  if (fleet_served) {
    // Outcomes are in; the canonical fold below settles them.
  } else if (pool != nullptr || threads > 1) {
    // The shared-pool path routes through the fan-out even at width 1:
    // iterations must run on the pool's persistent workers (so their
    // warm-up survives the call), and the count's bytes are the same on
    // every path anyway.  Extra pool workers beyond the iteration count
    // simply never pull a task (and, engines being lazily built, cost
    // nothing here).
    ParallelCountControl control;
    control.settled = &st.settled;
    control.units_granted = grant;
    control.units_spent = spent;
    control.cold_starts = det;
    parallel_approxmc_iterations(formula, sampling_set, options, threads,
                                 st.iter_base, std::move(engine), st.outcomes,
                                 result, control);
  } else {
    LeapfrogHint hint(options.leapfrog_window);
    for (std::size_t i = 0; i < st.outcomes.size(); ++i) {
      if (st.settled[i]) {
        // ApproxMC2-style leapfrog: completed iterations (here, from an
        // earlier slice) seed later searches — same rule as below.
        if (!det) {
          if (const auto m = leapfrog_publish(st.outcomes[i]))
            hint.publish(*m);
        }
        continue;
      }
      if (budget.cancelled()) break;   // later slots stay "skipped"
      if (budget.wall_expired()) break;
      if (grant != 0 && spent >= grant) break;
      Rng it_rng = st.iter_base.fork_stream(i);
      st.outcomes[i] = approxmc_core_iteration(*engine, st.n, st.pivot,
                                               options,
                                               det ? 0 : hint.suggest(),
                                               it_rng, /*fault_key=*/i);
      spent += st.outcomes[i].bsat_calls;
      if (!det) {
        if (const auto m = leapfrog_publish(st.outcomes[i]))
          hint.publish(*m);
      }
    }
    fold_engine();
  }

  // Canonical fold: walk outcomes in iteration order — whatever schedule
  // produced them — then take the median by value.  Identical on the
  // serial and every parallel schedule because each outcome is a pure
  // function of its iteration's stream (approxmc_core.hpp).
  //
  // Settlement first.  Deterministic mode admits the longest prefix of
  // stream-pure completions the cumulative grant covers — executed work
  // beyond that prefix is scrubbed (racy schedules may overrun the racy
  // ledger; what the grant *bought* must not depend on the race) and a
  // resume re-runs it byte-identically.  Wall-clock mode keeps every
  // stream-pure completion wherever it sits (there is no purity claim to
  // protect) and leaves wall-cut slots unsettled for a resume to retry.
  const bool wall_free = budget.wall_free();
  bool cancelled_seen = budget.cancelled();
  for (const ApproxMcCoreOutcome& o : st.outcomes)
    cancelled_seen = cancelled_seen || o.cancelled;
  if (det) {
    std::uint64_t cum = 1;  // the prologue's unit
    std::size_t prefix = 0;
    while (prefix < st.outcomes.size()) {
      const ApproxMcCoreOutcome& o = st.outcomes[prefix];
      if (!st.settled[prefix]) {
        if (!deterministic_end(o, wall_free)) break;
        if (grant != 0 && cum + o.bsat_calls > grant) break;
      }
      cum += o.bsat_calls;
      ++prefix;
    }
    for (std::size_t i = 0; i < st.outcomes.size(); ++i) {
      st.settled[i] = i < prefix ? 1 : 0;
      if (i >= prefix) st.outcomes[i] = ApproxMcCoreOutcome{};
    }
  } else {
    for (std::size_t i = 0; i < st.outcomes.size(); ++i) {
      if (deterministic_end(st.outcomes[i], wall_free)) {
        st.settled[i] = 1;
      } else {
        // Wall-mode diagnostics count the cut attempt before scrubbing it
        // (legacy behavior: a timed-out iteration's probes happened).
        result.bsat_calls += st.outcomes[i].bsat_calls;
        st.settled[i] = 0;
        st.outcomes[i] = ApproxMcCoreOutcome{};
      }
    }
  }

  std::vector<Estimate> estimates;
  for (std::size_t i = 0; i < st.outcomes.size(); ++i) {
    if (!st.settled[i]) continue;
    const ApproxMcCoreOutcome& o = st.outcomes[i];
    result.bsat_calls += o.bsat_calls;
    if (o.bsat_calls > 0)  // the iteration actually started
      ++(o.leapfrogged ? result.leapfrog_warm_starts
                       : result.leapfrog_cold_starts);
    if (o.ok) {
      estimates.push_back(Estimate{o.cell_count, o.hash_count});
      ++result.iterations_succeeded;
    }
    ++any.iterations_completed;
  }
  any.achieved_delta =
      approxmc_median_failure_tail(static_cast<int>(estimates.size()));
  if (!estimates.empty()) {
    std::sort(estimates.begin(), estimates.end(),
              [](const Estimate& a, const Estimate& b) {
                return a.log2_value() < b.log2_value();
              });
    const Estimate median = estimates[estimates.size() / 2];
    result.valid = true;
    result.cell_count = median.cell_count;
    result.hash_count = median.hash_count;
  }

  const bool all_settled =
      any.iterations_completed == st.iterations_requested;
  // Legacy timed_out flag: a budget stopped the run short of any estimate.
  result.timed_out = !result.valid &&
                     (budget.wall_expired() || (grant != 0 && !all_settled));

  if (cancelled_seen) return finish(RequestStatus::kCancelled);
  if (all_settled)
    return finish(result.valid ? RequestStatus::kComplete
                               : RequestStatus::kFailed);
  return finish(result.valid ? RequestStatus::kPartial
                             : RequestStatus::kTimedOut);
}

}  // namespace

void fold_solver_stats(ApproxMcResult& result, const SolverStats& st) {
  result.solver_rebuilds += st.solver_rebuilds;
  result.reused_solves += st.reused_solves;
  result.retracted_blocks += st.retracted_blocks;
  result.solver_propagations += st.propagations + st.xor_propagations;
}

std::uint64_t approxmc_pivot(double epsilon) {
  if (epsilon <= 0.0) throw std::invalid_argument("approxmc: epsilon must be > 0");
  return 2 * static_cast<std::uint64_t>(std::ceil(
                 3.0 * std::exp(0.5) * (1.0 + 1.0 / epsilon) *
                 (1.0 + 1.0 / epsilon)));
}

double approxmc_median_failure_tail(int t) {
  if (t <= 0) return 1.0;
  const double p = 1.0 - std::exp(-1.5);  // per-iteration success probability
  // The median is bad iff at least ⌊t/2⌋+1 iterations are bad:
  // tail = sum_{k=⌊t/2⌋+1}^{t} C(t,k) (1-p)^k p^(t-k).
  double fail = 0.0;
  for (int k = t / 2 + 1; k <= t; ++k) {
    double log_c = 0.0;
    for (int i = 0; i < k; ++i)
      log_c += std::log(static_cast<double>(t - i)) -
               std::log(static_cast<double>(i + 1));
    fail += std::exp(log_c + k * std::log(1.0 - p) + (t - k) * std::log(p));
  }
  return std::min(fail, 1.0);
}

int approxmc_iteration_count(double delta) {
  if (delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("approxmc: delta must be in (0,1)");
  for (int t = 1; t <= 999; t += 2)
    if (approxmc_median_failure_tail(t) <= delta) return t;
  return 999;
}

double approxmc_delta_achieved(int t) { return approxmc_median_failure_tail(t); }

ApproxMcResult approx_count(const Cnf& cnf, const ApproxMcOptions& options,
                            Rng& rng) {
  return approx_count_anytime(cnf, options, rng).result;
}

ApproxMcAnytime approx_count_anytime(const Cnf& cnf,
                                     const ApproxMcOptions& options,
                                     Rng& rng) {
  ApproxMcAnytimeState st;
  st.options = options;
  st.units_granted = options.budget.max_bsat_calls;
  st.entry_rng = rng;  // snapshot only; run_anytime advances `rng` itself
  return run_anytime(cnf, std::move(st), &rng);
}

ApproxMcAnytime approx_count_resume(const Cnf& cnf, ApproxMcAnytimeState state,
                                    const Budget& more_budget) {
  state.options.budget = more_budget;
  if (more_budget.max_bsat_calls > 0) {
    // The grant is cumulative: cut at B₁ then resume with B₂ charges the
    // admission fold against B₁+B₂, exactly the single-grant run's ledger.
    state.units_granted += more_budget.max_bsat_calls;
  }
  return run_anytime(cnf, std::move(state), nullptr);
}

}  // namespace unigen
