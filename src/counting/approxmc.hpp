#pragma once
// ApproxMC — hashing-based (ε, δ) approximate model counter
// (Chakraborty, Meel, Vardi, CP 2013), the subroutine UniGen invokes as
// ApproxModelCounter(F, 0.8, 0.8) in line 9 of Algorithm 1.
//
// Guarantee:  Pr[ |R_F|/(1+ε) <= estimate <= (1+ε)·|R_F| ] >= 1 − δ.
//
// Counting is projected onto the formula's sampling set S; when S is an
// independent support this equals |R_F|, which is how UniGen uses it.
//
// Three engineering deviations from the CP 2013 pseudocode (see
// DESIGN.md §4), the first two preserving the guarantee outright:
//   * the number of median iterations is the smallest odd t whose binomial
//     failure tail is below δ (with per-iteration success probability
//     1 − e^{−3/2}), instead of the loose ⌈35·log2(3/δ)⌉;
//   * the search for the hash count m gallops/binary-searches from the
//     previous iteration's m (ApproxMC2-style) instead of scanning from 0;
//   * within one iteration all probed hash counts m use nested prefixes of
//     a single lazily drawn hash (rows 1..m of one h), not an independent
//     (h, α) per probe.  This is ApproxMC2's scheme — its analysis proves
//     the same (ε, δ) guarantee for exactly this prefix-slicing structure —
//     and is what lets the incremental BSAT engine activate levels by
//     assumption instead of rebuilding a solver per probe.
//
// Anytime contract (approx_count_anytime / approx_count_resume): the t
// median iterations are independent, so a run cut short by its Budget
// still owns every iteration it completed.  A cut run reports
// RequestStatus::kPartial with the median over the completed iterations
// and the δ those iterations actually achieve (fewer iterations ⇒ a fatter
// binomial median tail ⇒ weaker confidence — approxmc_delta_achieved), plus
// a resume state.  Under a *deterministic* budget (Budget::max_bsat_calls
// and/or a fault plan; no wall clocks) the contract sharpens to byte
// identity: cut + resume(remaining units) ≡ the uninterrupted run with the
// total grant, at every thread count.  The three mechanisms behind that:
//   * cold starts — deterministic-budget runs ignore the leapfrog hint, so
//     each iteration's probe count (its unit cost) is a pure function of
//     its RNG stream (approxmc_core.hpp);
//   * grant accounting — the state records units *granted*, not spent, so
//     resume(B₂) after a cut at B₁ reproduces the single-grant run B₁+B₂;
//   * canonical admission — workers check the shared spent-counter racily
//     (work conservation only); what the result *admits* is decided at
//     fold time: the longest prefix of iterations that ran to their
//     deterministic end within the grant.  Anything a racy schedule ran
//     beyond that prefix is discarded from result and state, and resume
//     re-runs it — stream purity makes the re-run byte-identical.

#include <cmath>
#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"
#include "counting/approxmc_core.hpp"
#include "sat/solver.hpp"
#include "service/budget.hpp"
#include "service/fleet_options.hpp"
#include "simplify/simplify.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace unigen {

class WorkerPool;  // service/worker_pool.hpp

struct ApproxMcOptions {
  double epsilon = 0.8;  ///< tolerance (ε > 0)
  double delta = 0.2;    ///< 1 − confidence
  /// Resource envelope of the whole count: wall-clock deadline and
  /// per-BSAT-call timeout (the paper's 2500 s budget), deterministic unit
  /// budgets, cancellation, fault plan.  See service/budget.hpp.
  Budget budget;
  /// Worker threads the t median iterations fan out across: 1 = serial
  /// (in-place, no threads spawned), 0 = hardware_concurrency, n = n.
  /// Iterations are independent (that is the median argument), each draws
  /// from its own keyed RNG stream, and results fold in canonical
  /// iteration order — so the reported count is byte-identical across all
  /// values of this switch for a fixed seed (asserted by
  /// tests/test_parallel_approxmc.cpp); only wall-clock changes.  Caveat
  /// (as for the sampling service): the contract assumes no *wall-clock*
  /// budget fires — whether a solve beats budget.bsat_timeout_s / the
  /// deadline is machine- and schedule-dependent, and an iteration cut
  /// short in one schedule but not another shifts the median.  Keep wall
  /// budgets comfortably above per-probe solve times when replicas must
  /// agree — or use the deterministic units (budget.max_bsat_calls), whose
  /// cuts are part of the byte-identity contract rather than a breach of
  /// it.  (budget.conflicts_per_call sits in between: deterministic
  /// run-to-run at a fixed thread count, but whether a probe hits the cap
  /// depends on the serving engine's learnt history, which is
  /// schedule-dependent on pools.)
  std::size_t num_threads = 1;
  /// Count-safe CNF simplification in front of the run (on by default;
  /// projected counts over S are invariant, see simplify/simplify.hpp).
  /// Callers that already simplified the formula turn it off.
  SimplifyOptions simplify;
  /// Leapfrog hint policy for the hash-count searches: 1 (default) = the
  /// classic last-completed-m, k > 1 = median of the last k completed m's
  /// (see LeapfrogHint in counting/parallel_approxmc.hpp).  Outcome-neutral
  /// either way — the count's bytes never depend on this — only probe
  /// counts move; bench_parallel_count A/Bs the policies and the measured
  /// default stays 1 (windowing cannot reduce cold-start misses, which are
  /// the dominant term at high thread counts).
  std::size_t leapfrog_window = 1;
  /// Borrowed, already-started WorkerPool (over the same formula this
  /// count will run on — so set `simplify.enabled = false` and pass the
  /// pool's own formula) whose workers serve the fan-out instead of a
  /// transient pool built and discarded inside the call.  This is the
  /// counter→sampler warm handoff: worker 0's engine serves the unhashed
  /// prologue too (no separate prologue engine is built), every engine
  /// warmed by the count keeps serving whatever the pool does next, and
  /// one-time solver builds drop from 2N to N per (pool, formula).  The
  /// count's bytes are unchanged — identical to the serial path and to a
  /// private pool at every width (engines' learnt history never reaches
  /// reported values).  num_threads is ignored when set (the pool's width
  /// rules); scrubbed from anytime resume states like the budget pointers.
  WorkerPool* shared_pool = nullptr;
  /// Execution backend for the median-iteration fan-out: the default
  /// in-process pool, or the supervised process fleet (crash isolation; a
  /// worker SIGKILL costs one task retry, not the count).  The count's
  /// bytes are identical on both backends — iterations are pure functions
  /// of their keyed streams, shipped to workers as raw RNG state.  Falls
  /// back in-process when no worker can be spawned.  Ignored when
  /// shared_pool is set (the warm handoff is inherently in-process).
  FleetOptions fleet;
};

struct ApproxMcResult {
  bool valid = false;      ///< an estimate was produced
  bool timed_out = false;  ///< a budget cut the computation short of any estimate
  /// The estimate is cell_count · 2^hash_count.
  std::uint64_t cell_count = 0;
  std::uint32_t hash_count = 0;
  /// True when the formula had few enough models to count exactly
  /// (hash_count == 0, cell_count == |R_F| projected on S).
  bool exact = false;

  double value() const {
    return static_cast<double>(cell_count) *
           std::pow(2.0, static_cast<double>(hash_count));
  }
  double log2_value() const {
    return std::log2(static_cast<double>(cell_count)) +
           static_cast<double>(hash_count);
  }

  // diagnostics
  std::uint64_t pivot = 0;
  int iterations_requested = 0;
  int iterations_succeeded = 0;
  std::uint64_t bsat_calls = 0;
  // Incremental-BSAT engine counters for the run: all bsat_calls above are
  // served by persistent solvers (one on the serial path, one per worker on
  // the parallel path), so solver_rebuilds stays at the number of engines
  // built unless the inert-row cap forces a rebuild.  On parallel runs
  // these flat fields are the SolverStats::merge fold across workers; the
  // per-worker breakdown is in `workers`.
  std::uint64_t solver_rebuilds = 0;
  std::uint64_t reused_solves = 0;
  std::uint64_t retracted_blocks = 0;
  /// Total propagations (clause + XOR) of the run's engine(s) — the work
  /// metric the simplification bench compares on.
  std::uint64_t solver_propagations = 0;
  /// Leapfrog accounting: iterations whose hash-count search started from
  /// a previously completed iteration's m versus from the cold gallop.
  /// warm + cold == iterations actually started (budget skips excluded).
  std::uint64_t leapfrog_warm_starts = 0;
  std::uint64_t leapfrog_cold_starts = 0;
  /// Worker threads the iterations actually fanned out across (1 when the
  /// run stayed serial, including exact/unsat short-circuits).
  std::size_t threads_used = 1;
  /// Per-worker engine counters of a parallel run, indexed by worker
  /// (empty on the serial path).  Worker 0 includes the shared prologue:
  /// it adopts the engine that served the initial exact-count probe.
  std::vector<SolverStats> workers;
  /// What the preprocessing pipeline did (ran == false when disabled).
  SimplifyStats simplify;
};

/// Folds an engine's counters into the flat diagnostic fields of `result`
/// (additive).  The one fold both the serial and the parallel path use, so
/// a counter surfaced in ApproxMcResult cannot drift between them.
void fold_solver_stats(ApproxMcResult& result, const SolverStats& st);

/// pivot(ε) = 2·⌈3·e^{1/2}·(1 + 1/ε)²⌉  (CP 2013).
std::uint64_t approxmc_pivot(double epsilon);

/// P[the median of t core iterations is bad], assuming each iteration is
/// independently good with p = 1 − e^{−3/2} (the CP 2013 analysis): the
/// binomial tail P[#bad >= ⌊t/2⌋+1].  Defined for every t >= 1 (a cut run
/// may be left with an even or single iteration count); t <= 0 → 1.0.
double approxmc_median_failure_tail(int t);

/// Smallest odd iteration count t with approxmc_median_failure_tail(t) <= δ.
int approxmc_iteration_count(double delta);

/// The δ a count computed from t completed iterations actually achieves —
/// the honesty label on a Partial result: its (ε, δ') guarantee holds with
/// δ' = approxmc_median_failure_tail(t), weaker than the requested δ when
/// the budget cut iterations away.
double approxmc_delta_achieved(int t);

ApproxMcResult approx_count(const Cnf& cnf, const ApproxMcOptions& options,
                            Rng& rng);

// --- anytime API ------------------------------------------------------

/// Everything a cut ApproxMC run needs to continue: the prologue's
/// conclusions (so resume never re-probes them), the iteration RNG base
/// (stream i of which fully determines iteration i), the per-iteration
/// outcomes settled so far, and the cumulative unit grant.  Plain value
/// type — copyable, serializable field-by-field; no live pointers.
struct ApproxMcAnytimeState {
  /// The options of the original call (budget pointers scrubbed; each
  /// resume supplies a fresh Budget).  Resume must run against the same
  /// formula and the same options, or the streams mean nothing.
  ApproxMcOptions options;
  /// Prologue: the unhashed exact-count probe ran (1 unit) and the run is
  /// in the iteration phase — or resolved exactly (`exact_done`).
  bool prologue_done = false;
  bool exact_done = false;
  /// The exact projected count when exact_done (the run needs no
  /// iterations; resume is a no-op that reconstructs the result).
  std::uint64_t exact_cell_count = 0;
  std::uint64_t pivot = 0;
  std::uint32_t n = 0;  ///< |S| of the (simplified) formula
  int iterations_requested = 0;
  /// Base of the per-iteration keyed streams (iteration i uses
  /// fork_stream(i)); a copy of the one fork taken from the caller's rng.
  Rng iter_base{0};
  /// Snapshot of the caller's rng at the original call (copied, never
  /// advanced by the snapshot itself).  Only consulted when a resume has to
  /// finish a prologue the first slice never completed: the fork it then
  /// takes is the one the uninterrupted run would have taken, keeping the
  /// byte-identity contract alive across a prologue-level cut.
  Rng entry_rng{0};
  /// Cumulative deterministic units granted across the original call and
  /// every resume (0 = unlimited).  The admission fold charges against
  /// this total, which is what makes cut-then-resume reproduce the
  /// single-grant run instead of re-billing the spent prefix.
  std::uint64_t units_granted = 0;
  /// Slot i = iteration i.  Settled slots (see `settled`) are never re-run;
  /// the rest are default-valued and resume re-executes them from their
  /// streams.
  std::vector<ApproxMcCoreOutcome> outcomes;
  /// settled[i] != 0 ⇔ outcomes[i] is final.  Deterministic mode: the
  /// canonically admitted prefix.  Wall-clock mode: iterations that ran to
  /// a deterministic end (an estimate, or a no-estimate completion);
  /// wall-timed-out iterations stay unsettled so resume retries them.
  std::vector<char> settled;
};

/// Anytime result: the classic ApproxMcResult (its estimate drawn from the
/// settled iterations only), plus the honesty labels and the resume handle.
struct ApproxMcAnytime {
  RequestStatus status = RequestStatus::kTimedOut;
  ApproxMcResult result;
  /// approxmc_delta_achieved(#estimates the median was taken over); 1.0
  /// when there is no estimate.  kComplete runs can sit slightly above the
  /// requested δ too when some iterations failed algorithmically.
  double achieved_delta = 1.0;
  /// Settled iterations (== iterations_requested on kComplete/kFailed).
  int iterations_completed = 0;
  ApproxMcAnytimeState state;
};

/// approx_count with the anytime contract: never returns less than what the
/// budget paid for.  options.budget is the first grant.
ApproxMcAnytime approx_count_anytime(const Cnf& cnf,
                                     const ApproxMcOptions& options, Rng& rng);

/// Continues a cut run with `more_budget` (whose max_bsat_calls are *added*
/// to the state's cumulative grant).  `cnf` must be the formula of the
/// original call.  In deterministic-budget mode the final result is
/// byte-identical to the uninterrupted run with the combined grant; resume
/// of a kComplete/kFailed state returns it unchanged.
ApproxMcAnytime approx_count_resume(const Cnf& cnf, ApproxMcAnytimeState state,
                                    const Budget& more_budget);

}  // namespace unigen
