#pragma once
// ApproxMC — hashing-based (ε, δ) approximate model counter
// (Chakraborty, Meel, Vardi, CP 2013), the subroutine UniGen invokes as
// ApproxModelCounter(F, 0.8, 0.8) in line 9 of Algorithm 1.
//
// Guarantee:  Pr[ |R_F|/(1+ε) <= estimate <= (1+ε)·|R_F| ] >= 1 − δ.
//
// Counting is projected onto the formula's sampling set S; when S is an
// independent support this equals |R_F|, which is how UniGen uses it.
//
// Three engineering deviations from the CP 2013 pseudocode (see
// DESIGN.md §4), the first two preserving the guarantee outright:
//   * the number of median iterations is the smallest odd t whose binomial
//     failure tail is below δ (with per-iteration success probability
//     1 − e^{−3/2}), instead of the loose ⌈35·log2(3/δ)⌉;
//   * the search for the hash count m gallops/binary-searches from the
//     previous iteration's m (ApproxMC2-style) instead of scanning from 0;
//   * within one iteration all probed hash counts m use nested prefixes of
//     a single lazily drawn hash (rows 1..m of one h), not an independent
//     (h, α) per probe.  This is ApproxMC2's scheme — its analysis proves
//     the same (ε, δ) guarantee for exactly this prefix-slicing structure —
//     and is what lets the incremental BSAT engine activate levels by
//     assumption instead of rebuilding a solver per probe.

#include <cmath>
#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"
#include "sat/solver.hpp"
#include "simplify/simplify.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace unigen {

struct ApproxMcOptions {
  double epsilon = 0.8;  ///< tolerance (ε > 0)
  double delta = 0.2;    ///< 1 − confidence
  /// Deadline for the whole count.
  Deadline deadline = Deadline::never();
  /// Optional per-BSAT-call timeout in seconds (0 = none); mirrors the
  /// paper's 2500 s per-call budget.
  double bsat_timeout_s = 0.0;
  /// Worker threads the t median iterations fan out across: 1 = serial
  /// (in-place, no threads spawned), 0 = hardware_concurrency, n = n.
  /// Iterations are independent (that is the median argument), each draws
  /// from its own keyed RNG stream, and results fold in canonical
  /// iteration order — so the reported count is byte-identical across all
  /// values of this switch for a fixed seed (asserted by
  /// tests/test_parallel_approxmc.cpp); only wall-clock changes.  Caveat
  /// (as for the sampling service): the contract assumes no per-probe
  /// budget fires — whether a solve beats bsat_timeout_s / the deadline is
  /// machine- and schedule-dependent, and an iteration cut short in one
  /// schedule but not another shifts the median.  Keep the budgets
  /// comfortably above per-probe solve times when replicas must agree.
  std::size_t num_threads = 1;
  /// Count-safe CNF simplification in front of the run (on by default;
  /// projected counts over S are invariant, see simplify/simplify.hpp).
  /// Callers that already simplified the formula turn it off.
  SimplifyOptions simplify;
};

struct ApproxMcResult {
  bool valid = false;      ///< an estimate was produced
  bool timed_out = false;  ///< the deadline cut the computation short
  /// The estimate is cell_count · 2^hash_count.
  std::uint64_t cell_count = 0;
  std::uint32_t hash_count = 0;
  /// True when the formula had few enough models to count exactly
  /// (hash_count == 0, cell_count == |R_F| projected on S).
  bool exact = false;

  double value() const {
    return static_cast<double>(cell_count) *
           std::pow(2.0, static_cast<double>(hash_count));
  }
  double log2_value() const {
    return std::log2(static_cast<double>(cell_count)) +
           static_cast<double>(hash_count);
  }

  // diagnostics
  std::uint64_t pivot = 0;
  int iterations_requested = 0;
  int iterations_succeeded = 0;
  std::uint64_t bsat_calls = 0;
  // Incremental-BSAT engine counters for the run: all bsat_calls above are
  // served by persistent solvers (one on the serial path, one per worker on
  // the parallel path), so solver_rebuilds stays at the number of engines
  // built unless the inert-row cap forces a rebuild.  On parallel runs
  // these flat fields are the SolverStats::merge fold across workers; the
  // per-worker breakdown is in `workers`.
  std::uint64_t solver_rebuilds = 0;
  std::uint64_t reused_solves = 0;
  std::uint64_t retracted_blocks = 0;
  /// Total propagations (clause + XOR) of the run's engine(s) — the work
  /// metric the simplification bench compares on.
  std::uint64_t solver_propagations = 0;
  /// Leapfrog accounting: iterations whose hash-count search started from
  /// a previously completed iteration's m versus from the cold gallop.
  /// warm + cold == iterations actually started (deadline skips excluded).
  std::uint64_t leapfrog_warm_starts = 0;
  std::uint64_t leapfrog_cold_starts = 0;
  /// Worker threads the iterations actually fanned out across (1 when the
  /// run stayed serial, including exact/unsat short-circuits).
  std::size_t threads_used = 1;
  /// Per-worker engine counters of a parallel run, indexed by worker
  /// (empty on the serial path).  Worker 0 includes the shared prologue:
  /// it adopts the engine that served the initial exact-count probe.
  std::vector<SolverStats> workers;
  /// What the preprocessing pipeline did (ran == false when disabled).
  SimplifyStats simplify;
};

/// Folds an engine's counters into the flat diagnostic fields of `result`
/// (additive).  The one fold both the serial and the parallel path use, so
/// a counter surfaced in ApproxMcResult cannot drift between them.
void fold_solver_stats(ApproxMcResult& result, const SolverStats& st);

/// pivot(ε) = 2·⌈3·e^{1/2}·(1 + 1/ε)²⌉  (CP 2013).
std::uint64_t approxmc_pivot(double epsilon);

/// Smallest odd iteration count t whose median-of-t failure probability is
/// below δ, assuming each core iteration succeeds with p = 1 − e^{−3/2}.
int approxmc_iteration_count(double delta);

ApproxMcResult approx_count(const Cnf& cnf, const ApproxMcOptions& options,
                            Rng& rng);

}  // namespace unigen
