#pragma once
// ApproxMC — hashing-based (ε, δ) approximate model counter
// (Chakraborty, Meel, Vardi, CP 2013), the subroutine UniGen invokes as
// ApproxModelCounter(F, 0.8, 0.8) in line 9 of Algorithm 1.
//
// Guarantee:  Pr[ |R_F|/(1+ε) <= estimate <= (1+ε)·|R_F| ] >= 1 − δ.
//
// Counting is projected onto the formula's sampling set S; when S is an
// independent support this equals |R_F|, which is how UniGen uses it.
//
// Three engineering deviations from the CP 2013 pseudocode (see
// DESIGN.md §4), the first two preserving the guarantee outright:
//   * the number of median iterations is the smallest odd t whose binomial
//     failure tail is below δ (with per-iteration success probability
//     1 − e^{−3/2}), instead of the loose ⌈35·log2(3/δ)⌉;
//   * the search for the hash count m gallops/binary-searches from the
//     previous iteration's m (ApproxMC2-style) instead of scanning from 0;
//   * within one iteration all probed hash counts m use nested prefixes of
//     a single lazily drawn hash (rows 1..m of one h), not an independent
//     (h, α) per probe.  This is ApproxMC2's scheme — its analysis proves
//     the same (ε, δ) guarantee for exactly this prefix-slicing structure —
//     and is what lets the incremental BSAT engine activate levels by
//     assumption instead of rebuilding a solver per probe.

#include <cmath>
#include <cstdint>

#include "cnf/cnf.hpp"
#include "simplify/simplify.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace unigen {

struct ApproxMcOptions {
  double epsilon = 0.8;  ///< tolerance (ε > 0)
  double delta = 0.2;    ///< 1 − confidence
  /// Deadline for the whole count.
  Deadline deadline = Deadline::never();
  /// Optional per-BSAT-call timeout in seconds (0 = none); mirrors the
  /// paper's 2500 s per-call budget.
  double bsat_timeout_s = 0.0;
  /// Count-safe CNF simplification in front of the run (on by default;
  /// projected counts over S are invariant, see simplify/simplify.hpp).
  /// Callers that already simplified the formula turn it off.
  SimplifyOptions simplify;
};

struct ApproxMcResult {
  bool valid = false;      ///< an estimate was produced
  bool timed_out = false;  ///< the deadline cut the computation short
  /// The estimate is cell_count · 2^hash_count.
  std::uint64_t cell_count = 0;
  std::uint32_t hash_count = 0;
  /// True when the formula had few enough models to count exactly
  /// (hash_count == 0, cell_count == |R_F| projected on S).
  bool exact = false;

  double value() const {
    return static_cast<double>(cell_count) *
           std::pow(2.0, static_cast<double>(hash_count));
  }
  double log2_value() const {
    return std::log2(static_cast<double>(cell_count)) +
           static_cast<double>(hash_count);
  }

  // diagnostics
  std::uint64_t pivot = 0;
  int iterations_requested = 0;
  int iterations_succeeded = 0;
  std::uint64_t bsat_calls = 0;
  // Incremental-BSAT engine counters for the run: all bsat_calls above are
  // served by one persistent solver, so solver_rebuilds stays at 1 (the
  // initial construction) unless the inert-row cap forces a rebuild.
  std::uint64_t solver_rebuilds = 0;
  std::uint64_t reused_solves = 0;
  std::uint64_t retracted_blocks = 0;
  /// Total propagations (clause + XOR) of the run's engine — the work
  /// metric the simplification bench compares on.
  std::uint64_t solver_propagations = 0;
  /// What the preprocessing pipeline did (ran == false when disabled).
  SimplifyStats simplify;
};

/// pivot(ε) = 2·⌈3·e^{1/2}·(1 + 1/ε)²⌉  (CP 2013).
std::uint64_t approxmc_pivot(double epsilon);

/// Smallest odd iteration count t whose median-of-t failure probability is
/// below δ, assuming each core iteration succeeds with p = 1 − e^{−3/2}.
int approxmc_iteration_count(double delta);

ApproxMcResult approx_count(const Cnf& cnf, const ApproxMcOptions& options,
                            Rng& rng);

}  // namespace unigen
