#include "counting/approxmc_core.hpp"

#include <algorithm>

#include "counting/approxmc.hpp"
#include "hashing/xor_hash.hpp"
#include "obs/trace.hpp"
#include "service/budget.hpp"

namespace unigen {
namespace {

struct ProbeOutcome {
  std::uint64_t count = 0;
  bool small = false;  // count <= pivot with the space exhausted
  bool timed_out = false;
  bool cancelled = false;
  bool faulted = false;
};

/// BSAT on F ∧ (first m rows of the iteration's hash), bounded at pivot+1.
/// Runs on the persistent engine: rows are drawn lazily as m climbs and
/// activated by assumption, so no CNF copy and no solver construction
/// happens per call (ApproxMC2 uses the same nested-prefix hash levels).
ProbeOutcome probe(IncrementalBsat& engine, std::uint32_t m,
                   std::uint64_t pivot, const ApproxMcOptions& options,
                   Rng& rng, std::uint64_t fault_key,
                   std::uint64_t& bsat_calls) {
  const Budget& budget = options.budget;
  ProbeOutcome out;
  // Observability only: the hash-level probe span (child of the enclosing
  // count.iteration).  Strictly outside the RNG path — draw_xor_hash below
  // consumes `rng` identically with tracing on or off.
  obs::Span span("hash.probe");
  span.set_value(m);
  // The fault plan addresses probes by (iteration, call ordinal), both
  // schedule-independent; a faulted probe is charged like a real one (the
  // unit ledger is part of the deterministic cost) but never runs — it is
  // the paper's 2500 s timeout made reproducible.
  if (budget.fault_fires(fault_key, bsat_calls)) {
    ++bsat_calls;
    out.timed_out = true;
    out.faulted = true;
    return out;
  }
  if (m > engine.hash_level())
    engine.push_rows(
        draw_xor_hash(engine.projection(), m - engine.hash_level(), rng));
  ProbeLimits limits;
  limits.deadline = budget.per_call_deadline();
  limits.conflict_budget = budget.conflicts_per_call;
  limits.cancel = budget.cancel != nullptr ? budget.cancel->flag() : nullptr;
  const EnumerateResult r = engine.enumerate_cell(m, pivot + 1, limits, false);
  ++bsat_calls;

  out.count = r.count;
  out.cancelled = r.cancelled;
  out.timed_out = r.timed_out;
  out.small = !r.timed_out && !r.cancelled && r.count <= pivot;
  return out;
}

}  // namespace

ApproxMcCoreOutcome approxmc_core_iteration(IncrementalBsat& engine,
                                            std::uint32_t n,
                                            std::uint64_t pivot,
                                            const ApproxMcOptions& options,
                                            std::uint32_t start_m, Rng& rng,
                                            std::uint64_t fault_key) {
  ApproxMcCoreOutcome out;
  out.leapfrogged = start_m > 0;
  // Observability only: one span per median iteration, tagged with the
  // iteration index (the fault key doubles as that index on every path).
  obs::Span span("count.iteration");
  span.set_value(fault_key);

  // Search for the smallest m with a small cell: lo = largest m known big,
  // hi = smallest m known small.  Cold runs gallop up from m = 1;
  // leapfrogged runs start at the hint, which the previous iteration's
  // concentration makes an excellent first probe (ApproxMC2's observation).
  std::uint32_t lo = 0;
  std::uint32_t hi = n + 1;
  std::uint64_t hi_count = 0;
  std::uint32_t m = std::clamp<std::uint32_t>(std::max(start_m, 1u), 1, n);
  engine.begin_hash();  // fresh hash per iteration; levels nest within it
  for (;;) {
    if (options.budget.cancelled()) {
      out.cancelled = true;
      return out;
    }
    const ProbeOutcome pr = probe(engine, m, pivot, options, rng, fault_key,
                                  out.bsat_calls);
    if (pr.cancelled) {
      out.cancelled = true;
      return out;
    }
    if (pr.timed_out) {
      out.timed_out = true;
      out.faulted = pr.faulted;
      return out;
    }
    if (pr.small) {
      hi = m;
      hi_count = pr.count;
    } else {
      lo = m;
    }
    if (hi == lo + 1) break;
    if (hi == n + 1) {
      // still galloping upward
      m = std::min(n, std::max(lo + 1, 2 * m));
    } else {
      m = (lo + hi) / 2;
    }
    if (m > n) return out;  // no m <= n yields a small cell
  }
  if (hi == n + 1 || hi_count == 0) return out;
  out.ok = true;
  out.cell_count = hi_count;
  out.hash_count = hi;
  return out;
}

std::optional<std::uint32_t> leapfrog_publish(const ApproxMcCoreOutcome& o) {
  if (!o.ok) return std::nullopt;
  return o.hash_count;
}

}  // namespace unigen
