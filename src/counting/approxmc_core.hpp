#pragma once
// ApproxMcCore — one median iteration of ApproxMC, shared verbatim by the
// serial loop (counting/approxmc.cpp) and the parallel counting service
// (counting/parallel_approxmc.cpp) so the two paths cannot drift.
//
// An iteration draws one hash h from H_xor(|S|, ·, 3) lazily (rows appear
// as the search climbs, nested-prefix style) and finds the smallest hash
// count m whose cell F ∧ (first m rows) has at most `pivot` solutions,
// returning that cell's exact size.  Two properties make the surrounding
// schedulers free to reorder and leapfrog iterations:
//
//   * Stream purity: row j of the hash is drawn exactly once, in level
//     order, and consumes a fixed number of draws (|S| + 2), so the whole
//     hash — and therefore the iteration's outcome — is a pure function of
//     the iteration's private RNG stream, no matter which probes the
//     search happens to make.
//   * Monotonicity: the cells of nested hash prefixes are nested, so cell
//     size is non-increasing in m and "smallest m with a small cell" is
//     well-defined independently of where the search starts.
//
// Hence `start_m` (the leapfrog hint: the m a previously completed
// iteration landed on) changes only the number of BSAT probes, never the
// outcome — which is exactly why the parallel service can share hints
// across racing iterations and still fold byte-identical results, and why
// ApproxMC2-style leapfrogging costs no part of the (ε, δ) analysis here.
// The single caveat is a cut — per-probe timeout, injected fault, or
// cancellation: an iteration cut short reports how, and contributes no
// estimate.  One more consequence of stream purity matters to the anytime
// layer (approxmc.hpp): with a *cold* start (start_m = 0) the probe
// sequence, and therefore bsat_calls — the unit cost — is itself a pure
// function of the stream, which is why deterministic-budget runs force
// cold starts everywhere instead of chasing the racy hint.

#include <cstdint>
#include <optional>

#include "sat/incremental_bsat.hpp"
#include "util/rng.hpp"

namespace unigen {

// counting/approxmc.hpp; declared here so that header can embed
// ApproxMcCoreOutcome in the anytime resume state without a cycle.
struct ApproxMcOptions;

struct ApproxMcCoreOutcome {
  /// The iteration produced an estimate (cell_count · 2^hash_count).
  bool ok = false;
  /// A budget expired mid-search (per-probe deadline or conflict cap, or —
  /// when `faulted` is also set — an injected fault posing as one).
  bool timed_out = false;
  /// The cancel token tripped mid-search; contributes nothing, and the
  /// anytime layer treats the slot as never run (cancellation is the one
  /// nondeterminism the determinism contract must survive).
  bool cancelled = false;
  /// The timeout above was an injected fault (Budget::fault) — i.e. the
  /// cut is a pure function of (fault plan, stream) and the outcome is
  /// deterministic even though timed_out is set.
  bool faulted = false;
  std::uint64_t cell_count = 0;
  std::uint32_t hash_count = 0;
  /// BSAT probes this iteration made (the leapfrog savings show up here).
  /// Faulted probes charge too: the unit ledger must match across a run
  /// and its resume, and the fault plan is part of the deterministic cost.
  std::uint64_t bsat_calls = 0;
  /// True when the search started from a prior iteration's m (start_m > 0)
  /// instead of the cold gallop from m = 1.
  bool leapfrogged = false;
};

/// Runs one iteration on `engine` (a fresh hash epoch is opened; previous
/// epochs' rows become inert).  `n` = |S|, `pivot` the cell-size bound,
/// `start_m` = 0 for the cold search or the leapfrog hint.  The probe
/// envelope (deadline, per-call timeout, conflict cap, cancellation, fault
/// plan) comes from options.budget; the caller owns the iteration-level
/// budget policy.  `rng` must be the iteration's private stream (see
/// stream purity above).  `fault_key` identifies this iteration to the
/// fault plan (the canonical iteration index): probe c of iteration k asks
/// fault->inject_timeout(fault_key, c), a schedule-independent coordinate.
ApproxMcCoreOutcome approxmc_core_iteration(IncrementalBsat& engine,
                                            std::uint32_t n,
                                            std::uint64_t pivot,
                                            const ApproxMcOptions& options,
                                            std::uint32_t start_m, Rng& rng,
                                            std::uint64_t fault_key = 0);

/// The one leapfrog-hint publication rule, shared by the serial loop and
/// the parallel fan-out so the two cannot drift: an iteration's m may seed
/// later searches iff the iteration ran to a completed estimate.  A cut
/// iteration (timeout, fault, cancel) must publish nothing — its m is
/// where an aborted search happened to stand, not a concentration point,
/// and a stale hint would bias later iterations' probe counts.  Returns
/// the m to publish, or nullopt.
std::optional<std::uint32_t> leapfrog_publish(const ApproxMcCoreOutcome& o);

}  // namespace unigen
