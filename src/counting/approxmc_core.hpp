#pragma once
// ApproxMcCore — one median iteration of ApproxMC, shared verbatim by the
// serial loop (counting/approxmc.cpp) and the parallel counting service
// (counting/parallel_approxmc.cpp) so the two paths cannot drift.
//
// An iteration draws one hash h from H_xor(|S|, ·, 3) lazily (rows appear
// as the search climbs, nested-prefix style) and finds the smallest hash
// count m whose cell F ∧ (first m rows) has at most `pivot` solutions,
// returning that cell's exact size.  Two properties make the surrounding
// schedulers free to reorder and leapfrog iterations:
//
//   * Stream purity: row j of the hash is drawn exactly once, in level
//     order, and consumes a fixed number of draws (|S| + 2), so the whole
//     hash — and therefore the iteration's outcome — is a pure function of
//     the iteration's private RNG stream, no matter which probes the
//     search happens to make.
//   * Monotonicity: the cells of nested hash prefixes are nested, so cell
//     size is non-increasing in m and "smallest m with a small cell" is
//     well-defined independently of where the search starts.
//
// Hence `start_m` (the leapfrog hint: the m a previously completed
// iteration landed on) changes only the number of BSAT probes, never the
// outcome — which is exactly why the parallel service can share hints
// across racing iterations and still fold byte-identical results, and why
// ApproxMC2-style leapfrogging costs no part of the (ε, δ) analysis here.
// The single caveat is a per-probe timeout: an iteration cut short reports
// timed_out and contributes nothing.

#include <cstdint>

#include "counting/approxmc.hpp"
#include "sat/incremental_bsat.hpp"
#include "util/rng.hpp"

namespace unigen {

struct ApproxMcCoreOutcome {
  /// The iteration produced an estimate (cell_count · 2^hash_count).
  bool ok = false;
  /// A per-probe deadline expired mid-search.
  bool timed_out = false;
  std::uint64_t cell_count = 0;
  std::uint32_t hash_count = 0;
  /// BSAT probes this iteration made (the leapfrog savings show up here).
  std::uint64_t bsat_calls = 0;
  /// True when the search started from a prior iteration's m (start_m > 0)
  /// instead of the cold gallop from m = 1.
  bool leapfrogged = false;
};

/// Runs one iteration on `engine` (a fresh hash epoch is opened; previous
/// epochs' rows become inert).  `n` = |S|, `pivot` the cell-size bound,
/// `start_m` = 0 for the cold search or the leapfrog hint.  Uses
/// options.deadline / options.bsat_timeout_s for the per-probe budget; the
/// caller owns the iteration-level deadline policy.  `rng` must be the
/// iteration's private stream (see stream purity above).
ApproxMcCoreOutcome approxmc_core_iteration(IncrementalBsat& engine,
                                            std::uint32_t n,
                                            std::uint64_t pivot,
                                            const ApproxMcOptions& options,
                                            std::uint32_t start_m, Rng& rng);

}  // namespace unigen
