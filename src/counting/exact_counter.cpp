#include "counting/exact_counter.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "sat/enumerator.hpp"

namespace unigen {
namespace {

using ClauseSet = std::vector<std::vector<Lit>>;

struct CounterTimeout {};

/// Sorted list of distinct variables occurring in `clauses`.
std::vector<Var> occurring_vars(const ClauseSet& clauses) {
  std::vector<Var> vars;
  for (const auto& c : clauses)
    for (const Lit l : c) vars.push_back(l.var());
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

/// Applies literal `l` (true): drops satisfied clauses, strips ~l.
/// Returns false via `conflict` when an empty clause appears.
ClauseSet assign(const ClauseSet& clauses, Lit l, bool& conflict) {
  conflict = false;
  ClauseSet out;
  out.reserve(clauses.size());
  for (const auto& c : clauses) {
    bool satisfied = false;
    for (const Lit x : c) {
      if (x == l) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    std::vector<Lit> reduced;
    reduced.reserve(c.size());
    for (const Lit x : c) {
      if (x != ~l) reduced.push_back(x);
    }
    if (reduced.empty()) {
      conflict = true;
      return {};
    }
    out.push_back(std::move(reduced));
  }
  return out;
}

struct KeyHash {
  std::size_t operator()(const std::vector<std::int32_t>& key) const {
    std::size_t h = 1469598103934665603ull;
    for (const auto x : key) {
      h ^= static_cast<std::size_t>(x) + 0x9e3779b9;
      h *= 1099511628211ull;
    }
    return h;
  }
};

class Engine {
 public:
  Engine(const ExactCounterOptions& options, ExactCounterStats& stats)
      : options_(options), stats_(stats) {}

  BigUint count(ClauseSet clauses) { return count_rec(std::move(clauses)); }

 private:
  /// Count over exactly the variables occurring in `clauses`.
  BigUint count_rec(ClauseSet clauses) {
    if (options_.deadline.expired()) throw CounterTimeout{};

    std::size_t freed_bits = 0;  // vars eliminated without branching

    // Iterated unit propagation; keeps the free-variable ledger.
    for (;;) {
      if (clauses.empty()) return BigUint::pow2(freed_bits);
      Lit unit = kUndefLit;
      for (const auto& c : clauses) {
        if (c.size() == 1) {
          unit = c[0];
          break;
        }
      }
      if (!unit.valid()) break;
      const std::size_t before = occurring_vars(clauses).size();
      bool conflict = false;
      clauses = assign(clauses, unit, conflict);
      if (conflict) return BigUint{};
      const std::size_t after = occurring_vars(clauses).size();
      freed_bits += before - after - 1;  // -1: the assigned variable
    }

    // Component decomposition.
    const auto components = split_components(clauses);
    BigUint result = BigUint::pow2(freed_bits);
    if (components.size() > 1) ++stats_.component_splits;
    for (auto& component : components) {
      const BigUint sub = count_cached(std::move(component));
      if (sub.is_zero()) return BigUint{};
      result = result * sub;
    }
    return result;
  }

  BigUint count_cached(ClauseSet clauses) {
    const auto key = canonical_key(clauses);
    ++stats_.cache_lookups;
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }

    // Branch on the most frequent variable.
    ++stats_.branch_decisions;
    const Var v = most_frequent_var(clauses);
    const std::size_t scope = occurring_vars(clauses).size();
    BigUint total;
    for (const bool phase : {false, true}) {
      bool conflict = false;
      ClauseSet sub = assign(clauses, Lit(v, phase), conflict);
      if (conflict) continue;
      const std::size_t sub_scope = occurring_vars(sub).size();
      BigUint cnt = count_rec(std::move(sub));
      cnt <<= scope - sub_scope - 1;
      total += cnt;
    }
    if (cache_.size() >= options_.max_cache_entries) cache_.clear();
    cache_.emplace(key, total);
    return total;
  }

  static Var most_frequent_var(const ClauseSet& clauses) {
    std::unordered_map<Var, std::size_t> occurrences;
    for (const auto& c : clauses)
      for (const Lit l : c) ++occurrences[l.var()];
    Var best = clauses[0][0].var();
    std::size_t best_count = 0;
    for (const auto& [v, n] : occurrences) {
      if (n > best_count || (n == best_count && v < best)) {
        best = v;
        best_count = n;
      }
    }
    return best;
  }

  static std::vector<ClauseSet> split_components(const ClauseSet& clauses) {
    // Union-find over variables; clauses join their variables.
    std::unordered_map<Var, Var> parent;
    std::function<Var(Var)> find = [&](Var x) {
      auto it = parent.find(x);
      if (it == parent.end()) {
        parent[x] = x;
        return x;
      }
      if (it->second == x) return x;
      const Var root = find(it->second);
      parent[x] = root;
      return root;
    };
    for (const auto& c : clauses) {
      const Var root = find(c[0].var());
      for (const Lit l : c) parent[find(l.var())] = root;
    }
    std::unordered_map<Var, std::size_t> component_index;
    std::vector<ClauseSet> components;
    for (const auto& c : clauses) {
      const Var root = find(c[0].var());
      const auto [it, inserted] =
          component_index.emplace(root, components.size());
      if (inserted) components.emplace_back();
      components[it->second].push_back(c);
    }
    return components;
  }

  static std::vector<std::int32_t> canonical_key(ClauseSet& clauses) {
    for (auto& c : clauses) std::sort(c.begin(), c.end());
    std::sort(clauses.begin(), clauses.end());
    std::vector<std::int32_t> key;
    for (const auto& c : clauses) {
      for (const Lit l : c) key.push_back(l.index());
      key.push_back(-1);
    }
    return key;
  }

  const ExactCounterOptions& options_;
  ExactCounterStats& stats_;
  std::unordered_map<std::vector<std::int32_t>, BigUint, KeyHash> cache_;
};

}  // namespace

std::optional<BigUint> ExactCounter::count(const Cnf& cnf) {
  const Cnf expanded = cnf.num_xors() > 0 ? cnf.expand_xors() : cnf;
  ClauseSet clauses = expanded.clauses();
  for (const auto& c : clauses) {
    if (c.empty()) return BigUint{};  // explicit empty clause: UNSAT
  }
  // Variables never occurring in any clause are unconstrained and contribute
  // a factor of 2 each.  Expansion auxiliaries always occur, so this counts
  // exactly the isolated *original* variables — and counting over the
  // expanded variable space equals counting over the original one, because
  // every original model extends uniquely to the (defined) auxiliaries.
  const std::vector<Var> occurring = occurring_vars(clauses);
  const std::size_t isolated =
      static_cast<std::size_t>(expanded.num_vars()) - occurring.size();

  Engine engine(options_, stats_);
  try {
    BigUint result = engine.count(std::move(clauses));
    result <<= isolated;
    return result;
  } catch (const CounterTimeout&) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> count_projected_by_enumeration(
    const Cnf& cnf, const std::vector<Var>& projection, std::uint64_t bound,
    const Deadline& deadline) {
  Solver solver;
  solver.load(cnf);
  EnumerateOptions options;
  options.max_models = bound;
  options.deadline = deadline;
  options.projection = projection;
  options.store_models = false;
  const auto result = enumerate_models(solver, options);
  if (!result.exhausted) return std::nullopt;
  return result.count;
}

}  // namespace unigen
