#pragma once
// Exact model counting (#SAT) — the substrate the paper's US baseline gets
// from sharpSAT.  A DPLL#-style counter with:
//   * iterated unit propagation,
//   * connected-component decomposition with per-component counting,
//   * component caching keyed on the canonicalized residual formula,
//   * free-variable factors (2^k for variables with no remaining
//     occurrence).
//
// XOR constraints are supported by CNF-expanding them first (model count is
// preserved: the chunking auxiliaries are functionally defined).  Counts are
// BigUint since 2^n overflows any machine word.

#include <cstdint>
#include <optional>

#include "cnf/cnf.hpp"
#include "util/bigint.hpp"
#include "util/timer.hpp"

namespace unigen {

struct ExactCounterOptions {
  Deadline deadline = Deadline::never();
  /// Component cache is cleared when it exceeds this many entries.
  std::size_t max_cache_entries = 1u << 20;
};

struct ExactCounterStats {
  std::uint64_t branch_decisions = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t component_splits = 0;
};

class ExactCounter {
 public:
  explicit ExactCounter(ExactCounterOptions options = {})
      : options_(options) {}

  /// Number of total assignments over cnf.num_vars() variables satisfying
  /// every clause and XOR; nullopt iff the deadline expired.
  std::optional<BigUint> count(const Cnf& cnf);

  const ExactCounterStats& stats() const { return stats_; }

 private:
  ExactCounterOptions options_;
  ExactCounterStats stats_;
};

/// Projected model count over `projection`, computed by blocking-clause
/// enumeration (up to `bound` projections).  Returns nullopt if the bound or
/// the deadline was hit before exhausting the space.  This is the simple
/// reference used in tests and by samplers that need |R_F| restricted to the
/// sampling set.
std::optional<std::uint64_t> count_projected_by_enumeration(
    const Cnf& cnf, const std::vector<Var>& projection, std::uint64_t bound,
    const Deadline& deadline = Deadline::never());

}  // namespace unigen
