#include "counting/parallel_approxmc.hpp"

#include <atomic>
#include <optional>

#include "service/worker_pool.hpp"

namespace unigen {

void parallel_approxmc_iterations(const Cnf& formula,
                                  const std::vector<Var>& sampling_set,
                                  const ApproxMcOptions& options,
                                  std::size_t threads, const Rng& iter_base,
                                  std::unique_ptr<IncrementalBsat> warm_engine,
                                  std::vector<ApproxMcCoreOutcome>& outcomes,
                                  ApproxMcResult& result,
                                  const ParallelCountControl& control) {
  const auto n = static_cast<std::uint32_t>(sampling_set.size());
  const std::uint64_t pivot = result.pivot;
  const Budget& budget = options.budget;

  // The leapfrog hint: completed iterations' m's, 0 while none has
  // finished.  Racy on purpose — the hint only steers where the search
  // starts, never what it finds (approxmc_core.hpp), so relaxed atomics
  // are all the coordination the fan-out needs.  Publication goes through
  // leapfrog_publish — the same rule as the serial loop — so a cut
  // iteration (timeout, fault, cancel) never seeds later searches; the
  // suggestion policy (last-m vs windowed median) is LeapfrogHint's.
  // Deterministic-budget runs bypass the hint entirely (control.cold_starts).
  LeapfrogHint hint(options.leapfrog_window);
  // Unit ledger shared by the workers.  Like the hint it is only advisory
  // here (stop starting work the grant can no longer cover); the canonical
  // admission fold in approxmc.cpp re-derives the charged prefix
  // schedule-independently.
  std::atomic<std::uint64_t> spent{control.units_spent};

  // The warm-handoff seam: a shared pool (session server, SamplerPool)
  // lends its workers — and keeps the engines this fan-out warms — instead
  // of this call building N solvers only to discard them on return.
  WorkerPool* pool = options.shared_pool;
  std::optional<WorkerPool> owned;
  if (pool == nullptr) {
    owned.emplace(threads, iter_base);
    owned->start(formula, sampling_set, std::move(warm_engine));
    pool = &*owned;
  }
  pool->run(outcomes.size(), /*first_stream=*/0,
            [&](IncrementalBsat& engine, std::size_t /*worker*/,
                std::size_t i, Rng& rng) {
              if (control.settled != nullptr && (*control.settled)[i]) return;
              if (budget.cancelled()) return;       // slot stays "skipped"
              if (budget.wall_expired()) return;
              if (control.units_granted != 0 &&
                  spent.load(std::memory_order_relaxed) >=
                      control.units_granted)
                return;
              const std::uint32_t start_m =
                  control.cold_starts ? 0 : hint.suggest();
              outcomes[i] = approxmc_core_iteration(engine, n, pivot, options,
                                                    start_m, rng,
                                                    /*fault_key=*/i);
              spent.fetch_add(outcomes[i].bsat_calls,
                              std::memory_order_relaxed);
              if (!control.cold_starts) {
                if (const auto m = leapfrog_publish(outcomes[i]))
                  hint.publish(*m);
              }
            },
            budget.cancel != nullptr ? budget.cancel->flag() : nullptr,
            // Iteration streams fork from iter_base whoever owns the pool:
            // a shared pool's base generator keys a *different* stream
            // space (its embedding's requests), and iteration i must draw
            // the same randomness on both ownership paths.
            &iter_base);

  result.threads_used = pool->num_threads();
  result.workers.reserve(pool->num_threads());
  // Aggregate through SolverStats::merge (the path the coverage test in
  // tests/test_solver_stats.cpp guards), then project into the flat result
  // fields through the same fold_solver_stats the serial path uses —
  // counters added to SolverStats cannot silently drop out of pooled
  // totals or drift between the two paths.  On a shared pool these are the
  // engines' *lifetime* counters (they may include the embedding's earlier
  // probes — diagnostics, not part of any byte-identity contract).
  SolverStats total;
  for (std::size_t w = 0; w < pool->num_threads(); ++w) {
    result.workers.push_back(pool->engine_stats(w));
    total.merge(result.workers.back());
  }
  fold_solver_stats(result, total);
}

}  // namespace unigen
