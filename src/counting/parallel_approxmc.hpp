#pragma once
// Parallel ApproxMC — the counting half of the service layer.
//
// Algorithm 1 of the paper blocks on one ApproxMC call before any sample
// can be served, and ApproxMC itself is t independent median iterations —
// the same independence that makes sampling embarrassingly parallel
// (UniGen2's observation) applies verbatim to the counting phase.  This
// module fans the t ApproxMcCore iterations across a WorkerPool:
//
//   * each worker owns one lazily-built IncrementalBsat over the shared
//     (already simplified) formula; worker 0 adopts the engine the
//     exact-count prologue warmed up, so every worker builds exactly one
//     solver (ApproxMcResult::workers[i].solver_rebuilds == 1);
//   * iteration i draws everything from keyed stream i — identical to the
//     serial loop — so its outcome is schedule-independent;
//   * the hash-count search of each iteration starts leapfrogged from the
//     last *completed* iteration's m (a lock-free shared hint; cold gallop
//     when none has finished yet).  Monotonicity of nested-prefix cells
//     (approxmc_core.hpp) makes the starting point a pure probe-count
//     optimization, so the racy hint is harmless: any hint value yields
//     the same outcome, just fewer or more probes;
//   * outcomes land in canonical iteration-order slots; the caller folds
//     the median from them exactly as the serial path does.
//
// Net effect: approx_count(options.num_threads = N) returns byte-identical
// counts for every N — including N = 1, the serial path — while wall-clock
// scales with min(N, cores) and total BSAT probes stay within a leapfrog
// miss or two of serial (tracked by leapfrog_warm/cold_starts and
// bench/bench_parallel_count.cpp).
//
// Entry point for callers is still approx_count (counting/approxmc.hpp),
// which dispatches here; this header exists for the dispatcher and for
// tests that want the fan-out in isolation.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/cnf.hpp"
#include "counting/approxmc.hpp"
#include "counting/approxmc_core.hpp"
#include "sat/incremental_bsat.hpp"
#include "util/rng.hpp"

namespace unigen {

/// The shared leapfrog hint of one fan-out, with a configurable policy
/// (ApproxMcOptions::leapfrog_window):
///
///   window == 1  — classic last-completed-m: publish overwrites, suggest
///                  returns the latest value.  The behavior every PR-4 run
///                  had.
///   window  > 1  — windowed median: suggest returns the median of the last
///                  `window` published m's.  Rationale: with racing workers
///                  the *latest* completion is whichever iteration happened
///                  to finish last — an outlier m then misdirects every
///                  search that starts before the next completion, while
///                  the median of several completions tracks the
///                  concentration point of the distribution.
///
/// Either way the hint is advisory and outcome-neutral (nested-prefix
/// monotonicity, approxmc_core.hpp), which is what makes the deliberately
/// racy relaxed atomics sufficient: a torn or stale read costs probes,
/// never correctness.  suggest() == 0 means cold (nothing published yet).
/// Note what no policy can buy: a cold start happens iff a search begins
/// before the first completion *anywhere*, and publication timing is
/// identical under every policy — windowing can only cheapen misses that
/// start warm-but-misdirected, never reduce the cold-start count
/// (bench_parallel_count A/Bs exactly this).
class LeapfrogHint {
 public:
  static constexpr std::size_t kMaxWindow = 15;

  explicit LeapfrogHint(std::size_t window = 1)
      : window_(window < 1 ? 1 : (window > kMaxWindow ? kMaxWindow : window)) {
    for (auto& slot : ring_) slot.store(0, std::memory_order_relaxed);
  }

  /// Records a completed iteration's m (callers route through
  /// leapfrog_publish first — the publication *rule* stays in one place).
  void publish(std::uint32_t m) {
    const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    ring_[static_cast<std::size_t>(n % window_)].store(
        m, std::memory_order_relaxed);
  }

  /// The start_m to suggest: 0 while nothing is published, else the median
  /// of the last min(published, window) values (latest value when
  /// window == 1).
  std::uint32_t suggest() const {
    const std::uint64_t published = count_.load(std::memory_order_relaxed);
    if (published == 0) return 0;
    const std::size_t n = static_cast<std::size_t>(
        published < window_ ? published : window_);
    if (n == 1 || window_ == 1) {
      // Classic: the slot the latest publish landed in.
      const std::size_t last =
          static_cast<std::size_t>((published - 1) % window_);
      return ring_[last].load(std::memory_order_relaxed);
    }
    std::array<std::uint32_t, kMaxWindow> vals;
    for (std::size_t i = 0; i < n; ++i)
      vals[i] = ring_[i].load(std::memory_order_relaxed);
    std::nth_element(vals.begin(), vals.begin() + n / 2, vals.begin() + n);
    return vals[n / 2];
  }

 private:
  std::size_t window_;
  std::atomic<std::uint64_t> count_{0};
  std::array<std::atomic<std::uint32_t>, kMaxWindow> ring_;
};

/// Anytime control of one fan-out; defaults reproduce the unbudgeted run.
struct ParallelCountControl {
  /// Slots to skip (already settled by an earlier grant); null = none.
  const std::vector<char>* settled = nullptr;
  /// Cumulative deterministic unit grant (0 = unlimited): workers stop
  /// *starting* iterations once the shared spent-counter reaches it.  The
  /// check is racy by design — work conservation only; the caller's
  /// canonical admission fold decides what the grant actually bought.
  std::uint64_t units_granted = 0;
  /// Units already charged (prologue + previously settled iterations).
  std::uint64_t units_spent = 0;
  /// Deterministic mode: every iteration starts cold (start_m = 0) instead
  /// of chasing the racy shared hint, so its probe count is a pure
  /// function of its stream (approxmc_core.hpp) at every thread count.
  bool cold_starts = false;
};

/// Fans `outcomes.size()` core iterations across `threads` workers.
/// `formula` must be the (possibly simplified) formula the prologue probed
/// and must outlive the call; `warm_engine` (worker 0 adopts it) is the
/// prologue's engine.  Iteration i draws from iter_base.fork_stream(i) and
/// reports to the fault plan under key i.  Fills `outcomes` in canonical
/// iteration order and folds the per-worker engine counters into `result`
/// (workers, the flat solver_* fields, and threads_used).  Leapfrog/median
/// accounting stays with the caller, which processes `outcomes` the same
/// way for every schedule.  Budget cuts (options.budget, `control`) leave
/// the untouched slots default-valued (bsat_calls == 0); cancellation is
/// observed both here (between iterations) and inside the pool.
///
/// Pool ownership: when options.shared_pool is set (an already-started
/// WorkerPool over the same `formula`/`sampling_set`), the fan-out runs on
/// *its* workers — `threads` and `warm_engine` are ignored (the embedding
/// already seeded worker 0 when it started the pool), engines warmed here
/// stay warm for whatever the pool serves next, and task streams still
/// fork from `iter_base` (WorkerPool::run's stream_base override), so the
/// outcome bytes are identical to a private pool's.  Without it the call
/// builds its own transient pool of `threads` workers, as before.
void parallel_approxmc_iterations(const Cnf& formula,
                                  const std::vector<Var>& sampling_set,
                                  const ApproxMcOptions& options,
                                  std::size_t threads, const Rng& iter_base,
                                  std::unique_ptr<IncrementalBsat> warm_engine,
                                  std::vector<ApproxMcCoreOutcome>& outcomes,
                                  ApproxMcResult& result,
                                  const ParallelCountControl& control = {});

}  // namespace unigen
