#include "hashing/xor_hash.hpp"

#include "sat/solver.hpp"

namespace unigen {

XorHash draw_xor_hash(const std::vector<Var>& vars, std::size_t m, Rng& rng) {
  XorHash hash;
  hash.rows.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    XorConstraint row;
    for (const Var v : vars) {
      if (rng.flip()) row.vars.push_back(v);  // a_{i,k}
    }
    const bool a0 = rng.flip();     // a_{i,0}
    const bool alpha = rng.flip();  // α[i]
    row.rhs = a0 ^ alpha;
    hash.rows.push_back(std::move(row));
  }
  return hash;
}

std::uint64_t XorHash::cell_of(const Model& assignment) const {
  std::uint64_t cell = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bool parity = false;
    for (const Var v : rows[i].vars)
      parity ^= (assignment[static_cast<std::size_t>(v)] == lbool::True);
    // Row satisfied iff parity == rhs; the cell index collects, per bit,
    // whether the row's XOR evaluates to its target.
    if (parity == rows[i].rhs) cell |= (std::uint64_t{1} << i);
  }
  return cell;
}

double XorHash::average_row_length() const {
  if (rows.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& row : rows) total += row.vars.size();
  return static_cast<double>(total) / static_cast<double>(rows.size());
}

void XorHash::conjoin_to(Cnf& cnf) const {
  for (const auto& row : rows) cnf.add_xor(row);
}

void XorHash::attach_to(Solver& solver, std::vector<Lit>& activations) const {
  std::vector<Var> vars;
  for (const auto& row : rows) {
    const Var absorber = solver.new_var();
    solver.mark_absorber(absorber);
    vars.assign(row.vars.begin(), row.vars.end());
    vars.push_back(absorber);
    solver.add_xor(std::move(vars), row.rhs);
    activations.push_back(Lit(absorber, true));  // assume ¬absorber: row on
  }
}

}  // namespace unigen
