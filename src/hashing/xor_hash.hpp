#pragma once
// The 3-independent linear hash family H_xor(n, m, 3) of paper Section 4:
//
//   h(y)[i] = a_{i,0} XOR ( XOR_{k=1..n} a_{i,k} · y[k] ),  a_{i,j} ~ U{0,1}
//
// A random member is drawn by flipping each coefficient independently, so
// each output bit is an XOR over ~n/2 of the hashed variables.  Hashing over
// the sampling set S (instead of the full support X) is the paper's central
// scalability lever: the expected XOR length drops from |X|/2 to |S|/2.
//
// Conjoining `h(y) = α` to a formula is expressed as m XOR constraints over
// the hashed variables; the random target α is folded into each row's rhs.

#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/types.hpp"
#include "util/rng.hpp"

namespace unigen {

class Solver;

/// One drawn hash function h together with a target cell α.
struct XorHash {
  /// Row i: XOR of `rows[i].vars` must equal `rows[i].rhs`
  /// (rhs = α[i] XOR a_{i,0}).
  std::vector<XorConstraint> rows;

  std::size_t m() const { return rows.size(); }

  /// Applies the hash to an assignment (for tests / analysis): returns the
  /// m-bit cell index of the assignment.  Cells are labeled so that the
  /// drawn target cell α is the all-ones index; the labeling is a bijection,
  /// so partition statistics are unaffected.
  std::uint64_t cell_of(const Model& assignment) const;

  /// True iff `assignment` falls in the drawn target cell (h(y) = α).
  bool in_target_cell(const Model& assignment) const {
    return cell_of(assignment) == (m() >= 64 ? ~std::uint64_t{0}
                                             : (std::uint64_t{1} << m()) - 1);
  }

  /// Average number of variables per row.
  double average_row_length() const;

  /// Adds the constraints h(y) = α to `cnf` as native XOR clauses.
  void conjoin_to(Cnf& cnf) const;

  /// Emits the rows into a *persistent* solver instead of a copied CNF
  /// (the incremental-BSAT path): each row gets a fresh absorber variable
  /// folded in, making the row inert — it merely defines the absorber —
  /// until the absorber's negative literal is assumed, which switches the
  /// row's parity over the hashed variables on.  One activation literal per
  /// row is appended to `activations`, in row order, so hash levels
  /// m = 1..n are nested prefixes of that list.
  void attach_to(Solver& solver, std::vector<Lit>& activations) const;
};

/// Draws h uniformly from H_xor(|vars|, m, 3) and α uniformly from {0,1}^m
/// (paper Algorithm 1, lines 14–15, fused since only h(y)=α is ever used).
XorHash draw_xor_hash(const std::vector<Var>& vars, std::size_t m, Rng& rng);

}  // namespace unigen
