#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>

namespace unigen::obs {

void Histogram::record_ns(std::uint64_t ns) {
  if (!enabled()) return;
  const int idx = std::min<int>(
      kBuckets - 1, static_cast<int>(std::bit_width(ns | 1)) - 1);
  buckets_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  // Both sides are name-sorted (snapshot() walks a std::map; merge
  // preserves it), so this is the classic sorted-merge fold.
  std::vector<CounterRow> mc;
  std::size_t i = 0, j = 0;
  while (i < counters.size() || j < other.counters.size()) {
    if (j == other.counters.size() ||
        (i < counters.size() && counters[i].name < other.counters[j].name)) {
      mc.push_back(counters[i++]);
    } else if (i == counters.size() ||
               other.counters[j].name < counters[i].name) {
      mc.push_back(other.counters[j++]);
    } else {
      CounterRow row = counters[i++];
      row.value += other.counters[j++].value;
      mc.push_back(row);
    }
  }
  counters = std::move(mc);

  std::vector<HistogramRow> mh;
  i = 0;
  j = 0;
  while (i < histograms.size() || j < other.histograms.size()) {
    if (j == other.histograms.size() ||
        (i < histograms.size() &&
         histograms[i].name < other.histograms[j].name)) {
      mh.push_back(histograms[i++]);
    } else if (i == histograms.size() ||
               other.histograms[j].name < histograms[i].name) {
      mh.push_back(other.histograms[j++]);
    } else {
      HistogramRow row = histograms[i++];
      const HistogramRow& o = other.histograms[j++];
      row.count += o.count;
      row.sum_ns += o.sum_ns;
      row.max_ns = std::max(row.max_ns, o.max_ns);
      for (int b = 0; b < Histogram::kBuckets; ++b)
        row.buckets[static_cast<std::size_t>(b)] +=
            o.buckets[static_cast<std::size_t>(b)];
      mh.push_back(row);
    }
  }
  histograms = std::move(mh);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"schema_version\":1,\"counters\":{";
  char buf[192];
  bool first = true;
  for (const CounterRow& c : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",",
                  c.name.c_str(), static_cast<unsigned long long>(c.value));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramRow& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%llu,\"sum_ns\":%llu,\"max_ns\":%llu,"
                  "\"mean_seconds\":%.9f,\"buckets\":[",
                  first ? "" : ",", h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum_ns),
                  static_cast<unsigned long long>(h.max_ns),
                  h.mean_seconds());
    out += buf;
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s[%d,%llu]", bfirst ? "" : ",", b,
                    static_cast<unsigned long long>(n));
      out += buf;
      bfirst = false;
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum_ns = h->sum_ns();
    row.max_ns = h->max_ns();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      row.buckets[static_cast<std::size_t>(b)] = h->bucket(b);
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

std::string metrics_json() { return metrics().snapshot().to_json(); }

bool write_metrics_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = metrics_json();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace unigen::obs
