#pragma once
// MetricsRegistry — named counters and fixed-bucket latency histograms,
// recorded lock-free on the hot paths and folded/exported the same way
// `SolverStats::merge` folds solver counters: snapshots merge by name, so
// per-run or per-process snapshots aggregate into one report.
//
// Recording is gated on obs::enabled() (one relaxed load when off), and the
// instrumentation sites cache their `Counter&`/`Histogram&` in a
// function-local static so the name lookup's mutex is paid once per site.
//
// Metric catalog (see README "Observability"):
//   bsat.solves / bsat.solve_seconds        every Solver::solve_limited
//   bsat.cells  / cell.enumeration_seconds  every IncrementalBsat cell walk
//   pool.tasks  / pool.queue_wait_seconds   WorkerPool task pull latency
//   session.hits / session.misses / session.evictions
//   fleet.crashes / fleet.hang_kills / fleet.respawns / fleet.redispatches
//     / fleet.poisoned_tasks / fleet.crash_recovery_seconds

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"  // enabled(), now_ns()

namespace unigen::obs {

class Counter {
 public:
  void add(std::uint64_t d = 1) {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed log2 buckets over nanoseconds: bucket i counts latencies in
/// [2^i, 2^{i+1}) ns, i = 0 … kBuckets-1 (last bucket open-ended ≈ 3.9 h).
class Histogram {
 public:
  static constexpr int kBuckets = 44;

  void record_ns(std::uint64_t ns);
  void record_seconds(double s) {
    record_ns(s <= 0.0 ? 0 : static_cast<std::uint64_t>(s * 1e9));
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Times a scope into a Histogram; free when tracing is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) {
    if (enabled()) {
      h_ = &h;
      start_ = now_ns();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (h_ != nullptr) h_->record_ns(now_ns() - start_);
  }

 private:
  Histogram* h_ = nullptr;
  std::uint64_t start_ = 0;
};

/// A point-in-time copy of the registry, mergeable by name (the
/// SolverStats::merge-style fold) and exportable as one versioned JSON
/// document.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
    double mean_seconds() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_ns) / 1e9 /
                              static_cast<double>(count);
    }
  };
  std::vector<CounterRow> counters;      // name-sorted
  std::vector<HistogramRow> histograms;  // name-sorted

  /// Adds `other` into this: counters sum, histogram counts/sums/buckets
  /// sum, maxima take the max.  Names present in either survive.
  void merge(const MetricsSnapshot& other);

  /// {"schema_version":1,"counters":{…},"histograms":{…}} — buckets are
  /// emitted sparse as [bucket_index, count] pairs.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Returns the named metric, creating it on first use.  The reference is
  /// stable for the registry's lifetime — cache it in a static at the
  /// recording site.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric (registrations survive).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every instrumentation site records into.
MetricsRegistry& metrics();

/// Global snapshot → versioned JSON / file.
std::string metrics_json();
bool write_metrics_json(const std::string& path);

}  // namespace unigen::obs
