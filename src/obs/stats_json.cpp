#include "obs/stats_json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <type_traits>

namespace unigen::obs {

// --- JsonValue ----------------------------------------------------------

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}
JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}
JsonValue JsonValue::of_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::of_double(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_kind_ = NumKind::kDouble;
  v.dbl_ = d;
  return v;
}
JsonValue JsonValue::of_int(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_kind_ = NumKind::kInt;
  v.int_ = i;
  return v;
}
JsonValue JsonValue::of_uint(std::uint64_t u) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_kind_ = NumKind::kUint;
  v.uint_ = u;
  return v;
}
JsonValue JsonValue::of_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [k, old] : obj_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  arr_.push_back(std::move(v));
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}
double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  switch (num_kind_) {
    case NumKind::kDouble:
      return dbl_;
    case NumKind::kInt:
      return static_cast<double>(int_);
    case NumKind::kUint:
      return static_cast<double>(uint_);
  }
  return 0.0;
}
std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  switch (num_kind_) {
    case NumKind::kDouble:
      return static_cast<std::int64_t>(dbl_);
    case NumKind::kInt:
      return int_;
    case NumKind::kUint:
      return static_cast<std::int64_t>(uint_);
  }
  return 0;
}
std::uint64_t JsonValue::as_uint() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  switch (num_kind_) {
    case NumKind::kDouble:
      return static_cast<std::uint64_t>(dbl_);
    case NumKind::kInt:
      return static_cast<std::uint64_t>(int_);
    case NumKind::kUint:
      return uint_;
  }
  return 0;
}
const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return str_;
}

namespace {

void dump_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  char buf[64];
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      switch (num_kind_) {
        case NumKind::kDouble:
          std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
          return buf;
        case NumKind::kInt:
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(int_));
          return buf;
        case NumKind::kUint:
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(uint_));
          return buf;
      }
      return "0";
    case Kind::kString:
      dump_escaped(str_, out);
      return out;
    case Kind::kArray: {
      out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::kObject: {
      out = "{";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out += ',';
        dump_escaped(obj_[i].first, out);
        out += ':';
        out += obj_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

// --- parser -------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::of_string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue::of_bool(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue::of_bool(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{};
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out += c;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The stats schemas are ASCII; anything else is preserved as a
          // naive UTF-8 encoding of the code point (no surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    bool negative = false;
    bool integral = true;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin || (negative && pos_ == begin + 1)) fail("bad number");
    const std::string token(text_.substr(begin, pos_ - begin));
    if (integral) {
      errno = 0;
      if (negative) {
        const long long v = std::strtoll(token.c_str(), nullptr, 10);
        if (errno == 0) return JsonValue::of_int(v);
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), nullptr, 10);
        if (errno == 0) return JsonValue::of_uint(v);
      }
    }
    return JsonValue::of_double(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// --- per-struct field lists ---------------------------------------------

namespace {

// One field list per struct; to_json and from_json both walk it, so the
// two directions cannot drift (the round-trip tests in
// tests/test_stats_json.cpp lean on exactly this).
template <class F>
void visit_fields(SolverStats& s, F&& f) {
  f("decisions", s.decisions);
  f("propagations", s.propagations);
  f("xor_propagations", s.xor_propagations);
  f("conflicts", s.conflicts);
  f("restarts", s.restarts);
  f("learnt_clauses", s.learnt_clauses);
  f("removed_clauses", s.removed_clauses);
  f("minimized_literals", s.minimized_literals);
  f("gauss_units", s.gauss_units);
  f("gauss_rows", s.gauss_rows);
  f("solver_rebuilds", s.solver_rebuilds);
  f("reused_solves", s.reused_solves);
  f("retracted_blocks", s.retracted_blocks);
}

template <class F>
void visit_fields(SimplifyStats& s, F&& f) {
  f("ran", s.ran);
  f("unsat", s.unsat);
  f("rounds", s.rounds);
  f("original_clauses", s.original_clauses);
  f("original_literals", s.original_literals);
  f("result_clauses", s.result_clauses);
  f("result_literals", s.result_literals);
  f("units_fixed", s.units_fixed);
  f("tautologies_removed", s.tautologies_removed);
  f("pure_literals_fixed", s.pure_literals_fixed);
  f("subsumed_clauses", s.subsumed_clauses);
  f("strengthened_literals", s.strengthened_literals);
  f("eliminated_vars", s.eliminated_vars);
  f("seconds", s.seconds);
}

template <class F>
void visit_fields(UniGenStats& s, F&& f) {
  f("kappa", s.kappa);
  f("pivot", s.pivot);
  f("hi_thresh", s.hi_thresh);
  f("lo_thresh", s.lo_thresh);
  f("approx_log2_count", s.approx_log2_count);
  f("q", s.q);
  f("prepare_seconds", s.prepare_seconds);
  f("prepare_bsat_calls", s.prepare_bsat_calls);
  f("trivial", s.trivial);
  f("samples_requested", s.samples_requested);
  f("samples_ok", s.samples_ok);
  f("samples_failed", s.samples_failed);
  f("samples_timed_out", s.samples_timed_out);
  f("samples_cancelled", s.samples_cancelled);
  f("sample_bsat_calls", s.sample_bsat_calls);
  f("bsat_timeout_retries", s.bsat_timeout_retries);
  f("sample_seconds", s.sample_seconds);
  f("solver_rebuilds", s.solver_rebuilds);
  f("reused_solves", s.reused_solves);
  f("retracted_blocks", s.retracted_blocks);
  f("solver_propagations", s.solver_propagations);
  f("counter_solver_rebuilds", s.counter_solver_rebuilds);
  f("total_xor_row_length", s.total_xor_row_length);
  f("total_xor_rows", s.total_xor_rows);
}

template <class F>
void visit_fields(SamplerPoolWorkerStats& s, F&& f) {
  f("requests_served", s.requests_served);
  f("solver_rebuilds", s.solver_rebuilds);
  f("reused_solves", s.reused_solves);
  f("sample_bsat_calls", s.sample_bsat_calls);
  f("bsat_timeout_retries", s.bsat_timeout_retries);
  f("total_xor_rows", s.total_xor_rows);
  f("total_xor_row_length", s.total_xor_row_length);
}

template <class F>
void visit_fields(SamplerPoolStats& s, F&& f) {
  f("requests", s.requests);
  f("samples_ok", s.samples_ok);
  f("samples_failed", s.samples_failed);
  f("samples_timed_out", s.samples_timed_out);
  f("samples_cancelled", s.samples_cancelled);
  f("service_seconds", s.service_seconds);
}

template <class F>
void visit_fields(SessionRegistryStats& s, F&& f) {
  f("requests", s.requests);
  f("hits", s.hits);
  f("misses", s.misses);
  f("evictions", s.evictions);
  f("prepare_failures", s.prepare_failures);
  f("sessions", s.sessions);
  f("resident_bytes", s.resident_bytes);
}

template <class F>
void visit_fields(FleetStats& s, F&& f) {
  f("spawns", s.spawns);
  f("spawn_failures", s.spawn_failures);
  f("dials", s.dials);
  f("dial_failures", s.dial_failures);
  f("send_stalls", s.send_stalls);
  f("protocol_errors", s.protocol_errors);
  f("crashes", s.crashes);
  f("hang_kills", s.hang_kills);
  f("deadline_kills", s.deadline_kills);
  f("respawns", s.respawns);
  f("redispatches", s.redispatches);
  f("poisoned_tasks", s.poisoned_tasks);
  f("total_recovery_seconds", s.total_recovery_seconds);
  f("max_recovery_seconds", s.max_recovery_seconds);
}

struct FieldWriter {
  JsonValue* obj;
  template <class T>
  void operator()(const char* name, const T& value) const {
    if constexpr (std::is_same_v<T, bool>) {
      obj->set(name, JsonValue::of_bool(value));
    } else if constexpr (std::is_floating_point_v<T>) {
      obj->set(name, JsonValue::of_double(value));
    } else if constexpr (std::is_signed_v<T>) {
      obj->set(name, JsonValue::of_int(static_cast<std::int64_t>(value)));
    } else {
      obj->set(name, JsonValue::of_uint(static_cast<std::uint64_t>(value)));
    }
  }
};

struct FieldReader {
  const JsonValue* obj;
  bool ok = true;
  template <class T>
  void operator()(const char* name, T& value) {
    const JsonValue* v = obj->find(name);
    if (v == nullptr) {
      ok = false;
      return;
    }
    try {
      if constexpr (std::is_same_v<T, bool>) {
        value = v->as_bool();
      } else if constexpr (std::is_floating_point_v<T>) {
        value = static_cast<T>(v->as_double());
      } else if constexpr (std::is_signed_v<T>) {
        value = static_cast<T>(v->as_int());
      } else {
        value = static_cast<T>(v->as_uint());
      }
    } catch (const std::runtime_error&) {
      ok = false;
    }
  }
};

template <class S>
JsonValue flat_to_json(const S& s) {
  S copy = s;  // visit_fields takes a mutable ref; the writer only reads
  JsonValue v = JsonValue::object();
  visit_fields(copy, FieldWriter{&v});
  return v;
}

template <class S>
bool flat_from_json(const JsonValue& v, S& out) {
  if (!v.is_object()) return false;
  FieldReader reader{&v};
  visit_fields(out, reader);
  return reader.ok;
}

}  // namespace

JsonValue to_json(const SolverStats& s) { return flat_to_json(s); }
JsonValue to_json(const SimplifyStats& s) { return flat_to_json(s); }
JsonValue to_json(const SamplerPoolWorkerStats& s) { return flat_to_json(s); }
JsonValue to_json(const SessionRegistryStats& s) { return flat_to_json(s); }
JsonValue to_json(const FleetStats& s) { return flat_to_json(s); }

JsonValue to_json(const UniGenStats& s) {
  JsonValue v = flat_to_json(s);
  v.set("simplify", to_json(s.simplify));
  return v;
}

JsonValue to_json(const SamplerPoolStats& s) {
  JsonValue v = flat_to_json(s);
  v.set("prepare", to_json(s.prepare));
  JsonValue workers = JsonValue::array();
  for (const SamplerPoolWorkerStats& w : s.workers)
    workers.push_back(to_json(w));
  v.set("workers", std::move(workers));
  return v;
}

bool from_json(const JsonValue& v, SolverStats& out) {
  return flat_from_json(v, out);
}
bool from_json(const JsonValue& v, SimplifyStats& out) {
  return flat_from_json(v, out);
}
bool from_json(const JsonValue& v, SamplerPoolWorkerStats& out) {
  return flat_from_json(v, out);
}
bool from_json(const JsonValue& v, SessionRegistryStats& out) {
  return flat_from_json(v, out);
}
bool from_json(const JsonValue& v, FleetStats& out) {
  return flat_from_json(v, out);
}

bool from_json(const JsonValue& v, UniGenStats& out) {
  if (!flat_from_json(v, out)) return false;
  const JsonValue* simp = v.find("simplify");
  return simp != nullptr && from_json(*simp, out.simplify);
}

bool from_json(const JsonValue& v, SamplerPoolStats& out) {
  if (!flat_from_json(v, out)) return false;
  const JsonValue* prep = v.find("prepare");
  if (prep == nullptr || !from_json(*prep, out.prepare)) return false;
  const JsonValue* workers = v.find("workers");
  if (workers == nullptr || !workers->is_array()) return false;
  out.workers.clear();
  for (const JsonValue& w : workers->items()) {
    SamplerPoolWorkerStats ws;
    if (!from_json(w, ws)) return false;
    out.workers.push_back(ws);
  }
  return true;
}

// --- enum round-trips ---------------------------------------------------

bool request_status_from_string(std::string_view name, RequestStatus& out) {
  for (const RequestStatus s :
       {RequestStatus::kComplete, RequestStatus::kPartial,
        RequestStatus::kFailed, RequestStatus::kTimedOut,
        RequestStatus::kCancelled}) {
    if (name == to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

const char* to_string(SampleResult::Status s) {
  switch (s) {
    case SampleResult::Status::kOk:
      return "ok";
    case SampleResult::Status::kFail:
      return "fail";
    case SampleResult::Status::kTimeout:
      return "timeout";
    case SampleResult::Status::kUnsat:
      return "unsat";
    case SampleResult::Status::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool sample_status_from_string(std::string_view name,
                               SampleResult::Status& out) {
  for (const SampleResult::Status s :
       {SampleResult::Status::kOk, SampleResult::Status::kFail,
        SampleResult::Status::kTimeout, SampleResult::Status::kUnsat,
        SampleResult::Status::kCancelled}) {
    if (name == to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace unigen::obs
