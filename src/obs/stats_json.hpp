#pragma once
// Stats-struct JSON serialization — one canonical, round-trippable encoding
// for every result/stats struct the services expose, replacing the ad-hoc
// per-CLI printf schemas.
//
// Two layers:
//
//   * `JsonValue` — a minimal JSON document model with an exact-integer
//     number representation (uint64/int64 survive a round trip; doubles
//     print with %.17g) plus a strict recursive-descent parser.  It exists
//     so the unit tests can assert serialize → parse → equal field-wise,
//     not to be a general JSON library.
//   * `to_json(...)` / `from_json(...)` overloads per stats struct, both
//     driven by a single `visit_fields` field list per struct — the writer
//     and the reader cannot drift apart, which is what makes the
//     round-trip tests meaningful.
//
// Enum names round-trip through to_string / *_from_string (RequestStatus's
// to_string lives in service/budget.hpp; SampleResult::Status's here).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/sampler.hpp"
#include "core/unigen.hpp"
#include "service/budget.hpp"
#include "service/process_fleet.hpp"
#include "service/sampler_pool.hpp"
#include "service/session_registry.hpp"

namespace unigen::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue object();
  static JsonValue array();
  static JsonValue of_bool(bool b);
  static JsonValue of_double(double d);
  static JsonValue of_int(std::int64_t i);
  static JsonValue of_uint(std::uint64_t u);
  static JsonValue of_string(std::string s);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object field access; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Appends/overwrites an object field (insertion order preserved).
  void set(std::string key, JsonValue v);

  void push_back(JsonValue v);
  const std::vector<JsonValue>& items() const { return arr_; }

  // Coercing scalar reads (number kinds convert into each other; anything
  // else throws std::runtime_error).
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;

  /// Compact JSON text.
  std::string dump() const;
  /// Strict parse of a complete document; throws std::runtime_error with a
  /// byte offset on malformed input.
  static JsonValue parse(std::string_view text);

 private:
  enum class NumKind { kDouble, kInt, kUint };
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  NumKind num_kind_ = NumKind::kDouble;
  double dbl_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

// --- per-struct serializers --------------------------------------------

JsonValue to_json(const SolverStats& s);
JsonValue to_json(const SimplifyStats& s);
JsonValue to_json(const UniGenStats& s);
JsonValue to_json(const SamplerPoolWorkerStats& s);
JsonValue to_json(const SamplerPoolStats& s);
JsonValue to_json(const SessionRegistryStats& s);
JsonValue to_json(const FleetStats& s);

/// Each returns false when a field is missing or has the wrong shape (the
/// present fields before the failure point may already be assigned).
bool from_json(const JsonValue& v, SolverStats& out);
bool from_json(const JsonValue& v, SimplifyStats& out);
bool from_json(const JsonValue& v, UniGenStats& out);
bool from_json(const JsonValue& v, SamplerPoolWorkerStats& out);
bool from_json(const JsonValue& v, SamplerPoolStats& out);
bool from_json(const JsonValue& v, SessionRegistryStats& out);
bool from_json(const JsonValue& v, FleetStats& out);

// --- enum name round-trips ---------------------------------------------

/// Inverse of service/budget.hpp's to_string(RequestStatus).
bool request_status_from_string(std::string_view name, RequestStatus& out);

const char* to_string(SampleResult::Status s);
bool sample_status_from_string(std::string_view name,
                               SampleResult::Status& out);

}  // namespace unigen::obs
