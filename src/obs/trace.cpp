#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>

namespace unigen::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

void set_enabled(bool on) {
  if constexpr (kCompiledIn)
    detail::g_enabled.store(on, std::memory_order_relaxed);
  else
    (void)on;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

std::uint64_t nonzero(std::uint64_t x) { return x != 0 ? x : 1; }

// Process salt: keeps span/trace ids from a supervisor and its forked
// workers out of each other's id spaces when their events are merged into
// one trace.  Lazily derived from the pid — exec'd workers get their own.
std::uint64_t process_salt() {
  static const std::uint64_t salt =
      mix64(0x0b5e7ab1e5a17000ull ^ static_cast<std::uint64_t>(::getpid()));
  return salt;
}

std::atomic<std::uint64_t> g_id_counter{0};

// --- per-thread seqlock ring -------------------------------------------
//
// Single writer (the owning thread), any-thread reader.  Every field is a
// relaxed atomic so a concurrent snapshot is a data-race-free *skip*, not
// UB: the per-slot seq (odd while the writer is inside, generation-stamped
// when stable) tells the reader which slots to trust.

struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> trace{0};
  std::atomic<std::uint64_t> span{0};
  std::atomic<std::uint64_t> parent{0};
  std::atomic<std::uint64_t> start{0};
  std::atomic<std::uint64_t> end{0};
  std::atomic<std::uint64_t> value{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint32_t> worker{0};
  std::atomic<std::uint32_t> attempt{0};
};

std::atomic<std::size_t> g_ring_capacity{8192};

class Recorder {
 public:
  explicit Recorder(std::size_t cap)
      : cap_(cap), slots_(std::make_unique<Slot[]>(cap)) {}

  // Writer side: owner thread only.
  void record(const TraceEvent& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h % cap_];
    const std::uint64_t gen = h / cap_;
    s.seq.store(2 * gen + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.trace.store(e.trace_id, std::memory_order_relaxed);
    s.span.store(e.span_id, std::memory_order_relaxed);
    s.parent.store(e.parent_id, std::memory_order_relaxed);
    s.start.store(e.start_ns, std::memory_order_relaxed);
    s.end.store(e.end_ns, std::memory_order_relaxed);
    s.value.store(e.value, std::memory_order_relaxed);
    s.name.store(e.name, std::memory_order_relaxed);
    s.worker.store(e.worker, std::memory_order_relaxed);
    s.attempt.store(e.attempt, std::memory_order_relaxed);
    s.seq.store(2 * gen + 2, std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  // Reader side: any thread.  Appends valid unread events; returns the
  // number dropped (overwritten before this read, or torn mid-write).
  std::uint64_t snapshot_into(std::vector<TraceEvent>& out) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t lo =
        std::max(tail, head > cap_ ? head - cap_ : 0);
    std::uint64_t dropped = head - tail - (head - lo);
    for (std::uint64_t i = lo; i < head; ++i) {
      const Slot& s = slots_[i % cap_];
      const std::uint64_t want = 2 * (i / cap_) + 2;
      const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
      if (s1 != want) {
        ++dropped;  // being overwritten right now (writer lapped us)
        continue;
      }
      TraceEvent e;
      e.trace_id = s.trace.load(std::memory_order_relaxed);
      e.span_id = s.span.load(std::memory_order_relaxed);
      e.parent_id = s.parent.load(std::memory_order_relaxed);
      e.start_ns = s.start.load(std::memory_order_relaxed);
      e.end_ns = s.end.load(std::memory_order_relaxed);
      e.value = s.value.load(std::memory_order_relaxed);
      e.name = s.name.load(std::memory_order_relaxed);
      e.worker = s.worker.load(std::memory_order_relaxed);
      e.attempt = s.attempt.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != s1) {
        ++dropped;
        continue;
      }
      if (e.name == nullptr) e.name = "";
      out.push_back(e);
    }
    return dropped;
  }

  void mark_read() {
    tail_.store(head_.load(std::memory_order_acquire),
                std::memory_order_relaxed);
  }

  std::uint64_t unread_dropped() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t live = std::min<std::uint64_t>(head - tail, cap_);
    return (head - tail) - live;
  }

 private:
  const std::size_t cap_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};  // logical clear watermark
};

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<Recorder*>& registry() {
  // Recorders are never destroyed: a drained thread's ring must stay
  // readable after the thread exits (pools join their workers before the
  // dispatcher snapshots, but nothing should depend on that ordering).
  // Memory is bounded by threads-ever × ring bytes.
  static std::vector<Recorder*>* regs = new std::vector<Recorder*>();
  return *regs;
}

Recorder& local_recorder() {
  thread_local Recorder* rec = nullptr;
  if (rec == nullptr) {
    auto* fresh = new Recorder(g_ring_capacity.load(std::memory_order_relaxed));
    {
      std::lock_guard<std::mutex> lk(registry_mutex());
      registry().push_back(fresh);
    }
    rec = fresh;
  }
  return *rec;
}

thread_local TraceContext t_current;

}  // namespace

std::uint64_t trace_id_for_request(std::uint64_t seed, std::uint64_t stream) {
  return nonzero(mix64(mix64(seed) ^ (stream + 0x514e47454eull)));
}

std::uint64_t fresh_trace_id() {
  return nonzero(mix64(process_salt() +
                       g_id_counter.fetch_add(1, std::memory_order_relaxed)));
}

std::uint64_t fresh_span_id() {
  return nonzero(mix64(process_salt() ^
                       (g_id_counter.fetch_add(1, std::memory_order_relaxed) +
                        0x5bd1e995ull)));
}

const char* intern_name(const char* name) {
  static std::mutex mu;
  static std::set<std::string>* names = new std::set<std::string>();
  std::lock_guard<std::mutex> lk(mu);
  return names->insert(name ? name : "").first->c_str();
}

TraceContext current_context() {
  if (!enabled()) return {};
  return t_current;
}

ContextScope::ContextScope(TraceContext ctx) {
  if (!enabled()) return;
  saved_ = t_current;
  t_current = ctx;
  armed_ = true;
}

ContextScope::~ContextScope() {
  if (armed_) t_current = saved_;
}

void Span::init(const char* name, std::uint64_t fallback_trace) {
  name_ = name;
  if (t_current.valid()) {
    trace_ = t_current.trace_id;
    parent_ = t_current.span_id;
  } else {
    trace_ = fallback_trace != 0 ? fallback_trace : fresh_trace_id();
    parent_ = 0;
  }
  id_ = fresh_span_id();
  start_ = now_ns();
  saved_ = t_current;
  t_current = TraceContext{trace_, id_};
  armed_ = true;
}

void Span::finish() {
  t_current = saved_;
  TraceEvent e;
  e.trace_id = trace_;
  e.span_id = id_;
  e.parent_id = parent_;
  e.start_ns = start_;
  e.end_ns = now_ns();
  e.value = value_;
  e.name = name_;
  e.worker = worker_;
  e.attempt = attempt_;
  local_recorder().record(e);
}

void record_span(const TraceEvent& e) {
  if (!enabled()) return;
  local_recorder().record(e);
}

void set_ring_capacity(std::size_t events) {
  events = std::clamp<std::size_t>(events, 64, std::size_t{1} << 22);
  g_ring_capacity.store(events, std::memory_order_relaxed);
}

std::vector<TraceEvent> snapshot_events() {
  std::vector<Recorder*> recs;
  {
    std::lock_guard<std::mutex> lk(registry_mutex());
    recs = registry();
  }
  std::vector<TraceEvent> out;
  for (const Recorder* r : recs) r->snapshot_into(out);
  return out;
}

void clear_all() {
  std::lock_guard<std::mutex> lk(registry_mutex());
  for (Recorder* r : registry()) r->mark_read();
}

std::uint64_t dropped_events() {
  std::lock_guard<std::mutex> lk(registry_mutex());
  std::uint64_t total = 0;
  for (const Recorder* r : registry()) total += r->unread_dropped();
  return total;
}

std::string trace_jsonl() {
  std::vector<TraceEvent> events = snapshot_events();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"schema\":\"unigen.trace.v1\",\"events\":%zu,"
                "\"dropped\":%llu}\n",
                events.size(),
                static_cast<unsigned long long>(dropped_events()));
  out += line;
  for (const TraceEvent& e : events) {
    std::snprintf(
        line, sizeof(line),
        "{\"trace\":\"%016llx\",\"span\":\"%016llx\",\"parent\":\"%016llx\","
        "\"name\":\"%s\",\"start_ns\":%llu,\"end_ns\":%llu,\"value\":%llu,"
        "\"worker\":%u,\"attempt\":%u}\n",
        static_cast<unsigned long long>(e.trace_id),
        static_cast<unsigned long long>(e.span_id),
        static_cast<unsigned long long>(e.parent_id), e.name,
        static_cast<unsigned long long>(e.start_ns),
        static_cast<unsigned long long>(e.end_ns),
        static_cast<unsigned long long>(e.value), e.worker, e.attempt);
    out += line;
  }
  return out;
}

bool write_trace_jsonl(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = trace_jsonl();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace unigen::obs
