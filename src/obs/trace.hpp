#pragma once
// Low-overhead tracing: RAII Span scopes recorded into lock-free per-thread
// ring buffers, exported as JSONL.
//
// Design constraints (the byte-identity contracts of the services dictate
// them):
//
//   * Strictly outside the RNG / keyed-stream paths.  Nothing here draws
//     from or advances an `Rng`; trace ids come from their own splitmix
//     finalizer over (seed, stream) request coordinates, and span ids from
//     a process-salted counter.  Samples and counts are byte-identical with
//     tracing on or off — the determinism suites assert exactly that.
//   * Off by default, and near-free when off: constructing a disabled Span
//     is one relaxed atomic load and a branch.  A compile-time kill switch
//     (`UNIGEN_OBS_DISABLED`, CMake option `UNIGEN_OBS=OFF`) turns the
//     whole layer into dead code behind `if constexpr`.
//   * Lock-free recording: each thread owns a fixed-capacity ring of
//     seqlock-published slots (every field a relaxed atomic, so the
//     concurrent snapshot is ThreadSanitizer-clean).  The ring overwrites
//     oldest-first; drops are counted, never blocked on.
//
// Span hierarchy (see README "Observability"):
//
//   server.request / pool.request          one service call = one trace id
//     pool.prepare                         one-time phase (simplify + count)
//       count.request                      an ApproxMC run
//         count.iteration                  one median iteration
//           hash.probe                     one hash-level search step
//             bsat.call                    one enumerate_cell
//     sample.request                       one sample / one batch
//       hash.probe → bsat.call             Algorithm-2 probe ladder
//     fleet.attempt[.crashed]              supervisor-side dispatch attempt
//       worker.task                        shipped back in the Result frame
//
// Cross-process attribution: trace ids ride the Task IPC frame, workers
// record into their own rings and ship the events back inside Result
// (`ipc::SpanWire`), and the supervisor re-emits them — one timeline,
// CLOCK_MONOTONIC being host-wide — with worker pid and dispatch attempt
// tags.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace unigen::obs {

#ifdef UNIGEN_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Runtime switch, default off.  Checked (one relaxed load) at every
/// recording site; flipping it mid-run only affects spans opened after the
/// flip.
inline bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// CLOCK_MONOTONIC nanoseconds — one timeline for every process on the
/// host, which is what lets worker spans interleave with supervisor spans.
std::uint64_t now_ns();

/// splitmix64 finalizer; the id derivations below go through it.
std::uint64_t mix64(std::uint64_t x);

/// The 64-bit trace id of a request, a pure function of the request's
/// keyed-stream coordinates — NOT of any Rng draw.  Never zero (zero means
/// "no trace" on the wire).
std::uint64_t trace_id_for_request(std::uint64_t seed, std::uint64_t stream);

/// A trace id for root work with no stream coordinates (standalone counts,
/// CLI runs): process-salted counter, never zero.
std::uint64_t fresh_trace_id();

/// A span id nobody else holds: process-salted (so supervisor and worker
/// ids cannot collide in a merged trace), never zero.  Span/ContextScope
/// allocate their own; this is for manual emission (record_span).
std::uint64_t fresh_span_id();

/// Stable storage for a dynamic span name (worker names arriving over IPC).
/// Static string literals can be recorded directly without interning.
const char* intern_name(const char* name);

/// Where in some trace the current thread is.  trace_id == 0 ⇔ none.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// The installing thread's current context (innermost live Span, or
/// whatever ContextScope planted).  Invalid when tracing is off.
TraceContext current_context();

/// One finished span, as drained from the rings.  `name` is a static or
/// interned string.  `worker` tags the recording process/worker (0 =
/// untagged), `attempt` the fleet dispatch ordinal (1-based; 0 =
/// untagged).
struct TraceEvent {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t value = 0;
  const char* name = "";
  std::uint32_t worker = 0;
  std::uint32_t attempt = 0;
};

/// Installs a foreign context (an IPC'd one, or the dispatcher's at
/// fan-out) as this thread's current; restores on destruction.  No event
/// is recorded — it only re-parents the Spans opened inside.
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx);
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;
  ~ContextScope();

 private:
  TraceContext saved_;
  bool armed_ = false;
};

/// RAII span scope.  When tracing is disabled, construction is one relaxed
/// load and destruction one branch.  While alive it is the thread's
/// current context, so nested Spans parent to it automatically.
class Span {
 public:
  /// Child of the thread's current context; a root of a fresh trace when
  /// there is none and `fallback_trace` is 0, else a root of
  /// `fallback_trace`.  `name` must be a string literal (or interned).
  explicit Span(const char* name, std::uint64_t fallback_trace = 0) {
    if (!enabled()) return;
    init(name, fallback_trace);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (armed_) finish();
  }

  /// One free attribute slot (hash level m, request stream, task id…).
  void set_value(std::uint64_t v) {
    if (armed_) value_ = v;
  }
  void set_worker(std::uint32_t w) {
    if (armed_) worker_ = w;
  }
  void set_attempt(std::uint32_t a) {
    if (armed_) attempt_ = a;
  }
  /// For manual propagation (IPC frames).  Invalid when tracing is off.
  TraceContext context() const {
    return armed_ ? TraceContext{trace_, id_} : TraceContext{};
  }

 private:
  void init(const char* name, std::uint64_t fallback_trace);
  void finish();

  bool armed_ = false;
  const char* name_ = "";
  std::uint64_t trace_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ = 0;
  std::uint64_t value_ = 0;
  std::uint32_t worker_ = 0;
  std::uint32_t attempt_ = 0;
  TraceContext saved_;
};

/// Low-level emission of an already-timed span (supervisor attempt spans,
/// worker spans re-emitted from a Result frame).  `e.name` must be static
/// or interned.  No-op when tracing is off.
void record_span(const TraceEvent& e);

/// Ring capacity (events per thread) used for rings created after the
/// call; existing rings keep theirs.  Clamped to [64, 1<<22].
void set_ring_capacity(std::size_t events);

/// Snapshot of every thread's unread events (oldest first per thread, no
/// global order — sort by start_ns for a timeline).  Safe concurrently
/// with recording; slots mid-write or already overwritten are skipped and
/// counted as dropped.
std::vector<TraceEvent> snapshot_events();

/// Marks everything currently recorded as read; the next snapshot starts
/// empty.
void clear_all();

/// Events lost so far to ring overwrites (cumulative, reset by reset_drop
/// counters only via clear_all's watermark advancing past them).
std::uint64_t dropped_events();

/// JSONL export: one header line ({"schema":"unigen.trace.v1",…}) then one
/// line per event.  Does not clear.
std::string trace_jsonl();
bool write_trace_jsonl(const std::string& path);

}  // namespace unigen::obs
