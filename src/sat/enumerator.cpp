#include "sat/enumerator.hpp"

namespace unigen {

EnumerateResult enumerate_models(Solver& solver,
                                 const EnumerateOptions& options) {
  EnumerateResult result;
  std::vector<Var> projection = options.projection;
  if (projection.empty()) {
    projection.resize(static_cast<std::size_t>(solver.num_vars()));
    for (Var v = 0; v < solver.num_vars(); ++v)
      projection[static_cast<std::size_t>(v)] = v;
  }
  // Projection-aware branching: decide the sampling set first so that the
  // dependent variables follow by propagation and parity conflicts stay
  // shallow.  Skipped when the projection is large (the linear priority
  // scan would dominate) or trivial — triviality is judged against the
  // formula's own variable count, not the solver's (which includes engine
  // auxiliaries on the incremental path).
  const auto formula_vars = static_cast<std::size_t>(
      options.formula_vars > 0 ? options.formula_vars : solver.num_vars());
  if (projection.size() < formula_vars && projection.size() <= 4096)
    solver.set_priority_vars(projection);

  // One scratch buffer for every per-model blocking clause; add_clause_from
  // copies only the surviving literals into the stored clause, so the hot
  // loop performs no per-model vector churn.
  std::vector<Lit> blocking;
  blocking.reserve(projection.size() + 1);

  const auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_acquire);
  };
  while (result.count < options.max_models) {
    if (cancelled()) {
      result.cancelled = true;
      return result;
    }
    if (options.deadline.expired()) {
      result.timed_out = true;
      return result;
    }
    const lbool status =
        solver.solve_limited(options.assumptions, options.deadline,
                             options.conflict_budget, options.cancel);
    if (status == lbool::Undef) {
      // Undef = some limit fired mid-search; the flag says which caller
      // intent it was (a tripped token wins over a concurrently expired
      // budget — the caller asked to stop either way).
      if (cancelled())
        result.cancelled = true;
      else
        result.timed_out = true;
      return result;
    }
    if (status == lbool::False) {
      result.exhausted = true;
      return result;
    }
    const Model& m = solver.model();
    ++result.count;
    if (options.store_models) result.models.push_back(m);

    // Block this S-projection: at least one sampling variable must differ.
    blocking.clear();
    for (const Var v : projection) {
      const lbool val = m[static_cast<std::size_t>(v)];
      blocking.push_back(Lit(v, val == lbool::True));
    }
    if (options.block_activation.valid())
      blocking.push_back(options.block_activation);
    if (!solver.add_clause_from(blocking.data(), blocking.size())) {
      result.exhausted = true;  // blocking made the formula UNSAT
      return result;
    }
    ++result.blocks_added;
  }
  return result;  // hit max_models; space may or may not be exhausted
}

EnumerateResult bsat(const Cnf& cnf, std::uint64_t max_models,
                     const Deadline& deadline) {
  Solver solver;
  solver.load(cnf);
  EnumerateOptions options;
  options.max_models = max_models;
  options.deadline = deadline;
  options.projection = cnf.sampling_set_or_all();
  return enumerate_models(solver, options);
}

}  // namespace unigen
