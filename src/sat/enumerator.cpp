#include "sat/enumerator.hpp"

namespace unigen {

EnumerateResult enumerate_models(Solver& solver,
                                 const EnumerateOptions& options) {
  EnumerateResult result;
  std::vector<Var> projection = options.projection;
  if (projection.empty()) {
    projection.resize(static_cast<std::size_t>(solver.num_vars()));
    for (Var v = 0; v < solver.num_vars(); ++v)
      projection[static_cast<std::size_t>(v)] = v;
  }
  // Projection-aware branching: decide the sampling set first so that the
  // dependent variables follow by propagation and parity conflicts stay
  // shallow.  Skipped when the projection is large (the linear priority
  // scan would dominate) or trivial.
  if (projection.size() < static_cast<std::size_t>(solver.num_vars()) &&
      projection.size() <= 4096)
    solver.set_priority_vars(projection);

  while (result.count < options.max_models) {
    if (options.deadline.expired()) {
      result.timed_out = true;
      return result;
    }
    const lbool status = solver.solve_limited({}, options.deadline, 0);
    if (status == lbool::Undef) {
      result.timed_out = true;
      return result;
    }
    if (status == lbool::False) {
      result.exhausted = true;
      return result;
    }
    const Model& m = solver.model();
    ++result.count;
    if (options.store_models) result.models.push_back(m);

    // Block this S-projection: at least one sampling variable must differ.
    std::vector<Lit> blocking;
    blocking.reserve(projection.size());
    for (const Var v : projection) {
      const lbool val = m[static_cast<std::size_t>(v)];
      blocking.push_back(Lit(v, val == lbool::True));
    }
    if (!solver.add_clause(std::move(blocking))) {
      result.exhausted = true;  // blocking made the formula UNSAT
      return result;
    }
  }
  return result;  // hit max_models; space may or may not be exhausted
}

EnumerateResult bsat(const Cnf& cnf, std::uint64_t max_models,
                     const Deadline& deadline) {
  Solver solver;
  solver.load(cnf);
  EnumerateOptions options;
  options.max_models = max_models;
  options.deadline = deadline;
  options.projection = cnf.sampling_set_or_all();
  return enumerate_models(solver, options);
}

}  // namespace unigen
