#pragma once
// BSAT(F, N): bounded model enumeration (paper Section 4).
//
// Returns up to N distinct witnesses of the formula loaded into a Solver.
// Distinctness — and the blocking clauses that enforce it — are over a
// *projection* set, normally the sampling set S.  Restricting blocking
// clauses to the independent support is one of the paper's two key
// implementation optimizations ("blocking clauses can be restricted to only
// variables in the set S"); since S is an independent support, two witnesses
// differ iff their S-projections differ, so nothing is lost.

#include <atomic>
#include <cstdint>
#include <vector>

#include "cnf/types.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace unigen {

struct EnumerateOptions {
  /// Stop after this many models (the paper's N; hiThresh in UniGen).
  std::uint64_t max_models = UINT64_MAX;
  /// Wall-clock deadline for the whole enumeration (maps to the paper's
  /// 2500 s per-BSAT timeout).
  Deadline deadline = Deadline::never();
  /// Deterministic per-solve conflict cap (0 = none): each model search is
  /// limited to this many conflicts, so the enumeration's Undef exits are
  /// reproducible on a fixed solver history — the machine-independent
  /// counterpart of `deadline` (Budget::conflicts_per_call).
  std::uint64_t conflict_budget = 0;
  /// Cooperative cancellation flag (a CancelToken's raw atomic); polled
  /// between model searches and, inside them, at the solver's periodic
  /// conflict check.  Null = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// Variables over which models are projected and blocked.  Empty means
  /// all variables of the solver.
  std::vector<Var> projection;
  /// Keep the full models; turn off when only the count matters (ApproxMC).
  bool store_models = true;
  /// Assumptions passed to every solve call.  The incremental BSAT engine
  /// uses these to switch on absorber-activated hash rows and the current
  /// cell's blocking selector; plain callers leave it empty.
  std::vector<Lit> assumptions;
  /// Number of variables of the *formula* (excluding engine auxiliaries
  /// such as absorbers and selectors); 0 means solver.num_vars().  Used to
  /// decide whether the projection is trivial (covers the whole formula)
  /// so priority branching keeps its seed semantics on a persistent solver
  /// whose variable count keeps growing.
  Var formula_vars = 0;
  /// When valid, this literal is appended to every blocking clause, so the
  /// whole cell's blocks can later be retracted by asserting it as a unit
  /// (IncrementalBsat does exactly that after counting the cell).  The
  /// caller must also assume its negation via `assumptions`, otherwise the
  /// blocks are inert from the start.
  Lit block_activation = kUndefLit;
};

struct EnumerateResult {
  /// Full models found (empty if store_models is false).
  std::vector<Model> models;
  /// Number of distinct (projected) models found, == models.size() when
  /// store_models is true.
  std::uint64_t count = 0;
  /// True iff the solution space was exhausted below max_models.
  bool exhausted = false;
  /// True iff enumeration stopped because a budget expired (the deadline,
  /// or the per-solve conflict cap).
  bool timed_out = false;
  /// True iff enumeration stopped because the cancel flag tripped.  Takes
  /// precedence over timed_out; the cell's blocks are still retractable
  /// (cancellation unwinds exactly like a timeout at the solver level).
  bool cancelled = false;
  /// Number of blocking clauses actually added to the solver (<= count;
  /// the engine's retraction accounting uses this).
  std::uint64_t blocks_added = 0;
};

/// Adds blocking clauses to `solver`.  Without `block_activation` this is
/// destructive — callers that need the solver again must reload the formula;
/// with it, the blocks can be retracted afterwards by asserting the
/// activation literal as a unit (see IncrementalBsat).
EnumerateResult enumerate_models(Solver& solver, const EnumerateOptions& options);

/// Convenience wrapper: loads `cnf` into a fresh solver and enumerates over
/// its sampling set (or all variables when none is declared).
EnumerateResult bsat(const Cnf& cnf, std::uint64_t max_models,
                     const Deadline& deadline = Deadline::never());

}  // namespace unigen
