#pragma once
// BSAT(F, N): bounded model enumeration (paper Section 4).
//
// Returns up to N distinct witnesses of the formula loaded into a Solver.
// Distinctness — and the blocking clauses that enforce it — are over a
// *projection* set, normally the sampling set S.  Restricting blocking
// clauses to the independent support is one of the paper's two key
// implementation optimizations ("blocking clauses can be restricted to only
// variables in the set S"); since S is an independent support, two witnesses
// differ iff their S-projections differ, so nothing is lost.

#include <cstdint>
#include <vector>

#include "cnf/types.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace unigen {

struct EnumerateOptions {
  /// Stop after this many models (the paper's N; hiThresh in UniGen).
  std::uint64_t max_models = UINT64_MAX;
  /// Wall-clock deadline for the whole enumeration (maps to the paper's
  /// 2500 s per-BSAT timeout).
  Deadline deadline = Deadline::never();
  /// Variables over which models are projected and blocked.  Empty means
  /// all variables of the solver.
  std::vector<Var> projection;
  /// Keep the full models; turn off when only the count matters (ApproxMC).
  bool store_models = true;
};

struct EnumerateResult {
  /// Full models found (empty if store_models is false).
  std::vector<Model> models;
  /// Number of distinct (projected) models found, == models.size() when
  /// store_models is true.
  std::uint64_t count = 0;
  /// True iff the solution space was exhausted below max_models.
  bool exhausted = false;
  /// True iff enumeration stopped because the deadline expired.
  bool timed_out = false;
};

/// Destructive: adds blocking clauses to `solver`.  Callers that need the
/// solver again must reload the formula.
EnumerateResult enumerate_models(Solver& solver, const EnumerateOptions& options);

/// Convenience wrapper: loads `cnf` into a fresh solver and enumerates over
/// its sampling set (or all variables when none is declared).
EnumerateResult bsat(const Cnf& cnf, std::uint64_t max_models,
                     const Deadline& deadline = Deadline::never());

}  // namespace unigen
