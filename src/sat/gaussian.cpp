// Level-0 Gaussian elimination over the XOR system (CryptoMiniSAT-style
// preprocessing).  Run once per solve after the XOR set changes:
//   * detects inconsistency of the parity system (UNSAT),
//   * enqueues variables forced to constants by the reduced system,
//   * re-injects *short* derived rows (length <= gauss_max_row_len) as extra
//     XOR constraints — cheap redundant parity reasoning the watch scheme
//     alone would only discover deep inside the search tree.

#include <algorithm>
#include <set>

#include "sat/solver.hpp"
#include "util/gf2.hpp"

namespace unigen {

bool Solver::reduce_priority_local_xors() {
  assert(decision_level() == 0);
  if (priority_vars_.empty() || xors_.empty()) return true;

  const std::size_t p = priority_vars_.size();
  std::vector<char> in_priority(static_cast<std::size_t>(num_vars()), 0);
  std::vector<std::uint32_t> col_of(static_cast<std::size_t>(num_vars()), 0);
  for (std::size_t c = 0; c < p; ++c) {
    in_priority[static_cast<std::size_t>(priority_vars_[c])] = 1;
    col_of[static_cast<std::size_t>(priority_vars_[c])] =
        static_cast<std::uint32_t>(c);
  }

  // Pass 1 — classify.  A row joins the local system when every unassigned
  // variable is either in the priority set or a *live* absorber (hash rows
  // carry one absorber each; since every such row is a true constraint of
  // the formula — active or not — any linear combination of them is
  // globally valid, so not-yet-assumed rows are safe to mix into the
  // basis).  Rows whose absorber has been retired are left verbatim: they
  // can never imply anything on their own (the free absorber soaks up any
  // parity) and folding an unbounded tail of them made elimination
  // quadratic in the number of past hash epochs.  Absorber columns come
  // after the priority columns: Gf2System pivots on the lowest column, so
  // a row with any priority variable pivots on one.
  std::vector<char> local(xors_.size(), 0);
  std::vector<char> has_col(static_cast<std::size_t>(num_vars()), 0);
  for (const Var v : priority_vars_) has_col[static_cast<std::size_t>(v)] = 1;
  std::vector<Var> absorber_cols;  // column p + i  ->  absorber_cols[i]
  bool any_local = false;
  for (std::size_t i = 0; i < xors_.size(); ++i) {
    if (xors_[i].ephemeral) continue;  // redundant; would pollute the basis
    bool is_local = true;
    for (const Var v : xors_[i].vars) {
      if (value(v) == lbool::Undef &&
          !in_priority[static_cast<std::size_t>(v)] && !is_live_absorber(v)) {
        is_local = false;
        break;
      }
    }
    if (!is_local) continue;
    local[i] = 1;
    any_local = true;
    for (const Var v : xors_[i].vars) {
      if (value(v) == lbool::Undef && !has_col[static_cast<std::size_t>(v)]) {
        has_col[static_cast<std::size_t>(v)] = 1;
        col_of[static_cast<std::size_t>(v)] =
            static_cast<std::uint32_t>(p + absorber_cols.size());
        absorber_cols.push_back(v);
      }
    }
  }
  if (!any_local) return true;

  // Pass 2 — eliminate.  Level-0 facts fold into each row's rhs.
  Gf2System system(p + absorber_cols.size());
  std::vector<std::uint32_t> row;
  for (std::size_t i = 0; i < xors_.size(); ++i) {
    if (!local[i]) continue;
    row.clear();
    bool rhs = xors_[i].rhs;
    for (const Var v : xors_[i].vars) {
      if (value(v) == lbool::Undef)
        row.push_back(col_of[static_cast<std::size_t>(v)]);
      else
        rhs ^= (value(v) == lbool::True);
    }
    if (!system.add_constraint(row, rhs)) {
      ok_ = false;   // 0 = 1 over globally valid rows: truly UNSAT
      return false;
    }
  }

  // Reduced basis replaces the local rows; priority pivots leave the
  // priority set (each is forced by watch propagation once the remaining
  // free variables and the row's absorbers are assigned).
  auto col_var = [&](std::uint32_t col) {
    return col < p ? priority_vars_[col] : absorber_cols[col - p];
  };
  std::vector<XorCls> kept;
  for (std::size_t i = 0; i < xors_.size(); ++i)
    if (!local[i]) kept.push_back(std::move(xors_[i]));
  std::vector<char> is_pivot(p, 0);
  bool enqueue_failed = false;
  // Streamed word-packed extraction: no intermediate row vector, set bits
  // peeled per uint64_t block.
  system.for_each_reduced_row([&](const Gf2System::Row& reduced) {
    if (enqueue_failed) return;
    if (reduced.vars[0] < p)
      is_pivot[reduced.vars[0]] = 1;  // pivot column first, by contract
    if (reduced.vars.size() == 1) {
      // Forced constant — possibly an absorber whose row's base variables
      // are all fixed (then the constraint itself decides the absorber).
      if (!enqueue(Lit(col_var(reduced.vars[0]), !reduced.rhs), Reason{})) {
        enqueue_failed = true;
        return;
      }
      ++stats_.gauss_units;
      return;
    }
    XorCls replacement;
    replacement.rhs = reduced.rhs;
    replacement.vars.reserve(reduced.vars.size());
    for (const auto col : reduced.vars)
      replacement.vars.push_back(col_var(col));
    kept.push_back(std::move(replacement));
  });
  if (enqueue_failed) {
    ok_ = false;
    return false;
  }

  // Swap in the new XOR set (rows may have picked up level-0 assignments
  // since they were first attached; replace_xors re-normalizes them).
  if (!replace_xors(std::move(kept))) return false;

  std::vector<Var> free_vars;
  free_vars.reserve(priority_vars_.size());
  for (std::size_t c = 0; c < priority_vars_.size(); ++c) {
    if (!is_pivot[c]) free_vars.push_back(priority_vars_[c]);
  }
  priority_vars_ = std::move(free_vars);
  return propagate() == nullptr;
}

bool Solver::gauss_preprocess() {
  assert(decision_level() == 0);
  if (!reduce_priority_local_xors()) return false;
  // Ephemeral rows are linear combinations of the others (no effect on the
  // eliminated system); rows with a retired (free, never-again-assumed)
  // absorber are inert.  Both are excluded, as in reduce_priority_local_xors.
  const auto participates = [&](const XorCls& x) {
    if (x.ephemeral) return false;
    for (const Var v : x.vars) {
      if (value(v) == lbool::Undef && is_absorber(v) && !is_live_absorber(v))
        return false;
    }
    return true;
  };
  // Compact the variables that occur in XORs into dense column indices.
  std::vector<Var> columns;
  for (const auto& x : xors_) {
    if (!participates(x)) continue;
    for (const Var v : x.vars) columns.push_back(v);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  if (columns.empty()) return true;
  std::vector<std::uint32_t> col_of(static_cast<std::size_t>(num_vars()), 0);
  for (std::size_t c = 0; c < columns.size(); ++c)
    col_of[static_cast<std::size_t>(columns[c])] = static_cast<std::uint32_t>(c);

  Gf2System system(columns.size());
  std::vector<std::uint32_t> row;
  for (const auto& x : xors_) {
    if (!participates(x)) continue;
    row.clear();
    bool rhs = x.rhs;
    for (const Var v : x.vars) {
      const lbool val = value(v);
      if (val == lbool::Undef)
        row.push_back(col_of[static_cast<std::size_t>(v)]);
      else
        rhs ^= (val == lbool::True);
    }
    if (!system.add_constraint(row, rhs)) return false;  // 0 = 1
  }
  stats_.gauss_rows = system.rank();

  for (const auto& [col, val] : system.implied_units()) {
    const Var v = columns[col];
    if (!enqueue(Lit(v, !val), Reason{})) return false;
    ++stats_.gauss_units;
  }
  if (propagate() != nullptr) return false;

  // Re-inject short derived rows not already present, marked ephemeral:
  // they are pruning aids, re-derived per elimination and dropped at epoch
  // retirement, never folded into a basis (see XorCls::ephemeral).
  std::set<std::pair<std::vector<Var>, bool>> existing;
  for (const auto& x : xors_) {
    auto key = x.vars;
    std::sort(key.begin(), key.end());
    existing.emplace(std::move(key), x.rhs);
  }
  const bool saved_flag = gauss_done_;
  bool add_failed = false;
  system.for_each_reduced_row([&](const Gf2System::Row& reduced) {
    if (add_failed) return;
    if (reduced.vars.size() < 2 ||
        reduced.vars.size() > options_.gauss_max_row_len)
      return;
    std::vector<Var> vars;
    vars.reserve(reduced.vars.size());
    for (const auto col : reduced.vars) vars.push_back(columns[col]);
    std::sort(vars.begin(), vars.end());
    if (existing.count({vars, reduced.rhs}) > 0) return;
    if (!add_xor(vars, reduced.rhs, /*ephemeral=*/true)) add_failed = true;
  });
  if (add_failed) return false;
  gauss_done_ = saved_flag;  // add_xor cleared it; the system is already reduced
  return ok_;
}

}  // namespace unigen
