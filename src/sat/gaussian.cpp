// Level-0 Gaussian elimination over the XOR system (CryptoMiniSAT-style
// preprocessing).  Run once per solve after the XOR set changes:
//   * detects inconsistency of the parity system (UNSAT),
//   * enqueues variables forced to constants by the reduced system,
//   * re-injects *short* derived rows (length <= gauss_max_row_len) as extra
//     XOR constraints — cheap redundant parity reasoning the watch scheme
//     alone would only discover deep inside the search tree.

#include <algorithm>
#include <set>

#include "sat/solver.hpp"
#include "util/gf2.hpp"

namespace unigen {

bool Solver::reduce_priority_local_xors() {
  assert(decision_level() == 0);
  if (priority_vars_.empty() || xors_.empty()) return true;

  std::vector<char> in_priority(static_cast<std::size_t>(num_vars()), 0);
  std::vector<std::uint32_t> col_of(static_cast<std::size_t>(num_vars()), 0);
  for (std::size_t c = 0; c < priority_vars_.size(); ++c) {
    in_priority[static_cast<std::size_t>(priority_vars_[c])] = 1;
    col_of[static_cast<std::size_t>(priority_vars_[c])] =
        static_cast<std::uint32_t>(c);
  }

  // Partition: rows whose unassigned support lies inside the priority set
  // go into the local system; everything else is kept as-is.
  std::vector<XorCls> kept;
  Gf2System system(priority_vars_.size());
  std::vector<std::uint32_t> row;
  bool any_local = false;
  for (auto& x : xors_) {
    bool local = true;
    for (const Var v : x.vars) {
      if (value(v) == lbool::Undef &&
          !in_priority[static_cast<std::size_t>(v)]) {
        local = false;
        break;
      }
    }
    if (!local) {
      kept.push_back(std::move(x));
      continue;
    }
    any_local = true;
    row.clear();
    bool rhs = x.rhs;
    for (const Var v : x.vars) {
      if (value(v) == lbool::Undef)
        row.push_back(col_of[static_cast<std::size_t>(v)]);
      else
        rhs ^= (value(v) == lbool::True);
    }
    if (!system.add_constraint(row, rhs)) {
      ok_ = false;  // 0 = 1; xors_ holds moved-from rows, but ok_ == false
      return false;  // permanently blocks any further solving
    }
  }
  if (!any_local) {
    // Every row was moved into `kept` in original order; restore them so
    // the existing watch lists (which index by position) stay valid.
    xors_ = std::move(kept);
    return true;
  }

  // Reduced basis replaces the local rows; pivots leave the priority set.
  std::vector<char> is_pivot(priority_vars_.size(), 0);
  for (const auto& reduced : system.reduced_rows()) {
    is_pivot[reduced.vars[0]] = 1;  // pivot column first, by contract
    if (reduced.vars.size() == 1) {
      if (!enqueue(Lit(priority_vars_[reduced.vars[0]], !reduced.rhs),
                   Reason{})) {
        ok_ = false;
        return false;
      }
      ++stats_.gauss_units;
      continue;
    }
    XorCls replacement;
    replacement.rhs = reduced.rhs;
    replacement.vars.reserve(reduced.vars.size());
    for (const auto col : reduced.vars)
      replacement.vars.push_back(priority_vars_[col]);
    kept.push_back(std::move(replacement));
  }

  // Swap in the new XOR set and rebuild the watch lists.  Rows may have
  // picked up level-0 assignments since they were first attached: restore
  // the invariant that positions 0 and 1 are unassigned, folding rows with
  // fewer than two unassigned variables into facts.  Stale xor-id reasons
  // can only belong to level-0 literals, whose reasons are never
  // materialized, but clear them anyway.
  for (auto& ws : xor_watches_) ws.clear();
  xors_.clear();
  for (auto& x : kept) {
    std::size_t unassigned = 0;
    for (std::size_t k = 0; k < x.vars.size() && unassigned < 2; ++k) {
      if (value(x.vars[k]) == lbool::Undef)
        std::swap(x.vars[unassigned++], x.vars[k]);
    }
    if (unassigned == 0) {
      if (xor_parity_from(x, 0) != x.rhs) {
        ok_ = false;
        return false;
      }
      continue;  // permanently satisfied
    }
    if (unassigned == 1) {
      const bool needed = x.rhs ^ xor_parity_from(x, 1);
      if (!enqueue(Lit(x.vars[0], !needed), Reason{})) {
        ok_ = false;
        return false;
      }
      continue;
    }
    xors_.push_back(std::move(x));
    attach_xor(static_cast<std::int32_t>(xors_.size()) - 1);
  }
  for (const Lit l : trail_)
    vardata_[static_cast<std::size_t>(l.var())].reason = Reason{};

  std::vector<Var> free_vars;
  free_vars.reserve(priority_vars_.size());
  for (std::size_t c = 0; c < priority_vars_.size(); ++c) {
    if (!is_pivot[c]) free_vars.push_back(priority_vars_[c]);
  }
  priority_vars_ = std::move(free_vars);
  return propagate() == nullptr;
}

bool Solver::gauss_preprocess() {
  assert(decision_level() == 0);
  if (!reduce_priority_local_xors()) return false;
  // Compact the variables that occur in XORs into dense column indices.
  std::vector<Var> columns;
  for (const auto& x : xors_)
    for (const Var v : x.vars) columns.push_back(v);
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  if (columns.empty()) return true;
  std::vector<std::uint32_t> col_of(static_cast<std::size_t>(num_vars()), 0);
  for (std::size_t c = 0; c < columns.size(); ++c)
    col_of[static_cast<std::size_t>(columns[c])] = static_cast<std::uint32_t>(c);

  Gf2System system(columns.size());
  std::vector<std::uint32_t> row;
  for (const auto& x : xors_) {
    row.clear();
    bool rhs = x.rhs;
    for (const Var v : x.vars) {
      const lbool val = value(v);
      if (val == lbool::Undef)
        row.push_back(col_of[static_cast<std::size_t>(v)]);
      else
        rhs ^= (val == lbool::True);
    }
    if (!system.add_constraint(row, rhs)) return false;  // 0 = 1
  }
  stats_.gauss_rows = system.rank();

  for (const auto& [col, val] : system.implied_units()) {
    const Var v = columns[col];
    if (!enqueue(Lit(v, !val), Reason{})) return false;
    ++stats_.gauss_units;
  }
  if (propagate() != nullptr) return false;

  // Re-inject short derived rows not already present.
  std::set<std::pair<std::vector<Var>, bool>> existing;
  for (const auto& x : xors_) {
    auto key = x.vars;
    std::sort(key.begin(), key.end());
    existing.emplace(std::move(key), x.rhs);
  }
  const bool saved_flag = gauss_done_;
  for (const auto& reduced : system.reduced_rows()) {
    if (reduced.vars.size() < 2 ||
        reduced.vars.size() > options_.gauss_max_row_len)
      continue;
    std::vector<Var> vars;
    vars.reserve(reduced.vars.size());
    for (const auto col : reduced.vars) vars.push_back(columns[col]);
    std::sort(vars.begin(), vars.end());
    if (existing.count({vars, reduced.rhs}) > 0) continue;
    if (!add_xor(vars, reduced.rhs)) return false;
  }
  gauss_done_ = saved_flag;  // add_xor cleared it; the system is already reduced
  return ok_;
}

}  // namespace unigen
