#include "sat/incremental_bsat.hpp"

#include <atomic>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace unigen {

namespace {
std::atomic<std::uint64_t> g_total_constructions{0};
}  // namespace

IncrementalBsat::IncrementalBsat(const Cnf& cnf, std::vector<Var> projection,
                                 IncrementalBsatOptions options)
    : cnf_(cnf), projection_(std::move(projection)), options_(options) {
  g_total_constructions.fetch_add(1, std::memory_order_relaxed);
  if (projection_.empty()) {
    projection_.resize(static_cast<std::size_t>(cnf_.num_vars()));
    for (Var v = 0; v < cnf_.num_vars(); ++v)
      projection_[static_cast<std::size_t>(v)] = v;
  }
  rebuild();
}

std::uint64_t IncrementalBsat::total_constructions() {
  return g_total_constructions.load(std::memory_order_relaxed);
}

void IncrementalBsat::rebuild() {
  // Only ever happens between hash epochs (constructor or begin_hash), so
  // there are no active rows to carry over.
  assert(activations_.empty());
  if (solver_) accum_.merge(solver_->stats());
  solver_ = std::make_unique<Solver>();
  solver_->load(cnf_);
  ++accum_.solver_rebuilds;
  solves_on_build_ = 0;
  retired_rows_ = 0;
}

void IncrementalBsat::begin_hash() {
  retired_rows_ += activations_.size();
  if (retired_rows_ > options_.max_retired_rows) {
    // The rebuild replaces the solver wholesale; skip the (discarded)
    // retirement elimination and learnt trim.
    activations_.clear();
    rebuild();
    return;
  }
  std::vector<Var> absorbers;
  absorbers.reserve(activations_.size());
  for (const Lit a : activations_) absorbers.push_back(a.var());
  solver_->retire_rows(absorbers);
  solver_->shrink_learnts(options_.learnts_across_epochs);
  activations_.clear();
}

void IncrementalBsat::push_rows(const XorHash& h) {
  h.attach_to(*solver_, activations_);
}

EnumerateResult IncrementalBsat::enumerate_cell(std::size_t m,
                                                std::uint64_t max_models,
                                                const Deadline& deadline,
                                                bool store_models) {
  ProbeLimits limits;
  limits.deadline = deadline;
  return enumerate_cell(m, max_models, limits, store_models);
}

EnumerateResult IncrementalBsat::enumerate_cell(std::size_t m,
                                                std::uint64_t max_models,
                                                const ProbeLimits& limits,
                                                bool store_models) {
  assert(m <= activations_.size());
  // Observability only (outside every RNG path): one span + latency sample
  // per BSAT call, tagged with the hash level probed.
  static obs::Counter& cells = obs::metrics().counter("bsat.cells");
  static obs::Histogram& cell_seconds =
      obs::metrics().histogram("cell.enumeration_seconds");
  cells.add();
  obs::ScopedTimer cell_timer(cell_seconds);
  obs::Span span("bsat.call");
  span.set_value(m);
  EnumerateOptions eopts;
  eopts.max_models = max_models;
  eopts.deadline = limits.deadline;
  eopts.conflict_budget = limits.conflict_budget;
  eopts.cancel = limits.cancel;
  eopts.projection = projection_;
  eopts.store_models = store_models;
  eopts.formula_vars = cnf_.num_vars();
  eopts.assumptions.assign(activations_.begin(),
                           activations_.begin() +
                               static_cast<std::ptrdiff_t>(m));
  // Per-cell selector: every blocking clause of this cell contains the
  // positive selector, enumeration assumes its negation, and one unit
  // afterwards retracts the whole cell's blocks.
  const Var selector = solver_->new_var();
  eopts.assumptions.push_back(Lit(selector, true));
  eopts.block_activation = Lit(selector, false);

  const EnumerateResult result = enumerate_models(*solver_, eopts);

  // The unit is added even for empty cells: it freezes the selector at the
  // root, so later solves never branch on it.
  solver_->add_clause({Lit(selector, false)});
  if (result.blocks_added > 0) {
    solver_->simplify();  // the unit satisfied all of this cell's blocks;
                          // sweep them (and any stale learnts) out
    accum_.retracted_blocks += result.blocks_added;
  }
  if (++solves_on_build_ > 1) ++accum_.reused_solves;
  return result;
}

SolverStats IncrementalBsat::stats() const {
  SolverStats merged = accum_;
  merged.merge(solver_->stats());
  return merged;
}

}  // namespace unigen
