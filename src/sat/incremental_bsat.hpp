#pragma once
// Incremental BSAT engine: one persistent Solver shared by every BSAT call
// of an ApproxMC run or a UniGen instance.
//
// The paper's runtime is dominated by repeated BSAT calls on F ∧ (h = α).
// The naive implementation pays, per call: one full Cnf copy, one Solver
// construction, one clause re-attachment pass, one Gaussian elimination from
// scratch — and throws away every learnt clause.  This engine eliminates all
// of that (the CryptoMiniSAT-backed UniGen/ApproxMC tools amortize the same
// way):
//
//   * The base formula is loaded exactly once (`solver_rebuilds` stays ~1).
//   * XOR hash rows are added once per epoch with a fresh *absorber*
//     variable folded into each row.  XOR(vars, a) = rhs is inert while `a`
//     is free (it merely defines `a`), and equivalent to XOR(vars) = rhs
//     under the assumption ¬a — so hash levels m = 1..n are nested prefixes
//     of the activation-literal list, switched on via solve(assumptions)
//     with no CNF copies and no solver reconstruction.
//   * Enumeration blocking clauses carry a per-cell selector literal; after
//     a cell is counted, a single unit clause (the selector) permanently
//     satisfies — i.e. retracts — all of that cell's blocks.
//   * Learnt clauses survive across BSAT calls, hash levels, ApproxMC
//     iterations and UniGen samples.  When an epoch ends its rows are
//     deleted together with the learnts that mention their absorbers; the
//     surviving learnts are implied by the base formula alone (each row is
//     a conservative extension — it only defines its fresh absorber), so
//     retirement costs nothing at solve time.
//
// Each retired row leaves one frozen absorber variable behind, so a
// long-lived engine rebuilds the solver once `max_retired_rows` have
// accumulated — a rare, counted event that merely compacts the tables.

#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/types.hpp"
#include "hashing/xor_hash.hpp"
#include "sat/enumerator.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace unigen {

/// Resource envelope of one BSAT probe (one enumerate_cell call): the
/// wall-clock deadline the paper uses, plus the deterministic conflict cap
/// and the cancellation flag the anytime layer adds.  Built from a request
/// Budget by the counting/sampling algorithms; plain value type.
struct ProbeLimits {
  Deadline deadline = Deadline::never();
  std::uint64_t conflict_budget = 0;  ///< per solver call; 0 = none
  const std::atomic<bool>* cancel = nullptr;
};

struct IncrementalBsatOptions {
  /// Rebuild the persistent solver from scratch once this many hash rows
  /// have been retired.  Retired rows (and the learnts mentioning them)
  /// are deleted outright, so this cap only bounds the growth of the
  /// variable tables — each retired row leaves one frozen absorber
  /// variable behind.  Rebuilds are rare (one per ~thousand UniGen
  /// samples) and counted in SolverStats::solver_rebuilds.
  std::size_t max_retired_rows = 4096;
  /// Learnt clauses carried across a hash-epoch boundary (the best by
  /// LBD/activity).  Within an epoch lemmas are hot; across epochs a large
  /// stale tail slows propagation more than it saves conflicts (measured
  /// sweet spot on the circuit-parity bench: 64–256).
  std::size_t learnts_across_epochs = 128;
};

class IncrementalBsat {
 public:
  /// `projection` is the set the cells are counted/blocked over (normally
  /// the sampling set S); empty means all variables of `cnf`.  The engine
  /// keeps a reference to `cnf` (for the rare rebuilds), which must
  /// therefore outlive it; temporaries are rejected at compile time.
  IncrementalBsat(const Cnf& cnf, std::vector<Var> projection,
                  IncrementalBsatOptions options = {});
  IncrementalBsat(Cnf&&, std::vector<Var>, IncrementalBsatOptions = {}) =
      delete;

  /// Starts a new hash epoch: the rows of the previous epoch become inert
  /// (their absorbers are simply never assumed again).
  void begin_hash();

  /// Extends the active hash with `h`'s rows; hash levels grow by h.m().
  /// Rows pushed later are deeper levels of the same epoch, so a caller can
  /// draw rows lazily as its search for m climbs.
  void push_rows(const XorHash& h);

  /// Number of rows installed in the active epoch (the deepest usable m).
  std::size_t hash_level() const { return activations_.size(); }

  /// BSAT(F ∧ first-m-rows-of-the-active-hash, max_models): enumerates the
  /// target cell at hash level m on the persistent solver.  All blocking
  /// clauses added during the call are retracted before returning.
  EnumerateResult enumerate_cell(std::size_t m, std::uint64_t max_models,
                                 const Deadline& deadline, bool store_models);
  /// Same, under the full probe envelope (deadline + deterministic conflict
  /// cap + cancellation).  All exits — exhausted, timed out, cancelled —
  /// leave the engine in the same reusable state: the cell's blocks are
  /// retracted unconditionally.
  EnumerateResult enumerate_cell(std::size_t m, std::uint64_t max_models,
                                 const ProbeLimits& limits, bool store_models);

  /// Cumulative statistics across rebuilds, including the engine counters
  /// solver_rebuilds / reused_solves / retracted_blocks.
  SolverStats stats() const;

  const std::vector<Var>& projection() const { return projection_; }
  Solver& solver() { return *solver_; }

  /// Process-wide count of IncrementalBsat constructions, ever.  A test
  /// seam: per-engine SolverStats cannot reveal a *transient* engine that
  /// was built, warmed and discarded (its stats die with it), but the
  /// counter-to-sampler handoff's whole point is that no such engine
  /// exists — tests assert the delta across prepare+sample equals the
  /// worker count (see tests/test_session_registry.cpp).  Monotonic,
  /// thread-safe, never reset.
  static std::uint64_t total_constructions();

 private:
  void rebuild();

  const Cnf& cnf_;  // not owned; rare rebuilds reload the base formula
  std::vector<Var> projection_;
  IncrementalBsatOptions options_;
  std::unique_ptr<Solver> solver_;
  std::vector<Lit> activations_;         // ¬absorber per active row, in order
  std::size_t retired_rows_ = 0;         // rows retired on the current build
  std::uint64_t solves_on_build_ = 0;
  SolverStats accum_;  // folded stats of retired builds + engine counters
};

/// Drops the engine's auxiliary variables (absorbers, selectors) from a
/// model: witnesses are reported over the original formula's `n` variables.
/// The auxiliaries are deterministic extensions, so nothing is lost.
inline Model project_model_to_formula(Model m, Var n) {
  m.resize(static_cast<std::size_t>(n));
  return m;
}

inline std::vector<Model> project_models_to_formula(std::vector<Model> models,
                                                    Var n) {
  for (Model& m : models) m.resize(static_cast<std::size_t>(n));
  return models;
}

}  // namespace unigen
