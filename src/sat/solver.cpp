#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "util/gf2.hpp"

namespace unigen {
namespace {

/// Luby restart sequence (Luby, Sinclair, Zuckerman 1993), MiniSat-style.
double luby(double y, int x) {
  int size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, seq);
}

}  // namespace

void SolverStats::merge(const SolverStats& other) {
  decisions += other.decisions;
  propagations += other.propagations;
  xor_propagations += other.xor_propagations;
  conflicts += other.conflicts;
  restarts += other.restarts;
  learnt_clauses += other.learnt_clauses;
  removed_clauses += other.removed_clauses;
  minimized_literals += other.minimized_literals;
  gauss_units += other.gauss_units;
  gauss_rows += other.gauss_rows;
  solver_rebuilds += other.solver_rebuilds;
  reused_solves += other.reused_solves;
  retracted_blocks += other.retracted_blocks;
}

Solver::Solver() = default;
Solver::~Solver() = default;

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(lbool::Undef);
  vardata_.push_back(VarData{});
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  const bool neg_first =
      options_.random_initial_phase && rng_ ? rng_->flip() : true;
  polarity_.push_back(neg_first ? 1 : 0);
  is_absorber_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  xor_watches_.emplace_back();
  seen_.push_back(0);
  heap_insert(v);
  return v;
}

lbool Solver::fixed_value(Var v) const {
  if (assigns_[static_cast<std::size_t>(v)] != lbool::Undef && level(v) == 0)
    return assigns_[static_cast<std::size_t>(v)];
  return lbool::Undef;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  return add_clause_impl(lits, /*steal=*/true);
}

bool Solver::add_clause_from(const Lit* lits, std::size_t n) {
  add_buf_.assign(lits, lits + n);
  return add_clause_impl(add_buf_, /*steal=*/false);
}

bool Solver::add_clause_impl(std::vector<Lit>& lits, bool steal) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  std::sort(lits.begin(), lits.end());
  std::size_t j = 0;
  Lit prev = kUndefLit;
  for (const Lit l : lits) {
    assert(l.var() < num_vars());
    if (value(l) == lbool::True || (prev.valid() && l == ~prev))
      return true;  // satisfied at level 0 or tautological
    if (value(l) != lbool::False && l != prev) {
      lits[j++] = l;
      prev = l;
    }
  }
  lits.resize(j);
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  if (lits.size() == 1) {
    if (!enqueue(lits[0], Reason{})) {
      ok_ = false;
      return false;
    }
    if (propagate() != nullptr) ok_ = false;
    return ok_;
  }
  auto c = std::make_unique<Clause>();
  if (steal)
    c->lits = std::move(lits);
  else
    c->lits = lits;
  attach_clause(c.get());
  clauses_.push_back(std::move(c));
  return true;
}

void Solver::simplify() {
  assert(decision_level() == 0);
  if (!ok_) return;
  // Level-0 facts never need their reasons again; clearing them unlocks
  // clauses that acted as reasons for root implications.
  for (const Lit l : trail_)
    vardata_[static_cast<std::size_t>(l.var())].reason = Reason{};
  const auto satisfied = [&](const Clause& c) {
    for (const Lit l : c.lits)
      if (value(l) == lbool::True) return true;  // root-level true
    return false;
  };
  const auto sweep = [&](std::vector<std::unique_ptr<Clause>>& db) {
    std::erase_if(db, [&](const std::unique_ptr<Clause>& up) {
      if (!satisfied(*up)) return false;
      detach_clause(up.get());
      ++stats_.removed_clauses;
      return true;
    });
  };
  sweep(clauses_);
  sweep(learnts_);
}

void Solver::shrink_learnts(std::size_t max_keep) {
  assert(decision_level() == 0);
  if (learnts_.size() <= max_keep) return;
  std::vector<Clause*> removable;
  removable.reserve(learnts_.size());
  for (const auto& up : learnts_) {
    Clause* c = up.get();
    if (c->lits.size() > 2 && !locked(c)) removable.push_back(c);
  }
  const std::size_t always_kept = learnts_.size() - removable.size();
  if (always_kept >= max_keep) return;  // nothing trimmable below the cap
  drop_worst_learnts(removable, removable.size() - (max_keep - always_kept));
}

void Solver::retire_rows(const std::vector<Var>& absorbers) {
  assert(decision_level() == 0);
  if (absorbers.empty() || !ok_) return;
  std::vector<char> retiring(static_cast<std::size_t>(num_vars()), 0);
  for (const Var v : absorbers) {
    assert(is_absorber(v));
    is_absorber_[static_cast<std::size_t>(v)] = 2;
    retiring[static_cast<std::size_t>(v)] = 1;
  }
  const auto mentions_retired = [&](const std::vector<Lit>& lits) {
    for (const Lit l : lits)
      if (retiring[static_cast<std::size_t>(l.var())]) return true;
    return false;
  };
  // Learnt clauses mentioning a retiring absorber were implied only
  // together with the rows being removed; everything else stays.
  std::erase_if(learnts_, [&](const std::unique_ptr<Clause>& up) {
    if (!mentions_retired(up->lits)) return false;
    detach_clause(up.get());
    ++stats_.removed_clauses;
    return true;
  });

  // Partition the XOR system.  Rows with an unassigned retiring absorber
  // cannot simply be dropped: the priority-local reduction back-substitutes
  // rows into one another, so base parity information may survive only
  // inside absorber-carrying combinations.  Existentially eliminating the
  // retiring columns — pivoting on them FIRST, then discarding the pivot
  // rows — keeps exactly the retiring-free span: every consequence not
  // mentioning a retired absorber is preserved, nothing else is.
  std::vector<XorCls> kept;
  std::vector<const XorCls*> touched;
  kept.reserve(xors_.size());
  for (auto& x : xors_) {
    if (x.ephemeral) continue;  // redundant pruning row: drop outright, the
                                // next elimination re-derives it if relevant
    bool drop = false;
    for (const Var v : x.vars) {
      if (value(v) == lbool::Undef && retiring[static_cast<std::size_t>(v)]) {
        drop = true;
        break;
      }
    }
    if (drop)
      touched.push_back(&x);
    else
      kept.push_back(std::move(x));
  }

  if (!touched.empty()) {
    // Column order: retiring absorbers first so they become the pivots.
    std::vector<std::uint32_t> col_of(static_cast<std::size_t>(num_vars()), 0);
    std::vector<char> has_col(static_cast<std::size_t>(num_vars()), 0);
    std::vector<Var> columns;
    const auto add_column = [&](Var v) {
      if (has_col[static_cast<std::size_t>(v)]) return;
      has_col[static_cast<std::size_t>(v)] = 1;
      col_of[static_cast<std::size_t>(v)] =
          static_cast<std::uint32_t>(columns.size());
      columns.push_back(v);
    };
    for (const XorCls* x : touched)
      for (const Var v : x->vars)
        if (value(v) == lbool::Undef && retiring[static_cast<std::size_t>(v)])
          add_column(v);
    const std::size_t num_retiring = columns.size();
    for (const XorCls* x : touched)
      for (const Var v : x->vars)
        if (value(v) == lbool::Undef) add_column(v);

    Gf2System system(columns.size());
    std::vector<std::uint32_t> row;
    for (const XorCls* x : touched) {
      row.clear();
      bool rhs = x->rhs;
      for (const Var v : x->vars) {
        if (value(v) == lbool::Undef)
          row.push_back(col_of[static_cast<std::size_t>(v)]);
        else
          rhs ^= (value(v) == lbool::True);
      }
      if (!system.add_constraint(row, rhs)) {
        ok_ = false;  // cannot happen: all rows are valid constraints
        return;
      }
    }
    for (const auto& reduced : system.reduced_rows()) {
      if (reduced.vars[0] < num_retiring) continue;  // defines a retiring var
      XorCls combo;
      combo.rhs = reduced.rhs;
      combo.vars.reserve(reduced.vars.size());
      for (const auto col : reduced.vars) combo.vars.push_back(columns[col]);
      kept.push_back(std::move(combo));
    }
  }

  if (!replace_xors(std::move(kept))) return;
  gauss_done_ = false;
  // Freeze the now-unmentioned absorbers (value is arbitrary) so they cost
  // neither decisions nor propagations in any later solve.
  for (const Var v : absorbers) {
    if (value(v) == lbool::Undef) {
      if (!enqueue(Lit(v, true), Reason{})) {
        ok_ = false;
        return;
      }
    }
  }
  if (propagate() != nullptr) ok_ = false;  // cannot happen; defensive
}

void Solver::set_priority_vars(const std::vector<Var>& vars) {
  if (vars == priority_request_) return;  // unchanged projection: keep the
                                          // reduced set and the Gauss state
  priority_request_ = vars;
  priority_vars_ = vars;
  gauss_done_ = false;  // re-run the priority-local reduction for the new set
}

bool Solver::add_xor(std::vector<Var> vars, bool rhs, bool ephemeral) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  // Any change to the XOR system (including a row collapsing to a level-0
  // fact, which alters how existing rows fold) invalidates the previous
  // Gaussian elimination; without this reset a solver that already ran
  // solve() would never re-eliminate over rows added afterwards.
  gauss_done_ = false;
  std::sort(vars.begin(), vars.end());
  std::vector<Var> norm;
  norm.reserve(vars.size());
  for (std::size_t i = 0; i < vars.size();) {
    std::size_t k = i;
    while (k < vars.size() && vars[k] == vars[i]) ++k;
    if ((k - i) % 2 == 1) {
      const Var v = vars[i];
      assert(v < num_vars());
      const lbool val = value(v);
      if (val == lbool::Undef)
        norm.push_back(v);
      else
        rhs ^= (val == lbool::True);  // fold level-0 facts into the rhs
    }
    i = k;
  }
  if (norm.empty()) {
    if (rhs) ok_ = false;  // 0 = 1
    return ok_;
  }
  if (norm.size() == 1) {
    if (!enqueue(Lit(norm[0], !rhs), Reason{})) {
      ok_ = false;
      return false;
    }
    if (propagate() != nullptr) ok_ = false;
    return ok_;
  }
  xors_.push_back(XorCls{std::move(norm), rhs, ephemeral});
  attach_xor(static_cast<std::int32_t>(xors_.size()) - 1);
  return true;
}

bool Solver::load(const Cnf& cnf) {
  while (num_vars() < cnf.num_vars()) new_var();
  for (const auto& clause : cnf.clauses()) {
    if (!add_clause(clause)) return false;
  }
  for (const auto& x : cnf.xors()) {
    if (!add_xor(x.vars, x.rhs)) return false;
  }
  return ok_;
}

void Solver::attach_clause(Clause* c) {
  assert(c->lits.size() >= 2);
  watches_[static_cast<std::size_t>((~c->lits[0]).index())].push_back(
      Watcher{c, c->lits[1]});
  watches_[static_cast<std::size_t>((~c->lits[1]).index())].push_back(
      Watcher{c, c->lits[0]});
}

void Solver::detach_clause(Clause* c) {
  for (int w = 0; w < 2; ++w) {
    auto& ws = watches_[static_cast<std::size_t>((~c->lits[w]).index())];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].clause == c) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::enqueue(Lit p, Reason from) {
  const lbool v = value(p);
  if (v != lbool::Undef) return v == lbool::True;
  assigns_[static_cast<std::size_t>(p.var())] =
      p.sign() ? lbool::False : lbool::True;
  vardata_[static_cast<std::size_t>(p.var())] =
      VarData{from, decision_level()};
  trail_.push_back(p);
  return true;
}

Solver::Clause* Solver::propagate() {
  Clause* confl = nullptr;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<std::size_t>(p.index())];
    std::size_t i = 0, j = 0;
    const Lit false_lit = ~p;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == lbool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = *w.clause;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      ++i;
      const Lit first = c.lits[0];
      if (first != w.blocker && value(first) == lbool::True) {
        ws[j++] = Watcher{w.clause, first};
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != lbool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>((~c.lits[1]).index())].push_back(
              Watcher{w.clause, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit under the current assignment, or conflicting.
      ws[j++] = Watcher{w.clause, first};
      if (value(first) == lbool::False) {
        confl = w.clause;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        enqueue(first, Reason{w.clause, -1});
      }
    }
    ws.resize(j);
    if (confl != nullptr) return confl;
    confl = propagate_xors(p);
    if (confl != nullptr) return confl;
  }
  return nullptr;
}

void Solver::reason_literals(const Reason& r, Lit p,
                             std::vector<Lit>& out) const {
  if (r.clause != nullptr) {
    for (const Lit l : r.clause->lits) {
      if (!p.valid() || l != p) out.push_back(l);
    }
    return;
  }
  assert(r.xor_id >= 0);
  const XorCls& x = xors_[static_cast<std::size_t>(r.xor_id)];
  for (const Var v : x.vars) {
    if (p.valid() && v == p.var()) continue;
    assert(value(v) != lbool::Undef);
    out.push_back(Lit(v, value(v) == lbool::True));  // the false literal
  }
}

void Solver::analyze(Clause* confl, std::vector<Lit>& out_learnt,
                     int& out_btlevel, std::uint32_t& out_lbd) {
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // slot for the asserting literal
  int path_count = 0;
  Lit p = kUndefLit;
  std::size_t index = trail_.size();
  Reason cur{confl, -1};

  do {
    if (cur.clause != nullptr && cur.clause->learnt)
      claus_bump_activity(*cur.clause);
    reason_buf_.clear();
    reason_literals(cur, p, reason_buf_);
    for (const Lit q : reason_buf_) {
      const Var v = q.var();
      if (!seen_[static_cast<std::size_t>(v)] && level(v) > 0) {
        seen_[static_cast<std::size_t>(v)] = 1;
        var_bump_activity(v);
        if (level(v) >= decision_level())
          ++path_count;
        else
          out_learnt.push_back(q);
      }
    }
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[index - 1];
    --index;
    cur = vardata_[static_cast<std::size_t>(p.var())].reason;
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Recursive clause minimization (MiniSat ccmin deep).
  analyze_toclear_ = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t k = 1; k < out_learnt.size(); ++k)
    abstract_levels |= 1u << (level(out_learnt[k].var()) & 31);
  std::size_t j = 1;
  for (std::size_t k = 1; k < out_learnt.size(); ++k) {
    const Reason r = vardata_[static_cast<std::size_t>(out_learnt[k].var())].reason;
    if (r.is_none() || !lit_redundant(out_learnt[k], abstract_levels))
      out_learnt[j++] = out_learnt[k];
    else
      ++stats_.minimized_literals;
  }
  out_learnt.resize(j);

  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k) {
      if (level(out_learnt[k].var()) > level(out_learnt[max_i].var()))
        max_i = k;
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(out_learnt[1].var());
  }

  // LBD = number of distinct decision levels in the learnt clause.
  std::vector<int> levels;
  levels.reserve(out_learnt.size());
  for (const Lit l : out_learnt) levels.push_back(level(l.var()));
  std::sort(levels.begin(), levels.end());
  out_lbd = static_cast<std::uint32_t>(
      std::unique(levels.begin(), levels.end()) - levels.begin());

  for (const Lit l : analyze_toclear_)
    seen_[static_cast<std::size_t>(l.var())] = 0;
}

bool Solver::lit_redundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const Reason r = vardata_[static_cast<std::size_t>(q.var())].reason;
    assert(!r.is_none());
    reason_buf_.clear();
    reason_literals(r, q, reason_buf_);
    for (const Lit l : reason_buf_) {
      const Var v = l.var();
      if (seen_[static_cast<std::size_t>(v)] || level(v) == 0) continue;
      const Reason lr = vardata_[static_cast<std::size_t>(v)].reason;
      if (!lr.is_none() && ((1u << (level(v) & 31)) & abstract_levels) != 0) {
        seen_[static_cast<std::size_t>(v)] = 1;
        analyze_stack_.push_back(l);
        analyze_toclear_.push_back(l);
      } else {
        for (std::size_t k = top; k < analyze_toclear_.size(); ++k)
          seen_[static_cast<std::size_t>(analyze_toclear_[k].var())] = 0;
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::cancel_until(int target_level) {
  if (decision_level() <= target_level) return;
  const auto lim =
      static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
  for (std::size_t c = trail_.size(); c-- > lim;) {
    const Var v = trail_[c].var();
    if (options_.phase_saving)
      polarity_[static_cast<std::size_t>(v)] =
          (assigns_[static_cast<std::size_t>(v)] == lbool::False) ? 1 : 0;
    assigns_[static_cast<std::size_t>(v)] = lbool::Undef;
    if (heap_pos_[static_cast<std::size_t>(v)] < 0) heap_insert(v);
  }
  trail_.resize(lim);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  // Priority pass: the set is small (a sampling set), so a linear scan for
  // the most active unassigned member is cheaper than a second heap.
  Var best = kNoVar;
  for (const Var v : priority_vars_) {
    if (value(v) != lbool::Undef) continue;
    if (best == kNoVar || activity_[static_cast<std::size_t>(v)] >
                              activity_[static_cast<std::size_t>(best)])
      best = v;
  }
  if (best != kNoVar)
    return Lit(best, polarity_[static_cast<std::size_t>(best)] != 0);

  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (value(v) == lbool::Undef)
      return Lit(v, polarity_[static_cast<std::size_t>(v)] != 0);
  }
  return kUndefLit;
}

bool Solver::locked(const Clause* c) const {
  const Lit first = c->lits[0];
  return value(first) == lbool::True &&
         vardata_[static_cast<std::size_t>(first.var())].reason.clause == c;
}

void Solver::drop_worst_learnts(std::vector<Clause*>& removable,
                                std::size_t target) {
  if (target == 0) return;
  std::sort(removable.begin(), removable.end(),
            [](const Clause* a, const Clause* b) {
              if (a->lbd != b->lbd) return a->lbd > b->lbd;  // worst first
              return a->activity < b->activity;
            });
  std::unordered_set<Clause*> doomed(
      removable.begin(),
      removable.begin() + static_cast<std::ptrdiff_t>(target));
  for (Clause* c : doomed) detach_clause(c);
  std::erase_if(learnts_, [&](const std::unique_ptr<Clause>& up) {
    return doomed.count(up.get()) > 0;
  });
  stats_.removed_clauses += target;
}

void Solver::reduce_db() {
  std::vector<Clause*> removable;
  removable.reserve(learnts_.size());
  for (const auto& up : learnts_) {
    Clause* c = up.get();
    if (c->lits.size() > 2 && c->lbd > 2 && !locked(c)) removable.push_back(c);
  }
  drop_worst_learnts(removable, removable.size() / 2);
  max_learnts_ = static_cast<std::uint64_t>(
      static_cast<double>(max_learnts_) * options_.reduce_db_growth);
}

void Solver::var_bump_activity(Var v) {
  auto& a = activity_[static_cast<std::size_t>(v)];
  a += var_inc_;
  if (a > 1e100) {
    for (auto& act : activity_) act *= 1e-100;
    var_inc_ *= 1e-100;
  }
  heap_update(v);
}

void Solver::var_decay_activity() { var_inc_ *= 1.0 / options_.var_decay; }

void Solver::claus_bump_activity(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20f) {
    for (auto& up : learnts_) up->activity *= 1e-20f;
    clause_inc_ *= 1e-20f;
  }
}

// --- indexed binary max-heap on activity ---

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  const double a = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >= a) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  const double a = activity_[static_cast<std::size_t>(v)];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[child + 1])] >
            activity_[static_cast<std::size_t>(heap_[child])])
      ++child;
    if (activity_[static_cast<std::size_t>(heap_[child])] <= a) break;
    heap_[i] = heap_[child];
    heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) return;
  heap_.push_back(v);
  heap_pos_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(heap_.size() - 1);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_update(Var v) {
  const std::int32_t pos = heap_pos_[static_cast<std::size_t>(v)];
  if (pos >= 0) heap_sift_up(static_cast<std::size_t>(pos));
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_pos_[static_cast<std::size_t>(last)] = 0;
    heap_sift_down(0);
  }
  return top;
}

// --- top-level search ---

lbool Solver::search(const std::vector<Lit>& assumptions,
                     std::uint64_t max_conflicts, const Deadline& deadline,
                     std::uint64_t conflict_budget_end,
                     const std::atomic<bool>* interrupt) {
  std::uint64_t conflict_count = 0;
  std::vector<Lit> learnt;
  int btlevel = 0;
  std::uint32_t lbd = 0;

  for (;;) {
    Clause* confl = propagate();
    if (confl != nullptr) {
      ++stats_.conflicts;
      ++conflict_count;
      if (decision_level() == 0) {
        ok_ = false;
        return lbool::False;
      }
      analyze(confl, learnt, btlevel, lbd);
      cancel_until(btlevel);
      if (learnt.size() == 1) {
        enqueue(learnt[0], Reason{});
      } else {
        auto c = std::make_unique<Clause>();
        c->lits = learnt;
        c->learnt = true;
        c->lbd = lbd;
        attach_clause(c.get());
        claus_bump_activity(*c);
        enqueue(learnt[0], Reason{c.get(), -1});
        learnts_.push_back(std::move(c));
        ++stats_.learnt_clauses;
      }
      var_decay_activity();
      clause_inc_ *= static_cast<float>(1.0 / options_.clause_activity_decay);

      const bool out_of_conflicts =
          conflict_count >= max_conflicts ||
          (conflict_budget_end != 0 && stats_.conflicts >= conflict_budget_end);
      const bool out_of_time =
          (conflict_count & 63u) == 0 &&
          (deadline.expired() ||
           (interrupt != nullptr &&
            interrupt->load(std::memory_order_acquire)));
      if (out_of_conflicts || out_of_time) {
        cancel_until(0);
        return lbool::Undef;
      }
    } else {
      if (learnts_.size() >= max_learnts_) reduce_db();

      Lit next = kUndefLit;
      while (decision_level() < static_cast<int>(assumptions.size())) {
        const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == lbool::True) {
          trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
        } else if (value(a) == lbool::False) {
          cancel_until(0);
          return lbool::False;
        } else {
          next = a;
          break;
        }
      }
      if (!next.valid()) {
        next = pick_branch_lit();
        if (!next.valid()) {
          model_ = assigns_;  // complete satisfying assignment
          return lbool::True;
        }
        ++stats_.decisions;
      }
      trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      enqueue(next, Reason{});
    }
  }
}

lbool Solver::solve(const std::vector<Lit>& assumptions) {
  return solve_limited(assumptions, Deadline::never(), 0);
}

lbool Solver::solve_limited(const std::vector<Lit>& assumptions,
                            const Deadline& deadline,
                            std::uint64_t conflict_budget,
                            const std::atomic<bool>* interrupt) {
  // Observability only — timing a solve touches no solver or RNG state, so
  // the result is byte-identical with tracing on or off.
  static obs::Counter& solves = obs::metrics().counter("bsat.solves");
  static obs::Histogram& solve_seconds =
      obs::metrics().histogram("bsat.solve_seconds");
  solves.add();
  obs::ScopedTimer solve_timer(solve_seconds);
  if (!ok_) return lbool::False;
  cancel_until(0);
  if (propagate() != nullptr) {
    ok_ = false;
    return lbool::False;
  }
  if (options_.xor_gauss && !gauss_done_ && !xors_.empty()) {
    gauss_done_ = true;
    // Pivot removal below is relative to the *current* XOR basis; start
    // from the full requested priority set so that re-eliminations (after
    // incremental XOR additions/retirements) re-derive a coherent basis
    // instead of shaving an already-shrunk set further and further.
    priority_vars_ = priority_request_;
    if (!gauss_preprocess()) {
      ok_ = false;
      return lbool::False;
    }
  }
  if (max_learnts_ == 0) max_learnts_ = options_.reduce_db_first;
  const std::uint64_t conflict_end =
      conflict_budget != 0 ? stats_.conflicts + conflict_budget : 0;

  lbool status = lbool::Undef;
  int restarts = 0;
  for (;;) {
    if (deadline.expired()) break;
    if (interrupt != nullptr && interrupt->load(std::memory_order_acquire))
      break;
    if (conflict_end != 0 && stats_.conflicts >= conflict_end) break;
    const auto max_c = static_cast<std::uint64_t>(
        luby(2.0, restarts) * options_.restart_base);
    status = search(assumptions, max_c, deadline, conflict_end, interrupt);
    ++restarts;
    ++stats_.restarts;
    if (status != lbool::Undef) break;
  }
  cancel_until(0);
  return status;
}

}  // namespace unigen
