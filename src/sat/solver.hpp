#pragma once
// CDCL SAT solver with native XOR-clause reasoning.
//
// This is the substrate the paper obtains from CryptoMiniSAT [Soos]: a
// conflict-driven clause-learning solver that additionally handles parity
// (XOR) constraints natively, so that the hash constraints added by
// UniGen/ApproxMC do not explode into exponential CNF.
//
// Feature set (all from scratch):
//   * two-watched-literal propagation with blockers,
//   * first-UIP conflict analysis with recursive clause minimization,
//   * EVSIDS decision heuristic (indexed binary heap) + phase saving,
//   * Luby restarts, LBD/activity-based learnt-clause database reduction,
//   * incremental interface: add clauses/XORs between solve calls,
//     solve under assumptions,
//   * native XOR constraints via a two-watched-variable scheme; XOR
//     propagations/conflicts participate in clause learning through
//     lazily materialized reason clauses,
//   * level-0 Gaussian elimination over the XOR system (gaussian.cpp),
//   * conflict budgets and wall-clock deadlines (returns Undef on limit).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/types.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace unigen {

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t xor_propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t removed_clauses = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t gauss_units = 0;
  std::uint64_t gauss_rows = 0;
  // Incremental-BSAT engine counters, maintained by IncrementalBsat (a
  // single Solver cannot count its own reconstructions): how often the
  // persistent solver was torn down and rebuilt, how many BSAT calls were
  // served by an already-warm solver, and how many blocking clauses were
  // retired by a selector unit instead of a solver reload.
  std::uint64_t solver_rebuilds = 0;
  std::uint64_t reused_solves = 0;
  std::uint64_t retracted_blocks = 0;

  /// Accumulates `other` field-wise (used when an engine folds the stats of
  /// a retired solver into its running totals).
  void merge(const SolverStats& other);
};

struct SolverOptions {
  double var_decay = 0.95;
  double clause_activity_decay = 0.999;
  int restart_base = 128;       // conflicts per Luby unit
  bool phase_saving = true;
  bool random_initial_phase = false;  // diversify first polarity via rng
  std::uint64_t reduce_db_first = 4096;  // learnts before first reduction
  double reduce_db_growth = 1.3;
  /// Run Gaussian elimination over the XOR system when solve() starts.
  bool xor_gauss = true;
  /// Max length of derived XOR rows re-injected by Gaussian elimination.
  std::size_t gauss_max_row_len = 3;
};

class Solver {
 public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // --- problem construction -------------------------------------------
  Var new_var();
  Var num_vars() const { return static_cast<Var>(assigns_.size()); }

  /// Returns false if the solver is already in an UNSAT state (the clause
  /// may then have been discarded).
  bool add_clause(std::vector<Lit> lits);
  /// Same contract as add_clause, but reads the literals from a
  /// caller-owned buffer; the caller can keep reusing that buffer (the hot
  /// enumeration loop adds one blocking clause per model).  Only the
  /// surviving literals are copied into the stored clause.
  bool add_clause_from(const Lit* lits, std::size_t n);
  /// Adds the parity constraint XOR(vars) = rhs.  `ephemeral` marks a
  /// redundant derived row (see XorCls::ephemeral); callers add real rows.
  bool add_xor(std::vector<Var> vars, bool rhs, bool ephemeral = false);
  /// Declares `v` an absorber: a fresh variable folded into exactly one XOR
  /// hash row so the row can be switched on by assuming the absorber's
  /// negative literal (and is inert — merely defining `v` — otherwise).
  /// Gaussian elimination treats absorber columns specially (gaussian.cpp).
  void mark_absorber(Var v) { is_absorber_[static_cast<std::size_t>(v)] = 1; }
  /// Retires a whole hash epoch: removes every XOR row containing one of
  /// the given absorbers, drops the learnt clauses that mention them, and
  /// freezes the now-unconstrained absorbers at level 0 so search never
  /// decides or propagates them again.
  ///
  /// Soundness: each absorber is fresh and occurs only in its row, so the
  /// rows are a conservative extension of the rest of the formula — any
  /// absorber-free consequence (clause or model projection) derivable with
  /// the rows is derivable without them.  Removing the rows can therefore
  /// only add total models that differ in absorber values, and the learnt
  /// clauses that could disagree with the new absorber values are exactly
  /// the ones that mention them, which are purged here.
  void retire_rows(const std::vector<Var>& absorbers);
  bool is_absorber(Var v) const {
    return is_absorber_[static_cast<std::size_t>(v)] != 0;
  }
  bool is_live_absorber(Var v) const {
    return is_absorber_[static_cast<std::size_t>(v)] == 1;
  }
  /// Loads an entire formula (variables are created as needed).
  bool load(const Cnf& cnf);

  // --- solving ----------------------------------------------------------
  /// Returns True (model available), False (UNSAT under assumptions), or
  /// Undef (budget exhausted).
  lbool solve(const std::vector<Lit>& assumptions = {});
  /// `interrupt`, when non-null, is a cooperative cancellation flag (a
  /// CancelToken's raw atomic, passed raw so this layer stays free of
  /// service dependencies): it is polled at the same every-64-conflicts
  /// cadence as the deadline, and a tripped flag makes the call return
  /// Undef with the trail unwound to level 0 — indistinguishable from a
  /// budget stop as far as solver state is concerned, so the solver stays
  /// fully reusable.
  lbool solve_limited(const std::vector<Lit>& assumptions,
                      const Deadline& deadline,
                      std::uint64_t conflict_budget = 0,
                      const std::atomic<bool>* interrupt = nullptr);

  /// Model of the last successful solve() (total assignment).
  const Model& model() const { return model_; }

  /// False once the clause database is unconditionally unsatisfiable.
  bool okay() const { return ok_; }

  SolverOptions& options() { return options_; }
  const SolverStats& stats() const { return stats_; }

  // Database-size diagnostics (tests and engine-tuning instrumentation).
  std::size_t num_xor_rows() const { return xors_.size(); }
  std::size_t num_problem_clauses() const { return clauses_.size(); }
  std::size_t num_learnt_clauses() const { return learnts_.size(); }

  /// Optional RNG for phase/branching diversification; not owned.
  void set_rng(Rng* rng) { rng_ = rng; }

  /// Prefer these variables for branching (highest activity first) until
  /// all are assigned; only then fall back to the global VSIDS order.
  /// With the sampling set S (an independent support) as priority, every
  /// decision sequence assigns S within |S| levels, after which unit/XOR
  /// propagation determines the dependent Tseitin variables — this keeps
  /// parity conflicts shallow and is the projection-aware branching used
  /// by the CryptoMiniSAT-based UniGen/ApproxMC tool family.
  /// A request identical to the previous one is a no-op, so that repeated
  /// enumerations over an unchanged projection neither re-trigger the
  /// priority-local Gaussian reduction nor undo its pivot removal.
  void set_priority_vars(const std::vector<Var>& vars);

  /// Value of a variable in the current (level-0) assignment; used by
  /// preprocessing consumers.
  lbool fixed_value(Var v) const;

  /// Level-0 cleanup: drops problem and learnt clauses satisfied by the
  /// root assignment.  The incremental engine calls this after retracting a
  /// cell's blocking clauses (the retraction unit satisfies them all), so
  /// the clause database does not grow with the number of cells counted.
  void simplify();

  /// Trims the learnt database down to the `max_keep` most valuable clauses
  /// (lowest LBD, then highest activity), binary and locked clauses always
  /// kept.  The incremental engine calls this at hash-epoch boundaries:
  /// within an epoch retained lemmas are hot (the nested hash levels share
  /// rows), but across epochs most of them are dead weight that a fresh
  /// solver would not carry.
  void shrink_learnts(std::size_t max_keep);

 private:
  // --- internal clause representation ---
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    float activity = 0.0f;
    std::uint32_t lbd = 0;
  };
  struct Watcher {
    Clause* clause;
    Lit blocker;
  };
  struct XorCls {
    std::vector<Var> vars;  // vars[0], vars[1] are the watched positions
    bool rhs = false;
    /// Redundant row re-injected by Gaussian elimination (a short linear
    /// combination of the real rows).  Ephemeral rows prune the current
    /// search but carry no information of their own: they are excluded
    /// from the elimination bases and dropped wholesale when a hash epoch
    /// retires, then re-derived if still relevant — otherwise a persistent
    /// solver would slowly accumulate the span's entire low-weight closure.
    bool ephemeral = false;
  };
  /// Reason for an implied literal: exactly one of clause / xor id, or
  /// neither for decisions and level-0 facts.
  struct Reason {
    Clause* clause = nullptr;
    std::int32_t xor_id = -1;
    bool is_none() const { return clause == nullptr && xor_id < 0; }
  };
  struct VarData {
    Reason reason;
    std::int32_t level = 0;
  };

  // --- core search ---
  lbool search(const std::vector<Lit>& assumptions, std::uint64_t max_conflicts,
               const Deadline& deadline, std::uint64_t conflict_budget,
               const std::atomic<bool>* interrupt);
  bool enqueue(Lit p, Reason from);
  Clause* propagate();
  Clause* propagate_xors(Lit p);
  void analyze(Clause* confl, std::vector<Lit>& out_learnt, int& out_btlevel,
               std::uint32_t& out_lbd);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels);
  void cancel_until(int level);
  Lit pick_branch_lit();
  void reduce_db();
  void attach_clause(Clause* c);
  void detach_clause(Clause* c);
  /// Materializes the antecedent literals of `r` for implied literal `p`
  /// (or the full conflict when p == kUndefLit) into `out`.
  void reason_literals(const Reason& r, Lit p, std::vector<Lit>& out) const;

  lbool value(Lit p) const {
    const lbool v = assigns_[static_cast<std::size_t>(p.var())];
    return p.sign() ? ~v : v;
  }
  lbool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  /// Shared core of add_clause / add_clause_from: filters `lits` in place;
  /// with `steal` the surviving literals are moved into the stored clause.
  bool add_clause_impl(std::vector<Lit>& lits, bool steal);
  /// Detaches and erases the `target` worst learnt clauses (highest LBD,
  /// then lowest activity) from `removable`.
  void drop_worst_learnts(std::vector<Clause*>& removable, std::size_t target);
  int level(Var v) const { return vardata_[static_cast<std::size_t>(v)].level; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  bool locked(const Clause* c) const;

  // --- VSIDS ---
  void var_bump_activity(Var v);
  void var_decay_activity();
  void claus_bump_activity(Clause& c);
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);

  // --- XOR engine (xor_engine.cpp) ---
  bool attach_xor(std::int32_t id);
  /// Evaluates parity of assigned vars[from..] of xor `x`.
  bool xor_parity_from(const XorCls& x, std::size_t from) const;
  /// Replaces the whole XOR database with `rows`: rebuilds the watch
  /// lists, restores the invariant that watched positions 0 and 1 are
  /// unassigned, folds rows with fewer than two unassigned variables into
  /// consistency checks / root units, and clears stale xor-id reasons on
  /// the (level-0) trail.  Returns false (setting ok_) on inconsistency.
  /// Callers decide whether the change warrants re-running Gauss.
  bool replace_xors(std::vector<XorCls> rows);
  // --- Gaussian elimination (gaussian.cpp) ---
  bool gauss_preprocess();
  /// RREF over the XOR rows local to the priority (sampling) set: replaces
  /// them by a reduced basis and removes the pivot variables from the
  /// branching priority, so deciding the remaining free variables forces
  /// every pivot by watch propagation.  This is the step that makes BSAT
  /// on hash-constrained formulas tractable (CryptoMiniSAT's Gaussian
  /// elimination plays this role in the paper).
  bool reduce_priority_local_xors();

  // --- state ---
  SolverOptions options_;
  SolverStats stats_;
  bool ok_ = true;
  Rng* rng_ = nullptr;

  std::vector<std::unique_ptr<Clause>> clauses_;  // problem clauses
  std::vector<std::unique_ptr<Clause>> learnts_;
  std::vector<XorCls> xors_;
  bool gauss_done_ = false;

  std::vector<std::vector<Watcher>> watches_;      // indexed by Lit::index()
  std::vector<std::vector<std::int32_t>> xor_watches_;  // indexed by Var

  std::vector<lbool> assigns_;
  std::vector<VarData> vardata_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  float clause_inc_ = 1.0f;
  std::vector<std::int32_t> heap_pos_;  // var -> heap index, -1 if absent
  std::vector<Var> heap_;
  std::vector<char> polarity_;  // saved phase (true = assign negative)
  std::vector<char> is_absorber_;  // hash-row activation variables
  std::vector<Var> priority_vars_;
  std::vector<Var> priority_request_;  // last set_priority_vars argument

  Model model_;
  std::uint64_t max_learnts_ = 0;

  // scratch buffers for analyze(); xor_confl_buf_ holds the lazily
  // materialized conflict clause of a violated XOR constraint.
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;
  std::vector<Lit> reason_buf_;
  std::vector<Lit> add_buf_;  // scratch for add_clause_from
  Clause xor_confl_buf_;
};

}  // namespace unigen
