// Native XOR-constraint propagation for Solver: two-watched-variable scheme.
//
// Invariant: every XOR constraint watches the variables at positions 0 and 1
// of its `vars` array.  When a watched variable is assigned we search for an
// unassigned replacement among positions >= 2; if none exists the constraint
// either propagates the other watch, is satisfied, or is violated.  Implied
// literals carry the XOR id as their reason; conflict analysis materializes
// the antecedent clause lazily (Solver::reason_literals).

#include <cassert>

#include "sat/solver.hpp"

namespace unigen {

bool Solver::attach_xor(std::int32_t id) {
  const XorCls& x = xors_[static_cast<std::size_t>(id)];
  assert(x.vars.size() >= 2);
  xor_watches_[static_cast<std::size_t>(x.vars[0])].push_back(id);
  xor_watches_[static_cast<std::size_t>(x.vars[1])].push_back(id);
  return true;
}

bool Solver::replace_xors(std::vector<XorCls> rows) {
  assert(decision_level() == 0);
  // Stale xor-id reasons can only belong to level-0 literals, whose
  // reasons are never materialized, but clear them anyway.
  for (const Lit l : trail_)
    vardata_[static_cast<std::size_t>(l.var())].reason = Reason{};
  for (auto& ws : xor_watches_) ws.clear();
  xors_.clear();
  for (auto& x : rows) {
    std::size_t unassigned = 0;
    for (std::size_t k = 0; k < x.vars.size() && unassigned < 2; ++k) {
      if (value(x.vars[k]) == lbool::Undef)
        std::swap(x.vars[unassigned++], x.vars[k]);
    }
    if (unassigned == 0) {
      if (xor_parity_from(x, 0) != x.rhs) {
        ok_ = false;
        return false;
      }
      continue;  // permanently satisfied
    }
    if (unassigned == 1) {
      const bool needed = x.rhs ^ xor_parity_from(x, 1);
      if (!enqueue(Lit(x.vars[0], !needed), Reason{})) {
        ok_ = false;
        return false;
      }
      continue;
    }
    xors_.push_back(std::move(x));
    attach_xor(static_cast<std::int32_t>(xors_.size()) - 1);
  }
  return true;
}

bool Solver::xor_parity_from(const XorCls& x, std::size_t from) const {
  bool parity = false;
  for (std::size_t k = from; k < x.vars.size(); ++k) {
    assert(value(x.vars[k]) != lbool::Undef);
    parity ^= (value(x.vars[k]) == lbool::True);
  }
  return parity;
}

Solver::Clause* Solver::propagate_xors(Lit p) {
  const Var pv = p.var();
  auto& ws = xor_watches_[static_cast<std::size_t>(pv)];
  Clause* confl = nullptr;
  std::size_t i = 0, j = 0;
  while (i < ws.size()) {
    const std::int32_t id = ws[i];
    assert(static_cast<std::size_t>(id) < xors_.size());
    XorCls& x = xors_[static_cast<std::size_t>(id)];
    if (x.vars[0] == pv) std::swap(x.vars[0], x.vars[1]);
    assert(x.vars[1] == pv);
    ++i;

    // Look for an unassigned replacement watch.
    bool moved = false;
    for (std::size_t k = 2; k < x.vars.size(); ++k) {
      if (value(x.vars[k]) == lbool::Undef) {
        std::swap(x.vars[1], x.vars[k]);
        xor_watches_[static_cast<std::size_t>(x.vars[1])].push_back(id);
        moved = true;
        break;
      }
    }
    if (moved) continue;

    ws[j++] = id;  // keep watching pv
    const Var other = x.vars[0];
    if (value(other) == lbool::Undef) {
      // Everything but `other` is assigned: force the parity.
      const bool rest_parity = xor_parity_from(x, 1);
      const bool needed = x.rhs ^ rest_parity;
      ++stats_.xor_propagations;
      const bool enq = enqueue(Lit(other, !needed), Reason{nullptr, id});
      assert(enq);
      (void)enq;
    } else {
      if (xor_parity_from(x, 0) != x.rhs) {
        // Violated: materialize the conflict clause of false literals.
        xor_confl_buf_.lits.clear();
        for (const Var v : x.vars)
          xor_confl_buf_.lits.push_back(Lit(v, value(v) == lbool::True));
        confl = &xor_confl_buf_;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      }
      // else: satisfied under the full assignment of its variables.
    }
  }
  ws.resize(j);
  return confl;
}

}  // namespace unigen
