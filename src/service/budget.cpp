#include "service/budget.hpp"

namespace unigen {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kComplete:
      return "complete";
    case RequestStatus::kPartial:
      return "partial";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kTimedOut:
      return "timed_out";
    case RequestStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace unigen
