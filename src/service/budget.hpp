#pragma once
// Budget / RequestStatus / CancelToken — the anytime-and-robustness
// contract shared by the counting and sampling services.
//
// The paper's only robustness lever is a wall-clock one (Section 5: a
// 2500 s per-BSAT-call timeout, retried under a fresh hash).  A service
// needs three more things a wall clock cannot give:
//
//   * deterministic budget units (BSAT-call and conflict budgets) whose
//     expiry is a pure function of the work, not of the machine — so
//     degraded paths are byte-reproducible and can be driven on purpose
//     in tests, including on a 1-core container where wall-clock races
//     never fire;
//   * cooperative cancellation, observed between (and, via the solver's
//     conflict-counting hook, inside) BSAT probes, leaving every engine
//     and pool reusable for the next request;
//   * deterministic fault injection, so every degraded path — UniGen's
//     fresh-hash retry, ApproxMC's iteration-skip accounting, partial
//     batches, cancel-mid-epoch — is exercised deliberately instead of
//     waiting for rare timeouts in production.
//
// All three travel in one `Budget` value threaded through approxmc_core,
// the parallel counter, unigen_accept_cell and the pools.  Outcomes are
// reported as `RequestStatus`, which keeps the paper's ⊥ (algorithmic
// failure, bounded probability) distinct from budget expiry and from
// cancellation — collapsing those is exactly the footgun the old
// `bool& timed_out` out-params invited.

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "util/timer.hpp"

namespace unigen {

/// Outcome of one budgeted request, from the caller's point of view.
enum class RequestStatus : std::uint8_t {
  /// The full requested result was produced.
  kComplete,
  /// A budget expired mid-run; the result carries the honest partial
  /// product (completed iterations / served slots) plus what confidence it
  /// actually achieves.
  kPartial,
  /// The algorithm returned ⊥ (UniGen line 19) — a bounded-probability
  /// failure of the randomized algorithm, NOT a resource event.
  kFailed,
  /// A budget (wall-clock or deterministic units) expired before anything
  /// reportable was produced.
  kTimedOut,
  /// The request's CancelToken was tripped.
  kCancelled,
};

const char* to_string(RequestStatus s);

/// Cooperative cancellation: the requester trips the token, workers observe
/// it between solver probes (and inside long probes via the solver's
/// periodic conflict-count check) and unwind cleanly — blocking clauses
/// retracted, hash rows retired on the next epoch, pool reusable.
/// Thread-safe; reusable after reset().
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  /// The raw flag, for layers (Solver) that must not depend on this header.
  const std::atomic<bool>* flag() const noexcept { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

/// Deterministic fault-injection hook.  `key` identifies the work unit
/// (ApproxMC iteration index, sampling request stream), `call` the 0-based
/// BSAT probe ordinal within that unit — both schedule-independent, so a
/// plan keyed on them fires identically at every thread count and across a
/// cut-and-resume.  Implementations must be thread-safe and deterministic
/// in (key, call); they live in the test tree (tests/fault_inject.hpp) —
/// production code only carries this seam.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  /// True = force this probe to report a timeout without running it.
  virtual bool inject_timeout(std::uint64_t key, std::uint64_t call) = 0;
};

/// The unified resource envelope of one request.  Plain value type: copy it
/// freely; the pointer members are borrowed (caller keeps them alive for
/// the duration of the request) and may be null.
struct Budget {
  /// Wall-clock deadline for the whole request.
  Deadline deadline = Deadline::never();
  /// Wall-clock budget per BSAT call (paper Section 5: 2500 s); 0 = none.
  double bsat_timeout_s = 0.0;
  /// Deterministic unit budget: total BSAT calls the request may consume
  /// (0 = unlimited).  Expiry is a pure function of the work — see
  /// deterministic_units() for what that buys.
  std::uint64_t max_bsat_calls = 0;
  /// Deterministic unit budget: solver conflicts per BSAT call (0 = none).
  /// Reproducible run-to-run at a fixed schedule; on pooled runs whether a
  /// probe hits its conflict cap depends on the serving engine's learnt
  /// history, so cross-thread-count byte-identity requires max_bsat_calls
  /// or fault injection instead.
  std::uint64_t conflicts_per_call = 0;
  /// Cooperative cancellation; null = not cancellable.
  const CancelToken* cancel = nullptr;
  /// Deterministic fault injection; null = no faults.
  FaultInjector* fault = nullptr;

  static Budget unlimited() { return Budget{}; }
  static Budget within_seconds(double s) {
    Budget b;
    b.deadline = Deadline::in_seconds(s);
    return b;
  }

  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }
  bool wall_expired() const { return deadline.expired(); }

  /// True when degraded paths must be byte-reproducible: a deterministic
  /// unit budget or a fault plan is in play.  Budgeted algorithms then pin
  /// every schedule-dependent cost knob (the ApproxMC leapfrog hint is the
  /// one that exists today: warm starts change per-iteration probe counts,
  /// so deterministic-budget runs use cold starts throughout) so that unit
  /// consumption and fault points are pure functions of the work, identical
  /// across thread counts and across a cut-and-resume.
  bool deterministic_units() const {
    return max_bsat_calls > 0 || fault != nullptr;
  }

  /// True when nothing nondeterministic can cut the run: no wall clocks
  /// armed.  (Cancellation is always the caller's nondeterminism; budgeted
  /// algorithms treat a cancelled slice as never-run so the determinism
  /// contract survives it.)
  bool wall_free() const { return !deadline.armed() && bsat_timeout_s <= 0.0; }

  /// Deadline for one BSAT call: whole-request deadline capped by the
  /// per-call timeout.  (The pre-Budget per_call_deadline helpers of
  /// approxmc.cpp/approxmc_core.cpp computed exactly this.)
  Deadline per_call_deadline() const {
    if (bsat_timeout_s <= 0.0) return deadline;
    return Deadline::in_seconds(
        std::min(deadline.remaining_seconds(), bsat_timeout_s));
  }

  /// True = the fault plan forces probe (key, call) to time out.
  bool fault_fires(std::uint64_t key, std::uint64_t call) const {
    return fault != nullptr && fault->inject_timeout(key, call);
  }

  /// Admission check: the status a request must return WITHOUT issuing a
  /// single BSAT call, or kComplete if it may proceed.  A degenerate budget
  /// (deadline already expired — e.g. built from in_seconds(0) or a
  /// negative duration — or a pre-tripped cancel token) previously raced
  /// the first probe: a fast machine could squeeze work in before the first
  /// deadline check and a slow one could not.  Checking at admission makes
  /// the degenerate outcome deterministic.  max_bsat_calls is NOT checked
  /// here: 0 is the documented "unlimited" sentinel, and any positive value
  /// admits at least one probe.
  RequestStatus admission_status() const {
    if (cancelled()) return RequestStatus::kCancelled;
    if (wall_expired()) return RequestStatus::kTimedOut;
    return RequestStatus::kComplete;
  }
};

}  // namespace unigen
