#pragma once
// Execution-backend switch and tuning knobs of the crash-isolated process
// fleet (service/process_fleet.hpp).
//
// The keyed-stream determinism contract (worker_pool.hpp) is
// location-independent: task k draws everything from fork_stream(k) and
// results fold in canonical order, so *where* a task runs — which thread,
// which process, which attempt after a crash — cannot reach the reported
// bytes.  FleetOptions selects the transport that exploits this: the
// default in-process WorkerPool, or N supervised child processes
// (unigen_workerd) that contain a solver crash to one task retry instead
// of taking down the whole service.

#include <cstdint>
#include <string>
#include <vector>

namespace unigen {

enum class ExecBackend : std::uint8_t {
  /// Threads of the caller's process (WorkerPool) — the default.
  kInProcess,
  /// Supervised out-of-process workers; falls back to kInProcess when no
  /// worker can be spawned (fork failure, missing unigen_workerd binary).
  kProcessFleet,
};

/// Which byte pipe carries the fleet's frame protocol.  The supervision
/// code is transport-blind (service/ipc.hpp is fd-agnostic); this knob
/// only decides how a worker's connected fd comes to exist.
enum class FleetTransport : std::uint8_t {
  /// fork/exec + AF_UNIX socketpair — the single-host default.
  kSocketpair,
  /// TCP (service/net_transport.hpp).  With `endpoints` empty the fleet
  /// still spawns local unigen_workerd children, but they dial back into
  /// a loopback listener (`--connect host:port`) — the full network stack
  /// on one box, which is what the tests and bench_net exercise.  With
  /// `endpoints` set, nothing is spawned: each worker slot dials a
  /// pre-started `unigen_workerd --listen host:port` server (any host),
  /// and a crashed/dropped connection is "respawned" by re-dialing under
  /// the same bounded backoff.  That is the multi-host fan-out the paper's
  /// no-communication argument promises: adding machines is adding
  /// endpoints.
  kTcp,
};

struct FleetOptions {
  ExecBackend backend = ExecBackend::kInProcess;
  /// Child processes; 0 = match the embedding's thread count.
  std::size_t num_workers = 0;
  FleetTransport transport = FleetTransport::kSocketpair;
  /// kTcp only: "host:port" workerd servers to dial instead of spawning
  /// locally.  Slot i dials endpoints[i % endpoints.size()], so more
  /// workers than endpoints multiplexes slots across hosts (each slot is
  /// its own connection and its own remote serving loop).  num_workers
  /// == 0 with endpoints set means one worker per endpoint.
  std::vector<std::string> endpoints;
  /// Dial/accept deadline for TCP connection establishment; an
  /// unreachable host costs this much, never an indefinite stall.
  double connect_timeout_s = 5.0;
  /// Bounded-write discipline for every supervisor-side frame send: a
  /// worker that stops draining its socket for this long is classified a
  /// stalled transport and killed like a heartbeat-silent hang (the
  /// single-threaded poll loop must never block in send).  0 = unbounded.
  double send_timeout_s = 5.0;
  /// Path to the unigen_workerd binary.  Empty = $UNIGEN_WORKERD, else
  /// "unigen_workerd" next to the running executable (/proc/self/exe).
  std::string workerd_path;
  /// Wall-clock ceiling per task attempt; expiry kills the worker and
  /// re-dispatches the task.  0 = none (heartbeats still police hangs).
  double task_deadline_s = 0.0;
  /// Worker-side heartbeat period.  The worker emits an unsolicited
  /// heartbeat frame this often from a dedicated thread, so a busy solve
  /// is distinguishable from a hung or dead process.
  double heartbeat_interval_s = 0.25;
  /// Supervisor-side silence ceiling: a busy worker that produced no frame
  /// (result or heartbeat) for this long is declared hung, killed, and its
  /// task re-dispatched.
  double heartbeat_timeout_s = 10.0;
  /// Attempts (1 + retries) before a task is poisoned and surfaces through
  /// the existing RequestStatus partial/failed accounting.
  int max_task_attempts = 3;
  /// Bounded exponential backoff between respawns of a crashing worker.
  double respawn_backoff_initial_s = 0.02;
  double respawn_backoff_max_s = 2.0;
  /// Respawns per worker slot before the slot is abandoned; the fleet
  /// degrades to the surviving workers (and poisons what it must) rather
  /// than fork-bombing on a crash loop.
  int max_respawns_per_worker = 8;
  /// UNIGEN_WORKERD_FAULTS value handed to every spawned worker — the
  /// process-level fault-injection seam (see ProcessFaultPlan).  Empty =
  /// no injected faults.
  std::string fault_plan;
};

/// Builder for the UNIGEN_WORKERD_FAULTS plan: a ;-separated list of
/// `kill@task:attempt` / `sleep@task:attempt` directives.  The worker
/// checks the plan when it receives a task frame: `kill` raises SIGKILL
/// (crash mid-task), `sleep` blocks the heartbeat mutex and sleeps forever
/// (hang detectable only by heartbeat silence).  Keyed on the task id and
/// the attempt ordinal — both schedule-independent — so a plan fires on
/// the same task at every worker count, and a retry (attempt 1) of a
/// task whose attempt 0 was killed runs clean and byte-identical.
struct ProcessFaultPlan {
  std::string plan;

  ProcessFaultPlan& kill_task(std::uint64_t task, int attempt = 0) {
    return add("kill", task, attempt);
  }
  ProcessFaultPlan& sleep_task(std::uint64_t task, int attempt = 0) {
    return add("sleep", task, attempt);
  }
  const std::string& to_env() const { return plan; }

 private:
  ProcessFaultPlan& add(const char* what, std::uint64_t task, int attempt) {
    if (!plan.empty()) plan += ';';
    plan += what;
    plan += '@';
    plan += std::to_string(task);
    plan += ':';
    plan += std::to_string(attempt);
    return *this;
  }
};

}  // namespace unigen
