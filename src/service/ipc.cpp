#include "service/ipc.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace unigen::ipc {

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

void WireReader::need(std::size_t n) {
  if (size_ - pos_ < n) throw std::runtime_error("ipc: truncated frame");
}

std::uint8_t WireReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  pos_ += 8;
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

namespace {

void put_model(WireWriter& w, const Model& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const lbool v : m) w.u8(static_cast<std::uint8_t>(v));
}

Model get_model(WireReader& r) {
  const std::uint32_t n = r.u32();
  Model m(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t v = r.u8();
    if (v > 2) throw std::runtime_error("ipc: bad lbool");
    m[i] = static_cast<lbool>(v);
  }
  return m;
}

}  // namespace

std::string encode_setup(const SetupMsg& m) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.str(m.formula_dimacs);
  w.u32(static_cast<std::uint32_t>(m.sampling_set.size()));
  for (const Var v : m.sampling_set) w.i32(v);
  w.u8(m.simplify.enabled ? 1 : 0);
  w.i32(m.simplify.max_rounds);
  w.u8(m.simplify.pure_literals ? 1 : 0);
  w.u8(m.simplify.subsumption ? 1 : 0);
  w.u8(m.simplify.bounded_variable_elimination ? 1 : 0);
  w.i32(m.simplify.bve_growth);
  w.u64(m.simplify.bve_max_occurrences);
  w.u32(m.n);
  w.u64(m.pivot);
  w.u8(m.prep_mode);
  w.f64(m.kappa);
  w.u64(m.kp_pivot);
  w.f64(m.lo_thresh);
  w.u64(m.hi_thresh);
  w.i32(m.q);
  w.f64(m.approx_log2_count);
  w.i32(m.formula_vars);
  w.f64(m.epsilon);
  w.f64(m.sample_timeout_s);
  w.f64(m.bsat_timeout_s);
  return w.take();
}

SetupMsg decode_setup(const std::string& payload) {
  WireReader r(payload);
  SetupMsg m;
  m.kind = static_cast<TaskKind>(r.u8());
  m.formula_dimacs = r.str();
  const std::uint32_t nvars = r.u32();
  m.sampling_set.resize(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) m.sampling_set[i] = r.i32();
  m.simplify.enabled = r.u8() != 0;
  m.simplify.max_rounds = r.i32();
  m.simplify.pure_literals = r.u8() != 0;
  m.simplify.subsumption = r.u8() != 0;
  m.simplify.bounded_variable_elimination = r.u8() != 0;
  m.simplify.bve_growth = r.i32();
  m.simplify.bve_max_occurrences = static_cast<std::size_t>(r.u64());
  m.n = r.u32();
  m.pivot = r.u64();
  m.prep_mode = r.u8();
  m.kappa = r.f64();
  m.kp_pivot = r.u64();
  m.lo_thresh = r.f64();
  m.hi_thresh = r.u64();
  m.q = r.i32();
  m.approx_log2_count = r.f64();
  m.formula_vars = r.i32();
  m.epsilon = r.f64();
  m.sample_timeout_s = r.f64();
  m.bsat_timeout_s = r.f64();
  return m;
}

std::string encode_task(const TaskMsg& m) {
  WireWriter w;
  w.u64(m.task_id);
  w.u32(m.attempt);
  for (const std::uint64_t s : m.rng_state) w.u64(s);
  w.u32(m.start_m);
  w.u64(m.max_batch);
  w.f64(m.deadline_s);
  w.f64(m.bsat_timeout_s);
  w.u64(m.max_bsat_calls);
  w.u64(m.conflicts_per_call);
  w.u64(m.trace_id);
  w.u64(m.parent_span);
  return w.take();
}

TaskMsg decode_task(const std::string& payload) {
  WireReader r(payload);
  TaskMsg m;
  m.task_id = r.u64();
  m.attempt = r.u32();
  for (std::uint64_t& s : m.rng_state) s = r.u64();
  m.start_m = r.u32();
  m.max_batch = r.u64();
  m.deadline_s = r.f64();
  m.bsat_timeout_s = r.f64();
  m.max_bsat_calls = r.u64();
  m.conflicts_per_call = r.u64();
  m.trace_id = r.u64();
  m.parent_span = r.u64();
  return m;
}

std::string encode_result(const ResultMsg& m) {
  WireWriter w;
  w.u64(m.task_id);
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.u8(m.ok);
  w.u8(m.timed_out);
  w.u8(m.cancelled);
  w.u8(m.faulted);
  w.u8(m.leapfrogged);
  w.u64(m.cell_count);
  w.u32(m.hash_count);
  w.u64(m.bsat_calls);
  w.u8(m.sample_status);
  w.u32(static_cast<std::uint32_t>(m.models.size()));
  for (const Model& model : m.models) put_model(w, model);
  w.u64(m.sample_bsat_calls);
  w.u64(m.timeout_retries);
  w.u32(static_cast<std::uint32_t>(
      std::min<std::size_t>(m.spans.size(), ResultMsg::kMaxSpans)));
  std::size_t emitted = 0;
  for (const SpanWire& s : m.spans) {
    if (emitted++ >= ResultMsg::kMaxSpans) break;
    w.str(s.name);
    w.u64(s.span_id);
    w.u64(s.parent_id);
    w.u64(s.start_ns);
    w.u64(s.end_ns);
    w.u64(s.value);
    w.u32(s.worker);
    w.u32(s.attempt);
  }
  return w.take();
}

ResultMsg decode_result(const std::string& payload) {
  WireReader r(payload);
  ResultMsg m;
  m.task_id = r.u64();
  m.kind = static_cast<TaskKind>(r.u8());
  m.ok = r.u8();
  m.timed_out = r.u8();
  m.cancelled = r.u8();
  m.faulted = r.u8();
  m.leapfrogged = r.u8();
  m.cell_count = r.u64();
  m.hash_count = r.u32();
  m.bsat_calls = r.u64();
  m.sample_status = r.u8();
  const std::uint32_t k = r.u32();
  m.models.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) m.models.push_back(get_model(r));
  m.sample_bsat_calls = r.u64();
  m.timeout_retries = r.u64();
  const std::uint32_t ns = r.u32();
  if (ns > ResultMsg::kMaxSpans) throw std::runtime_error("ipc: span flood");
  m.spans.reserve(ns);
  for (std::uint32_t i = 0; i < ns; ++i) {
    SpanWire s;
    s.name = r.str();
    s.span_id = r.u64();
    s.parent_id = r.u64();
    s.start_ns = r.u64();
    s.end_ns = r.u64();
    s.value = r.u64();
    s.worker = r.u32();
    s.attempt = r.u32();
    m.spans.push_back(std::move(s));
  }
  return m;
}

std::string encode_error(const std::string& what) {
  WireWriter w;
  w.str(what);
  return w.take();
}

std::string decode_error(const std::string& payload) {
  WireReader r(payload);
  return r.str();
}

WriteOutcome write_frame_bounded(int fd, FrameType type,
                                 const std::string& body,
                                 double send_deadline_s) {
  // Refuse before any byte is written: body + type byte must fit the u32
  // length prefix AND stay under kMaxFrame, or the peer would reject the
  // frame (or, past 4 GiB, read a wrapped length and lose framing).
  if (!frame_body_fits(body.size())) return WriteOutcome::kOversize;
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(body.size() + 1));
  w.u8(static_cast<std::uint8_t>(type));
  std::string frame = w.take();
  frame.append(body);
  const bool bounded = send_deadline_s > 0.0;
  const auto give_up =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? send_deadline_s : 0.0));
  std::size_t off = 0;
  while (off < frame.size()) {
    // Bounded mode never blocks in send: wait for writability under the
    // remaining deadline, then push with MSG_DONTWAIT.  A peer that stops
    // draining therefore costs at most the deadline — after which the
    // caller classifies the connection as stalled and kills it, the same
    // treatment a heartbeat-silent hang gets.
    const ssize_t n =
        ::send(fd, frame.data() + off, frame.size() - off,
               MSG_NOSIGNAL | (bounded ? MSG_DONTWAIT : 0));
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= give_up) return WriteOutcome::kStalled;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            give_up - now)
                            .count();
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1,
                            static_cast<int>(left > 0 ? left : 1));
      if (pr < 0 && errno != EINTR) return WriteOutcome::kError;
      if (pr == 0) return WriteOutcome::kStalled;
      continue;
    }
    return WriteOutcome::kError;
  }
  return WriteOutcome::kOk;
}

bool write_frame(int fd, FrameType type, const std::string& body) {
  return write_frame_bounded(fd, type, body, 0.0) == WriteOutcome::kOk;
}

bool FrameReader::next(FrameType& type, std::string& body) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buf_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
  if (len == 0 || len > kMaxFrame)
    throw std::runtime_error("ipc: bad frame length");
  if (avail < 4 + static_cast<std::size_t>(len)) return false;
  const auto type_byte = static_cast<unsigned char>(buf_[pos_ + 4]);
  if (!valid_frame_type(type_byte))
    throw std::runtime_error("ipc: unknown frame type");
  type = static_cast<FrameType>(type_byte);
  body.assign(buf_, pos_ + 5, len - 1);
  pos_ += 4 + static_cast<std::size_t>(len);
  // Compact once the consumed prefix dominates, keeping feed() amortized.
  if (pos_ > (1u << 16) && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

bool read_exact(int fd, char* out, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, out + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    off += static_cast<std::size_t>(r);
  }
  return true;
}

ReadOutcome read_frame_outcome(int fd, FrameType& type, std::string& body) {
  char hdr[4];
  if (!read_exact(fd, hdr, 4)) return ReadOutcome::kEof;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(hdr[i]))
           << (8 * i);
  // A zero or over-limit length loses framing permanently (the length
  // check runs BEFORE the allocation — a corrupt prefix cannot demand a
  // gigabyte); an unknown type byte consumes exactly one frame and leaves
  // the stream in sync.
  if (len == 0 || len > kMaxFrame) return ReadOutcome::kBadLength;
  std::string payload(len, '\0');
  if (!read_exact(fd, payload.data(), len)) return ReadOutcome::kEof;
  const auto type_byte = static_cast<unsigned char>(payload[0]);
  if (!valid_frame_type(type_byte)) return ReadOutcome::kBadType;
  type = static_cast<FrameType>(type_byte);
  body = payload.substr(1);
  return ReadOutcome::kFrame;
}

bool read_frame(int fd, FrameType& type, std::string& body) {
  return read_frame_outcome(fd, type, body) == ReadOutcome::kFrame;
}

}  // namespace unigen::ipc
