#pragma once
// Length-prefixed binary protocol between ProcessFleet (supervisor) and
// unigen_workerd (child worker), shared by both sides so the codecs cannot
// drift.
//
// Wire format: every frame is a little-endian u32 payload length followed
// by the payload; the payload's first byte is the FrameType.  The
// conversation is strictly:
//
//   parent → child   Setup      (once: formula + scalars, see SetupMsg)
//   child  → parent  Ready      (setup parsed, worker serving)
//   parent → child   Task       (repeated; at most one in flight per worker)
//   child  → parent  Result     (one per Task)
//   child  → parent  Heartbeat  (unsolicited, every heartbeat_interval_s,
//                                from a dedicated thread — so a busy solve
//                                is distinguishable from a hung process)
//   child  → parent  Error      (structured failure: the worker caught an
//                                exception; the task is retried/poisoned,
//                                the worker keeps serving)
//
// Everything a task needs to be a *pure function of its id* travels in the
// frames: the formula ships as canonical DIMACS (cnf/dimacs_write.hpp, one
// byte-exact serialization per structure), the task's RNG as raw xoshiro
// state (Rng::state()), the sampling set as an explicit vector (its order
// is the hash-drawing order).  That is what makes a crashed task's retry
// byte-identical, and the whole fleet's output byte-identical to the
// in-process WorkerPool.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cnf/types.hpp"
#include "simplify/simplify.hpp"

namespace unigen::ipc {

enum class FrameType : std::uint8_t {
  kSetup = 1,
  kReady = 2,
  kTask = 3,
  kResult = 4,
  kHeartbeat = 5,
  kError = 6,
};

/// Every frame-type byte that may legally appear on the wire.  Both decode
/// paths check this BEFORE casting to FrameType — an unknown byte is a
/// protocol error (supervisor: poisoned connection, kill + respawn;
/// worker: structured Error reply), never a blind cast handed to a switch.
constexpr bool valid_frame_type(std::uint8_t b) {
  return b >= static_cast<std::uint8_t>(FrameType::kSetup) &&
         b <= static_cast<std::uint8_t>(FrameType::kError);
}

/// What kind of work the fleet serves; fixed per fleet at Setup time.
enum class TaskKind : std::uint8_t {
  /// One ApproxMC median iteration (approxmc_core_iteration).
  kCount = 0,
  /// One UniGen sampling request (unigen_accept_cell + the pool's
  /// pick/shuffle post-processing); max_batch distinguishes single/batch.
  kSample = 1,
};

/// Bounds-checked little-endian serializer/deserializer.  The reader
/// throws std::runtime_error on underflow — a truncated or corrupt frame
/// becomes a structured worker error, never an out-of-bounds read.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void str(const std::string& s);
  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class WireReader {
 public:
  WireReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  std::string str();
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n);
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Everything a worker needs before the first task.  One message covers
/// both task kinds (unused fields ride along zero-valued; the frames are
/// tiny next to the formula text).
struct SetupMsg {
  TaskKind kind = TaskKind::kCount;
  /// Canonical DIMACS of the formula the worker's engine should load.
  /// kCount ships the already-simplified formula (counting needs no
  /// witness reconstruction); kSample ships the ORIGINAL formula and the
  /// simplify options below — the worker re-runs the deterministic
  /// pipeline, reproducing both the shrunk formula and the reconstruction
  /// stack that maps cell models back onto the original.
  std::string formula_dimacs;
  /// Projection / sampling set, in hash-drawing order.
  std::vector<Var> sampling_set;
  // kSample: the preprocessing pipeline to re-run (enabled=false → none).
  SimplifyOptions simplify;
  // kCount scalars.
  std::uint32_t n = 0;        ///< |S|
  std::uint64_t pivot = 0;    ///< cell-size bound
  // kSample scalars — the immutable UniGenPrepared the parent computed.
  std::uint8_t prep_mode = 0;  ///< UniGenPrepared::Mode (always kHashed)
  double kappa = 0.0;
  std::uint64_t kp_pivot = 0;
  double lo_thresh = 0.0;
  std::uint64_t hi_thresh = 0;
  std::int32_t q = 0;
  double approx_log2_count = 0.0;
  std::int32_t formula_vars = 0;  ///< original Cnf::num_vars()
  double epsilon = 0.0;
  double sample_timeout_s = 0.0;
  /// UniGenOptions::bsat_timeout_s (the static per-probe wall cap).  The
  /// per-call Budget scalars travel on each TaskMsg instead; pointers
  /// (cancel token, in-process fault injector) cannot cross the boundary —
  /// cancellation is supervisor-side (kill), faults are process-level
  /// (UNIGEN_WORKERD_FAULTS).
  double bsat_timeout_s = 0.0;
};

struct TaskMsg {
  /// Canonical work-unit id: iteration index (kCount) or request stream
  /// (kSample).  Also the fault-plan key.
  std::uint64_t task_id = 0;
  /// 0-based attempt ordinal; fault plans are keyed (task_id, attempt), so
  /// the retry of a killed attempt runs clean — and byte-identical, since
  /// everything else in this frame is unchanged.
  std::uint32_t attempt = 0;
  /// The task's private generator, exactly fork_stream(task_id) of the
  /// parent's base — shipped as raw state so parent and worker agree on
  /// every draw.
  std::array<std::uint64_t, 4> rng_state{};
  /// kCount: leapfrog hint (0 = cold start).  Outcome-neutral.
  std::uint32_t start_m = 0;
  /// kSample: 0 = single witness, else batch cell cap.
  std::uint64_t max_batch = 0;
  /// Remaining call-level wall budget at dispatch; <= 0 = unarmed.
  double deadline_s = 0.0;
  // Per-call Budget scalars (the embeddings let every service call carry
  // its own Budget, so these ride on the task, not the Setup).
  double bsat_timeout_s = 0.0;
  std::uint64_t max_bsat_calls = 0;
  std::uint64_t conflicts_per_call = 0;
  /// Trace propagation (obs/trace.hpp): which request trace the worker's
  /// spans should land in, and under which parent span.  0 = tracing off —
  /// the worker records nothing and ships no spans back.  Observability
  /// only: never reaches the computation or the RNG.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// One completed span, shipped child → parent inside ResultMsg so the
/// worker's trace fragment survives the process boundary.  Carries no
/// trace id — all spans of a Result belong to the task's trace; the
/// supervisor re-stamps it on merge.  Span/parent ids are process-salted
/// (obs::fresh_span_id), so supervisor and worker ids cannot collide.
struct SpanWire {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t value = 0;
  std::uint32_t worker = 0;   ///< recording worker's pid
  std::uint32_t attempt = 0;  ///< attempt ordinal the span belongs to
};

struct ResultMsg {
  std::uint64_t task_id = 0;
  TaskKind kind = TaskKind::kCount;
  // kCount payload: the ApproxMcCoreOutcome fields.
  std::uint8_t ok = 0;
  std::uint8_t timed_out = 0;
  std::uint8_t cancelled = 0;
  std::uint8_t faulted = 0;
  std::uint8_t leapfrogged = 0;
  std::uint64_t cell_count = 0;
  std::uint32_t hash_count = 0;
  std::uint64_t bsat_calls = 0;
  // kSample payload: SampleResult::Status + the chosen witness(es), already
  // post-processed worker-side (single: the rng.below pick; batch: the
  // rng.shuffle + truncate) so the parent folds bytes, not cells.
  std::uint8_t sample_status = 0;
  std::vector<Model> models;
  std::uint64_t sample_bsat_calls = 0;
  std::uint64_t timeout_retries = 0;
  /// Worker-side trace fragment for this attempt (empty when the task's
  /// trace_id was 0).  Decode caps the count (kMaxSpans) so a corrupt
  /// frame cannot trigger a runaway allocation.
  std::vector<SpanWire> spans;

  static constexpr std::uint32_t kMaxSpans = 1u << 20;
};

std::string encode_setup(const SetupMsg& m);
SetupMsg decode_setup(const std::string& payload);
std::string encode_task(const TaskMsg& m);
TaskMsg decode_task(const std::string& payload);
std::string encode_result(const ResultMsg& m);
ResultMsg decode_result(const std::string& payload);
std::string encode_error(const std::string& what);
std::string decode_error(const std::string& payload);

/// Why a frame send failed — callers classify, not just reap:
///   kOversize  the body cannot be framed (no bytes were written; the
///              stream is intact and the send fails cleanly — this is the
///              graceful-degradation path for a >1 GiB Setup, never a
///              wrapped u32 length desynchronizing the peer);
///   kStalled   the peer stopped draining and the deadline expired
///              mid-frame (the stream is now mid-frame garbage — the
///              caller must kill the connection, exactly like a
///              heartbeat-silent hang);
///   kError     the transport failed (EPIPE/ECONNRESET/…).
enum class WriteOutcome : std::uint8_t { kOk, kOversize, kStalled, kError };

/// Hard ceiling on one frame's payload length (type byte + body), shared
/// by every encode and decode path.  A corrupt or hostile length prefix
/// must not trigger a gigabyte allocation; a larger-than-this Setup must
/// fail on the WRITE side, cleanly, before any byte hits the wire.
inline constexpr std::uint32_t kMaxFrame = 1u << 30;

/// True iff a body of this size fits one frame: the u32 length prefix
/// carries body + 1 type byte and must stay within kMaxFrame.  Write paths
/// check this BEFORE building the prefix, so an oversized (or, past 4 GiB,
/// u32-wrapping) payload can never reach the wire.
constexpr bool frame_body_fits(std::size_t body_size) {
  return body_size < static_cast<std::size_t>(kMaxFrame);
}

/// Writes one frame (length prefix + type byte + body) to `fd`, refusing
/// oversized bodies up front.  Uses send(MSG_NOSIGNAL) so a dead peer
/// yields EPIPE, not SIGPIPE (the SO_NOSIGPIPE-equivalent on Linux).
/// `send_deadline_s > 0` bounds the whole flush: progress is made with
/// poll(POLLOUT) + MSG_DONTWAIT, so a peer with a full receive window
/// costs at most the deadline — never a wedged single-threaded supervisor.
/// <= 0 blocks until flushed (the worker side, whose only peer is the
/// supervisor).
WriteOutcome write_frame_bounded(int fd, FrameType type,
                                 const std::string& body,
                                 double send_deadline_s);

/// Unbounded legacy form: true iff the frame was fully flushed.
bool write_frame(int fd, FrameType type, const std::string& body);

/// Incremental frame decoder for the supervisor's nonblocking reads: feed
/// whatever bytes arrived, pop complete frames as they materialize.
class FrameReader {
 public:
  void feed(const char* data, std::size_t size) {
    buf_.append(data, size);
  }
  /// Pops the next complete frame into (type, body); false = need more
  /// bytes.  Throws std::runtime_error on a zero-length or over-kMaxFrame
  /// length prefix (a corrupt length must not trigger a gigabyte
  /// allocation) and on an unknown frame-type byte — any throw means the
  /// stream can no longer be trusted and the caller must drop the
  /// connection (supervisor: kill + respawn the worker).
  bool next(FrameType& type, std::string& body);

  static constexpr std::uint32_t kMaxFrame = ipc::kMaxFrame;

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

/// Blocking helpers for the worker side (fd is its only conversation).
/// read_exact returns false on EOF (parent gone → worker exits).
bool read_exact(int fd, char* out, std::size_t n);

/// What one blocking frame read produced:
///   kFrame      a valid frame (type/body filled in);
///   kEof        orderly close or transport error — the conversation is
///               over (worker exits);
///   kBadType    the length prefix was sound but the type byte is unknown:
///               the frame was consumed whole, the stream is still in
///               sync, and the worker should answer with a structured
///               Error and keep serving;
///   kBadLength  zero-length or over-limit prefix: framing is lost and the
///               stream cannot be re-synchronized — reply Error
///               (best-effort) and hang up.
enum class ReadOutcome : std::uint8_t { kFrame, kEof, kBadType, kBadLength };
ReadOutcome read_frame_outcome(int fd, FrameType& type, std::string& body);

/// Legacy form: true iff a valid frame arrived (protocol errors fold into
/// false, i.e. end-of-conversation).
bool read_frame(int fd, FrameType& type, std::string& body);

}  // namespace unigen::ipc
