#include "service/net_transport.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace unigen::net {

namespace {

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

int poll_deadline_ms(double timeout_s) {
  if (timeout_s <= 0.0) return 0;
  const double ms = timeout_s * 1000.0;
  if (ms >= 2147483647.0) return 2147483647;
  const int v = static_cast<int>(ms);
  return v > 0 ? v : 1;
}

/// getaddrinfo over the endpoint; passive=true for bind.  Returns nullptr
/// on resolution failure (caller frees with freeaddrinfo otherwise).
addrinfo* resolve(const Endpoint& e, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  const std::string port = std::to_string(e.port);
  addrinfo* res = nullptr;
  if (::getaddrinfo(e.host.empty() ? nullptr : e.host.c_str(), port.c_str(),
                    &hints, &res) != 0)
    return nullptr;
  return res;
}

/// The port the kernel actually bound (ephemeral binds pass port 0 in).
std::uint16_t bound_port(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) return 0;
  if (ss.ss_family == AF_INET)
    return ntohs(reinterpret_cast<sockaddr_in*>(&ss)->sin_port);
  if (ss.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<sockaddr_in6*>(&ss)->sin6_port);
  return 0;
}

}  // namespace

bool parse_endpoint(const std::string& text, Endpoint& out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size())
    return false;
  std::string host = text.substr(0, colon);
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']')
    host = host.substr(1, host.size() - 2);
  if (host.empty()) return false;
  long port = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    port = port * 10 + (c - '0');
    if (port > 65535) return false;
  }
  out.host = std::move(host);
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

std::string to_string(const Endpoint& e) {
  const bool v6 = e.host.find(':') != std::string::npos;
  return (v6 ? "[" + e.host + "]" : e.host) + ":" + std::to_string(e.port);
}

void tune_stream_socket(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int fl = ::fcntl(fd, F_GETFD, 0);
  if (fl >= 0) ::fcntl(fd, F_SETFD, fl | FD_CLOEXEC);
}

int tcp_connect(const Endpoint& endpoint, double timeout_s) {
  addrinfo* res = resolve(endpoint, /*passive=*/false);
  if (res == nullptr) return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (!set_nonblocking(fd, true)) {
      ::close(fd);
      fd = -1;
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && errno == EINPROGRESS) {
      rc = -1;  // deadline expiry / poll failure stays a refusal
      pollfd pfd{fd, POLLOUT, 0};
      int pr;
      do {
        pr = ::poll(&pfd, 1, poll_deadline_ms(timeout_s));
      } while (pr < 0 && errno == EINTR);
      if (pr > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
            err == 0)
          rc = 0;
      }
    }
    if (rc == 0 && set_nonblocking(fd, false)) break;  // connected
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) tune_stream_socket(fd);
  return fd;
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpListener::listen(const std::string& host, std::uint16_t port) {
  close();
  Endpoint want{host, port};
  addrinfo* res = resolve(want, /*passive=*/true);
  if (res == nullptr) return false;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, SOMAXCONN) == 0 && set_nonblocking(fd, true)) {
      const int fl = ::fcntl(fd, F_GETFD, 0);
      if (fl >= 0) ::fcntl(fd, F_SETFD, fl | FD_CLOEXEC);
      fd_ = fd;
      endpoint_.host = host;
      endpoint_.port = bound_port(fd);
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return fd_ >= 0;
}

int TcpListener::accept(double timeout_s) {
  if (fd_ < 0) return -1;
  pollfd pfd{fd_, POLLIN, 0};
  int pr;
  do {
    pr = ::poll(&pfd, 1, poll_deadline_ms(timeout_s));
  } while (pr < 0 && errno == EINTR);
  if (pr <= 0) return -1;
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd, false)) {
    ::close(fd);
    return -1;
  }
  tune_stream_socket(fd);
  return fd;
}

}  // namespace unigen::net
