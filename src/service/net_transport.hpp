#pragma once
// TCP transport primitives under the process fleet's frame protocol
// (service/ipc.hpp) — the piece that turns PR 7's single-host fleet into
// multi-host fan-out.  The frame layer is fd-agnostic by design, so the
// whole "distributed" step is: produce a connected SOCK_STREAM fd over the
// network instead of a socketpair, with the failure modes a real network
// adds handled here once:
//
//   * connect is non-blocking with a deadline — a blackholed host costs
//     connect_timeout_s, never an indefinite supervisor stall;
//   * accept is deadline-bounded the same way (the listener fd stays
//     non-blocking; a dialer that never completes its handshake cannot
//     wedge the accept loop);
//   * accepted/connected fds are tuned once (TCP_NODELAY — frames are
//     small and latency-bound; FD_CLOEXEC — fleet children must not
//     inherit each other's channels) and handed back in *blocking* mode,
//     exactly what the socketpair path produces, so every byte of
//     supervision code upstream is transport-blind;
//   * SIGPIPE never fires: writes go through ipc::write_frame's
//     send(MSG_NOSIGNAL) — the Linux equivalent of SO_NOSIGPIPE — and the
//     worker additionally ignores the signal.
//
// Endpoints are "host:port" strings (IPv4/IPv6/hostname via getaddrinfo;
// a bracketed or bare IPv6 address needs the last ':' as the separator,
// which parse_endpoint handles).  Port 0 binds ephemerally and
// TcpListener::endpoint() reports the kernel's choice — how tests and the
// loopback fleet avoid port collisions.

#include <cstdint>
#include <string>

namespace unigen::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// "host:port" → Endpoint (last ':' separates, so bare IPv6 works; a
/// surrounding [] pair is stripped).  False on missing/empty host, missing
/// separator, or a port outside [0, 65535].
bool parse_endpoint(const std::string& text, Endpoint& out);
std::string to_string(const Endpoint& e);

/// Deadline-bounded TCP dial: non-blocking connect, poll for writability
/// until `timeout_s`, then SO_ERROR decides.  Returns a connected fd in
/// blocking mode (tuned, see tune_stream_socket) or -1 on refusal,
/// resolution failure, or deadline expiry.  timeout_s <= 0 degrades to a
/// single non-blocking attempt (localhost connects usually complete
/// immediately; anything slower is treated as unreachable).
int tcp_connect(const Endpoint& endpoint, double timeout_s);

/// Per-fd discipline shared by both ends of every fleet connection:
/// TCP_NODELAY (a Task frame must not sit behind Nagle), FD_CLOEXEC (a
/// later fork/exec of another worker must not leak this channel).  No-op
/// failures are ignored — both are performance/hygiene, not correctness.
void tune_stream_socket(int fd);

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen on host:port (port 0 = ephemeral; endpoint() then
  /// reports the bound port).  False on resolution/bind failure — the
  /// caller degrades (fleet: fall back to socketpair/in-process).
  bool listen(const std::string& host, std::uint16_t port);

  /// Deadline-bounded accept: the accepted fd (blocking, tuned) or -1 on
  /// timeout / listener closed.  timeout_s <= 0 polls once.
  int accept(double timeout_s);

  bool listening() const { return fd_ >= 0; }
  const Endpoint& endpoint() const { return endpoint_; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

}  // namespace unigen::net
