#include "service/process_fleet.hpp"

#include <algorithm>
#include <chrono>
#include <deque>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cnf/dimacs_write.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

extern char** environ;

namespace unigen {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

Clock::time_point after_seconds(double s) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(s));
}

}  // namespace

struct ProcessFleet::Worker {
  enum class State {
    kDown,       ///< dead, respawn scheduled (next_spawn)
    kAbandoned,  ///< dead, respawn budget exhausted — slot given up
    kSpawning,   ///< alive, Setup sent, Ready not yet seen
    kIdle,
    kBusy,
  };

  pid_t pid = -1;
  int fd = -1;
  State state = State::kDown;
  /// Remote slot (TCP endpoint list): no local process exists — pid stays
  /// -1, "kill" drops the connection, "respawn" re-dials remote_ep.
  bool remote = false;
  net::Endpoint remote_ep{};
  ipc::FrameReader reader;
  /// Last frame of any kind (Ready/Heartbeat/Result) — the liveness clock.
  Clock::time_point last_frame{};
  Clock::time_point busy_since{};
  std::size_t task = kNoTask;
  int respawns = 0;
  double backoff_s = 0.0;
  Clock::time_point next_spawn{};
  /// The pending death (if any) was our own SIGKILL (hang/deadline/cancel),
  /// not a crash — kept out of the crash count.
  bool supervisor_kill = false;
  std::uint64_t tasks_dispatched = 0;
  /// Supervisor-side attempt span bookkeeping (observability only): set by
  /// dispatch() when the task carries a trace id, closed at Result arrival
  /// or death.  0 = no open attempt span.
  std::uint64_t span_start_ns = 0;
  std::uint32_t span_attempt = 0;

  bool alive() const {
    return state == State::kSpawning || state == State::kIdle ||
           state == State::kBusy;
  }
};

struct ProcessFleet::RunState {
  const std::vector<TaskSpec>* tasks = nullptr;
  std::vector<TaskOutcome>* outcomes = nullptr;
  const Budget* budget = nullptr;
  RunControl* control = nullptr;
  /// Task indices awaiting (re-)dispatch; crash retries go to the front so
  /// a recovered task is not starved behind the original queue.
  std::deque<std::size_t> pending;
  /// served + poisoned — run() returns when this reaches tasks->size().
  std::size_t settled = 0;
  /// Death-detection timestamps for crash-to-redispatch latency.
  std::vector<Clock::time_point> death_time;
  std::vector<char> death_pending;

  bool grant_exhausted() const {
    return control != nullptr && control->units_granted != 0 &&
           control->units_spent >= control->units_granted;
  }
};

ProcessFleet::ProcessFleet(FleetOptions options)
    : options_(std::move(options)) {}

ProcessFleet::~ProcessFleet() {
  for (Worker& w : workers_) {
    if (w.fd >= 0) ::close(w.fd);
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
    }
  }
}

std::size_t ProcessFleet::num_workers() const { return workers_.size(); }

std::vector<int> ProcessFleet::worker_pids() const {
  std::vector<int> pids;
  for (const Worker& w : workers_)
    if (w.alive() && w.pid > 0) pids.push_back(static_cast<int>(w.pid));
  return pids;
}

std::string ProcessFleet::resolve_workerd_path() const {
  if (!options_.workerd_path.empty()) return options_.workerd_path;
  if (const char* env = std::getenv("UNIGEN_WORKERD")) return env;
  // Default: "unigen_workerd" next to the running executable.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return {};
  return path.substr(0, slash + 1) + "unigen_workerd";
}

bool ProcessFleet::spawn(Worker& w) {
  if (w.remote) return dial_remote(w);
  if (options_.transport == FleetTransport::kTcp) return spawn_tcp_local(w);
  return spawn_socketpair(w);
}

bool ProcessFleet::adopt_connection(Worker& w, int fd, int pid) {
  // CLOEXEC on every supervisor-side channel (TCP fds got it at
  // accept/connect; socketpair ends need it here): a later spawn's child
  // must not inherit — and keep alive — a sibling's connection.
  net::tune_stream_socket(fd);
  w.pid = pid;
  w.fd = fd;
  w.state = Worker::State::kSpawning;
  w.task = kNoTask;
  w.supervisor_kill = false;
  w.reader = ipc::FrameReader{};
  w.last_frame = Clock::now();
  ++stats_.spawns;
  const ipc::WriteOutcome wr = ipc::write_frame_bounded(
      w.fd, ipc::FrameType::kSetup, setup_payload_, options_.send_timeout_s);
  if (wr != ipc::WriteOutcome::kOk) {
    // kOversize is the clean refusal path for an unshippable formula: no
    // byte hit the wire, the worker is simply unusable — every slot fails
    // the same way and start() degrades to the in-process pool.
    if (wr == ipc::WriteOutcome::kStalled) ++stats_.send_stalls;
    kill_worker(w);
    handle_death(w, nullptr);
    return false;
  }
  return true;
}

bool ProcessFleet::spawn_socketpair(Worker& w) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    ++stats_.spawn_failures;
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    ++stats_.spawn_failures;
    return false;
  }
  if (pid == 0) {
    // Child: channel on fd 3, then exec the worker.  Env customization
    // happened before fork (the exec env is this process's, already
    // carrying the fault plan / heartbeat settings via setenv in start()).
    ::close(sv[0]);
    if (sv[1] != 3) {
      ::dup2(sv[1], 3);
      ::close(sv[1]);
    }
    ::execl(workerd_path_.c_str(), workerd_path_.c_str(), "--fd", "3",
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(sv[1]);
  return adopt_connection(w, sv[0], pid);
}

bool ProcessFleet::spawn_tcp_local(Worker& w) {
  // Local child over the real network stack: fork/exec with no inherited
  // channel, the child dials our loopback listener.  Everything downstream
  // of the accepted fd is identical to the socketpair path — including
  // SIGKILL supervision, since the pid is ours.
  if (listener_ == nullptr || !listener_->listening()) {
    ++stats_.spawn_failures;
    return false;
  }
  const std::string connect_arg = net::to_string(listener_->endpoint());
  const pid_t pid = ::fork();
  if (pid < 0) {
    ++stats_.spawn_failures;
    return false;
  }
  if (pid == 0) {
    ::execl(workerd_path_.c_str(), workerd_path_.c_str(), "--connect",
            connect_arg.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  // One dialer is in flight at a time (spawns are sequential in the poll
  // loop and failures kill their child before returning), so the next
  // accepted connection is this child's.
  const int fd = listener_->accept(options_.connect_timeout_s);
  if (fd < 0) {
    ++stats_.spawn_failures;
    ++stats_.dial_failures;
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return false;
  }
  ++stats_.dials;
  return adopt_connection(w, fd, pid);
}

bool ProcessFleet::dial_remote(Worker& w) {
  const int fd = net::tcp_connect(w.remote_ep, options_.connect_timeout_s);
  if (fd < 0) {
    ++stats_.spawn_failures;
    ++stats_.dial_failures;
    return false;
  }
  ++stats_.dials;
  return adopt_connection(w, fd, /*pid=*/-1);
}

void ProcessFleet::kill_worker(Worker& w) {
  if (!w.alive()) return;
  w.supervisor_kill = true;
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);  // death observed as EOF in the poll loop
  } else if (w.fd >= 0) {
    // Remote worker: no pid to signal — dropping the connection IS the
    // kill.  The remote serving loop sees EOF, abandons the task, resets
    // its state and re-accepts; our poll loop sees EOF and runs the same
    // death path a SIGKILL produces.
    ::shutdown(w.fd, SHUT_RDWR);
  }
}

void ProcessFleet::handle_death(Worker& w, RunState* run) {
  const pid_t dead_pid = w.pid;
  // A result that beat the death into the socket still counts — drain the
  // buffered frames before declaring the task crashed.
  process_frames(w, run);
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    ::waitpid(w.pid, nullptr, 0);
    w.pid = -1;
  }
  if (!w.supervisor_kill) {
    ++stats_.crashes;
    obs::metrics().counter("fleet.crashes").add();
  }
  if (w.state == Worker::State::kBusy && w.task != kNoTask && run != nullptr) {
    const std::size_t t = w.task;
    const TaskSpec& spec = (*run->tasks)[t];
    // Close the supervisor-side attempt span as crashed: the dead worker's
    // own spans are gone with it, so this is the attempt's attested record
    // in the trace (attempt-tagged, same trace id as the retry).
    if (w.span_start_ns != 0 && spec.trace_id != 0 && obs::enabled()) {
      obs::TraceEvent e;
      e.trace_id = spec.trace_id;
      e.span_id = obs::fresh_span_id();
      e.parent_id = spec.parent_span;
      e.start_ns = w.span_start_ns;
      e.end_ns = obs::now_ns();
      e.value = spec.id;
      e.name = "fleet.attempt.crashed";
      e.worker = dead_pid > 0 ? static_cast<std::uint32_t>(dead_pid) : 0;
      e.attempt = w.span_attempt;
      obs::record_span(e);
    }
    TaskOutcome& out = (*run->outcomes)[t];
    if (!out.served && !out.poisoned) {
      if (out.attempts >=
          static_cast<std::uint32_t>(options_.max_task_attempts)) {
        out.poisoned = true;
        ++run->settled;
        ++stats_.poisoned_tasks;
        obs::metrics().counter("fleet.poisoned_tasks").add();
      } else {
        run->pending.push_front(t);
        run->death_time[t] = Clock::now();
        run->death_pending[t] = 1;
      }
    }
  }
  w.span_start_ns = 0;
  w.state = Worker::State::kDown;
  w.task = kNoTask;
  w.supervisor_kill = false;
  w.backoff_s = w.backoff_s <= 0.0
                    ? options_.respawn_backoff_initial_s
                    : std::min(w.backoff_s * 2.0, options_.respawn_backoff_max_s);
  w.next_spawn = after_seconds(w.backoff_s);
}

void ProcessFleet::process_frames(Worker& w, RunState* run) {
  ipc::FrameType type;
  std::string body;
  for (;;) {
    try {
      if (!w.reader.next(type, body)) return;
    } catch (const std::exception&) {
      // Corrupt stream (bad length / unknown frame type): the connection
      // is poisoned — kill and respawn; the EOF path will clean up and
      // re-dispatch whatever was in flight.
      ++stats_.protocol_errors;
      kill_worker(w);
      return;
    }
    w.last_frame = Clock::now();
    switch (type) {
      case ipc::FrameType::kReady:
        if (w.state == Worker::State::kSpawning) {
          w.state = Worker::State::kIdle;
          w.backoff_s = 0.0;  // healthy respawn: backoff resets
        }
        break;
      case ipc::FrameType::kHeartbeat:
        break;
      case ipc::FrameType::kResult: {
        if (w.state != Worker::State::kBusy || run == nullptr) break;
        ipc::ResultMsg msg;
        try {
          msg = ipc::decode_result(body);
        } catch (const std::exception&) {
          ++stats_.protocol_errors;
          kill_worker(w);
          return;
        }
        const std::size_t t = w.task;
        const std::uint64_t att_start = w.span_start_ns;
        const std::uint32_t att_ordinal = w.span_attempt;
        w.span_start_ns = 0;
        w.state = Worker::State::kIdle;
        w.task = kNoTask;
        if (t == kNoTask || msg.task_id != (*run->tasks)[t].id) break;
        TaskOutcome& out = (*run->outcomes)[t];
        if (out.served || out.poisoned) break;
        out.served = true;
        out.result = std::move(msg);
        ++run->settled;
        if (run->control != nullptr)
          run->control->units_spent += out.result.bsat_calls;
        // Merge the worker's shipped spans into this process's trace and
        // close the supervisor-side attempt span (observability only).
        const TaskSpec& spec = (*run->tasks)[t];
        if (spec.trace_id != 0 && obs::enabled()) {
          for (const ipc::SpanWire& s : out.result.spans) {
            obs::TraceEvent e;
            e.trace_id = spec.trace_id;
            e.span_id = s.span_id;
            e.parent_id = s.parent_id;
            e.start_ns = s.start_ns;
            e.end_ns = s.end_ns;
            e.value = s.value;
            e.name = obs::intern_name(s.name.c_str());
            e.worker = s.worker;
            e.attempt = s.attempt;
            obs::record_span(e);
          }
          if (att_start != 0) {
            obs::TraceEvent e;
            e.trace_id = spec.trace_id;
            e.span_id = obs::fresh_span_id();
            e.parent_id = spec.parent_span;
            e.start_ns = att_start;
            e.end_ns = obs::now_ns();
            e.value = spec.id;
            e.name = "fleet.attempt";
            e.worker = w.pid > 0 ? static_cast<std::uint32_t>(w.pid) : 0;
            e.attempt = att_ordinal;
            obs::record_span(e);
          }
        }
        break;
      }
      case ipc::FrameType::kError: {
        // Structured failure: the worker survives, the attempt is spent.
        if (w.state != Worker::State::kBusy || run == nullptr) break;
        const std::size_t t = w.task;
        w.state = Worker::State::kIdle;
        w.task = kNoTask;
        if (t == kNoTask) break;
        TaskOutcome& out = (*run->outcomes)[t];
        if (out.served || out.poisoned) break;
        if (out.attempts >=
            static_cast<std::uint32_t>(options_.max_task_attempts)) {
          out.poisoned = true;
          ++run->settled;
          ++stats_.poisoned_tasks;
        } else {
          run->pending.push_front(t);
        }
        break;
      }
      default:
        break;
    }
  }
}

void ProcessFleet::dispatch(Worker& w, std::size_t task_index, RunState* run) {
  const TaskSpec& spec = (*run->tasks)[task_index];
  TaskOutcome& out = (*run->outcomes)[task_index];
  const Budget& budget = *run->budget;
  ipc::TaskMsg msg;
  msg.task_id = spec.id;
  msg.attempt = out.attempts;
  msg.rng_state = spec.rng_state;
  msg.start_m = spec.start_m;
  msg.max_batch = spec.max_batch;
  msg.deadline_s =
      budget.deadline.armed() ? budget.deadline.remaining_seconds() : 0.0;
  msg.bsat_timeout_s = budget.bsat_timeout_s;
  msg.max_bsat_calls = budget.max_bsat_calls;
  msg.conflicts_per_call = budget.conflicts_per_call;
  msg.trace_id = spec.trace_id;
  msg.parent_span = spec.parent_span;
  w.span_start_ns = 0;
  const ipc::WriteOutcome wr = ipc::write_frame_bounded(
      w.fd, ipc::FrameType::kTask, ipc::encode_task(msg),
      options_.send_timeout_s);
  if (wr != ipc::WriteOutcome::kOk) {
    // Worker died between poll rounds — or stopped draining its socket
    // long enough to trip the send deadline, which gets the same
    // treatment as a heartbeat-silent hang: kill, reap, re-dispatch.
    // Either way the attempt was never delivered.
    if (wr == ipc::WriteOutcome::kStalled) {
      ++stats_.send_stalls;
      kill_worker(w);
    }
    run->pending.push_front(task_index);
    handle_death(w, run);
    return;
  }
  ++out.attempts;
  ++w.tasks_dispatched;
  // Open the supervisor-side attempt span only once the frame is actually
  // on the wire — a failed send above is not an attempt.
  if (spec.trace_id != 0 && obs::enabled()) {
    w.span_start_ns = obs::now_ns();
    w.span_attempt = out.attempts;
  }
  if (out.attempts > 1) {
    ++stats_.redispatches;
    obs::metrics().counter("fleet.redispatches").add();
  }
  if (run->death_pending[task_index]) {
    const double rec = seconds_since(run->death_time[task_index]);
    run->death_pending[task_index] = 0;
    stats_.total_recovery_seconds += rec;
    stats_.max_recovery_seconds = std::max(stats_.max_recovery_seconds, rec);
    obs::metrics()
        .histogram("fleet.crash_recovery_seconds")
        .record_ns(static_cast<std::uint64_t>(rec * 1e9));
  }
  w.state = Worker::State::kBusy;
  w.task = task_index;
  w.busy_since = Clock::now();
}

bool ProcessFleet::poll_once(int timeout_ms, RunState* run) {
  const Clock::time_point now = Clock::now();
  // Respawn slots whose backoff elapsed (or abandon exhausted ones).
  for (Worker& w : workers_) {
    if (w.state != Worker::State::kDown || now < w.next_spawn) continue;
    if (w.respawns >= options_.max_respawns_per_worker) {
      w.state = Worker::State::kAbandoned;
      continue;
    }
    ++w.respawns;
    if (spawn(w)) {
      ++stats_.respawns;
      obs::metrics().counter("fleet.respawns").add();
    }
  }
  // Dispatch pending work to idle workers (unless the grant ran out —
  // what it actually bought is the downstream canonical fold's decision).
  if (run != nullptr && !run->grant_exhausted()) {
    for (Worker& w : workers_) {
      if (run->pending.empty()) break;
      if (w.state != Worker::State::kIdle) continue;
      const std::size_t t = run->pending.front();
      run->pending.pop_front();
      dispatch(w, t, run);
    }
  }

  std::vector<pollfd> fds;
  std::vector<std::size_t> index;
  bool any_live = false;
  bool any_down = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = workers_[i];
    if (w.alive()) {
      any_live = true;
      fds.push_back(pollfd{w.fd, POLLIN, 0});
      index.push_back(i);
    } else if (w.state == Worker::State::kDown) {
      any_down = true;
    }
  }
  if (!any_live && !any_down) return false;  // total, permanent worker loss
  if (!fds.empty()) {
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          timeout_ms);
    if (rc > 0) {
      for (std::size_t j = 0; j < fds.size(); ++j) {
        if (fds[j].revents == 0) continue;
        Worker& w = workers_[index[j]];
        if (!w.alive()) continue;  // died earlier this round
        char buf[1 << 16];
        const ssize_t n = ::read(w.fd, buf, sizeof(buf));
        if (n > 0) {
          w.reader.feed(buf, static_cast<std::size_t>(n));
          process_frames(w, run);
        } else if (n == 0 || errno != EINTR) {
          handle_death(w, run);
        }
      }
    }
  } else {
    // Nothing to poll (all dead, some respawnable): let backoff time pass.
    struct timespec ts = {0, timeout_ms * 1000000L};
    ::nanosleep(&ts, nullptr);
  }

  // Liveness and per-attempt deadlines.
  const Clock::time_point after = Clock::now();
  for (Worker& w : workers_) {
    if (!w.alive()) continue;
    if (options_.heartbeat_timeout_s > 0.0 &&
        std::chrono::duration<double>(after - w.last_frame).count() >
            options_.heartbeat_timeout_s) {
      ++stats_.hang_kills;
      obs::metrics().counter("fleet.hang_kills").add();
      kill_worker(w);
      continue;
    }
    if (w.state == Worker::State::kBusy && options_.task_deadline_s > 0.0 &&
        std::chrono::duration<double>(after - w.busy_since).count() >
            options_.task_deadline_s) {
      ++stats_.deadline_kills;
      kill_worker(w);
    }
  }
  return true;
}

bool ProcessFleet::start(std::string setup_payload,
                         std::size_t default_workers) {
  if (started_) return true;
  setup_payload_ = std::move(setup_payload);
  // An unframeable Setup (>1 GiB formula) must fail here, cleanly, so the
  // embedding falls back to the in-process pool — not write a frame every
  // worker rejects (or a wrapped length that desynchronizes the stream).
  if (!ipc::frame_body_fits(setup_payload_.size())) return false;
  const bool remote_mode =
      options_.transport == FleetTransport::kTcp && !options_.endpoints.empty();
  std::vector<net::Endpoint> remote_eps;
  if (remote_mode) {
    // Remote fan-out: nothing is spawned, so no local binary is needed —
    // but every endpoint must parse or the option set is rejected whole.
    for (const std::string& text : options_.endpoints) {
      net::Endpoint ep;
      if (!net::parse_endpoint(text, ep)) return false;
      remote_eps.push_back(std::move(ep));
    }
  } else {
    workerd_path_ = resolve_workerd_path();
    if (workerd_path_.empty() ||
        ::access(workerd_path_.c_str(), X_OK) != 0)
      return false;
    if (options_.transport == FleetTransport::kTcp) {
      listener_ = std::make_unique<net::TcpListener>();
      if (!listener_->listen("127.0.0.1", 0)) {
        listener_.reset();
        return false;
      }
    }
  }
  // The fault plan and heartbeat interval reach workers via the
  // environment; set them once here, before any fork.
  if (!options_.fault_plan.empty())
    ::setenv("UNIGEN_WORKERD_FAULTS", options_.fault_plan.c_str(), 1);
  else
    ::unsetenv("UNIGEN_WORKERD_FAULTS");
  ::setenv("UNIGEN_WORKERD_HEARTBEAT_S",
           std::to_string(options_.heartbeat_interval_s).c_str(), 1);

  std::size_t n =
      options_.num_workers != 0
          ? options_.num_workers
          : (remote_mode ? remote_eps.size() : default_workers);
  if (n == 0) n = 1;
  workers_ = std::vector<Worker>(n);
  if (remote_mode)
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      workers_[i].remote = true;
      workers_[i].remote_ep = remote_eps[i % remote_eps.size()];
    }
  bool any = false;
  for (Worker& w : workers_) any = spawn(w) || any;
  if (!any) {
    workers_.clear();
    listener_.reset();
    return false;
  }
  // Wait (bounded) for the first Ready: a fleet whose every worker dies in
  // setup (bad binary, exec failure) must report failure, not hang the
  // first run().
  const Clock::time_point give_up =
      after_seconds(std::max(10.0, options_.heartbeat_timeout_s));
  while (Clock::now() < give_up) {
    for (const Worker& w : workers_)
      if (w.state == Worker::State::kIdle) {
        started_ = true;
        return true;
      }
    if (!poll_once(50, nullptr)) break;
  }
  for (Worker& w : workers_) kill_worker(w);
  for (Worker& w : workers_)
    if (w.alive()) handle_death(w, nullptr);
  workers_.clear();
  listener_.reset();
  return false;
}

std::vector<ProcessFleet::TaskOutcome> ProcessFleet::run(
    const std::vector<TaskSpec>& tasks, const Budget& budget,
    RunControl* control) {
  std::vector<TaskOutcome> outcomes(tasks.size());
  if (!started_ || tasks.empty()) return outcomes;
  RunState run;
  run.tasks = &tasks;
  run.outcomes = &outcomes;
  run.budget = &budget;
  run.control = control;
  run.death_time.resize(tasks.size());
  run.death_pending.assign(tasks.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) run.pending.push_back(i);

  while (run.settled < tasks.size()) {
    if (budget.cancelled() || budget.wall_expired()) break;
    if (run.grant_exhausted()) {
      // Stop once in-flight attempts drain; pending slots stay unserved.
      bool busy = false;
      for (const Worker& w : workers_)
        busy = busy || w.state == Worker::State::kBusy;
      if (!busy) break;
    }
    if (!poll_once(25, &run)) break;
  }

  // A cut (cancel/deadline/grant) can leave workers mid-solve; SIGKILL is
  // the only out-of-process interrupt.  Observe the deaths now so the
  // fleet object is clean — and immediately reusable — for the next call.
  bool any_busy = false;
  for (Worker& w : workers_)
    if (w.state == Worker::State::kBusy) {
      kill_worker(w);
      any_busy = true;
    }
  if (any_busy) {
    const Clock::time_point reap_by = after_seconds(10.0);
    for (;;) {
      bool busy = false;
      for (const Worker& w : workers_)
        busy = busy || w.state == Worker::State::kBusy;
      if (!busy || Clock::now() >= reap_by) break;
      poll_once(25, nullptr);
    }
  }
  last_run_attempts_.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    last_run_attempts_[i] = outcomes[i].attempts;
  return outcomes;
}

ProcessFleet::FleetSnapshot ProcessFleet::snapshot() const {
  FleetSnapshot snap;
  snap.totals = stats_;
  snap.workers.reserve(workers_.size());
  for (const Worker& w : workers_) {
    WorkerSnapshot ws;
    ws.pid = w.alive() ? static_cast<int>(w.pid) : -1;
    switch (w.state) {
      case Worker::State::kDown: ws.state = "down"; break;
      case Worker::State::kAbandoned: ws.state = "abandoned"; break;
      case Worker::State::kSpawning: ws.state = "spawning"; break;
      case Worker::State::kIdle: ws.state = "idle"; break;
      case Worker::State::kBusy: ws.state = "busy"; break;
    }
    ws.respawns = static_cast<std::uint32_t>(w.respawns);
    ws.backoff_seconds = w.backoff_s;
    ws.tasks_dispatched = w.tasks_dispatched;
    snap.workers.push_back(ws);
  }
  snap.last_run_attempts = last_run_attempts_;
  return snap;
}

std::string ProcessFleet::make_count_setup(
    const Cnf& formula, const std::vector<Var>& sampling_set, std::uint32_t n,
    std::uint64_t pivot, const ApproxMcOptions& options) {
  (void)options;
  ipc::SetupMsg m;
  m.kind = ipc::TaskKind::kCount;
  m.formula_dimacs = to_dimacs_canonical_string(formula);
  m.sampling_set = sampling_set;
  m.n = n;
  m.pivot = pivot;
  m.formula_vars = formula.num_vars();
  return ipc::encode_setup(m);
}

std::string ProcessFleet::make_sample_setup(
    const Cnf& original, const std::vector<Var>& sampling_set,
    const UniGenPrepared& prep, const UniGenOptions& options) {
  ipc::SetupMsg m;
  m.kind = ipc::TaskKind::kSample;
  m.formula_dimacs = to_dimacs_canonical_string(original);
  m.sampling_set = sampling_set;
  m.simplify = options.simplify;
  m.prep_mode = static_cast<std::uint8_t>(prep.mode);
  m.kappa = prep.kp.kappa;
  m.kp_pivot = prep.kp.pivot;
  m.lo_thresh = prep.kp.lo_thresh;
  m.hi_thresh = prep.kp.hi_thresh;
  m.q = prep.q;
  m.approx_log2_count = prep.approx_log2_count;
  m.formula_vars = original.num_vars();
  m.epsilon = options.epsilon;
  m.sample_timeout_s = options.sample_timeout_s;
  m.bsat_timeout_s = options.bsat_timeout_s;
  return ipc::encode_setup(m);
}

}  // namespace unigen
