#pragma once
// ProcessFleet — crash-isolated execution backend: N supervised child
// processes (unigen_workerd) serving the same keyed-stream task shape as
// the in-process WorkerPool.
//
// Why processes: a solver crash (or an injected SIGKILL) inside a
// WorkerPool thread takes the whole service down.  Here it costs one task
// retry — the supervisor reaps the dead child, respawns it under bounded
// exponential backoff, and re-dispatches the in-flight task.  The retry is
// byte-identical to what the dead worker would have produced, because a
// task frame carries everything the computation depends on (formula in
// canonical DIMACS, raw RNG state, scalars — see service/ipc.hpp): the
// keyed-stream determinism contract is location-independent, so *where* a
// task runs, and on which attempt, cannot reach the reported bytes.
//
// Supervision model (single-threaded poll loop, no supervisor threads):
//   * liveness   — workers heartbeat on a dedicated thread; a worker silent
//                  past heartbeat_timeout_s is declared hung, SIGKILLed,
//                  and treated like any other death.
//   * deadlines  — task_deadline_s bounds one attempt's wall clock; expiry
//                  kills the worker (the only way to interrupt an
//                  out-of-process solve) and re-dispatches.
//   * crash loop — respawns back off exponentially and are capped per
//                  worker slot; a slot that keeps dying is abandoned and
//                  the fleet degrades to the survivors.
//   * poisoning  — a task whose attempts exceed max_task_attempts is
//                  poisoned: its slot reports unserved and flows through
//                  the embeddings' existing partial/failed accounting.
//   * cancel/    — a tripped token or expired call deadline SIGKILLs busy
//     deadline     workers (honest statuses for their tasks); dead slots
//                  respawn lazily, so the fleet object stays reusable.
//
// Transports (FleetOptions::transport): the supervision loop never sees
// anything but a connected SOCK_STREAM fd per worker, so the same poll()
// polices fork/exec'd socketpair children, locally-spawned children that
// dialled back over TCP loopback, and never-spawned remote workers
// (`unigen_workerd --listen`) reached through FleetOptions::endpoints.
// For remote workers there is no pid to SIGKILL; dropping the connection
// is the kill (the remote serving loop sees EOF, resets, and re-accepts),
// and a respawn is a re-dial under the same bounded backoff.  All frame
// sends are deadline-bounded (send_timeout_s): a peer that stops draining
// is a stalled transport, classified and killed exactly like a
// heartbeat-silent hang — the single-threaded supervisor never blocks.
//
// Graceful degradation: start() returns false when no worker can be
// brought up (missing binary, fork failure); embeddings then fall back to
// the in-process WorkerPool.  If the last live worker dies mid-run and no
// slot can respawn, run() returns with the remaining tasks unserved rather
// than spinning.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnf/cnf.hpp"
#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "service/budget.hpp"
#include "service/fleet_options.hpp"
#include "service/ipc.hpp"
#include "service/net_transport.hpp"

namespace unigen {

struct FleetStats {
  std::uint64_t spawns = 0;
  std::uint64_t spawn_failures = 0;
  /// TCP transport only: outbound connections established / refused
  /// (remote-endpoint dials and loopback accepts both count as dials —
  /// each produces one connected worker channel).
  std::uint64_t dials = 0;
  std::uint64_t dial_failures = 0;
  /// Frame sends that hit the bounded-write deadline (send_timeout_s);
  /// each one killed its worker like a heartbeat-silent hang.
  std::uint64_t send_stalls = 0;
  /// Corrupt inbound streams (bad length / unknown frame type); each one
  /// poisoned its connection — worker killed/dropped and respawned.
  std::uint64_t protocol_errors = 0;
  /// Unexpected worker deaths (crash, external kill) observed mid-service.
  std::uint64_t crashes = 0;
  /// Supervisor-initiated kills: heartbeat silence / per-task deadline.
  std::uint64_t hang_kills = 0;
  std::uint64_t deadline_kills = 0;
  std::uint64_t respawns = 0;
  /// Tasks sent again after their worker died mid-flight.
  std::uint64_t redispatches = 0;
  std::uint64_t poisoned_tasks = 0;
  /// Crash-to-redispatch latency (death detected → task back on a live
  /// worker), the service-visible cost of one recovery.
  double total_recovery_seconds = 0.0;
  double max_recovery_seconds = 0.0;
};

class ProcessFleet {
 public:
  /// One work unit; `id` is the canonical task key (iteration index or
  /// request stream) — also the worker-side fault-plan key.
  struct TaskSpec {
    std::uint64_t id = 0;
    std::array<std::uint64_t, 4> rng_state{};
    std::uint32_t start_m = 0;   ///< kCount leapfrog hint (fleet: cold start)
    std::uint64_t max_batch = 0; ///< kSample: 0 = single, else batch cap
    /// Trace propagation (obs/trace.hpp): rides the Task frame so the
    /// worker's spans land in the request's trace; 0 = tracing off.
    /// Observability only — never reaches the computation.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
  };

  /// served == false means the slot never produced a result: poisoned
  /// (attempts exhausted — `poisoned` set), cut by the call budget, or
  /// stranded by total worker loss.  Embeddings stamp honest statuses for
  /// those through their existing finish paths.
  struct TaskOutcome {
    bool served = false;
    bool poisoned = false;
    std::uint32_t attempts = 0;
    ipc::ResultMsg result;
  };

  /// Mirror of the in-process run's deterministic-unit ledger: when
  /// units_granted != 0, dispatch stops once units_spent (incremented by
  /// every arriving result's bsat_calls) reaches the grant.  Racy in the
  /// same way the threaded path is — the canonical fold downstream decides
  /// what the grant actually bought.
  struct RunControl {
    std::uint64_t units_granted = 0;
    std::uint64_t units_spent = 0;
  };

  explicit ProcessFleet(FleetOptions options);
  ~ProcessFleet();
  ProcessFleet(const ProcessFleet&) = delete;
  ProcessFleet& operator=(const ProcessFleet&) = delete;

  /// Spawns the workers, ships `setup_payload` (an encoded ipc::SetupMsg)
  /// to each, and waits for the first Ready.  False = no worker could be
  /// brought up — the caller should fall back in-process.  Idempotent.
  bool start(std::string setup_payload, std::size_t default_workers);

  /// Convenience Setup builders matching what unigen_workerd expects.
  static std::string make_count_setup(const Cnf& formula,
                                      const std::vector<Var>& sampling_set,
                                      std::uint32_t n, std::uint64_t pivot,
                                      const ApproxMcOptions& options);
  static std::string make_sample_setup(const Cnf& original,
                                       const std::vector<Var>& sampling_set,
                                       const UniGenPrepared& prep,
                                       const UniGenOptions& options);

  /// Fans `tasks` across the workers; synchronous; outcomes in task order.
  /// `budget` supplies the call-level wall deadline and cancellation token
  /// (its per-call scalars already travelled in the Setup frame).
  std::vector<TaskOutcome> run(const std::vector<TaskSpec>& tasks,
                               const Budget& budget,
                               RunControl* control = nullptr);

  bool started() const { return started_; }
  std::size_t num_workers() const;
  /// Live child pids — the test seam for external `kill -9`.
  std::vector<int> worker_pids() const;
  const FleetStats& stats() const { return stats_; }

  /// Supervisor internals that used to die inside the poll loop, frozen
  /// into a point-in-time snapshot: per-slot respawn/backoff state plus the
  /// last run's per-task attempt ordinals.  Dispatcher-only, between runs.
  struct WorkerSnapshot {
    int pid = -1;               ///< -1 when the slot is down/abandoned
    const char* state = "";     ///< "down"/"abandoned"/"spawning"/"idle"/"busy"
    std::uint32_t respawns = 0;
    double backoff_seconds = 0.0;  ///< current exponential-backoff delay
    std::uint64_t tasks_dispatched = 0;
  };
  struct FleetSnapshot {
    FleetStats totals;
    std::vector<WorkerSnapshot> workers;
    /// Attempt count per task of the most recent run(), in task order
    /// (1 = served first try; > 1 = re-dispatched after worker deaths).
    std::vector<std::uint32_t> last_run_attempts;
  };
  FleetSnapshot snapshot() const;

 private:
  struct Worker;
  struct RunState;

  std::string resolve_workerd_path() const;
  bool spawn(Worker& w);
  bool spawn_socketpair(Worker& w);
  bool spawn_tcp_local(Worker& w);
  bool dial_remote(Worker& w);
  /// Completes a spawn/dial: register the connected fd, ship Setup.
  bool adopt_connection(Worker& w, int fd, int pid);
  void kill_worker(Worker& w);
  void handle_death(Worker& w, RunState* run);
  void process_frames(Worker& w, RunState* run);
  void dispatch(Worker& w, std::size_t task_index, RunState* run);
  /// One poll round: respawn due slots, pump readable fds, police
  /// heartbeats and task deadlines.  Returns false when no worker is live
  /// and none can ever come back.
  bool poll_once(int timeout_ms, RunState* run);

  FleetOptions options_;
  std::string setup_payload_;
  std::string workerd_path_;
  bool started_ = false;
  std::vector<Worker> workers_;
  FleetStats stats_;
  std::vector<std::uint32_t> last_run_attempts_;
  /// kTcp with no endpoints: the loopback listener locally-spawned workers
  /// dial back into (each spawn passes `--connect 127.0.0.1:<port>`).
  std::unique_ptr<net::TcpListener> listener_;
};

}  // namespace unigen
