#include "service/sampler_pool.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace unigen {

// One fan-out: `count` requests pulled from an atomic cursor.  Lives on the
// dispatcher's stack for the duration of run_job; `active` (mutex-guarded)
// counts workers still attached, so the dispatcher never returns — and the
// Job never dies — while a worker could still touch it.
struct SamplerPool::Job {
  enum class Kind { kSingles, kBatches };
  Kind kind = Kind::kSingles;
  std::size_t count = 0;
  std::size_t max_batch = 0;
  std::uint64_t first_stream = 0;  ///< rng stream of request 0
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::size_t active = 0;  // guarded by SamplerPool::mu_
  std::vector<SampleResult>* singles = nullptr;
  std::vector<BatchResult>* batches = nullptr;
};

SamplerPool::SamplerPool(Cnf cnf, SamplerPoolOptions options)
    : cnf_(std::move(cnf)),
      sampling_set_(cnf_.sampling_set_or_all()),
      options_(options),
      base_rng_(options.seed) {
  std::size_t n = options_.num_threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.resize(n);
}

SamplerPool::~SamplerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool SamplerPool::prepare() {
  if (prepared_) return prep_.usable();
  Rng prepare_rng = base_rng_.fork_stream(0);
  auto engine = unigen_prepare(cnf_, sampling_set_, options_.unigen,
                               prepare_rng, prep_, prepare_stats_);
  prepared_ = true;
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    // Worker 0 adopts the engine the easy-case check already built (and
    // warmed with learnt clauses); the others build theirs on first use.
    workers_[0].engine = std::move(engine);
    threads_.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i)
      threads_.emplace_back([this, i] { worker_main(i); });
  }
  return prep_.usable();
}

void SamplerPool::worker_main(std::size_t worker_index) {
  Worker& worker = workers_[worker_index];
  std::uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || job_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = job_seq_;
      job = job_;  // null when the job already finished without us
      if (job != nullptr) ++job->active;
    }
    if (job == nullptr) continue;
    for (;;) {
      const std::size_t k = job->next.fetch_add(1, std::memory_order_relaxed);
      if (k >= job->count) break;
      serve(worker, *job, k);
      job->done.fetch_add(1, std::memory_order_acq_rel);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --job->active;
    }
    done_cv_.notify_all();
  }
}

void SamplerPool::serve(Worker& worker, Job& job, std::size_t k) {
  // Workers solve the formula prepare() simplified (prep_ owns it and
  // outlives every engine); accept_cell reconstructs the witnesses, so the
  // service output is over the original formula's variables either way.
  if (!worker.engine)
    worker.engine =
        std::make_unique<IncrementalBsat>(prep_.formula(cnf_), sampling_set_);
  // All randomness of request k comes from its keyed stream — identical no
  // matter which worker runs this.
  Rng rng = base_rng_.fork_stream(job.first_stream + k);
  bool timed_out = false;
  std::vector<Model> cell =
      unigen_accept_cell(*worker.engine, sampling_set_, prep_, options_.unigen,
                         cnf_.num_vars(), rng, worker.stats, timed_out);
  if (job.kind == Job::Kind::kSingles) {
    SampleResult& out = (*job.singles)[k];
    if (timed_out)
      out = SampleResult::timeout();
    else if (cell.empty())
      out = SampleResult::failure();
    else
      out = SampleResult::success(std::move(cell[rng.below(cell.size())]));
  } else {
    BatchResult& out = (*job.batches)[k];
    if (timed_out) {
      out.status = SampleResult::Status::kTimeout;
    } else if (cell.empty()) {
      out.status = SampleResult::Status::kFail;
    } else {
      rng.shuffle(cell);
      if (cell.size() > job.max_batch) cell.resize(job.max_batch);
      out.status = SampleResult::Status::kOk;
      out.models = std::move(cell);
    }
  }
  ++worker.served;
}

void SamplerPool::run_job(Job& job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job.done.load(std::memory_order_acquire) == job.count &&
           job.active == 0;
  });
  // Cleared under the lock: a worker waking late sees job_ == nullptr and
  // goes back to sleep instead of touching the dead job.
  job_ = nullptr;
}

SampleResult SamplerPool::inline_single(std::uint64_t stream) {
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      return SampleResult::unsat();
    case UniGenPrepared::Mode::kTrivial: {
      Rng rng = base_rng_.fork_stream(stream);
      return SampleResult::success(unigen_trivial_single(prep_, rng));
    }
    default:
      return SampleResult::timeout();
  }
}

BatchResult SamplerPool::inline_batch(std::uint64_t stream,
                                      std::size_t max_batch) {
  BatchResult out;
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      out.status = SampleResult::Status::kUnsat;
      return out;
    case UniGenPrepared::Mode::kTrivial: {
      Rng rng = base_rng_.fork_stream(stream);
      out.models = unigen_trivial_batch(prep_, max_batch, rng);
      out.status = SampleResult::Status::kOk;
      return out;
    }
    default:
      out.status = SampleResult::Status::kTimeout;
      return out;
  }
}

void SamplerPool::account(SampleResult::Status status) {
  ++requests_;
  switch (status) {
    case SampleResult::Status::kOk:
      ++ok_;
      break;
    case SampleResult::Status::kFail:
      ++failed_;
      break;
    case SampleResult::Status::kTimeout:
      ++timed_out_;
      break;
    case SampleResult::Status::kUnsat:
      break;
  }
}

std::vector<SampleResult> SamplerPool::sample_many(std::size_t count) {
  if (count == 0) return {};
  prepare();
  const Stopwatch watch;
  const std::uint64_t first_stream = next_stream_;
  next_stream_ += count;  // streams are consumed whatever the mode
  std::vector<SampleResult> results(count);
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    Job job;
    job.kind = Job::Kind::kSingles;
    job.count = count;
    job.first_stream = first_stream;
    job.singles = &results;
    run_job(job);
  } else {
    for (std::size_t k = 0; k < count; ++k)
      results[k] = inline_single(first_stream + k);
  }
  for (const SampleResult& r : results) account(r.status);
  service_seconds_ += watch.seconds();
  return results;
}

std::vector<BatchResult> SamplerPool::sample_batches(std::size_t requests,
                                                     std::size_t max_batch) {
  if (requests == 0 || max_batch == 0) return {};
  prepare();
  const Stopwatch watch;
  const std::uint64_t first_stream = next_stream_;
  next_stream_ += requests;
  std::vector<BatchResult> results(requests);
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    Job job;
    job.kind = Job::Kind::kBatches;
    job.count = requests;
    job.max_batch = max_batch;
    job.first_stream = first_stream;
    job.batches = &results;
    run_job(job);
  } else {
    for (std::size_t k = 0; k < requests; ++k)
      results[k] = inline_batch(first_stream + k, max_batch);
  }
  for (const BatchResult& r : results) account(r.status);
  service_seconds_ += watch.seconds();
  return results;
}

SamplerPoolStats SamplerPool::stats() const {
  SamplerPoolStats out;
  out.prepare = prepare_stats_;
  out.requests = requests_;
  out.samples_ok = ok_;
  out.samples_failed = failed_;
  out.samples_timed_out = timed_out_;
  out.service_seconds = service_seconds_;
  out.workers.reserve(workers_.size());
  for (const Worker& w : workers_) {
    SamplerPoolWorkerStats ws;
    ws.requests_served = w.served;
    if (w.engine) {
      const SolverStats es = w.engine->stats();
      ws.solver_rebuilds = es.solver_rebuilds;
      ws.reused_solves = es.reused_solves;
    }
    ws.sample_bsat_calls = w.stats.sample_bsat_calls;
    ws.bsat_timeout_retries = w.stats.bsat_timeout_retries;
    ws.total_xor_rows = w.stats.total_xor_rows;
    ws.total_xor_row_length = w.stats.total_xor_row_length;
    out.workers.push_back(ws);
  }
  return out;
}

}  // namespace unigen
