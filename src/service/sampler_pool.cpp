#include "service/sampler_pool.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace unigen {

// What one fan-out is about: the request kind and the preallocated result
// slots.  The thread/cursor machinery lives in WorkerPool.
struct SamplerPool::Job {
  enum class Kind { kSingles, kBatches };
  Kind kind = Kind::kSingles;
  std::size_t max_batch = 0;
  std::vector<SampleResult>* singles = nullptr;
  std::vector<BatchResult>* batches = nullptr;
};

SamplerPool::SamplerPool(Cnf cnf, SamplerPoolOptions options)
    : cnf_(std::move(cnf)),
      sampling_set_(cnf_.sampling_set_or_all()),
      options_(options),
      pool_(options.num_threads, Rng(options.seed)) {
  worker_ugstats_.resize(pool_.num_threads());
}

bool SamplerPool::prepare() {
  if (prepared_) return prep_.usable();
  Rng prepare_rng = pool_.fork_stream(0);
  // The one-time ApproxMC call fans its median iterations across as many
  // threads as this pool serves requests with (unless the caller pinned
  // counter_threads explicitly).  The parallel count is byte-identical
  // across thread counts, so q — and every sample downstream — still is.
  // Known cost: the counter's fan-out builds its own transient WorkerPool
  // and discards those engines; the sampling workers below load the same
  // simplified formula again (one extra O(formula) build per worker, paid
  // once per pool — engine handoff across the two fan-outs is a ROADMAP
  // item).
  UniGenOptions unigen_options = options_.unigen;
  if (unigen_options.counter_threads == 0)
    unigen_options.counter_threads = pool_.num_threads();
  auto engine = unigen_prepare(cnf_, sampling_set_, unigen_options,
                               prepare_rng, prep_, prepare_stats_);
  prepared_ = true;
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    // Worker 0 adopts the engine the easy-case check already built (and
    // warmed with learnt clauses); the others build theirs on first use.
    pool_.start(prep_.formula(cnf_), sampling_set_, std::move(engine));
  }
  return prep_.usable();
}

void SamplerPool::serve(IncrementalBsat& engine, std::size_t worker, Job& job,
                        std::size_t k, Rng& rng) {
  // Workers solve the formula prepare() simplified (prep_ owns it and
  // outlives every engine); accept_cell reconstructs the witnesses, so the
  // service output is over the original formula's variables either way.
  bool timed_out = false;
  std::vector<Model> cell = unigen_accept_cell(
      engine, sampling_set_, prep_, options_.unigen, cnf_.num_vars(), rng,
      worker_ugstats_[worker], timed_out);
  if (job.kind == Job::Kind::kSingles) {
    SampleResult& out = (*job.singles)[k];
    if (timed_out)
      out = SampleResult::timeout();
    else if (cell.empty())
      out = SampleResult::failure();
    else
      out = SampleResult::success(std::move(cell[rng.below(cell.size())]));
  } else {
    BatchResult& out = (*job.batches)[k];
    if (timed_out) {
      out.status = SampleResult::Status::kTimeout;
    } else if (cell.empty()) {
      out.status = SampleResult::Status::kFail;
    } else {
      rng.shuffle(cell);
      if (cell.size() > job.max_batch) cell.resize(job.max_batch);
      out.status = SampleResult::Status::kOk;
      out.models = std::move(cell);
    }
  }
}

SampleResult SamplerPool::inline_single(std::uint64_t stream) {
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      return SampleResult::unsat();
    case UniGenPrepared::Mode::kTrivial: {
      Rng rng = pool_.fork_stream(stream);
      return SampleResult::success(unigen_trivial_single(prep_, rng));
    }
    default:
      return SampleResult::timeout();
  }
}

BatchResult SamplerPool::inline_batch(std::uint64_t stream,
                                      std::size_t max_batch) {
  BatchResult out;
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      out.status = SampleResult::Status::kUnsat;
      return out;
    case UniGenPrepared::Mode::kTrivial: {
      Rng rng = pool_.fork_stream(stream);
      out.models = unigen_trivial_batch(prep_, max_batch, rng);
      out.status = SampleResult::Status::kOk;
      return out;
    }
    default:
      out.status = SampleResult::Status::kTimeout;
      return out;
  }
}

void SamplerPool::account(SampleResult::Status status) {
  ++requests_;
  switch (status) {
    case SampleResult::Status::kOk:
      ++ok_;
      break;
    case SampleResult::Status::kFail:
      ++failed_;
      break;
    case SampleResult::Status::kTimeout:
      ++timed_out_;
      break;
    case SampleResult::Status::kUnsat:
      break;
  }
}

std::vector<SampleResult> SamplerPool::sample_many(std::size_t count) {
  if (count == 0) return {};
  prepare();
  const Stopwatch watch;
  const std::uint64_t first_stream = next_stream_;
  next_stream_ += count;  // streams are consumed whatever the mode
  std::vector<SampleResult> results(count);
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    Job job;
    job.kind = Job::Kind::kSingles;
    job.singles = &results;
    pool_.run(count, first_stream,
              [this, &job](IncrementalBsat& engine, std::size_t worker,
                           std::size_t k, Rng& rng) {
                serve(engine, worker, job, k, rng);
              });
  } else {
    for (std::size_t k = 0; k < count; ++k)
      results[k] = inline_single(first_stream + k);
  }
  for (const SampleResult& r : results) account(r.status);
  service_seconds_ += watch.seconds();
  return results;
}

std::vector<BatchResult> SamplerPool::sample_batches(std::size_t requests,
                                                     std::size_t max_batch) {
  if (requests == 0 || max_batch == 0) return {};
  prepare();
  const Stopwatch watch;
  const std::uint64_t first_stream = next_stream_;
  next_stream_ += requests;
  std::vector<BatchResult> results(requests);
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    Job job;
    job.kind = Job::Kind::kBatches;
    job.max_batch = max_batch;
    job.batches = &results;
    pool_.run(requests, first_stream,
              [this, &job](IncrementalBsat& engine, std::size_t worker,
                           std::size_t k, Rng& rng) {
                serve(engine, worker, job, k, rng);
              });
  } else {
    for (std::size_t k = 0; k < requests; ++k)
      results[k] = inline_batch(first_stream + k, max_batch);
  }
  for (const BatchResult& r : results) account(r.status);
  service_seconds_ += watch.seconds();
  return results;
}

SamplerPoolStats SamplerPool::stats() const {
  SamplerPoolStats out;
  out.prepare = prepare_stats_;
  out.requests = requests_;
  out.samples_ok = ok_;
  out.samples_failed = failed_;
  out.samples_timed_out = timed_out_;
  out.service_seconds = service_seconds_;
  out.workers.reserve(pool_.num_threads());
  for (std::size_t w = 0; w < pool_.num_threads(); ++w) {
    SamplerPoolWorkerStats ws;
    ws.requests_served = pool_.tasks_served(w);
    const SolverStats es = pool_.engine_stats(w);
    ws.solver_rebuilds = es.solver_rebuilds;
    ws.reused_solves = es.reused_solves;
    ws.sample_bsat_calls = worker_ugstats_[w].sample_bsat_calls;
    ws.bsat_timeout_retries = worker_ugstats_[w].bsat_timeout_retries;
    ws.total_xor_rows = worker_ugstats_[w].total_xor_rows;
    ws.total_xor_row_length = worker_ugstats_[w].total_xor_row_length;
    out.workers.push_back(ws);
  }
  return out;
}

}  // namespace unigen
