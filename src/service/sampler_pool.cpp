#include "service/sampler_pool.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "service/process_fleet.hpp"
#include "util/timer.hpp"

namespace unigen {

// What one fan-out is about: the request kind, the preallocated result
// slots, and the call's effective options (the per-call budget lives in
// options->budget).  The thread/cursor machinery lives in WorkerPool.
struct SamplerPool::Job {
  enum class Kind { kSingles, kBatches };
  Kind kind = Kind::kSingles;
  std::size_t max_batch = 0;
  const UniGenOptions* options = nullptr;
  std::uint64_t first_stream = 0;
  std::vector<SampleResult>* singles = nullptr;
  std::vector<BatchResult>* batches = nullptr;
  /// served[k] == 1 iff request k actually ran (a budget cut can leave a
  /// slot untouched; finish_job stamps those with their honest status).
  /// Each slot is written by exactly one worker, read after quiescence.
  std::vector<char> served;
};

SampleResult finish_single_from_cell(AcceptCellResult r, Rng& rng) {
  if (r.ok())
    return SampleResult::success(std::move(r.cell[rng.below(r.cell.size())]));
  SampleResult out;
  out.status = sample_status_from_request(r.status);
  return out;
}

BatchResult finish_batch_from_cell(AcceptCellResult r, std::size_t max_batch,
                                   Rng& rng) {
  BatchResult out;
  out.status = sample_status_from_request(r.status);
  if (r.ok()) {
    rng.shuffle(r.cell);
    if (r.cell.size() > max_batch) r.cell.resize(max_batch);
    out.models = std::move(r.cell);
  }
  return out;
}

SamplerPool::SamplerPool(Cnf cnf, SamplerPoolOptions options)
    : cnf_(std::move(cnf)),
      sampling_set_(cnf_.sampling_set_or_all()),
      options_(options),
      pool_(options.num_threads, Rng(options.seed)) {
  worker_ugstats_.resize(pool_.num_threads());
}

SamplerPool::~SamplerPool() = default;

bool SamplerPool::prepare() { return prepare(options_.unigen.budget); }

bool SamplerPool::prepare(const Budget& budget) {
  if (prepared_) return prep_.usable();
  // Observability only: the one-time phase (simplify + easy-case check +
  // nested count) as one span; the count.request span nests under it.
  obs::Span prepare_span("pool.prepare",
                         obs::trace_id_for_request(options_.seed, 0));
  Rng prepare_rng = pool_.fork_stream(0);
  // The one-time ApproxMC call fans its median iterations across as many
  // threads as this pool serves requests with (unless the caller pinned
  // counter_threads explicitly), and — the warm handoff — across this
  // pool's *own* workers: unigen_prepare starts pool_ itself (worker 0
  // adopting the easy-case engine) and the count warms the very engines
  // that will serve samples, so exactly one solver is built per worker
  // over the pool lifetime.  The parallel count is byte-identical across
  // thread counts, so q — and every sample downstream — still is; sample
  // bytes are untouched by the richer learnt history (canonical cell
  // ordering).  A counter_threads pinned to a different width keeps the
  // legacy transient count at that width instead.
  UniGenOptions unigen_options = options_.unigen;
  unigen_options.budget = budget;
  const bool handoff = unigen_options.counter_threads == 0 ||
                       unigen_options.counter_threads == pool_.num_threads();
  if (unigen_options.counter_threads == 0)
    unigen_options.counter_threads = pool_.num_threads();
  if (handoff) unigen_options.shared_pool = &pool_;
  auto engine = unigen_prepare(cnf_, sampling_set_, unigen_options,
                               prepare_rng, prep_, prepare_stats_);
  prepared_ = true;
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    // Handoff path: pool_ is already started (start() is idempotent and
    // `engine` is null).  Legacy path: worker 0 adopts the engine the
    // easy-case check built; the others build theirs on first use.
    pool_.start(prep_.formula(cnf_), sampling_set_, std::move(engine));
    // Crash-isolated backend: bring up the worker processes now, shipping
    // the ORIGINAL formula plus the simplify options — each worker re-runs
    // the deterministic pipeline, reproducing the shrunk formula and the
    // reconstruction stack prepare() computed here.  The nested count
    // above always ran in-process (the warm handoff); only the per-sample
    // fan-out moves out of process.  Start failure (no unigen_workerd
    // binary, fork failure) leaves fleet_ null: requests silently serve
    // from pool_ — graceful degradation, not an error.
    if (options_.unigen.fleet.backend == ExecBackend::kProcessFleet) {
      auto fleet = std::make_unique<ProcessFleet>(options_.unigen.fleet);
      if (fleet->start(ProcessFleet::make_sample_setup(
                           cnf_, sampling_set_, prep_, options_.unigen),
                       pool_.num_threads()))
        fleet_ = std::move(fleet);
    }
  }
  prepare_tasks_.resize(pool_.num_threads(), 0);
  for (std::size_t w = 0; w < pool_.num_threads(); ++w)
    prepare_tasks_[w] = pool_.tasks_served(w);
  return prep_.usable();
}

void SamplerPool::serve(IncrementalBsat& engine, std::size_t worker, Job& job,
                        std::size_t k, Rng& rng) {
  // Call-level cuts are observed between requests: a request that has not
  // started when the deadline or token fires stays unserved, and
  // finish_job stamps its honest status after the pool quiesces.
  const Budget& budget = job.options->budget;
  if (budget.cancelled() || budget.wall_expired()) return;
  // Workers solve the formula prepare() simplified (prep_ owns it and
  // outlives every engine); accept_cell reconstructs the witnesses, so the
  // service output is over the original formula's variables either way.
  // The fault key is the request's *stream* index — a pure function of the
  // submission order, so a plan hits the same request at every thread
  // count.
  AcceptCellResult r = unigen_accept_cell(
      engine, sampling_set_, prep_, *job.options, cnf_.num_vars(), rng,
      worker_ugstats_[worker], /*fault_key=*/job.first_stream + k);
  job.served[k] = 1;
  if (job.kind == Job::Kind::kSingles)
    (*job.singles)[k] = finish_single_from_cell(std::move(r), rng);
  else
    (*job.batches)[k] = finish_batch_from_cell(std::move(r), job.max_batch, rng);
}

SampleResult SamplerPool::inline_single(std::uint64_t stream) {
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      return SampleResult::unsat();
    case UniGenPrepared::Mode::kTrivial: {
      Rng rng = pool_.fork_stream(stream);
      return SampleResult::success(unigen_trivial_single(prep_, rng));
    }
    default:
      return SampleResult::timeout();
  }
}

BatchResult SamplerPool::inline_batch(std::uint64_t stream,
                                      std::size_t max_batch) {
  BatchResult out;
  switch (prep_.mode) {
    case UniGenPrepared::Mode::kUnsat:
      out.status = SampleResult::Status::kUnsat;
      return out;
    case UniGenPrepared::Mode::kTrivial: {
      Rng rng = pool_.fork_stream(stream);
      out.models = unigen_trivial_batch(prep_, max_batch, rng);
      out.status = SampleResult::Status::kOk;
      return out;
    }
    default:
      out.status = SampleResult::Status::kTimeout;
      return out;
  }
}

void SamplerPool::account(SampleResult::Status status) {
  ++requests_;
  switch (status) {
    case SampleResult::Status::kOk:
      ++ok_;
      break;
    case SampleResult::Status::kFail:
      ++failed_;
      break;
    case SampleResult::Status::kTimeout:
      ++timed_out_;
      break;
    case SampleResult::Status::kCancelled:
      ++cancelled_;
      break;
    case SampleResult::Status::kUnsat:
      break;
  }
}

void SamplerPool::serve_via_fleet(Job& job, std::size_t count,
                                  const Budget& budget) {
  // Request k of this call is task (first_stream + k): the id doubles as
  // the worker-side fault-plan key and matches the in-process fault_key,
  // so one injection plan addresses the same request on both backends.
  // Raw RNG state per task keeps every draw identical to pool_'s keyed
  // fork; a crashed request's retry re-runs the same pure function.
  std::vector<ProcessFleet::TaskSpec> specs(count);
  const obs::TraceContext tctx = obs::current_context();
  for (std::size_t k = 0; k < count; ++k) {
    specs[k].id = job.first_stream + k;
    specs[k].rng_state = pool_.fork_stream(job.first_stream + k).state();
    specs[k].max_batch =
        job.kind == Job::Kind::kBatches ? job.max_batch : 0;
    // Trace propagation (observability only): worker spans land under this
    // call's pool.request span.
    specs[k].trace_id = tctx.trace_id;
    specs[k].parent_span = tctx.span_id;
  }
  std::vector<ProcessFleet::TaskOutcome> outcomes = fleet_->run(specs, budget);
  for (std::size_t k = 0; k < count; ++k) {
    if (!outcomes[k].served) continue;  // poisoned/cut → finish_job stamps
    const ipc::ResultMsg& r = outcomes[k].result;
    if (r.sample_status > static_cast<std::uint8_t>(
                              SampleResult::Status::kCancelled))
      continue;  // corrupt status byte: treat as unserved
    const auto status = static_cast<SampleResult::Status>(r.sample_status);
    job.served[k] = 1;
    if (job.kind == Job::Kind::kSingles) {
      SampleResult& s = (*job.singles)[k];
      s.status = status;
      if (status == SampleResult::Status::kOk && !r.models.empty())
        s.witness = r.models.front();
    } else {
      BatchResult& b = (*job.batches)[k];
      b.status = status;
      b.models = std::move(outcomes[k].result.models);
    }
  }
}

RequestStatus SamplerPool::finish_job(const Budget& budget, Job& job) {
  // After quiescence, on the dispatcher thread.  A token that fired at any
  // point during the call makes the whole call kCancelled (the token
  // cannot un-trip mid-call), so unserved slots are cancellations; with no
  // token the only thing that leaves a slot unserved is the wall deadline.
  const bool cancelled = budget.cancelled();
  std::size_t unserved = 0;
  for (std::size_t k = 0; k < job.served.size(); ++k) {
    if (job.served[k]) continue;
    ++unserved;
    if (job.kind == Job::Kind::kSingles)
      (*job.singles)[k] =
          cancelled ? SampleResult::cancelled() : SampleResult::timeout();
    else
      (*job.batches)[k].status = cancelled
                                     ? SampleResult::Status::kCancelled
                                     : SampleResult::Status::kTimeout;
  }
  if (cancelled) return RequestStatus::kCancelled;
  if (unserved == job.served.size() && unserved > 0)
    return RequestStatus::kTimedOut;
  if (unserved > 0) return RequestStatus::kPartial;
  return RequestStatus::kComplete;
}

std::vector<SampleResult> SamplerPool::sample_many(std::size_t count) {
  return sample_many_within(count, options_.unigen.budget).samples;
}

std::vector<BatchResult> SamplerPool::sample_batches(std::size_t requests,
                                                     std::size_t max_batch) {
  return sample_batches_within(requests, max_batch, options_.unigen.budget)
      .batches;
}

SampleManyResult SamplerPool::sample_many_within(std::size_t count,
                                                 const Budget& budget) {
  SampleManyResult out;
  if (count == 0) return out;
  // Degenerate budget: stamp every slot honestly before prepare() or any
  // BSAT call.  Streams are still consumed — the stream ledger advances
  // per request, whatever the outcome, so later requests are unaffected.
  if (const RequestStatus adm = budget.admission_status();
      adm != RequestStatus::kComplete) {
    next_stream_ += count;
    out.samples.assign(count, adm == RequestStatus::kCancelled
                                  ? SampleResult::cancelled()
                                  : SampleResult::timeout());
    out.status = adm;
    for (const SampleResult& r : out.samples) account(r.status);
    return out;
  }
  const std::uint64_t first_stream = next_stream_;
  next_stream_ += count;  // streams are consumed whatever the outcome
  // Observability only: one span (and one trace id, keyed by the call's
  // first request stream) per service call.  Cold calls nest prepare under
  // it; every request span of this call becomes its child.
  obs::Span call_span("pool.request",
                      obs::trace_id_for_request(options_.seed, first_stream));
  call_span.set_value(count);
  prepare();
  const Stopwatch watch;
  out.samples.resize(count);
  UniGenOptions opts = options_.unigen;
  opts.budget = budget;
  Job job;
  job.kind = Job::Kind::kSingles;
  job.options = &opts;
  job.first_stream = first_stream;
  job.singles = &out.samples;
  job.served.assign(count, 0);
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    if (fleet_ != nullptr)
      serve_via_fleet(job, count, budget);
    else
      pool_.run(count, first_stream,
                [this, &job](IncrementalBsat& engine, std::size_t worker,
                             std::size_t k, Rng& rng) {
                  serve(engine, worker, job, k, rng);
                },
                budget.cancel != nullptr ? budget.cancel->flag() : nullptr);
  } else {
    for (std::size_t k = 0; k < count; ++k) {
      if (budget.cancelled() || budget.wall_expired()) break;
      out.samples[k] = inline_single(first_stream + k);
      job.served[k] = 1;
    }
  }
  out.status = finish_job(budget, job);
  for (const SampleResult& r : out.samples) account(r.status);
  service_seconds_ += watch.seconds();
  return out;
}

SampleBatchesResult SamplerPool::sample_batches_within(std::size_t requests,
                                                       std::size_t max_batch,
                                                       const Budget& budget) {
  SampleBatchesResult out;
  if (requests == 0 || max_batch == 0) return out;
  if (const RequestStatus adm = budget.admission_status();
      adm != RequestStatus::kComplete) {
    next_stream_ += requests;
    out.batches.resize(requests);
    for (BatchResult& b : out.batches) {
      b.status = adm == RequestStatus::kCancelled
                     ? SampleResult::Status::kCancelled
                     : SampleResult::Status::kTimeout;
      account(b.status);
    }
    out.status = adm;
    return out;
  }
  const std::uint64_t first_stream = next_stream_;
  next_stream_ += requests;
  obs::Span call_span("pool.request",
                      obs::trace_id_for_request(options_.seed, first_stream));
  call_span.set_value(requests);
  prepare();
  const Stopwatch watch;
  out.batches.resize(requests);
  UniGenOptions opts = options_.unigen;
  opts.budget = budget;
  Job job;
  job.kind = Job::Kind::kBatches;
  job.max_batch = max_batch;
  job.options = &opts;
  job.first_stream = first_stream;
  job.batches = &out.batches;
  job.served.assign(requests, 0);
  if (prep_.mode == UniGenPrepared::Mode::kHashed) {
    if (fleet_ != nullptr)
      serve_via_fleet(job, requests, budget);
    else
      pool_.run(requests, first_stream,
                [this, &job](IncrementalBsat& engine, std::size_t worker,
                             std::size_t k, Rng& rng) {
                  serve(engine, worker, job, k, rng);
                },
                budget.cancel != nullptr ? budget.cancel->flag() : nullptr);
  } else {
    for (std::size_t k = 0; k < requests; ++k) {
      if (budget.cancelled() || budget.wall_expired()) break;
      out.batches[k] = inline_batch(first_stream + k, max_batch);
      job.served[k] = 1;
    }
  }
  out.status = finish_job(budget, job);
  for (const BatchResult& r : out.batches) account(r.status);
  service_seconds_ += watch.seconds();
  return out;
}

SamplerPoolStats SamplerPool::stats() const {
  SamplerPoolStats out;
  out.prepare = prepare_stats_;
  out.requests = requests_;
  out.samples_ok = ok_;
  out.samples_failed = failed_;
  out.samples_timed_out = timed_out_;
  out.samples_cancelled = cancelled_;
  out.service_seconds = service_seconds_;
  out.workers.reserve(pool_.num_threads());
  for (std::size_t w = 0; w < pool_.num_threads(); ++w) {
    SamplerPoolWorkerStats ws;
    ws.requests_served =
        pool_.tasks_served(w) -
        (w < prepare_tasks_.size() ? prepare_tasks_[w] : 0);
    const SolverStats es = pool_.engine_stats(w);
    ws.solver_rebuilds = es.solver_rebuilds;
    ws.reused_solves = es.reused_solves;
    ws.sample_bsat_calls = worker_ugstats_[w].sample_bsat_calls;
    ws.bsat_timeout_retries = worker_ugstats_[w].bsat_timeout_retries;
    ws.total_xor_rows = worker_ugstats_[w].total_xor_rows;
    ws.total_xor_row_length = worker_ugstats_[w].total_xor_row_length;
    out.workers.push_back(ws);
  }
  return out;
}

}  // namespace unigen
