#pragma once
// SamplerPool — parallel witness-generation service.
//
// The paper's headline scalability argument: once lines 1–11 of Algorithm 1
// have run (thresholds, the easy-case check, one ApproxMC call fixing q),
// every sample is an i.i.d. run of lines 12–22 — sampling is embarrassingly
// parallel.  This service exploits exactly that split:
//
//   * prepare() runs once, on the caller's thread, producing an immutable
//     UniGenPrepared that every worker shares by const reference — and,
//     since PR 3, running the count-safe simplification pipeline whose
//     shrunk formula (owned by UniGenPrepared::simplifier) is what all
//     engines load; witnesses are reconstructed onto the original formula
//     inside unigen_accept_cell.  Since the counting layer went parallel,
//     the ApproxMC call inside prepare() fans its median iterations across
//     the same number of threads as this pool (UniGenOptions::
//     counter_threads = 0 means "match the service"), so the one-time
//     phase is no longer the serial latency floor of a deployment.
//   * The thread/engine machinery lives in WorkerPool (worker_pool.hpp):
//     N worker threads each own a private IncrementalBsat engine over the
//     one shared (simplified) Cnf — one solver build per worker for the
//     whole pool lifetime, observable via
//     SamplerPoolStats::workers[i].solver_rebuilds == 1.
//   * Work items are pulled from an atomic cursor, so load balances itself;
//     results land in a preallocated slot per request — no result-order
//     nondeterminism.
//
// Determinism contract: request k draws all of its randomness from
// Rng(seed).fork_stream(k) — a keyed fork that does not depend on which
// worker serves the request or how many threads exist — and accepted cells
// are handed back in canonical (lexicographic) order by unigen_accept_cell,
// so the witness picked out of a cell cannot depend on the serving engine's
// learnt-clause history.  Hence for a fixed seed and request sequence the
// returned sample sets are byte-identical across thread counts (asserted by
// tests/test_sampler_pool.cpp and bench_parallel_scaling).  Stream indices
// keep advancing across calls, so consecutive calls continue one global
// deterministic sequence.  One caveat: the contract assumes no per-BSAT
// timeout fires — a timeout retry (paper Section 5) draws a fresh hash from
// the request's stream, and whether a solve beats its wall-clock budget is
// machine- and contention-dependent.  Keep bsat_timeout_s comfortably above
// the workload's per-cell solve time (orders of magnitude, as the defaults
// are) when byte-identical replicas matter.  The same caveat covers the
// parallel count inside prepare(): a per-probe budget firing mid-iteration
// is schedule-dependent and can shift q (see ApproxMcOptions::num_threads);
// with budgets that never bind, q is thread-count-independent.
//
// Threading contract: one dispatcher thread drives the pool (prepare /
// sample_many / sample_batches / stats are not reentrant); the fan-out
// inside each call is the pool's own.  Calls are synchronous — when they
// return, every worker has quiesced, which is also what makes stats()
// race-free.

#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/cnf.hpp"
#include "core/sampler.hpp"
#include "core/unigen.hpp"
#include "service/budget.hpp"
#include "service/worker_pool.hpp"
#include "util/rng.hpp"

namespace unigen {

class ProcessFleet;

struct SamplerPoolOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  std::size_t num_threads = 0;
  /// Master seed: the whole service output is a deterministic function of
  /// (formula, options, seed, request sequence) — thread count excluded.
  std::uint64_t seed = 0xDAC14;
  /// ε and the time budgets, shared by prepare and every worker.  Its
  /// counter_threads = 0 default resolves to this pool's thread count, so
  /// prepare()'s ApproxMC call parallelizes with the service.
  UniGenOptions unigen;
};

/// Outcome of one batched request (one accepted cell), with timeout,
/// cancellation and ⊥ kept distinct — the vector<Model>-only shape of
/// UniGen::sample_batch cannot tell them apart.
struct BatchResult {
  SampleResult::Status status = SampleResult::Status::kFail;
  std::vector<Model> models;

  bool ok() const { return status == SampleResult::Status::kOk; }
};

/// One anytime service call: per-request outcomes plus the call-level
/// verdict.  `status` summarizes honestly what happened to the batch as a
/// whole:
///   kComplete  — every request ran to its own conclusion (individual
///                requests may still be kFail/⊥ or kTimeout on their own
///                per-request budgets; that is the algorithm's contract,
///                not a service failure);
///   kPartial   — the call-level wall deadline cut the fan-out: some
///                requests were served, the rest report kTimeout untouched;
///   kTimedOut  — the deadline cut before any request was served;
///   kCancelled — the cancellation token fired; unserved requests report
///                kCancelled.
/// Slots are always `count`-sized and in request order — unserved slots
/// hold an honest terminal status, never a default-constructed lie.
struct SampleManyResult {
  RequestStatus status = RequestStatus::kComplete;
  std::vector<SampleResult> samples;
};

/// The post-accept_cell tail of one sampling request, factored out so the
/// in-process pool (SamplerPool::serve) and the out-of-process worker
/// (workerd_main.cpp) run byte-identical post-processing: the request's
/// rng continues from wherever accept_cell left it — single pick via one
/// rng.below, batch via rng.shuffle + truncate — which is part of the
/// request's keyed-stream purity.
SampleResult finish_single_from_cell(AcceptCellResult r, Rng& rng);
BatchResult finish_batch_from_cell(AcceptCellResult r, std::size_t max_batch,
                                   Rng& rng);

struct SampleBatchesResult {
  RequestStatus status = RequestStatus::kComplete;
  std::vector<BatchResult> batches;
};

struct SamplerPoolWorkerStats {
  /// Sampling requests this worker served (the counting tasks the warm
  /// handoff also ran on these workers are excluded — prepare's share is
  /// snapshotted and subtracted).
  std::uint64_t requests_served = 0;
  /// Solver constructions on this worker's engine: stays at 1 for the pool
  /// lifetime (0 for a worker that never received a request — engines are
  /// built on first use).
  std::uint64_t solver_rebuilds = 0;
  std::uint64_t reused_solves = 0;
  std::uint64_t sample_bsat_calls = 0;
  std::uint64_t bsat_timeout_retries = 0;
  std::uint64_t total_xor_rows = 0;
  double total_xor_row_length = 0.0;
};

struct SamplerPoolStats {
  /// The one-time phase: kappa/pivot/thresholds/q, prepare_seconds,
  /// prepare_bsat_calls, counter_solver_rebuilds, trivial.
  UniGenStats prepare;
  // Outcome totals across all service calls.
  std::uint64_t requests = 0;
  std::uint64_t samples_ok = 0;
  std::uint64_t samples_failed = 0;
  std::uint64_t samples_timed_out = 0;
  std::uint64_t samples_cancelled = 0;
  /// Wall-clock spent inside sample_many/sample_batches (dispatcher view).
  double service_seconds = 0.0;
  std::vector<SamplerPoolWorkerStats> workers;

  double success_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(samples_ok) /
                               static_cast<double>(requests);
  }
};

class SamplerPool {
 public:
  /// `cnf` is copied once into the pool and never mutated afterwards; all
  /// worker engines reference this single copy.
  explicit SamplerPool(Cnf cnf, SamplerPoolOptions options = {});
  ~SamplerPool();
  SamplerPool(const SamplerPool&) = delete;
  SamplerPool& operator=(const SamplerPool&) = delete;

  /// Runs Algorithm 1 lines 1–11 once and (in hashed mode) starts the
  /// worker threads.  Idempotent.  Returns false when the one-time phase
  /// exceeded its budget; requests then report kTimeout.
  ///
  /// Engine ownership: prepare wires this pool's own WorkerPool through to
  /// unigen_prepare (UniGenOptions::shared_pool), so the one-time ApproxMC
  /// call fans out across — and warms — the same N engines that will serve
  /// samples: one solver build per worker across both phases, where the
  /// pre-handoff design built a transient counting pool and threw its N
  /// warmed engines away (asserted via IncrementalBsat::
  /// total_constructions in tests/test_session_registry.cpp).  Exception:
  /// a caller that pinned counter_threads to a width different from this
  /// pool's keeps the legacy transient count at that width.
  bool prepare();

  /// prepare() under a caller-supplied budget (deadline / cancellation /
  /// unit caps reach the easy-case check and the nested count) — the
  /// session registry's per-session Budget threading.  Only the *first*
  /// call's budget matters; prepare latches either way.
  bool prepare(const Budget& budget);

  /// Draws `count` independent witnesses — request k is one full run of
  /// lines 12–22 on stream k.  Trivial/UNSAT instances are served inline
  /// (an array lookup needs no fan-out); hashed instances fan out across
  /// the workers.  Runs under options.unigen.budget.
  std::vector<SampleResult> sample_many(std::size_t count);

  /// UniGen2-style batches: each request accepts one hash cell and returns
  /// up to `max_batch` distinct witnesses from it.
  std::vector<BatchResult> sample_batches(std::size_t requests,
                                          std::size_t max_batch);

  /// Anytime variants: `budget` replaces options.unigen.budget for this
  /// one call.  Its deadline and cancellation token are call-level (a cut
  /// stops starting new requests and interrupts in-flight solves; served
  /// and unserved slots are reported per the SampleManyResult contract);
  /// max_bsat_calls / conflicts_per_call / fault apply *per request*, so
  /// each served request's outcome stays a pure function of its stream —
  /// byte-identical across thread counts.  After a cancelled call the pool
  /// is immediately reusable: streams keep advancing by `count` whatever
  /// happened, so a follow-up call sees exactly the streams it would have
  /// on a pool whose earlier calls all completed.
  SampleManyResult sample_many_within(std::size_t count, const Budget& budget);
  SampleBatchesResult sample_batches_within(std::size_t requests,
                                            std::size_t max_batch,
                                            const Budget& budget);

  std::size_t num_threads() const { return pool_.num_threads(); }
  /// Valid after prepare().
  const UniGenPrepared& prepared() const { return prep_; }
  /// Non-null iff prepare() brought up the process-fleet backend
  /// (options.unigen.fleet) — the test seam for crash injection against a
  /// live service.  Requests then fan out across worker processes instead
  /// of pool_'s threads; byte-identical either way.
  ProcessFleet* fleet() const { return fleet_.get(); }
  /// Snapshot; call between service calls (see the threading contract).
  SamplerPoolStats stats() const;

 private:
  struct Job;

  /// One request (lines 12–22) on the serving worker's engine and the
  /// request's keyed stream; writes the result into the job's slot k.
  void serve(IncrementalBsat& engine, std::size_t worker, Job& job,
             std::size_t k, Rng& rng);
  /// Fans the job across the process fleet (fleet_ non-null) instead of
  /// pool_: same task keying, same bytes, crash-isolated workers.
  void serve_via_fleet(Job& job, std::size_t count, const Budget& budget);
  /// Serves trivial/unsat/timed-out modes on the dispatcher thread.
  SampleResult inline_single(std::uint64_t stream);
  BatchResult inline_batch(std::uint64_t stream, std::size_t max_batch);
  void account(SampleResult::Status status);
  /// Shared tail of the anytime calls: stamps honest statuses onto the
  /// slots the fan-out never served and derives the call-level verdict.
  RequestStatus finish_job(const Budget& budget, Job& job);

  Cnf cnf_;
  std::vector<Var> sampling_set_;
  SamplerPoolOptions options_;
  UniGenPrepared prep_;
  UniGenStats prepare_stats_;
  bool prepared_ = false;
  /// Stream 0 = prepare, streams 1.. = requests in submission order.
  std::uint64_t next_stream_ = 1;

  // Outcome totals (dispatcher thread only).
  std::uint64_t requests_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t cancelled_ = 0;
  double service_seconds_ = 0.0;

  /// Threads, engines and keyed streams; started by prepare() in hashed
  /// mode only.
  WorkerPool pool_;
  /// tasks_served snapshot taken when prepare() returns: the counting
  /// iterations the warm handoff ran on these workers, subtracted so
  /// stats().workers[w].requests_served counts sampling requests only.
  std::vector<std::uint64_t> prepare_tasks_;
  /// Accept-cell aggregates, one slot per worker, each touched only by its
  /// worker thread during a run (read between runs by stats()).
  std::vector<UniGenStats> worker_ugstats_;
  /// The process-fleet backend when options_.unigen.fleet selects it and
  /// start succeeded; null means requests run on pool_ (the default, and
  /// the graceful degradation when no worker could be spawned).
  std::unique_ptr<ProcessFleet> fleet_;
};

}  // namespace unigen
