#include "service/sampling_server.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace unigen {

namespace {

/// A failed cold prepare still owes the caller `count` honest slots: the
/// cut that stopped prepare is the same cut that would have stopped the
/// fan-out, so stamp its status on every slot.
SampleResult::Status failed_prepare_status(const Budget& budget) {
  return budget.cancelled() ? SampleResult::Status::kCancelled
                            : SampleResult::Status::kTimeout;
}

RequestStatus failed_prepare_call_status(const Budget& budget) {
  return budget.cancelled() ? RequestStatus::kCancelled
                            : RequestStatus::kTimedOut;
}

}  // namespace

SamplingServer::SamplingServer(SamplingServerOptions options)
    : registry_(std::move(options.registry)) {}

ServerSampleResponse SamplingServer::sample(const Cnf& cnf, std::size_t count,
                                            const Budget& budget) {
  ServerSampleResponse out;
  // Observability only: one span — and one trace — per server call; the
  // session's pool.request (and a cold call's prepare) nest under it.
  obs::Span span("server.request");
  span.set_value(count);
  const AcquireResult acquired = registry_.acquire(cnf, budget);
  out.warm = acquired.warm;
  out.key = acquired.key;
  if (!acquired.ok()) {
    out.status = failed_prepare_call_status(budget);
    out.samples.resize(count);
    for (auto& slot : out.samples) slot.status = failed_prepare_status(budget);
    return out;
  }
  SampleManyResult r = acquired.session->pool().sample_many_within(count,
                                                                   budget);
  out.status = r.status;
  out.samples = std::move(r.samples);
  return out;
}

ServerSampleResponse SamplingServer::sample(const Cnf& cnf,
                                            std::size_t count) {
  return sample(cnf, count, registry_.options().pool.unigen.budget);
}

ServerBatchResponse SamplingServer::sample_batches(const Cnf& cnf,
                                                   std::size_t requests,
                                                   std::size_t max_batch,
                                                   const Budget& budget) {
  ServerBatchResponse out;
  obs::Span span("server.request");
  span.set_value(requests);
  const AcquireResult acquired = registry_.acquire(cnf, budget);
  out.warm = acquired.warm;
  out.key = acquired.key;
  if (!acquired.ok()) {
    out.status = failed_prepare_call_status(budget);
    out.batches.resize(requests);
    for (auto& slot : out.batches) slot.status = failed_prepare_status(budget);
    return out;
  }
  SampleBatchesResult r = acquired.session->pool().sample_batches_within(
      requests, max_batch, budget);
  out.status = r.status;
  out.batches = std::move(r.batches);
  return out;
}

ServerBatchResponse SamplingServer::sample_batches(const Cnf& cnf,
                                                   std::size_t requests,
                                                   std::size_t max_batch) {
  return sample_batches(cnf, requests, max_batch,
                        registry_.options().pool.unigen.budget);
}

ServerCountResponse SamplingServer::count(const Cnf& cnf,
                                          const Budget& budget) {
  ServerCountResponse out;
  obs::Span span("server.request");
  const AcquireResult acquired = registry_.acquire(cnf, budget);
  out.warm = acquired.warm;
  out.key = acquired.key;
  if (!acquired.ok()) {
    out.status = failed_prepare_call_status(budget);
    return out;
  }
  const SamplerPool& pool = acquired.session->pool();
  const UniGenPrepared& prep = pool.prepared();
  out.status = RequestStatus::kComplete;
  switch (prep.mode) {
    case UniGenPrepared::Mode::kUnsat:
      out.unsat = true;
      break;
    case UniGenPrepared::Mode::kTrivial:
      out.exact = true;
      out.approx_log2_count =
          std::log2(static_cast<double>(prep.trivial_models.size()));
      break;
    default:
      out.approx_log2_count = prep.approx_log2_count;
      break;
  }
  return out;
}

ServerCountResponse SamplingServer::count(const Cnf& cnf) {
  return count(cnf, registry_.options().pool.unigen.budget);
}

std::string SamplingServer::trace_jsonl() const { return obs::trace_jsonl(); }

bool SamplingServer::write_trace_jsonl(const std::string& path) const {
  return obs::write_trace_jsonl(path);
}

std::string SamplingServer::metrics_json() const {
  return obs::metrics_json();
}

bool SamplingServer::write_metrics_json(const std::string& path) const {
  return obs::write_metrics_json(path);
}

}  // namespace unigen
