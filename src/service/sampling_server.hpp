#pragma once
// SamplingServer — the multi-formula serving front end.
//
// One object a deployment talks to: hand it any CNF plus a request
// (witnesses, batches, or the prepared count) and it routes through the
// SessionRegistry — warm formulas are served by their live session at pure
// lines-12–22 cost, cold formulas pay simplify + prepare exactly once and
// then stay warm until evicted.  Responses say which happened (`warm`) and
// under which session key, so callers and the bench harness can meter the
// cache.
//
// The server inherits every contract of the layers below it:
//   * determinism — for a fixed registry template and request sequence the
//     response bytes are identical at every thread count, and a session's
//     k-th request draws stream k whether or not evictions happened in
//     between (streams advance with the session, so "evict + re-register"
//     restarts the stream — which is why the fuzz harness resets its
//     reference pool when a response reports warm == false);
//   * honest statuses — budget cuts and cancellations land in the
//     response's per-slot statuses and call-level RequestStatus, never in
//     default-constructed lies; a failed cold prepare reports every slot
//     kTimeout/kCancelled and leaves the registry retryable.
//
// Threading: one dispatcher thread, like the registry; the parallelism is
// each session's worker fan-out.

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/cnf.hpp"
#include "service/budget.hpp"
#include "service/sampler_pool.hpp"
#include "service/session_registry.hpp"

namespace unigen {

struct SamplingServerOptions {
  SessionRegistryOptions registry;
};

/// One witness-request response.  `samples` always has `count` slots in
/// request order (the SampleManyResult contract).
struct ServerSampleResponse {
  RequestStatus status = RequestStatus::kTimedOut;
  bool warm = false;  ///< served by an already-live session
  SessionKey key;
  std::vector<SampleResult> samples;
};

struct ServerBatchResponse {
  RequestStatus status = RequestStatus::kTimedOut;
  bool warm = false;
  SessionKey key;
  std::vector<BatchResult> batches;
};

/// The prepared model-count view of a formula (the ApproxMC estimate the
/// session's one-time phase already paid for; exact in the easy case).
struct ServerCountResponse {
  RequestStatus status = RequestStatus::kTimedOut;
  bool warm = false;
  SessionKey key;
  bool unsat = false;
  bool exact = false;             ///< easy case: enumeration, not estimate
  double approx_log2_count = 0.0; ///< log2 |R_S(F)| (0 when unsat)
};

class SamplingServer {
 public:
  explicit SamplingServer(SamplingServerOptions options = {});

  /// Draws `count` witnesses of `cnf` (session-resolved, then
  /// SamplerPool::sample_many_within).  `budget` covers the whole request:
  /// a cold call's prepare and its sampling share the deadline/token.
  ServerSampleResponse sample(const Cnf& cnf, std::size_t count,
                              const Budget& budget);
  ServerSampleResponse sample(const Cnf& cnf, std::size_t count);

  /// UniGen2-style batches: `requests` cells, up to `max_batch` distinct
  /// witnesses each.
  ServerBatchResponse sample_batches(const Cnf& cnf, std::size_t requests,
                                     std::size_t max_batch,
                                     const Budget& budget);
  ServerBatchResponse sample_batches(const Cnf& cnf, std::size_t requests,
                                     std::size_t max_batch);

  /// The session's count of |R_S(F)| — free on a warm session, one full
  /// prepare on a cold one.
  ServerCountResponse count(const Cnf& cnf, const Budget& budget);
  ServerCountResponse count(const Cnf& cnf);

  SessionRegistry& registry() { return registry_; }
  const SessionRegistry& registry() const { return registry_; }
  SessionRegistryStats stats() const { return registry_.stats(); }

  /// Observability export surfaces (src/obs/): the recorded spans as JSONL
  /// ({"schema":"unigen.trace.v1"} header + one line per span) and the
  /// metric registry as JSON ({"schema_version":1,...}).  Empty-ish when
  /// tracing was never enabled (obs::set_enabled).  Forwarders, so
  /// embedders drive exports through the object they already hold.
  std::string trace_jsonl() const;
  bool write_trace_jsonl(const std::string& path) const;
  std::string metrics_json() const;
  bool write_metrics_json(const std::string& path) const;

 private:
  SessionRegistry registry_;
};

}  // namespace unigen
