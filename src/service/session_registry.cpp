#include "service/session_registry.hpp"

#include <iterator>
#include <utility>

#include "obs/metrics.hpp"

namespace unigen {

namespace {

/// Deterministic formula footprint (payload vectors, not allocator
/// truth): the caps must evict the same sessions on every machine, so the
/// meter is a function of the formula, never of heap behavior.
std::size_t cnf_bytes(const Cnf& cnf) {
  std::size_t bytes = sizeof(Cnf);
  for (const auto& clause : cnf.clauses())
    bytes += sizeof(std::vector<Lit>) + clause.size() * sizeof(Lit);
  for (const auto& x : cnf.xors())
    bytes += sizeof(XorConstraint) + x.vars.size() * sizeof(Var);
  return bytes;
}

/// Coarse per-session estimate: both formula copies, the trivial witness
/// list, and — hashed mode — the worker engines (watch lists and clause
/// copies scale with the solved formula; the constant covers fixed solver
/// state).
std::size_t estimate_resident_bytes(const Cnf& cnf,
                                    const SamplingSession& session) {
  const SamplerPool& pool = session.pool();
  const UniGenPrepared& prep = pool.prepared();
  const Cnf& solved = prep.formula(cnf);
  std::size_t bytes = cnf_bytes(cnf);
  if (prep.simplifier) bytes += cnf_bytes(prep.simplifier->result());
  bytes += prep.trivial_models.size() *
           (static_cast<std::size_t>(cnf.num_vars()) / 8 + 32);
  if (prep.mode == UniGenPrepared::Mode::kHashed)
    bytes += pool.num_threads() * (2 * cnf_bytes(solved) + 16384);
  return bytes;
}

}  // namespace

Fingerprint fingerprint_session_options(const SamplerPoolOptions& options) {
  FingerprintBuilder fb;
  fb.add_scalar(0x5E5510ull);  // domain tag: session options
  fb.add_scalar(options.seed);
  const UniGenOptions& u = options.unigen;
  fb.add_double(u.epsilon);
  fb.add_double(u.counter_epsilon);
  fb.add_double(u.counter_confidence);
  const SimplifyOptions& s = u.simplify;
  fb.add_scalar(s.enabled ? 1 : 0);
  fb.add_scalar(static_cast<std::uint64_t>(s.max_rounds));
  fb.add_scalar(s.pure_literals ? 1 : 0);
  fb.add_scalar(s.subsumption ? 1 : 0);
  fb.add_scalar(s.bounded_variable_elimination ? 1 : 0);
  fb.add_scalar(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(s.bve_growth)));
  fb.add_scalar(s.bve_max_occurrences);
  return fb.digest();
}

KeyedFormula make_session_key(const Cnf& cnf,
                              const SamplerPoolOptions& options) {
  KeyedFormula out;
  out.key.options = fingerprint_session_options(options);
  FingerprintBuilder fb;
  if (options.unigen.simplify.enabled) {
    // Same construction unigen_prepare would run (frozen set defaults to
    // the sampling set) — which is what lets the registry hand this very
    // Simplifier to the session via UniGenOptions::presimplified.
    auto simplifier =
        std::make_shared<const Simplifier>(cnf, options.unigen.simplify);
    fold_cnf(fb, simplifier->result());
    simplifier->fold_reconstruction(fb);
    out.simplifier = std::move(simplifier);
  } else {
    fold_cnf(fb, cnf);
    fb.add_scalar(0);  // empty reconstruction stack, same frame shape
  }
  out.key.formula = fb.digest();
  return out;
}

SessionRegistry::SessionRegistry(SessionRegistryOptions options)
    : options_(std::move(options)) {}

AcquireResult SessionRegistry::acquire(const Cnf& cnf) {
  return acquire(cnf, options_.pool.unigen.budget);
}

AcquireResult SessionRegistry::acquire(const Cnf& cnf, const Budget& budget) {
  ++stats_.requests;
  AcquireResult out;
  const Fingerprint raw = fingerprint_cnf(cnf);
  std::shared_ptr<const Simplifier> presimplified;
  const auto alias = aliases_.find(raw);
  if (alias != aliases_.end()) {
    out.key = alias->second;
  } else {
    KeyedFormula keyed = make_session_key(cnf, options_.pool);
    out.key = keyed.key;
    presimplified = std::move(keyed.simplifier);
    aliases_.emplace(raw, out.key);
  }
  const auto hit = by_key_.find(out.key);
  if (hit != by_key_.end()) {
    ++stats_.hits;
    obs::metrics().counter("session.hits").add();
    // Splice to front: iterators (and the by_key_ mapping) stay valid.
    lru_.splice(lru_.begin(), lru_, hit->second);
    SamplingSession& session = lru_.front();
    ++session.acquisitions_;
    out.session = &session;
    out.warm = true;
    return out;
  }
  ++stats_.misses;
  obs::metrics().counter("session.misses").add();
  if (presimplified == nullptr && options_.pool.unigen.simplify.enabled) {
    // Alias hit on a key whose session is gone (defensive: aliases are
    // purged with their session, but a stale map must not skip the
    // presimplified wiring) — canonicalize again.
    presimplified = make_session_key(cnf, options_.pool).simplifier;
  }
  SamplerPoolOptions pool_options = options_.pool;
  pool_options.unigen.presimplified = presimplified;
  lru_.emplace_front(out.key, cnf, std::move(pool_options));
  SamplingSession& session = lru_.front();
  if (!session.pool().prepare(budget)) {
    // prepare() latches its verdict, so a session that timed out cold
    // would answer kTimeout forever — drop it and let a later acquire
    // retry under that call's (possibly larger) budget.
    ++stats_.prepare_failures;
    lru_.pop_front();
    purge_aliases(out.key);
    return out;
  }
  session.acquisitions_ = 1;
  session.resident_bytes_ = estimate_resident_bytes(cnf, session);
  stats_.resident_bytes += session.resident_bytes_;
  by_key_.emplace(out.key, lru_.begin());
  enforce_caps();
  out.session = &lru_.front();
  out.warm = false;
  return out;
}

bool SessionRegistry::evict(const SessionKey& key) {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return false;
  drop(it->second);
  return true;
}

void SessionRegistry::clear() {
  while (!lru_.empty()) drop(lru_.begin());
}

void SessionRegistry::enforce_caps() {
  const auto over = [this] {
    if (lru_.size() <= 1) return false;  // spare the session just acquired
    if (options_.max_sessions > 0 && lru_.size() > options_.max_sessions)
      return true;
    return options_.max_resident_bytes > 0 &&
           stats_.resident_bytes > options_.max_resident_bytes;
  };
  while (over()) drop(std::prev(lru_.end()));
}

void SessionRegistry::drop(SessionList::iterator it) {
  ++stats_.evictions;
  obs::metrics().counter("session.evictions").add();
  stats_.resident_bytes -= it->resident_bytes_;
  by_key_.erase(it->key_);
  purge_aliases(it->key_);
  lru_.erase(it);
}

void SessionRegistry::purge_aliases(const SessionKey& key) {
  for (auto it = aliases_.begin(); it != aliases_.end();) {
    if (it->second == key)
      it = aliases_.erase(it);
    else
      ++it;
  }
}

SessionRegistryStats SessionRegistry::stats() const {
  SessionRegistryStats out = stats_;
  out.sessions = lru_.size();
  return out;
}

}  // namespace unigen
