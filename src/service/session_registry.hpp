#pragma once
// SessionRegistry — keyed cache of live sampling sessions.
//
// A serving deployment sees the same formulas again and again (testbench
// re-runs, constrained-random regression suites re-sampling one design's
// constraint set per seed sweep).  Algorithm 1's expensive part is lines
// 1–11 — simplification, the easy-case check, one full ApproxMC call — and
// all of it is per-formula, not per-request.  The registry keeps that
// investment alive: each distinct formula maps to one SamplingSession
// holding the simplified Cnf, the immutable UniGenPrepared, and a started
// SamplerPool whose warmed engines serve every later request at lines
// 12–22 cost only.
//
// Keying (two levels, both deterministic):
//   1. The *raw* fingerprint — fingerprint_cnf over the input as presented
//      (already order-independent across clause/literal permutations) —
//      indexes an alias map to the canonical key, so a warm request never
//      re-runs the simplifier just to find its session.
//   2. The *canonical* SessionKey: a fingerprint of what the session
//      actually serves — the simplified clauses, the sampling set, the
//      simplifier's BVE reconstruction stack (two inputs can share a
//      simplified core yet reconstruct witnesses differently; serving one's
//      witnesses for the other would emit non-models, so reconstruction is
//      part of identity) — paired with a fingerprint of the
//      outcome-relevant options.  Thread count and the wall-clock budget
//      knobs are deliberately excluded: the service output is byte-identical
//      across thread counts, so they are deployment shape, not meaning.
//
// Eviction is LRU over acquire order with two caps (session count and
// estimated resident bytes), never evicting the session being returned.
// Everything — keys, hit/miss pattern, eviction order — is a deterministic
// function of the request sequence, which is what lets the fuzz harness
// replay a seeded register/sample/evict script against fresh reference
// pools and demand byte-identical witnesses (fuzz_cnf leg 7).
//
// Threading contract: one dispatcher thread, same as SamplerPool — the
// registry serializes session *lookup*; each session's own fan-out
// parallelism is inside SamplerPool.

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "cnf/cnf.hpp"
#include "cnf/fingerprint.hpp"
#include "service/budget.hpp"
#include "service/sampler_pool.hpp"

namespace unigen {

/// Canonical identity of a session: what is solved (simplified formula +
/// sampling set + reconstruction) and under which outcome-relevant options.
struct SessionKey {
  Fingerprint formula;
  Fingerprint options;

  bool operator==(const SessionKey&) const = default;

  /// "formula-options", 65 hex chars — the stable spelling for logs.
  std::string hex() const { return formula.hex() + "-" + options.hex(); }

  struct Hash {
    std::size_t operator()(const SessionKey& k) const noexcept {
      return Fingerprint::Hash{}(k.formula) ^
             (Fingerprint::Hash{}(k.options) * 0x9E3779B97F4A7C15ull);
    }
  };
};

/// The options that change what a session *returns* (and therefore must
/// split sessions): ε, the nested counter's (ε, δ), the master seed, and
/// every simplify switch (they change the canonical formula and the
/// reconstruction).  Wall-clock budgets and thread counts are excluded —
/// see the header comment.
Fingerprint fingerprint_session_options(const SamplerPoolOptions& options);

/// Canonicalization result: the key plus (when simplification is on) the
/// Simplifier the key computation had to run anyway — handed to the new
/// session via UniGenOptions::presimplified so a cold request pays the
/// pipeline exactly once.
struct KeyedFormula {
  SessionKey key;
  std::shared_ptr<const Simplifier> simplifier;  ///< null when simplify off
};

KeyedFormula make_session_key(const Cnf& cnf,
                              const SamplerPoolOptions& options);

/// One live session: identity, the prepared pool, and accounting.
class SamplingSession {
 public:
  SamplingSession(const SessionKey& key, const Cnf& cnf,
                  SamplerPoolOptions options)
      : key_(key), pool_(cnf, std::move(options)) {}

  const SessionKey& key() const { return key_; }
  SamplerPool& pool() { return pool_; }
  const SamplerPool& pool() const { return pool_; }

  /// Times this session was returned by acquire() (1 = cold miss only).
  std::uint64_t acquisitions() const { return acquisitions_; }
  /// Coarse memory estimate (formula + per-worker engines + witness list),
  /// computed once after prepare; what the byte cap meters.
  std::size_t resident_bytes() const { return resident_bytes_; }

 private:
  friend class SessionRegistry;

  SessionKey key_;
  SamplerPool pool_;
  std::uint64_t acquisitions_ = 0;
  std::size_t resident_bytes_ = 0;
};

struct SessionRegistryOptions {
  /// Per-session template: seed, thread count, ε/budgets.  Each session
  /// gets a copy (with presimplified wired in by the registry).
  SamplerPoolOptions pool;
  /// LRU cap on live sessions; 0 = unlimited.
  std::size_t max_sessions = 8;
  /// LRU cap on summed resident_bytes estimates; 0 = uncapped.  The session
  /// just acquired is never evicted, so one oversized formula still serves.
  std::size_t max_resident_bytes = 0;
};

struct SessionRegistryStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;     ///< served by a live session
  std::uint64_t misses = 0;   ///< cold: simplify + prepare paid
  std::uint64_t evictions = 0;
  std::uint64_t prepare_failures = 0;  ///< cold sessions whose prepare()
                                       ///< blew its budget (dropped, not
                                       ///< cached — prepare latches)
  std::size_t sessions = 0;        ///< currently live
  std::size_t resident_bytes = 0;  ///< summed estimates over live sessions

  double hit_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

/// What acquire() hands back: the session (null only when a cold prepare
/// failed under its budget), whether it was already warm, and its key.
struct AcquireResult {
  SamplingSession* session = nullptr;
  bool warm = false;
  SessionKey key;

  bool ok() const { return session != nullptr; }
};

class SessionRegistry {
 public:
  explicit SessionRegistry(SessionRegistryOptions options = {});
  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Looks the formula up (raw fingerprint → alias → canonical key); on a
  /// miss, canonicalizes, builds a session and runs prepare() under
  /// `budget` (the per-session Budget threading: deadline / cancellation /
  /// unit caps reach the easy-case check and the nested count).  The
  /// returned pointer stays valid until the session is evicted — use it
  /// before the next acquire() or hold the key to re-acquire.  A cold
  /// prepare failure is counted, the session dropped (a later acquire
  /// retries under that call's budget), and .session is null.
  AcquireResult acquire(const Cnf& cnf, const Budget& budget);
  AcquireResult acquire(const Cnf& cnf);  ///< under the template's budget

  /// Drops one session by key (test/fuzz seam for forced-eviction
  /// scenarios).  Returns false when no such session is live.
  bool evict(const SessionKey& key);
  /// Drops every session (counted as evictions).
  void clear();

  SessionRegistryStats stats() const;
  const SessionRegistryOptions& options() const { return options_; }

 private:
  using SessionList = std::list<SamplingSession>;

  /// Applies the caps to the LRU tail, sparing the front (the session just
  /// returned).
  void enforce_caps();
  void drop(SessionList::iterator it);
  /// Removes every raw-fingerprint alias resolving to `key` (linear in the
  /// alias map — fine at cache sizes).
  void purge_aliases(const SessionKey& key);

  SessionRegistryOptions options_;
  /// Front = most recently acquired.  std::list because SamplingSession is
  /// immovable (SamplerPool owns threads) and splice keeps iterators valid.
  SessionList lru_;
  std::unordered_map<SessionKey, SessionList::iterator, SessionKey::Hash>
      by_key_;
  /// Raw input fingerprint → canonical key.  Entries whose session was
  /// evicted are purged with it (the canonicalization would have to re-run
  /// anyway to rebuild the session's presimplified state).
  std::unordered_map<Fingerprint, SessionKey, Fingerprint::Hash> aliases_;
  SessionRegistryStats stats_;
};

}  // namespace unigen
