#include "service/worker_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace unigen {

// One fan-out: `count` tasks pulled from an atomic cursor.  Lives on the
// dispatcher's stack for the duration of run(); `active` (mutex-guarded)
// counts workers still attached, so run() never returns — and the Job never
// dies — while a worker could still touch it.
struct WorkerPool::Job {
  std::size_t count = 0;
  std::uint64_t first_stream = 0;  ///< rng stream of task 0
  const TaskFn* fn = nullptr;
  const std::atomic<bool>* cancel = nullptr;  ///< skip fn once tripped
  const Rng* stream_base = nullptr;  ///< task streams fork from this
  /// Dispatcher's trace context at submission, re-installed around every
  /// task's fn so worker-thread spans parent to the dispatcher's span.
  /// Observability only (invalid when tracing is off).
  obs::TraceContext trace_ctx;
  std::uint64_t submit_ns = 0;  ///< queue-wait metric baseline; 0 = off
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> executed{0};  ///< tasks whose fn actually ran
  std::size_t active = 0;  // guarded by WorkerPool::mu_
};

WorkerPool::WorkerPool(std::size_t num_threads, Rng base_rng)
    : base_rng_(base_rng) {
  if (num_threads == 0)
    num_threads =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.resize(num_threads);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::start(const Cnf& formula, std::vector<Var> projection,
                       std::unique_ptr<IncrementalBsat> adopt) {
  if (started()) return;
  formula_ = &formula;
  projection_ = std::move(projection);
  workers_[0].engine = std::move(adopt);
  threads_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

void WorkerPool::worker_main(std::size_t worker_index) {
  Worker& worker = workers_[worker_index];
  std::uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || job_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = job_seq_;
      job = job_;  // null when the job already finished without us
      if (job != nullptr) ++job->active;
    }
    if (job == nullptr) continue;
    for (;;) {
      const std::size_t k = job->next.fetch_add(1, std::memory_order_relaxed);
      if (k >= job->count) break;
      // Cooperative cancellation: a tripped token turns the remaining
      // tasks into no-ops, but they are still pulled and counted done —
      // run() keeps its "every task accounted for" exit condition and the
      // job drains fast instead of wedging.
      const bool skip = job->cancel != nullptr &&
                        job->cancel->load(std::memory_order_acquire);
      if (!skip) {
        if (!worker.engine)
          worker.engine =
              std::make_unique<IncrementalBsat>(*formula_, projection_);
        // Observability only: first pull of a task after submission is the
        // queue wait; the dispatcher's context makes this thread's spans
        // children of the submitting span.
        if (job->submit_ns != 0 && obs::enabled()) {
          static obs::Counter& tasks = obs::metrics().counter("pool.tasks");
          static obs::Histogram& queue_wait =
              obs::metrics().histogram("pool.queue_wait_seconds");
          tasks.add();
          queue_wait.record_ns(obs::now_ns() - job->submit_ns);
        }
        obs::ContextScope trace_scope(job->trace_ctx);
        // All randomness of task k comes from its keyed stream — identical
        // no matter which worker runs this.
        Rng rng = job->stream_base->fork_stream(job->first_stream + k);
        (*job->fn)(*worker.engine, worker_index, k, rng);
        ++worker.served;
        job->executed.fetch_add(1, std::memory_order_relaxed);
      }
      job->done.fetch_add(1, std::memory_order_acq_rel);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --job->active;
    }
    done_cv_.notify_all();
  }
}

std::size_t WorkerPool::run(std::size_t count, std::uint64_t first_stream,
                            const TaskFn& fn,
                            const std::atomic<bool>* cancel,
                            const Rng* stream_base) {
  if (count == 0) return 0;
  Job job;
  job.count = count;
  job.first_stream = first_stream;
  job.fn = &fn;
  job.cancel = cancel;
  job.stream_base = stream_base != nullptr ? stream_base : &base_rng_;
  if (obs::enabled()) {
    job.trace_ctx = obs::current_context();
    job.submit_ns = obs::now_ns();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return job.done.load(std::memory_order_acquire) == job.count &&
           job.active == 0;
  });
  // Cleared under the lock: a worker waking late sees job_ == nullptr and
  // goes back to sleep instead of touching the dead job.
  job_ = nullptr;
  return job.executed.load(std::memory_order_relaxed);
}

SolverStats WorkerPool::engine_stats(std::size_t w) const {
  return workers_[w].engine ? workers_[w].engine->stats() : SolverStats{};
}

IncrementalBsat& WorkerPool::dispatcher_engine(std::size_t w) {
  // Dispatcher-only between runs (header contract): no worker thread can be
  // touching engines here, so the lazy build races with nothing.
  Worker& worker = workers_[w];
  if (!worker.engine)
    worker.engine = std::make_unique<IncrementalBsat>(*formula_, projection_);
  return *worker.engine;
}

}  // namespace unigen
