#pragma once
// WorkerPool — the reusable fan-out substrate of the parallel services.
//
// Both parallel layers of this repository have the same shape: a one-time
// phase fixes shared immutable state, then t independent work items (UniGen
// samples, ApproxMC median iterations) run against one formula, and each
// item's randomness must not depend on which thread serves it.  This class
// is that shape, extracted from SamplerPool so the counting service
// (counting/parallel_approxmc.cpp) does not re-implement it:
//
//   * N persistent worker threads, started once via start() and joined in
//     the destructor.
//   * One lazily-built IncrementalBsat per worker over a single shared
//     immutable Cnf (the engine keeps a reference — no formula copies);
//     a worker builds its engine on its first task and reuses it for the
//     pool lifetime, so engine_stats(w).solver_rebuilds stays at 1 for
//     every worker that ever served.  start() can hand worker 0 an engine
//     the one-time phase already warmed up.
//   * Work items are pulled from an atomic cursor, so load balances
//     itself; run() is synchronous and returns only when every item is
//     done and every worker has detached from the job, which is what makes
//     the per-worker accessors race-free between calls.
//   * Per-task keyed RNG: task k of a run with first_stream f draws all of
//     its randomness from base_rng.fork_stream(f + k) — a pure function of
//     (seed, f, k), independent of thread count and scheduling.  This is
//     the pool half of the services' byte-identical-across-threads
//     contract; the other half (canonical result ordering) is the
//     callback's job.
//
// Threading contract: one dispatcher thread drives the pool (start / run /
// the accessors are not reentrant); the fan-out inside run() is the pool's
// own.  The callback runs concurrently on distinct tasks and must only
// touch its own task's slot plus per-worker state indexed by the worker id
// it is given.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cnf/cnf.hpp"
#include "sat/incremental_bsat.hpp"
#include "util/rng.hpp"

namespace unigen {

class WorkerPool {
 public:
  /// One work item: `engine` is the serving worker's private persistent
  /// solver, `worker` its index (for per-worker aggregation on the caller's
  /// side), `task` the item index within the run, and `rng` the task's
  /// keyed stream.
  using TaskFn = std::function<void(IncrementalBsat& engine,
                                    std::size_t worker, std::size_t task,
                                    Rng& rng)>;

  /// `num_threads` 0 = std::thread::hardware_concurrency() (min 1).  All
  /// task streams fork from `base_rng`, which is never advanced.
  WorkerPool(std::size_t num_threads, Rng base_rng);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Starts the worker threads over `formula` (which must outlive the
  /// pool; engines reference it, they do not copy it).  `projection` is
  /// the set cells are counted/blocked over.  Worker 0 adopts `adopt` when
  /// given instead of building its own engine.  Idempotent: only the first
  /// call starts anything.
  void start(const Cnf& formula, std::vector<Var> projection,
             std::unique_ptr<IncrementalBsat> adopt = nullptr);
  bool started() const { return !threads_.empty(); }

  /// Fans `count` tasks across the workers; task k runs
  /// fn(engine, worker, k, base_rng.fork_stream(first_stream + k)).
  /// Synchronous: on return every task is accounted for and every worker
  /// has quiesced.  Requires start().
  ///
  /// `cancel` (a CancelToken's raw atomic; null = not cancellable) is the
  /// pool-level cancellation seam: once it trips, workers keep pulling
  /// the remaining tasks but skip `fn` and mark them done — the job drains
  /// at memory speed, run() still returns normally, and the pool is
  /// immediately reusable for the next run (nothing about a job outlives
  /// it; task streams are keyed per-run, so a cancelled run pollutes no
  /// later one).  The task *currently inside* fn is interrupted at the
  /// solver's periodic conflict check only if fn threads the same flag
  /// into its solver calls (the Budget plumbing does).  Returns the number
  /// of tasks whose fn actually ran — == count iff no cancellation fired.
  ///
  /// `stream_base` overrides the generator task streams fork from for this
  /// one run (default: the pool's own base_rng_).  This is what lets one
  /// pool serve fan-outs from different stream spaces — the counting phase
  /// forks its iterations from prepare's stream-0 rng while the sampling
  /// phase forks requests from the pool seed — without renumbering either:
  /// each caller keeps drawing the exact streams it would on a private
  /// pool, which is the byte-identity contract of the warm handoff.  The
  /// pointee is only read (fork_stream is const) and must stay alive until
  /// run() returns.
  std::size_t run(std::size_t count, std::uint64_t first_stream,
                  const TaskFn& fn,
                  const std::atomic<bool>* cancel = nullptr,
                  const Rng* stream_base = nullptr);

  /// The keyed-stream primitive, exposed so the owning service can serve
  /// inline fast paths (trivial mode) from the same stream space.
  Rng fork_stream(std::uint64_t stream) const {
    return base_rng_.fork_stream(stream);
  }

  std::size_t num_threads() const { return workers_.size(); }
  /// Tasks served by worker `w` across all runs.
  std::uint64_t tasks_served(std::size_t w) const {
    return workers_[w].served;
  }
  bool engine_built(std::size_t w) const {
    return workers_[w].engine != nullptr;
  }
  /// Engine counters of worker `w` (zero-valued when it never built one).
  SolverStats engine_stats(std::size_t w) const;

  /// Worker `w`'s persistent engine, built now if it does not exist yet —
  /// the seam that lets a one-time phase (ApproxMC's unhashed prologue)
  /// run its probes on the same engine worker `w` will keep for the pool
  /// lifetime instead of warming a solver that is then thrown away.
  /// Dispatcher-only, and only between runs (the threading contract above):
  /// while a run is in flight the engine belongs to its worker thread.
  /// Requires start().
  IncrementalBsat& dispatcher_engine(std::size_t w);

 private:
  struct Job;
  struct Worker {
    /// Built lazily on the worker's first task (worker 0 may adopt the
    /// engine the one-time phase warmed), then reused for the pool
    /// lifetime.
    std::unique_ptr<IncrementalBsat> engine;
    std::uint64_t served = 0;
  };

  void worker_main(std::size_t worker_index);

  /// Only fork_stream() (const) is ever used — the pool never advances it.
  Rng base_rng_;
  const Cnf* formula_ = nullptr;  // set by start(); caller guarantees lifetime
  std::vector<Var> projection_;

  std::vector<Worker> workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;         // guarded by mu_
  std::uint64_t job_seq_ = 0;  // guarded by mu_; bumped per submission
  bool stop_ = false;          // guarded by mu_
};

}  // namespace unigen
