// unigen_workerd — the crash-isolated worker process behind ProcessFleet.
//
// Protocol (service/ipc.hpp): the supervisor hands this process one end of
// a socketpair as fd 3 (`--fd 3`), sends one Setup frame, then Task frames
// one at a time; the worker answers each with a Result (or a structured
// Error) and emits unsolicited Heartbeat frames from a dedicated thread so
// the supervisor can tell a long solve from a hung process.
//
// Determinism: a task is a pure function of its frame — the formula came
// in canonical DIMACS, the task's rng as raw state, and the post-
// processing (pick/shuffle) is the exact helper the in-process pool uses —
// so the supervisor may re-dispatch a task to any worker, any number of
// times, and fold byte-identical results.
//
// Fault injection (tests only): UNIGEN_WORKERD_FAULTS holds a
// ;-separated plan of `kill@task:attempt` / `sleep@task:attempt`
// directives (ProcessFaultPlan).  `kill` raises SIGKILL on receipt of the
// matching task — the crash-mid-task case; `sleep` grabs the heartbeat
// mutex and sleeps forever — the hang case, detectable only through
// heartbeat silence.  Keyed on (task, attempt) so a retry runs clean.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <unistd.h>

#include "cnf/dimacs.hpp"
#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "counting/approxmc_core.hpp"
#include "obs/trace.hpp"
#include "sat/incremental_bsat.hpp"
#include "service/ipc.hpp"
#include "service/sampler_pool.hpp"
#include "simplify/simplify.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace unigen {
namespace {

struct FaultDirective {
  bool kill = false;  // else sleep
  std::uint64_t task = 0;
  std::uint32_t attempt = 0;
};

std::vector<FaultDirective> parse_fault_plan(const char* env) {
  std::vector<FaultDirective> plan;
  if (env == nullptr) return plan;
  const std::string s(env);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(';', pos);
    if (end == std::string::npos) end = s.size();
    const std::string item = s.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t at = item.find('@');
    const std::size_t colon = item.find(':', at);
    if (at == std::string::npos || colon == std::string::npos) continue;
    FaultDirective d;
    const std::string what = item.substr(0, at);
    if (what == "kill")
      d.kill = true;
    else if (what == "sleep")
      d.kill = false;
    else
      continue;
    d.task = std::strtoull(item.c_str() + at + 1, nullptr, 10);
    d.attempt = static_cast<std::uint32_t>(
        std::strtoul(item.c_str() + colon + 1, nullptr, 10));
    plan.push_back(d);
  }
  return plan;
}

/// Worker state shared with the heartbeat thread: the write mutex orders
/// Result and Heartbeat frames on the one socket, and doubles as the hang
/// lever — the sleep fault holds it forever, so heartbeats stop.
struct Writer {
  int fd = -1;
  std::mutex mu;

  bool send(ipc::FrameType type, const std::string& body) {
    std::lock_guard<std::mutex> lock(mu);
    return ipc::write_frame(fd, type, body);
  }
};

void heartbeat_main(Writer* writer, double interval_s) {
  const auto period = std::chrono::duration<double>(interval_s);
  for (;;) {
    std::this_thread::sleep_for(period);
    if (!writer->send(ipc::FrameType::kHeartbeat, std::string()))
      return;  // parent gone
  }
}

[[noreturn]] void apply_fault(const FaultDirective& d, Writer& writer) {
  if (d.kill) {
    ::raise(SIGKILL);
  }
  // Hang: hold the write mutex so the heartbeat thread starves too, then
  // sleep forever.  The supervisor's heartbeat timeout is the only thing
  // that can end this process.
  writer.mu.lock();
  for (;;) std::this_thread::sleep_for(std::chrono::hours(24));
  // unreachable
  std::abort();
}

int worker_main(int fd) {
  ::signal(SIGPIPE, SIG_IGN);  // dead parent → failed write, not death
  const std::vector<FaultDirective> faults =
      parse_fault_plan(std::getenv("UNIGEN_WORKERD_FAULTS"));

  Writer writer;
  writer.fd = fd;

  ipc::FrameType type;
  std::string body;
  if (!ipc::read_frame(fd, type, body) || type != ipc::FrameType::kSetup)
    return 2;
  ipc::SetupMsg setup;
  try {
    setup = ipc::decode_setup(body);
  } catch (const std::exception& e) {
    writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
    return 2;
  }

  // Rebuild the task context.  kSample re-runs the deterministic simplify
  // pipeline on the shipped original formula, reproducing the parent's
  // shrunk formula AND the reconstruction stack — the part of
  // UniGenPrepared that cannot cheaply cross a process boundary.
  Cnf original;
  UniGenPrepared prep;
  UniGenOptions ug_options;
  ApproxMcOptions count_options;
  std::unique_ptr<IncrementalBsat> engine;
  try {
    original = parse_dimacs_string(setup.formula_dimacs);
    original.ensure_vars(setup.formula_vars);
    if (setup.kind == ipc::TaskKind::kCount) {
      engine = std::make_unique<IncrementalBsat>(original, setup.sampling_set);
    } else {
      prep.mode = static_cast<UniGenPrepared::Mode>(setup.prep_mode);
      prep.kp.kappa = setup.kappa;
      prep.kp.pivot = setup.kp_pivot;
      prep.kp.lo_thresh = setup.lo_thresh;
      prep.kp.hi_thresh = setup.hi_thresh;
      prep.q = setup.q;
      prep.approx_log2_count = setup.approx_log2_count;
      if (setup.simplify.enabled)
        prep.simplifier = std::make_shared<const Simplifier>(
            original, setup.simplify, setup.sampling_set);
      ug_options.epsilon = setup.epsilon;
      ug_options.simplify = setup.simplify;
      ug_options.bsat_timeout_s = setup.bsat_timeout_s;
      ug_options.sample_timeout_s = setup.sample_timeout_s;
      engine = std::make_unique<IncrementalBsat>(prep.formula(original),
                                                 setup.sampling_set);
    }
  } catch (const std::exception& e) {
    writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
    return 2;
  }

  if (!writer.send(ipc::FrameType::kReady, std::string())) return 0;
  const char* hb_env = std::getenv("UNIGEN_WORKERD_HEARTBEAT_S");
  const double hb_interval =
      hb_env != nullptr ? std::max(0.01, std::atof(hb_env)) : 0.25;
  std::thread heartbeat(heartbeat_main, &writer, hb_interval);
  heartbeat.detach();  // process exit is its only shutdown

  UniGenStats scratch_stats;
  while (ipc::read_frame(fd, type, body)) {
    if (type != ipc::FrameType::kTask) continue;
    ipc::TaskMsg task;
    try {
      task = ipc::decode_task(body);
    } catch (const std::exception& e) {
      writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
      continue;
    }
    for (const FaultDirective& d : faults)
      if (d.task == task.task_id && d.attempt == task.attempt)
        apply_fault(d, writer);

    ipc::ResultMsg result;
    result.task_id = task.task_id;
    result.kind = setup.kind;
    // Tracing follows the task frame: a nonzero trace id turns recording on
    // for exactly this attempt, and the ring is drained into the Result so
    // the supervisor can merge the fragment.  Observability only — the
    // computation below never reads any of it.
    const bool tracing = task.trace_id != 0;
    obs::set_enabled(tracing);
    if (tracing) obs::clear_all();
    try {
      obs::ContextScope trace_root(
          obs::TraceContext{task.trace_id, task.parent_span});
      obs::Span task_span("worker.task");
      task_span.set_value(task.task_id);
      task_span.set_worker(static_cast<std::uint32_t>(::getpid()));
      // 1-based to match the supervisor's fleet.attempt tag (TaskMsg's
      // ordinal is 0-based because the fault plan keys on it).
      task_span.set_attempt(task.attempt + 1);
      Rng rng = Rng::from_state(task.rng_state);
      // Per-call Budget scalars ride on the task frame; pointers (cancel
      // token, in-process fault plan) cannot cross — cancellation is the
      // supervisor's kill, faults are UNIGEN_WORKERD_FAULTS.
      Budget task_budget;
      task_budget.deadline = task.deadline_s > 0.0
                                 ? Deadline::in_seconds(task.deadline_s)
                                 : Deadline::never();
      task_budget.bsat_timeout_s = task.bsat_timeout_s;
      task_budget.max_bsat_calls = task.max_bsat_calls;
      task_budget.conflicts_per_call = task.conflicts_per_call;
      if (setup.kind == ipc::TaskKind::kCount) {
        count_options.budget = task_budget;
        const ApproxMcCoreOutcome o = approxmc_core_iteration(
            *engine, setup.n, setup.pivot, count_options, task.start_m, rng,
            /*fault_key=*/task.task_id);
        result.ok = o.ok ? 1 : 0;
        result.timed_out = o.timed_out ? 1 : 0;
        result.cancelled = o.cancelled ? 1 : 0;
        result.faulted = o.faulted ? 1 : 0;
        result.leapfrogged = o.leapfrogged ? 1 : 0;
        result.cell_count = o.cell_count;
        result.hash_count = o.hash_count;
        result.bsat_calls = o.bsat_calls;
      } else {
        ug_options.budget = task_budget;
        const std::uint64_t before_calls = scratch_stats.sample_bsat_calls;
        const std::uint64_t before_retries = scratch_stats.bsat_timeout_retries;
        AcceptCellResult r = unigen_accept_cell(
            *engine, setup.sampling_set, prep, ug_options,
            static_cast<Var>(setup.formula_vars), rng, scratch_stats,
            /*fault_key=*/task.task_id);
        result.sample_bsat_calls =
            scratch_stats.sample_bsat_calls - before_calls;
        result.timeout_retries =
            scratch_stats.bsat_timeout_retries - before_retries;
        if (task.max_batch == 0) {
          SampleResult s = finish_single_from_cell(std::move(r), rng);
          result.sample_status = static_cast<std::uint8_t>(s.status);
          if (s.ok()) result.models.push_back(std::move(s.witness));
        } else {
          BatchResult b = finish_batch_from_cell(
              std::move(r), static_cast<std::size_t>(task.max_batch), rng);
          result.sample_status = static_cast<std::uint8_t>(b.status);
          result.models = std::move(b.models);
        }
      }
    } catch (const std::exception& e) {
      writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
      continue;
    }
    if (tracing) {
      // task_span closed at the end of the try block above; everything this
      // attempt recorded is now drained into the Result frame.
      for (const obs::TraceEvent& e : obs::snapshot_events()) {
        ipc::SpanWire s;
        s.name = e.name;
        s.span_id = e.span_id;
        s.parent_id = e.parent_id;
        s.start_ns = e.start_ns;
        s.end_ns = e.end_ns;
        s.value = e.value;
        s.worker = e.worker != 0 ? e.worker
                                 : static_cast<std::uint32_t>(::getpid());
        s.attempt = e.attempt != 0 ? e.attempt : task.attempt + 1;
        result.spans.push_back(std::move(s));
      }
      obs::clear_all();
    }
    if (!writer.send(ipc::FrameType::kResult, ipc::encode_result(result)))
      return 0;  // parent gone
  }
  return 0;  // EOF: supervisor closed the channel
}

}  // namespace
}  // namespace unigen

int main(int argc, char** argv) {
  int fd = 3;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--fd") == 0) fd = std::atoi(argv[i + 1]);
  }
  return unigen::worker_main(fd);
}
