// unigen_workerd — the crash-isolated worker process behind ProcessFleet.
//
// Protocol (service/ipc.hpp): the supervisor hands this process one end of
// a byte stream, sends one Setup frame, then Task frames one at a time;
// the worker answers each with a Result (or a structured Error) and emits
// unsolicited Heartbeat frames from a dedicated thread so the supervisor
// can tell a long solve from a hung process.  How the stream comes to
// exist is the transport's business, selected on the command line:
//
//   --fd N                 inherited socketpair end (single-host fleet);
//   --connect host:port    dial the supervisor's TCP listener — used by
//                          the loopback-TCP fleet's locally-spawned
//                          children, and by any remote agent pointing a
//                          worker at a supervisor across the network;
//   --listen host:port     serve mode for multi-host fan-out: accept one
//                          supervisor connection at a time, serve the
//                          whole Setup→Task* conversation, then reset and
//                          re-accept (port 0 binds ephemerally; the bound
//                          endpoint is printed to stdout for discovery).
//
// Determinism: a task is a pure function of its frame — the formula came
// in canonical DIMACS, the task's rng as raw state, and the post-
// processing (pick/shuffle) is the exact helper the in-process pool uses —
// so the supervisor may re-dispatch a task to any worker, on any host, any
// number of times, and fold byte-identical results.
//
// Protocol errors: an unknown frame-type byte is answered with a
// structured Error (the length prefix was sound, so the stream is still
// in sync and serving continues); a corrupt length prefix loses framing —
// the worker complains best-effort and hangs up.  Neither is ever a blind
// enum cast.
//
// Fault injection (tests only): UNIGEN_WORKERD_FAULTS holds a
// ;-separated plan of `kill@task:attempt` / `sleep@task:attempt`
// directives (ProcessFaultPlan).  `kill` raises SIGKILL on receipt of the
// matching task — the crash-mid-task case; `sleep` grabs the heartbeat
// mutex and sleeps forever — the hang case, detectable only through
// heartbeat silence.  Keyed on (task, attempt) so a retry runs clean.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <unistd.h>

#include "cnf/dimacs.hpp"
#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "counting/approxmc_core.hpp"
#include "obs/trace.hpp"
#include "sat/incremental_bsat.hpp"
#include "service/ipc.hpp"
#include "service/net_transport.hpp"
#include "service/sampler_pool.hpp"
#include "simplify/simplify.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace unigen {
namespace {

struct FaultDirective {
  bool kill = false;  // else sleep
  std::uint64_t task = 0;
  std::uint32_t attempt = 0;
};

std::vector<FaultDirective> parse_fault_plan(const char* env) {
  std::vector<FaultDirective> plan;
  if (env == nullptr) return plan;
  const std::string s(env);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(';', pos);
    if (end == std::string::npos) end = s.size();
    const std::string item = s.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t at = item.find('@');
    const std::size_t colon = item.find(':', at);
    if (at == std::string::npos || colon == std::string::npos) continue;
    FaultDirective d;
    const std::string what = item.substr(0, at);
    if (what == "kill")
      d.kill = true;
    else if (what == "sleep")
      d.kill = false;
    else
      continue;
    d.task = std::strtoull(item.c_str() + at + 1, nullptr, 10);
    d.attempt = static_cast<std::uint32_t>(
        std::strtoul(item.c_str() + colon + 1, nullptr, 10));
    plan.push_back(d);
  }
  return plan;
}

/// Worker state shared with the heartbeat thread: the write mutex orders
/// Result and Heartbeat frames on the one socket, and doubles as the hang
/// lever — the sleep fault holds it forever, so heartbeats stop.  The
/// stop flag lets a finished session join its heartbeat thread promptly,
/// which serve mode (--listen) needs before it can re-accept: a detached
/// thread writing into a recycled fd number would corrupt the next
/// session's stream.
struct Writer {
  int fd = -1;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;

  bool send(ipc::FrameType type, const std::string& body) {
    std::lock_guard<std::mutex> lock(mu);
    return ipc::write_frame(fd, type, body);
  }
  void request_stop() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
  }
};

void heartbeat_main(Writer* writer, double interval_s) {
  const auto period = std::chrono::duration<double>(interval_s);
  std::unique_lock<std::mutex> lock(writer->mu);
  for (;;) {
    // wait_for releases mu while sleeping, so Result sends never wait a
    // heartbeat period — only the actual write below is serialized.
    if (writer->cv.wait_for(lock, period, [writer] { return writer->stop; }))
      return;
    // mu held: write directly (send() would deadlock re-locking).
    if (!ipc::write_frame(writer->fd, ipc::FrameType::kHeartbeat,
                          std::string()))
      return;  // parent gone
  }
}

[[noreturn]] void apply_fault(const FaultDirective& d, Writer& writer) {
  if (d.kill) {
    ::raise(SIGKILL);
  }
  // Hang: hold the write mutex so the heartbeat thread starves too, then
  // sleep forever.  The supervisor's heartbeat timeout is the only thing
  // that can end this process.
  writer.mu.lock();
  for (;;) std::this_thread::sleep_for(std::chrono::hours(24));
  // unreachable
  std::abort();
}

int worker_main(int fd) {
  ::signal(SIGPIPE, SIG_IGN);  // dead parent → failed write, not death
  const std::vector<FaultDirective> faults =
      parse_fault_plan(std::getenv("UNIGEN_WORKERD_FAULTS"));

  Writer writer;
  writer.fd = fd;

  ipc::FrameType type;
  std::string body;
  switch (ipc::read_frame_outcome(fd, type, body)) {
    case ipc::ReadOutcome::kFrame:
      break;
    case ipc::ReadOutcome::kBadType:
      writer.send(ipc::FrameType::kError,
                  ipc::encode_error("ipc: unknown frame type before Setup"));
      return 2;
    case ipc::ReadOutcome::kBadLength:
      writer.send(ipc::FrameType::kError,
                  ipc::encode_error("ipc: bad frame length"));
      return 2;
    case ipc::ReadOutcome::kEof:
      return 2;
  }
  if (type != ipc::FrameType::kSetup) return 2;
  ipc::SetupMsg setup;
  try {
    setup = ipc::decode_setup(body);
  } catch (const std::exception& e) {
    writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
    return 2;
  }

  // Rebuild the task context.  kSample re-runs the deterministic simplify
  // pipeline on the shipped original formula, reproducing the parent's
  // shrunk formula AND the reconstruction stack — the part of
  // UniGenPrepared that cannot cheaply cross a process boundary.
  Cnf original;
  UniGenPrepared prep;
  UniGenOptions ug_options;
  ApproxMcOptions count_options;
  std::unique_ptr<IncrementalBsat> engine;
  try {
    original = parse_dimacs_string(setup.formula_dimacs);
    original.ensure_vars(setup.formula_vars);
    if (setup.kind == ipc::TaskKind::kCount) {
      engine = std::make_unique<IncrementalBsat>(original, setup.sampling_set);
    } else {
      prep.mode = static_cast<UniGenPrepared::Mode>(setup.prep_mode);
      prep.kp.kappa = setup.kappa;
      prep.kp.pivot = setup.kp_pivot;
      prep.kp.lo_thresh = setup.lo_thresh;
      prep.kp.hi_thresh = setup.hi_thresh;
      prep.q = setup.q;
      prep.approx_log2_count = setup.approx_log2_count;
      if (setup.simplify.enabled)
        prep.simplifier = std::make_shared<const Simplifier>(
            original, setup.simplify, setup.sampling_set);
      ug_options.epsilon = setup.epsilon;
      ug_options.simplify = setup.simplify;
      ug_options.bsat_timeout_s = setup.bsat_timeout_s;
      ug_options.sample_timeout_s = setup.sample_timeout_s;
      engine = std::make_unique<IncrementalBsat>(prep.formula(original),
                                                 setup.sampling_set);
    }
  } catch (const std::exception& e) {
    writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
    return 2;
  }

  if (!writer.send(ipc::FrameType::kReady, std::string())) return 0;
  const char* hb_env = std::getenv("UNIGEN_WORKERD_HEARTBEAT_S");
  const double hb_interval =
      hb_env != nullptr ? std::max(0.01, std::atof(hb_env)) : 0.25;
  std::thread heartbeat(heartbeat_main, &writer, hb_interval);

  UniGenStats scratch_stats;
  bool serving = true;
  while (serving) {
    switch (ipc::read_frame_outcome(fd, type, body)) {
      case ipc::ReadOutcome::kFrame:
        break;
      case ipc::ReadOutcome::kBadType:
        // Length prefix was sound: exactly one frame was consumed, the
        // stream is still in sync — structured complaint, keep serving.
        writer.send(ipc::FrameType::kError,
                    ipc::encode_error("ipc: unknown frame type"));
        continue;
      case ipc::ReadOutcome::kBadLength:
        // Framing lost; nothing downstream can be trusted.  Best-effort
        // complaint, then hang up (the supervisor respawns/re-dials).
        writer.send(ipc::FrameType::kError,
                    ipc::encode_error("ipc: bad frame length"));
        serving = false;
        continue;
      case ipc::ReadOutcome::kEof:
        serving = false;  // supervisor closed the channel
        continue;
    }
    if (type != ipc::FrameType::kTask) continue;
    ipc::TaskMsg task;
    try {
      task = ipc::decode_task(body);
    } catch (const std::exception& e) {
      writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
      continue;
    }
    for (const FaultDirective& d : faults)
      if (d.task == task.task_id && d.attempt == task.attempt)
        apply_fault(d, writer);

    ipc::ResultMsg result;
    result.task_id = task.task_id;
    result.kind = setup.kind;
    // Tracing follows the task frame: a nonzero trace id turns recording on
    // for exactly this attempt, and the ring is drained into the Result so
    // the supervisor can merge the fragment.  Observability only — the
    // computation below never reads any of it.
    const bool tracing = task.trace_id != 0;
    obs::set_enabled(tracing);
    if (tracing) obs::clear_all();
    try {
      obs::ContextScope trace_root(
          obs::TraceContext{task.trace_id, task.parent_span});
      obs::Span task_span("worker.task");
      task_span.set_value(task.task_id);
      task_span.set_worker(static_cast<std::uint32_t>(::getpid()));
      // 1-based to match the supervisor's fleet.attempt tag (TaskMsg's
      // ordinal is 0-based because the fault plan keys on it).
      task_span.set_attempt(task.attempt + 1);
      Rng rng = Rng::from_state(task.rng_state);
      // Per-call Budget scalars ride on the task frame; pointers (cancel
      // token, in-process fault plan) cannot cross — cancellation is the
      // supervisor's kill, faults are UNIGEN_WORKERD_FAULTS.
      Budget task_budget;
      task_budget.deadline = task.deadline_s > 0.0
                                 ? Deadline::in_seconds(task.deadline_s)
                                 : Deadline::never();
      task_budget.bsat_timeout_s = task.bsat_timeout_s;
      task_budget.max_bsat_calls = task.max_bsat_calls;
      task_budget.conflicts_per_call = task.conflicts_per_call;
      if (setup.kind == ipc::TaskKind::kCount) {
        count_options.budget = task_budget;
        const ApproxMcCoreOutcome o = approxmc_core_iteration(
            *engine, setup.n, setup.pivot, count_options, task.start_m, rng,
            /*fault_key=*/task.task_id);
        result.ok = o.ok ? 1 : 0;
        result.timed_out = o.timed_out ? 1 : 0;
        result.cancelled = o.cancelled ? 1 : 0;
        result.faulted = o.faulted ? 1 : 0;
        result.leapfrogged = o.leapfrogged ? 1 : 0;
        result.cell_count = o.cell_count;
        result.hash_count = o.hash_count;
        result.bsat_calls = o.bsat_calls;
      } else {
        ug_options.budget = task_budget;
        const std::uint64_t before_calls = scratch_stats.sample_bsat_calls;
        const std::uint64_t before_retries = scratch_stats.bsat_timeout_retries;
        AcceptCellResult r = unigen_accept_cell(
            *engine, setup.sampling_set, prep, ug_options,
            static_cast<Var>(setup.formula_vars), rng, scratch_stats,
            /*fault_key=*/task.task_id);
        result.sample_bsat_calls =
            scratch_stats.sample_bsat_calls - before_calls;
        result.timeout_retries =
            scratch_stats.bsat_timeout_retries - before_retries;
        if (task.max_batch == 0) {
          SampleResult s = finish_single_from_cell(std::move(r), rng);
          result.sample_status = static_cast<std::uint8_t>(s.status);
          if (s.ok()) result.models.push_back(std::move(s.witness));
        } else {
          BatchResult b = finish_batch_from_cell(
              std::move(r), static_cast<std::size_t>(task.max_batch), rng);
          result.sample_status = static_cast<std::uint8_t>(b.status);
          result.models = std::move(b.models);
        }
      }
    } catch (const std::exception& e) {
      writer.send(ipc::FrameType::kError, ipc::encode_error(e.what()));
      continue;
    }
    if (tracing) {
      // task_span closed at the end of the try block above; everything this
      // attempt recorded is now drained into the Result frame.
      for (const obs::TraceEvent& e : obs::snapshot_events()) {
        ipc::SpanWire s;
        s.name = e.name;
        s.span_id = e.span_id;
        s.parent_id = e.parent_id;
        s.start_ns = e.start_ns;
        s.end_ns = e.end_ns;
        s.value = e.value;
        s.worker = e.worker != 0 ? e.worker
                                 : static_cast<std::uint32_t>(::getpid());
        s.attempt = e.attempt != 0 ? e.attempt : task.attempt + 1;
        result.spans.push_back(std::move(s));
      }
      obs::clear_all();
    }
    if (!writer.send(ipc::FrameType::kResult, ipc::encode_result(result)))
      serving = false;  // parent gone
  }
  // Session over (EOF / lost framing / dead parent): stop the heartbeat
  // thread before the fd can be closed or its number recycled — serve
  // mode accepts the next supervisor right after this returns.
  writer.request_stop();
  heartbeat.join();
  return 0;
}

/// Multi-host serve mode: accept one supervisor at a time, run the whole
/// conversation, reset, re-accept.  Each connection gets a fresh
/// worker_main — fresh Setup, fresh engine — so consecutive supervisors
/// (or a re-dialling one after it dropped us) cannot see each other's
/// state.  The bound endpoint is printed first (port 0 = ephemeral) so
/// whoever started us can discover where to point the fleet.
int listen_main(const net::Endpoint& at) {
  ::signal(SIGPIPE, SIG_IGN);
  net::TcpListener listener;
  if (!listener.listen(at.host, at.port)) {
    std::fprintf(stderr, "unigen_workerd: cannot listen on %s\n",
                 net::to_string(at).c_str());
    return 3;
  }
  std::printf("unigen_workerd listening %s\n",
              net::to_string(listener.endpoint()).c_str());
  std::fflush(stdout);
  for (;;) {
    const int fd = listener.accept(1.0);
    if (fd < 0) continue;  // timeout tick; SIGTERM/SIGKILL ends serve mode
    worker_main(fd);
    ::close(fd);
  }
}

}  // namespace
}  // namespace unigen

int main(int argc, char** argv) {
  int fd = 3;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--fd") == 0) fd = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--connect") == 0 ||
        std::strcmp(argv[i], "--listen") == 0) {
      unigen::net::Endpoint ep;
      if (!unigen::net::parse_endpoint(argv[i + 1], ep)) {
        std::fprintf(stderr, "unigen_workerd: bad endpoint '%s'\n",
                     argv[i + 1]);
        return 3;
      }
      if (std::strcmp(argv[i], "--listen") == 0)
        return unigen::listen_main(ep);
      fd = unigen::net::tcp_connect(ep, 10.0);
      if (fd < 0) {
        std::fprintf(stderr, "unigen_workerd: cannot connect to %s\n",
                     unigen::net::to_string(ep).c_str());
        return 3;
      }
    }
  }
  return unigen::worker_main(fd);
}
