#include "simplify/simplify.hpp"

#include <algorithm>
#include <optional>

#include "cnf/fingerprint.hpp"
#include "util/timer.hpp"

namespace unigen {

void SimplifyStats::merge(const SimplifyStats& other) {
  ran = ran || other.ran;
  unsat = unsat || other.unsat;
  rounds += other.rounds;
  original_clauses += other.original_clauses;
  original_literals += other.original_literals;
  result_clauses += other.result_clauses;
  result_literals += other.result_literals;
  units_fixed += other.units_fixed;
  tautologies_removed += other.tautologies_removed;
  pure_literals_fixed += other.pure_literals_fixed;
  subsumed_clauses += other.subsumed_clauses;
  strengthened_literals += other.strengthened_literals;
  eliminated_vars += other.eliminated_vars;
  seconds += other.seconds;
}

namespace {

/// Resolvent of two clauses (sorted by Lit::index(), duplicate-free) on
/// pivot `v`; nullopt when the resolvent is tautological.  Both inputs must
/// contain `v` with opposite signs; the output is again sorted and
/// duplicate-free.  The result cannot be empty: each input has a literal
/// besides the pivot, and if every pair cancelled the clause would have
/// been flagged tautological.
std::optional<std::vector<Lit>> resolve(const std::vector<Lit>& a,
                                        const std::vector<Lit>& b, Var v) {
  std::vector<Lit> out;
  out.reserve(a.size() + b.size() - 2);
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Lit x = a[i], y = b[j];
    if (x.var() == v) {
      ++i;
      continue;
    }
    if (y.var() == v) {
      ++j;
      continue;
    }
    if (x == y) {
      out.push_back(x);
      ++i;
      ++j;
    } else if (x.var() == y.var()) {
      return std::nullopt;  // complementary pair outside the pivot
    } else if (x.index() < y.index()) {
      out.push_back(x);
      ++i;
    } else {
      out.push_back(y);
      ++j;
    }
  }
  for (; i < a.size(); ++i)
    if (a[i].var() != v) out.push_back(a[i]);
  for (; j < b.size(); ++j)
    if (b[j].var() != v) out.push_back(b[j]);
  return out;
}

/// The whole working state of one pipeline run.  Clauses of length >= 2
/// live in `cls` (units are folded into `fixed` immediately); occurrence
/// lists are supersets pruned lazily by live_occs().
struct Pipeline {
  const SimplifyOptions& opt;
  SimplifyStats& stats;

  Var n = 0;
  std::vector<std::vector<Lit>> cls;
  std::vector<char> dead;
  std::vector<std::uint64_t> sig;  // OR of 1 << (var % 64) per clause
  std::vector<std::vector<std::uint32_t>> occs;  // per Lit::index()
  Model fixed;                  // level-0 assignment
  std::vector<char> frozen;     // S ∪ vars(XORs): passes 4/5 keep out
  std::vector<char> eliminated; // BVE'd away
  std::vector<Lit> queue;       // pending unit literals
  std::size_t qhead = 0;
  bool unsat = false;

  Pipeline(const SimplifyOptions& o, SimplifyStats& s) : opt(o), stats(s) {}

  static std::uint64_t signature(const std::vector<Lit>& lits) {
    std::uint64_t s = 0;
    for (const Lit l : lits) s |= std::uint64_t{1} << (l.var() & 63);
    return s;
  }

  lbool value(Lit l) const {
    const lbool v = fixed[static_cast<std::size_t>(l.var())];
    return l.sign() ? ~v : v;
  }

  void enqueue(Lit l) { queue.push_back(l); }

  /// Normalizes and stores a clause: sorts, drops duplicate literals and
  /// fixed-false literals, detects tautologies and satisfied clauses.
  /// `from_input` routes the tautology counter (resolvent tautologies are
  /// never materialized, so only input clauses can hit it here).
  void add_clause(std::vector<Lit> lits, bool from_input) {
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> kept;
    kept.reserve(lits.size());
    for (const Lit l : lits) {
      if (!kept.empty() && l == kept.back()) continue;  // duplicate
      if (!kept.empty() && l == ~kept.back()) {
        if (from_input) ++stats.tautologies_removed;
        return;  // tautology (sorted: ~l adjacent to l)
      }
      const lbool v = value(l);
      if (v == lbool::True) return;  // already satisfied at level 0
      if (v == lbool::False) continue;
      kept.push_back(l);
    }
    if (kept.empty()) {
      unsat = true;
      return;
    }
    if (kept.size() == 1) {
      enqueue(kept[0]);
      return;
    }
    const auto idx = static_cast<std::uint32_t>(cls.size());
    sig.push_back(signature(kept));
    for (const Lit l : kept)
      occs[static_cast<std::size_t>(l.index())].push_back(idx);
    cls.push_back(std::move(kept));
    dead.push_back(0);
  }

  void kill(std::uint32_t ci) { dead[ci] = 1; }

  bool contains(std::uint32_t ci, Lit l) const {
    return std::binary_search(cls[ci].begin(), cls[ci].end(), l);
  }

  /// Prunes stale entries (dead clause, or literal strengthened away) out
  /// of the occurrence list of `l` and returns it.
  std::vector<std::uint32_t>& live_occs(Lit l) {
    auto& list = occs[static_cast<std::size_t>(l.index())];
    std::erase_if(list, [&](std::uint32_t ci) {
      return dead[ci] || !contains(ci, l);
    });
    return list;
  }

  /// Level-0 unit propagation with literal elimination (pass 1).  Every
  /// fixed variable is re-emitted as a unit clause in the result, so the
  /// model set over all variables is preserved exactly.
  bool propagate() {
    bool changed = false;
    while (qhead < queue.size() && !unsat) {
      const Lit l = queue[qhead++];
      const auto v = static_cast<std::size_t>(l.var());
      if (fixed[v] != lbool::Undef) {
        if (value(l) == lbool::False) unsat = true;
        continue;
      }
      fixed[v] = l.sign() ? lbool::False : lbool::True;
      ++stats.units_fixed;
      changed = true;
      // Clauses satisfied by l disappear ...  (occurrence lists are lazy
      // supersets: verify membership before acting on an entry)
      for (const std::uint32_t ci : occs[static_cast<std::size_t>(l.index())])
        if (!dead[ci] && contains(ci, l)) kill(ci);
      occs[static_cast<std::size_t>(l.index())].clear();
      // ... and ¬l is deleted from the rest.
      auto& falsified = occs[static_cast<std::size_t>((~l).index())];
      for (const std::uint32_t ci : falsified) {
        if (dead[ci] || !contains(ci, ~l)) continue;
        auto& c = cls[ci];
        c.erase(std::remove(c.begin(), c.end(), ~l), c.end());
        sig[ci] = signature(c);
        if (c.size() == 1) {
          enqueue(c[0]);
          kill(ci);
        }
      }
      falsified.clear();
    }
    return changed;
  }

  /// Pass 4: pure literals, restricted to unfrozen variables (count-safe
  /// only outside S — see the header).  Pinning cascades through
  /// propagate(), which can expose new pure literals; the fixpoint loop
  /// picks those up next round.
  bool pure_pass() {
    std::vector<std::uint32_t> count(static_cast<std::size_t>(2 * n), 0);
    for (std::uint32_t ci = 0; ci < cls.size(); ++ci) {
      if (dead[ci]) continue;
      for (const Lit l : cls[ci]) ++count[static_cast<std::size_t>(l.index())];
    }
    bool changed = false;
    for (Var v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (frozen[sv] || eliminated[sv] || fixed[sv] != lbool::Undef) continue;
      const std::uint32_t pos = count[static_cast<std::size_t>(Lit(v, false).index())];
      const std::uint32_t neg = count[static_cast<std::size_t>(Lit(v, true).index())];
      if (pos == 0 && neg == 0) continue;  // free variable: leave alone
      if (neg == 0) {
        enqueue(Lit(v, false));
      } else if (pos == 0) {
        enqueue(Lit(v, true));
      } else {
        continue;
      }
      ++stats.pure_literals_fixed;
      changed = true;
    }
    if (changed) propagate();
    return changed;
  }

  /// True iff cls[a] ⊆ cls[b]; both sorted.
  bool subset(std::uint32_t a, std::uint32_t b) const {
    return std::includes(cls[b].begin(), cls[b].end(), cls[a].begin(),
                         cls[a].end());
  }

  /// True iff cls[a] \ {skip} ⊆ cls[b]; both sorted.
  bool subset_except(std::uint32_t a, Lit skip, std::uint32_t b) const {
    const auto& ca = cls[a];
    const auto& cb = cls[b];
    std::size_t j = 0;
    for (const Lit l : ca) {
      if (l == skip) continue;
      while (j < cb.size() && cb[j] < l) ++j;
      if (j == cb.size() || !(cb[j] == l)) return false;
      ++j;
    }
    return true;
  }

  /// Pass 3: forward/backward subsumption + self-subsuming resolution.
  /// Candidates come from the occurrence list of one literal of the
  /// subsuming clause; signatures reject most non-subset pairs in one AND.
  bool subsume_pass() {
    bool changed = false;
    std::vector<std::uint32_t> cand;
    for (std::uint32_t ci = 0; ci < cls.size() && !unsat; ++ci) {
      if (dead[ci]) continue;
      // Backward subsumption: clauses that contain a superset of cls[ci],
      // searched through the least-occurring literal of cls[ci].
      Lit best = cls[ci][0];
      for (const Lit l : cls[ci]) {
        if (occs[static_cast<std::size_t>(l.index())].size() <
            occs[static_cast<std::size_t>(best.index())].size())
          best = l;
      }
      cand = live_occs(best);  // copy: kills below mutate the lists
      for (const std::uint32_t cj : cand) {
        if (cj == ci || dead[cj] || dead[ci]) continue;
        if (cls[cj].size() < cls[ci].size()) continue;
        if (cls[cj].size() == cls[ci].size() && cj < ci) continue;  // dup: keep lower
        if ((sig[ci] & ~sig[cj]) != 0) continue;
        if (!subset(ci, cj)) continue;
        kill(cj);
        ++stats.subsumed_clauses;
        changed = true;
      }
      if (dead[ci]) continue;
      // Self-subsuming resolution: C = B ∨ l strengthens D = A ∨ ¬l to A
      // whenever B ⊆ A (resolving C against D yields A, which subsumes D).
      for (std::size_t k = 0; k < cls[ci].size(); ++k) {
        const Lit l = cls[ci][k];
        const std::uint64_t sig_rest =
            sig[ci];  // superset of sig(C \ {l}); safe one-sided filter
        cand = live_occs(~l);
        for (const std::uint32_t cj : cand) {
          if (dead[cj] || !contains(cj, ~l) ||
              cls[cj].size() < cls[ci].size())
            continue;
          if ((sig_rest & ~(sig[cj] | (std::uint64_t{1} << (l.var() & 63)))) != 0)
            continue;
          if (!subset_except(ci, l, cj)) continue;
          auto& c = cls[cj];
          c.erase(std::remove(c.begin(), c.end(), ~l), c.end());
          sig[cj] = signature(c);
          ++stats.strengthened_literals;
          changed = true;
          if (c.size() == 1) {
            enqueue(c[0]);
            kill(cj);
          }
        }
      }
    }
    if (changed) propagate();
    return changed;
  }

  /// Pass 5: bounded variable elimination on unfrozen variables.  The
  /// elimination is Davis–Putnam existential quantification (count-safe
  /// for any projection excluding the variable); the clause-growth cap
  /// keeps the formula from blowing up.  Returns the reconstruction
  /// entries for every variable it eliminated.
  bool bve_pass(std::vector<std::pair<Var, std::vector<std::vector<Lit>>>>& out) {
    bool changed = false;
    std::vector<std::optional<std::vector<Lit>>> resolvents;
    for (Var v = 0; v < n && !unsat; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (frozen[sv] || eliminated[sv] || fixed[sv] != lbool::Undef) continue;
      // Copies: commit below mutates the occurrence lists.
      const std::vector<std::uint32_t> pos = live_occs(Lit(v, false));
      const std::vector<std::uint32_t> neg = live_occs(Lit(v, true));
      if (pos.empty() && neg.empty()) continue;  // free already
      if (pos.size() > opt.bve_max_occurrences &&
          neg.size() > opt.bve_max_occurrences)
        continue;
      const std::size_t budget =
          pos.size() + neg.size() +
          static_cast<std::size_t>(std::max(0, opt.bve_growth));
      resolvents.clear();
      bool within_budget = true;
      for (const std::uint32_t p : pos) {
        for (const std::uint32_t q : neg) {
          auto r = resolve(cls[p], cls[q], v);
          if (!r) continue;  // tautological resolvent: nothing to add
          resolvents.push_back(std::move(r));
          if (resolvents.size() > budget) {
            within_budget = false;
            break;
          }
        }
        if (!within_budget) break;
      }
      if (!within_budget) continue;
      // Commit: save v's clauses for reconstruction, then swap them for
      // the resolvents.
      std::vector<std::vector<Lit>> saved;
      saved.reserve(pos.size() + neg.size());
      for (const std::uint32_t p : pos) {
        saved.push_back(cls[p]);
        kill(p);
      }
      for (const std::uint32_t q : neg) {
        saved.push_back(cls[q]);
        kill(q);
      }
      out.emplace_back(v, std::move(saved));
      for (auto& r : resolvents) add_clause(std::move(*r), false);
      eliminated[sv] = 1;
      ++stats.eliminated_vars;
      changed = true;
      // Resolvents can be units; renormalize before scoring the next var.
      propagate();
    }
    return changed;
  }
};

}  // namespace

Simplifier::Simplifier(const Cnf& input, SimplifyOptions options,
                       std::optional<std::vector<Var>> frozen)
    : options_(options) {
  if (!options_.enabled) {
    // Honor the master switch even when constructed directly: result() is
    // a verbatim copy and stats().ran stays false.  (Consumers normally
    // gate construction and never pay this copy.)
    result_ = input;
    return;
  }
  const std::vector<Var> frozen_vars =
      frozen ? std::move(*frozen) : input.sampling_set_or_all();
  run(input, frozen_vars);
}

void Simplifier::run(const Cnf& input, const std::vector<Var>& frozen_vars) {
  const Stopwatch watch;
  stats_.ran = true;
  stats_.original_clauses = input.num_clauses();
  for (const auto& c : input.clauses()) stats_.original_literals += c.size();

  Pipeline p(options_, stats_);
  p.n = input.num_vars();
  p.cls.reserve(input.num_clauses());
  p.occs.resize(static_cast<std::size_t>(2 * p.n));
  p.fixed.assign(static_cast<std::size_t>(p.n), lbool::Undef);
  p.frozen.assign(static_cast<std::size_t>(p.n), 0);
  p.eliminated.assign(static_cast<std::size_t>(p.n), 0);
  for (const Var v : frozen_vars) p.frozen[static_cast<std::size_t>(v)] = 1;
  // The pipeline reasons over OR-clauses only; anything an XOR constrains
  // must survive verbatim.
  for (const auto& x : input.xors())
    for (const Var v : x.vars) p.frozen[static_cast<std::size_t>(v)] = 1;

  for (const auto& c : input.clauses()) p.add_clause(c, /*from_input=*/true);
  p.propagate();

  std::vector<std::pair<Var, std::vector<std::vector<Lit>>>> elims;
  for (int round = 1; round <= options_.max_rounds && !p.unsat; ++round) {
    bool changed = false;
    if (options_.pure_literals) changed = p.pure_pass() || changed;
    if (options_.subsumption) changed = p.subsume_pass() || changed;
    if (options_.bounded_variable_elimination)
      changed = p.bve_pass(elims) || changed;
    stats_.rounds = round;
    if (!changed) break;
  }
  elim_stack_.reserve(elims.size());
  for (auto& [v, clauses] : elims)
    elim_stack_.push_back(EliminatedVar{v, std::move(clauses)});

  // Emit the result formula.
  result_ = Cnf(input.num_vars());
  result_.name = input.name;
  stats_.unsat = p.unsat;
  if (p.unsat) {
    result_.add_clause({});
    if (input.sampling_set()) result_.set_sampling_set(*input.sampling_set());
    stats_.result_clauses = result_.num_clauses();
    stats_.seconds = watch.seconds();
    return;
  }
  for (Var v = 0; v < p.n; ++v) {
    const lbool val = p.fixed[static_cast<std::size_t>(v)];
    if (val != lbool::Undef) result_.add_unit(Lit(v, val == lbool::False));
  }
  for (std::uint32_t ci = 0; ci < p.cls.size(); ++ci)
    if (!p.dead[ci]) result_.add_clause(p.cls[ci]);
  for (const auto& x : input.xors()) result_.add_xor(x);
  if (input.sampling_set()) result_.set_sampling_set(*input.sampling_set());
  stats_.result_clauses = result_.num_clauses();
  for (const auto& c : result_.clauses()) stats_.result_literals += c.size();
  stats_.seconds = watch.seconds();
}

void Simplifier::extend_model(Model& m) const {
  // Reverse elimination order: when v was eliminated its saved clauses
  // mentioned only variables still live at that point, i.e. variables the
  // solver assigned or variables eliminated later — which this sweep has
  // already reconstructed.
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    lbool value = lbool::False;  // either value works unless some clause forces
    for (const auto& clause : it->clauses) {
      Lit pivot = kUndefLit;
      bool satisfied_without_pivot = false;
      for (const Lit l : clause) {
        if (l.var() == it->v) {
          pivot = l;
          continue;
        }
        if (eval(m, l) == lbool::True) {
          satisfied_without_pivot = true;
          break;
        }
      }
      if (!satisfied_without_pivot) {
        // The pivot literal must hold; clauses cannot disagree because m
        // satisfies every resolvent of the saved set.
        value = pivot.sign() ? lbool::False : lbool::True;
        break;
      }
    }
    m[static_cast<std::size_t>(it->v)] = value;
  }
}

std::vector<Model> Simplifier::extend_models(std::vector<Model> models) const {
  if (!elim_stack_.empty())
    for (Model& m : models) extend_model(m);
  return models;
}

void Simplifier::fold_reconstruction(FingerprintBuilder& fb) const {
  // The stack's order is meaning (reconstruction sweeps it in reverse), so
  // everything goes through the order-sensitive chain.
  fb.add_scalar(elim_stack_.size());
  for (const EliminatedVar& ev : elim_stack_) {
    fb.add_scalar(static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.v)));
    fb.add_scalar(ev.clauses.size());
    for (const auto& clause : ev.clauses) fb.add_ordered_clause(clause);
  }
}

}  // namespace unigen
