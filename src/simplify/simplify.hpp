#pragma once
// Count-safe CNF simplification in front of every counter and sampler run.
//
// The paper's central trick is hashing only the sampling set S, which makes
// everything outside S fair game for aggressive formula shrinking: the
// projected model count over S — the only quantity ApproxMC estimates and
// the only distribution UniGen's guarantee speaks about — is invariant
// under elimination of non-S variables.  Production ApproxMC/UniGen ship
// exactly this kind of preprocessor (Arjun / SatELite-style); this is the
// same occurrence-list pipeline, built for this codebase.
//
// The Simplifier runs a fixpoint over five passes.  Writing R_S(F) for the
// set of S-projections of F's models, every pass keeps R_S(F) — and hence
// |R_S(F)| — exactly; the first three even keep the full model set:
//
//   1. Level-0 unit propagation with literal elimination.  Satisfied
//      clauses are dropped, falsified literals deleted, and one unit
//      clause per fixed variable is RE-EMITTED into the result, so the
//      simplified formula has exactly the same models over all variables
//      (a fixed variable stays fixed — nothing is projected away).
//   2. Tautology and duplicate-literal removal.  A clause containing l and
//      ¬l is true in every assignment; deleting it changes nothing.
//   3. Forward/backward subsumption and self-subsuming resolution
//      (signature-hashed occurrence lists).  A subsumed clause is implied
//      by its subsumer, so deleting it preserves the model set; SSR
//      replaces D = A ∨ ¬l by A when some clause C = B ∨ l with B ⊆ A
//      exists, and A ≡ D under C (resolution), so again the model set is
//      unchanged.
//   4. Pure-literal elimination restricted to non-S variables.  If the
//      non-S literal l is pure, F and F ∧ l have the same S-projections:
//      any model of F|σ can be re-assigned l = true without falsifying a
//      clause (no clause contains ¬l), so σ ∈ R_S(F) ⇔ σ ∈ R_S(F ∧ l).
//      The unit l is emitted into the result, pinning the variable — the
//      full model count shrinks, the projected count over S does not.
//      Restriction to non-S is essential: pinning an S variable would
//      delete projections.
//   5. Bounded variable elimination (BVE) restricted to non-S variables
//      with a clause-growth cap.  Replacing v's clauses by all
//      non-tautological resolvents is Davis–Putnam existential
//      quantification: resolvents ∧ rest ≡ ∃v.F, whose models over the
//      remaining variables are exactly the projections of F's models — so
//      for any S with v ∉ S, R_S is untouched.  The eliminated variable
//      becomes unconstrained in the simplified formula; callers that hand
//      out full witnesses re-attach its value via extend_model() (the
//      SatELite reconstruction sweep over the saved clauses), which maps
//      every model of the simplified formula to a model of the original
//      with the same values on all surviving variables.
//
// Variables occurring in XOR constraints are frozen alongside S: the
// pipeline reasons over OR-clauses only, and an XOR constrains its
// variables in ways the occurrence lists cannot see.  XOR constraints pass
// through unchanged (the solver's level-0 Gaussian elimination owns them).
//
// Determinism: the pipeline draws no randomness and iterates in fixed
// variable/clause order, so (formula, options) → (result, reconstruction)
// is a pure function.  Together with the canonical cell ordering of the
// samplers this keeps the service's byte-identical replica contract intact
// when S is an independent support (each S-projection then has exactly one
// extension, which extend_model reproduces).

#include <cstdint>
#include <optional>
#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/types.hpp"

namespace unigen {

class FingerprintBuilder;  // cnf/fingerprint.hpp

struct SimplifyOptions {
  /// Master switch (on by default; off = feed the raw CNF, for A/B runs).
  bool enabled = true;
  /// Fixpoint cap: passes repeat until nothing changes or this many rounds
  /// have run.
  int max_rounds = 20;
  // Per-pass switches (all on by default).  Unit propagation and tautology
  // removal are the normalization substrate every other pass relies on and
  // are always on.
  bool pure_literals = true;
  bool subsumption = true;  ///< forward/backward subsumption + SSR
  bool bounded_variable_elimination = true;
  /// BVE clause-growth cap: eliminate v only when the number of kept
  /// resolvents is at most (#clauses deleted) + bve_growth.
  int bve_growth = 0;
  /// Skip BVE scoring for variables where both polarities occur more than
  /// this often (the resolvent product would be quadratic).
  std::size_t bve_max_occurrences = 16;
};

struct SimplifyStats {
  bool ran = false;    ///< the pipeline executed (options.enabled)
  bool unsat = false;  ///< simplification proved the formula unsatisfiable
  int rounds = 0;      ///< fixpoint rounds executed
  // Input/output sizes (literal counts over OR-clauses; XORs untouched).
  std::size_t original_clauses = 0;
  std::size_t original_literals = 0;
  std::size_t result_clauses = 0;
  std::size_t result_literals = 0;
  // Per-pass work counters.
  std::size_t units_fixed = 0;            ///< variables fixed at level 0
  std::size_t tautologies_removed = 0;
  std::size_t pure_literals_fixed = 0;    ///< non-S pure literals pinned
  std::size_t subsumed_clauses = 0;
  std::size_t strengthened_literals = 0;  ///< literals removed by SSR
  std::size_t eliminated_vars = 0;        ///< non-S variables BVE'd away
  double seconds = 0.0;

  /// Net clause / literal shrinkage (can be negative if BVE growth was
  /// allowed, hence signed).
  std::int64_t clauses_removed() const {
    return static_cast<std::int64_t>(original_clauses) -
           static_cast<std::int64_t>(result_clauses);
  }
  std::int64_t literals_removed() const {
    return static_cast<std::int64_t>(original_literals) -
           static_cast<std::int64_t>(result_literals);
  }

  /// Folds another run's counters into this one (bench aggregation).
  void merge(const SimplifyStats& other);
};

class Simplifier {
 public:
  /// Runs the pipeline on `input`.  The frozen set — variables passes 4
  /// and 5 must not touch — defaults to input.sampling_set_or_all(); a
  /// caller whose projection differs from the formula's declared sampling
  /// set (UniWit counts over the FULL support) passes it explicitly.
  /// Variables of XOR constraints are always frozen in addition.
  explicit Simplifier(const Cnf& input, SimplifyOptions options = {},
                      std::optional<std::vector<Var>> frozen = std::nullopt);

  /// The simplified formula: same num_vars, same sampling set, same XORs,
  /// same name; units + surviving clauses (or the empty clause when
  /// simplification derived UNSAT).  Valid as long as this Simplifier
  /// lives — engines keep references to it.
  const Cnf& result() const { return result_; }

  const SimplifyStats& stats() const { return stats_; }

  /// True when BVE eliminated at least one variable, i.e. models of
  /// result() need extend_model() before they satisfy the original.
  bool needs_extension() const { return !elim_stack_.empty(); }

  /// SatELite solution reconstruction: rewrites the (unconstrained) values
  /// of eliminated variables so `m` — a model of result() — satisfies the
  /// original formula.  Deterministic: an unforced variable is set false,
  /// a forced one to the unique satisfying value, scanning the saved
  /// clauses in reverse elimination order.
  void extend_model(Model& m) const;
  std::vector<Model> extend_models(std::vector<Model> models) const;

  /// Folds the reconstruction state (the BVE elimination stack, in order)
  /// into `fb`.  Part of a session key: two inputs can simplify to the same
  /// core yet reconstruct witnesses differently, and a cache that served
  /// one's witnesses for the other would emit non-models — so the key must
  /// cover how witnesses are extended, not just what gets solved.
  void fold_reconstruction(FingerprintBuilder& fb) const;

 private:
  void run(const Cnf& input, const std::vector<Var>& frozen_vars);

  /// One eliminated variable and the original clauses it occurred in (the
  /// reconstruction witness set).
  struct EliminatedVar {
    Var v;
    std::vector<std::vector<Lit>> clauses;
  };

  SimplifyOptions options_;
  Cnf result_;
  SimplifyStats stats_;
  std::vector<EliminatedVar> elim_stack_;  // in elimination order
};

}  // namespace unigen
