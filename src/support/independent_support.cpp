#include "support/independent_support.hpp"

#include <algorithm>

#include "sat/solver.hpp"

namespace unigen {
namespace {

/// Builds the Padoa query: F(X) ∧ F(X') ∧ (candidate vars equal) ∧
/// (some non-candidate var differs).  SAT ⟺ candidate is NOT independent.
Cnf build_padoa_query(const Cnf& cnf, const std::vector<Var>& candidate) {
  const Var n = cnf.num_vars();
  Cnf query(2 * n);
  const auto shift = [n](Lit l) { return Lit(l.var() + n, l.sign()); };

  for (const auto& clause : cnf.clauses()) {
    query.add_clause(clause);
    std::vector<Lit> copy;
    copy.reserve(clause.size());
    for (const Lit l : clause) copy.push_back(shift(l));
    query.add_clause(std::move(copy));
  }
  for (const auto& x : cnf.xors()) {
    query.add_xor(x);
    XorConstraint copy;
    copy.rhs = x.rhs;
    for (const Var v : x.vars) copy.vars.push_back(v + n);
    query.add_xor(std::move(copy));
  }

  std::vector<bool> in_candidate(static_cast<std::size_t>(n), false);
  for (const Var v : candidate) in_candidate[static_cast<std::size_t>(v)] = true;

  std::vector<Lit> some_diff;
  for (Var v = 0; v < n; ++v) {
    if (in_candidate[static_cast<std::size_t>(v)]) {
      query.add_xor({v, v + n}, false);  // equality on the candidate set
    } else {
      const Var t = query.new_var();  // t ⇔ (x_v ≠ x'_v)
      query.add_xor({t, v, v + n}, false);
      some_diff.emplace_back(t, false);
    }
  }
  if (some_diff.empty()) {
    // Candidate covers the whole support: trivially independent; emit an
    // unsatisfiable query to keep the UNSAT ⟺ independent convention.
    query.add_clause({});
  } else {
    query.add_clause(std::move(some_diff));
  }
  return query;
}

}  // namespace

std::optional<bool> is_independent_support(const Cnf& cnf,
                                           const std::vector<Var>& candidate,
                                           const SupportCheckOptions& options) {
  const Cnf query = build_padoa_query(cnf, candidate);
  Solver solver;
  if (!solver.load(query)) return true;  // query UNSAT at load: independent
  const lbool verdict =
      solver.solve_limited({}, options.deadline, options.conflict_budget);
  if (verdict == lbool::Undef) return std::nullopt;
  return verdict == lbool::False;
}

std::optional<std::vector<Var>> minimize_independent_support(
    const Cnf& cnf, std::vector<Var> start, const SupportCheckOptions& options,
    Rng* rng) {
  const auto initial = is_independent_support(cnf, start, options);
  if (!initial.has_value() || !*initial) return std::nullopt;

  std::vector<Var> order = start;
  if (rng != nullptr)
    rng->shuffle(order);
  else
    std::reverse(order.begin(), order.end());

  std::vector<Var> current = std::move(start);
  for (const Var v : order) {
    if (options.deadline.expired()) break;
    std::vector<Var> trial;
    trial.reserve(current.size() - 1);
    for (const Var w : current) {
      if (w != v) trial.push_back(w);
    }
    const auto still = is_independent_support(cnf, trial, options);
    if (still.has_value() && *still) current = std::move(trial);
    // unknown or dependent: keep v
  }
  std::sort(current.begin(), current.end());
  return current;
}

}  // namespace unigen
