#pragma once
// Independent-support utilities (paper Section 2/4).
//
// S ⊆ X is an independent support of F iff no two witnesses differ only
// outside S; equivalently, every variable in X \ S is functionally defined
// by S in F.  The paper notes that *finding* a small independent support is
// beyond its scope and relies on benchmark authors supplying one; this
// module implements the missing piece as an extension:
//
//   * is_independent_support: one Padoa-style SAT query.  Build
//     F(X) ∧ F(X') ∧ (S = S') ∧ (∨_{d ∈ X\S} x_d ≠ x'_d); UNSAT iff S is
//     an independent support.  The disequality uses native XOR constraints.
//   * minimize_independent_support: greedy deflation — try dropping each
//     variable and keep the drop when the Padoa query still says UNSAT.
//     The result is a minimal (not necessarily minimum) independent
//     support.

#include <optional>
#include <vector>

#include "cnf/cnf.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace unigen {

struct SupportCheckOptions {
  Deadline deadline = Deadline::never();
  /// Conflict budget per SAT query; 0 = unlimited.  A budgeted query that
  /// comes back unresolved is treated as "unknown" (nullopt / keep var).
  std::uint64_t conflict_budget = 0;
};

/// True/false when decided; nullopt when a budget expired first.
std::optional<bool> is_independent_support(
    const Cnf& cnf, const std::vector<Var>& candidate,
    const SupportCheckOptions& options = {});

/// Greedily shrinks `start` (which must itself be an independent support —
/// verified first) into a minimal one.  Variables are tried in random order
/// when `rng` is given, else in reverse index order.  Returns nullopt when
/// `start` is not an independent support or the budget expired during the
/// initial verification; otherwise returns the (possibly partially)
/// minimized set — query budget exhaustion mid-way conservatively keeps
/// variables.
std::optional<std::vector<Var>> minimize_independent_support(
    const Cnf& cnf, std::vector<Var> start,
    const SupportCheckOptions& options = {}, Rng* rng = nullptr);

}  // namespace unigen
