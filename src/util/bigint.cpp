#include "util/bigint.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace unigen {

void BigUint::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

BigUint BigUint::pow2(std::size_t k) {
  BigUint r;
  r.words_.assign(k / 64 + 1, 0);
  r.words_.back() = std::uint64_t{1} << (k % 64);
  return r;
}

std::size_t BigUint::bit_length() const {
  if (words_.empty()) return 0;
  return 64 * (words_.size() - 1) +
         (64 - static_cast<std::size_t>(std::countl_zero(words_.back())));
}

BigUint& BigUint::operator+=(const BigUint& other) {
  if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    const std::uint64_t sum = words_[i] + b;
    const std::uint64_t carried = sum + carry;
    carry = (sum < words_[i]) || (carried < sum) ? 1 : 0;
    words_[i] = carried;
    if (b == 0 && carry == 0 && i >= other.words_.size()) break;
  }
  if (carry != 0) words_.push_back(carry);
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& other) {
  if (*this < other) throw std::underflow_error("BigUint subtraction underflow");
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    const std::uint64_t d1 = words_[i] - b;
    const std::uint64_t d2 = d1 - borrow;
    borrow = (d1 > words_[i]) || (d2 > d1) ? 1 : 0;
    words_[i] = d2;
  }
  trim();
  return *this;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (is_zero() || other.is_zero()) return BigUint{};
  BigUint r;
  r.words_.assign(words_.size() + other.words_.size(), 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.words_.size(); ++j) {
      const __uint128_t cur = static_cast<__uint128_t>(words_[i]) * other.words_[j] +
                              r.words_[i + j] + carry;
      r.words_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r.words_[i + other.words_.size()] += carry;
  }
  r.trim();
  return r;
}

BigUint& BigUint::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t word_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  const std::size_t old_size = words_.size();
  words_.resize(old_size + word_shift + 1, 0);
  for (std::size_t i = old_size; i-- > 0;) {
    const std::uint64_t w = words_[i];
    words_[i] = 0;
    if (bit_shift == 0) {
      words_[i + word_shift] |= w;
    } else {
      words_[i + word_shift + 1] |= w >> (64 - bit_shift);
      words_[i + word_shift] |= w << bit_shift;
    }
  }
  trim();
  return *this;
}

std::strong_ordering BigUint::operator<=>(const BigUint& other) const {
  if (words_.size() != other.words_.size())
    return words_.size() <=> other.words_.size();
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != other.words_[i]) return words_[i] <=> other.words_[i];
  }
  return std::strong_ordering::equal;
}

double BigUint::to_double() const {
  double r = 0.0;
  for (std::size_t i = words_.size(); i-- > 0;)
    r = r * 0x1.0p64 + static_cast<double>(words_[i]);
  return r;
}

double BigUint::log2() const {
  if (is_zero()) return -std::numeric_limits<double>::infinity();
  // Use the top up-to-128 bits for precision, plus the word offset.
  const std::size_t top = words_.size() - 1;
  double mantissa = static_cast<double>(words_[top]);
  if (top > 0) mantissa += static_cast<double>(words_[top - 1]) * 0x1.0p-64;
  return std::log2(mantissa) + 64.0 * static_cast<double>(top);
}

std::string BigUint::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^19 (largest power of ten below 2^64).
  constexpr std::uint64_t kChunk = 10'000'000'000'000'000'000ULL;
  std::vector<std::uint64_t> scratch = words_;
  std::string out;
  while (!scratch.empty()) {
    __uint128_t rem = 0;
    for (std::size_t i = scratch.size(); i-- > 0;) {
      const __uint128_t cur = (rem << 64) | scratch[i];
      scratch[i] = static_cast<std::uint64_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!scratch.empty() && scratch.back() == 0) scratch.pop_back();
    std::string part = std::to_string(static_cast<std::uint64_t>(rem));
    if (!scratch.empty()) part = std::string(19 - part.size(), '0') + part;
    out = part + out;
  }
  return out;
}

BigUint BigUint::random_below(const BigUint& bound, Rng& rng) {
  if (bound.is_zero())
    throw std::invalid_argument("random_below: zero bound");
  const std::size_t bits = bound.bit_length();
  const std::size_t nwords = (bits + 63) / 64;
  const std::uint64_t top_mask =
      (bits % 64 == 0) ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << (bits % 64)) - 1);
  // Rejection sampling over [0, 2^bits); expected < 2 draws.
  for (;;) {
    BigUint candidate;
    candidate.words_.resize(nwords);
    for (auto& w : candidate.words_) w = rng();
    candidate.words_.back() &= top_mask;
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

}  // namespace unigen
