#pragma once
// Arbitrary-precision unsigned integers for exact model counts.
//
// A formula over n variables can have up to 2^n models, far beyond any
// machine word, so the exact counter (DPLL# in counting/exact_counter.*)
// returns BigUint.  Only the operations counting needs are provided:
// addition, multiplication, shifts (2^k factors for free variables),
// comparison, and conversion/printing.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace unigen {

class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t value) {  // NOLINT(google-explicit-constructor)
    if (value != 0) words_.push_back(value);
  }

  /// 2^k.
  static BigUint pow2(std::size_t k);

  bool is_zero() const { return words_.empty(); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;

  BigUint& operator+=(const BigUint& other);
  BigUint operator+(const BigUint& other) const {
    BigUint r = *this;
    r += other;
    return r;
  }
  BigUint operator*(const BigUint& other) const;
  BigUint& operator<<=(std::size_t bits);
  BigUint operator<<(std::size_t bits) const {
    BigUint r = *this;
    r <<= bits;
    return r;
  }

  /// Subtraction; precondition: *this >= other.
  BigUint& operator-=(const BigUint& other);

  std::strong_ordering operator<=>(const BigUint& other) const;
  bool operator==(const BigUint& other) const = default;

  /// Lossy conversion (infinity if > DBL_MAX).
  double to_double() const;
  /// log2; -inf for zero.
  double log2() const;
  /// Exact value if it fits in 64 bits, otherwise nullopt-like flag.
  bool fits_uint64() const { return words_.size() <= 1; }
  std::uint64_t to_uint64() const { return words_.empty() ? 0 : words_[0]; }

  std::string to_string() const;  // decimal

  /// Uniform random integer in [0, *this).  Precondition: not zero.
  static BigUint random_below(const BigUint& bound, Rng& rng);

 private:
  void trim();
  // little-endian 64-bit words; canonical form has no trailing zero word.
  std::vector<std::uint64_t> words_;
};

}  // namespace unigen
