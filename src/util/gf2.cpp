#include "util/gf2.hpp"

#include <bit>

namespace unigen {

void Gf2Vector::xor_with(const Gf2Vector& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
}

std::size_t Gf2Vector::first_set() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0)
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(words_[w]));
  }
  return npos;
}

std::size_t Gf2Vector::count() const {
  std::size_t c = 0;
  for (const auto word : words_) c += static_cast<std::size_t>(std::popcount(word));
  return c;
}

bool Gf2Vector::any() const {
  for (const auto word : words_)
    if (word != 0) return true;
  return false;
}

bool Gf2System::add_constraint(const std::vector<std::uint32_t>& vars,
                               bool rhs) {
  if (!consistent_) return false;
  StoredRow row{Gf2Vector(num_vars_), rhs, Gf2Vector::npos};
  for (const auto v : vars) row.coeffs.flip(v);  // flip: duplicated vars cancel
  // Eliminate against existing pivots.
  for (const auto& existing : rows_) {
    if (row.coeffs.get(existing.pivot)) {
      row.coeffs.xor_with(existing.coeffs);
      row.rhs ^= existing.rhs;
    }
  }
  row.pivot = row.coeffs.first_set();
  if (row.pivot == Gf2Vector::npos) {
    if (row.rhs) consistent_ = false;  // 0 = 1
    return consistent_;
  }
  // Back-substitute into existing rows so the system stays fully reduced.
  for (auto& existing : rows_) {
    if (existing.coeffs.get(row.pivot)) {
      existing.coeffs.xor_with(row.coeffs);
      existing.rhs ^= row.rhs;
    }
  }
  rows_.push_back(std::move(row));
  return true;
}

std::vector<std::pair<std::uint32_t, bool>> Gf2System::implied_units() const {
  std::vector<std::pair<std::uint32_t, bool>> units;
  for (const auto& row : rows_) {
    if (row.coeffs.count() == 1)
      units.emplace_back(static_cast<std::uint32_t>(row.pivot), row.rhs);
  }
  return units;
}

std::vector<Gf2System::Row> Gf2System::reduced_rows() const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for_each_reduced_row([&](const Row& row) { out.push_back(row); });
  return out;
}

}  // namespace unigen
