#pragma once
// Dense GF(2) linear algebra used by the XOR preprocessing (Gaussian
// elimination over parity constraints) and by tests of the hash family's
// algebraic properties.

#include <cstdint>
#include <vector>

namespace unigen {

/// A dense bit-vector over GF(2) with word-parallel XOR.
class Gf2Vector {
 public:
  Gf2Vector() = default;
  explicit Gf2Vector(std::size_t bits) : bits_(bits), words_((bits + 63) / 64) {}

  std::size_t size() const { return bits_; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// this ^= other.  Both vectors must have the same size.
  void xor_with(const Gf2Vector& other);

  /// Index of the lowest set bit, or npos if the vector is zero.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first_set() const;
  std::size_t count() const;
  bool any() const;

  bool operator==(const Gf2Vector& other) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Row-reduced system of parity constraints  A·x = b  over GF(2).
/// Rows carry their right-hand side as an extra logical column.
class Gf2System {
 public:
  explicit Gf2System(std::size_t num_vars) : num_vars_(num_vars) {}

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_rows() const { return rows_.size(); }

  /// Adds the constraint  XOR_{v in vars} x_v = rhs  and eliminates it
  /// against the existing rows.  Returns false iff the system became
  /// inconsistent (0 = 1).
  bool add_constraint(const std::vector<std::uint32_t>& vars, bool rhs);

  /// After elimination: variables that are forced to a constant by a
  /// singleton row.  Each entry is (var, value).
  std::vector<std::pair<std::uint32_t, bool>> implied_units() const;

  /// Rank of the coefficient matrix (number of independent constraints).
  std::size_t rank() const { return rows_.size(); }

  bool consistent() const { return consistent_; }

  /// Row access for re-export of the reduced system (pivot var first).
  struct Row {
    std::vector<std::uint32_t> vars;
    bool rhs;
  };
  std::vector<Row> reduced_rows() const;

 private:
  struct StoredRow {
    Gf2Vector coeffs;
    bool rhs;
    std::size_t pivot;
  };
  std::size_t num_vars_;
  std::vector<StoredRow> rows_;  // each with a unique pivot column
  bool consistent_ = true;
};

}  // namespace unigen
