#pragma once
// Dense GF(2) linear algebra used by the XOR preprocessing (Gaussian
// elimination over parity constraints) and by tests of the hash family's
// algebraic properties.

#include <bit>
#include <cstdint>
#include <vector>

namespace unigen {

/// A dense bit-vector over GF(2) with word-parallel XOR.
class Gf2Vector {
 public:
  Gf2Vector() = default;
  explicit Gf2Vector(std::size_t bits) : bits_(bits), words_((bits + 63) / 64) {}

  std::size_t size() const { return bits_; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= std::uint64_t{1} << (i & 63); }

  /// this ^= other.  Both vectors must have the same size.
  void xor_with(const Gf2Vector& other);

  /// Index of the lowest set bit, or npos if the vector is zero.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first_set() const;
  std::size_t count() const;
  bool any() const;

  /// Calls `fn(i)` for every set bit index i in ascending order, walking
  /// whole uint64_t words and peeling bits with countr_zero — the sparse
  /// row extraction the Gaussian layer runs per elimination, word-packed
  /// instead of probing all num_vars bits one by one.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        fn((w << 6) + bit);
        word &= word - 1;  // clear the lowest set bit
      }
    }
  }

  bool operator==(const Gf2Vector& other) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Row-reduced system of parity constraints  A·x = b  over GF(2).
/// Rows carry their right-hand side as an extra logical column.
class Gf2System {
 public:
  explicit Gf2System(std::size_t num_vars) : num_vars_(num_vars) {}

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_rows() const { return rows_.size(); }

  /// Adds the constraint  XOR_{v in vars} x_v = rhs  and eliminates it
  /// against the existing rows.  Returns false iff the system became
  /// inconsistent (0 = 1).
  bool add_constraint(const std::vector<std::uint32_t>& vars, bool rhs);

  /// After elimination: variables that are forced to a constant by a
  /// singleton row.  Each entry is (var, value).
  std::vector<std::pair<std::uint32_t, bool>> implied_units() const;

  /// Rank of the coefficient matrix (number of independent constraints).
  std::size_t rank() const { return rows_.size(); }

  bool consistent() const { return consistent_; }

  /// Row access for re-export of the reduced system (pivot var first).
  struct Row {
    std::vector<std::uint32_t> vars;
    bool rhs;
  };
  std::vector<Row> reduced_rows() const;

  /// Streams the reduced rows into `fn(const Row&)` without materializing
  /// the whole vector; one scratch Row is reused across calls.  The sparse
  /// variable extraction walks uint64_t words (Gf2Vector::for_each_set)
  /// instead of probing every column bit — this is the hot re-export path
  /// the solver's Gaussian elimination runs after every hash change.
  template <typename Fn>
  void for_each_reduced_row(Fn&& fn) const {
    Row row;
    for (const auto& stored : rows_) {
      row.rhs = stored.rhs;
      row.vars.clear();
      row.vars.push_back(static_cast<std::uint32_t>(stored.pivot));
      stored.coeffs.for_each_set([&](std::size_t v) {
        if (v != stored.pivot) row.vars.push_back(static_cast<std::uint32_t>(v));
      });
      fn(static_cast<const Row&>(row));
    }
  }

 private:
  struct StoredRow {
    Gf2Vector coeffs;
    bool rhs;
    std::size_t pivot;
  };
  std::size_t num_vars_;
  std::vector<StoredRow> rows_;  // each with a unique pivot column
  bool consistent_ = true;
};

}  // namespace unigen
