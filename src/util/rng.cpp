#include "util/rng.hpp"

#include <random>

namespace unigen {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng() {
  std::random_device rd;
  std::uint64_t s = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  seed(s);
}

Rng::Rng(std::uint64_t seed_value) { seed(seed_value); }

void Rng::seed(std::uint64_t seed_value) {
  std::uint64_t x = seed_value;
  for (auto& word : s_) word = splitmix64(x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's multiply-then-reject method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

bool Rng::flip() { return ((*this)() >> 63) != 0; }

bool Rng::flip(double p) { return uniform01() < p; }

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace unigen
