#include "util/rng.hpp"

#include <cassert>
#include <random>

namespace unigen {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng() {
  std::random_device rd;
  std::uint64_t s = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  seed(s);
}

Rng::Rng(std::uint64_t seed_value) { seed(seed_value); }

void Rng::seed(std::uint64_t seed_value) {
  std::uint64_t x = seed_value;
  for (auto& word : s_) word = splitmix64(x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // With bound == 0 the mod below would fault (and "uniform over an empty
  // range" has no right answer anyway) — make callers say what they mean.
  assert(bound > 0 && "Rng::below requires bound > 0");
  // Lemire's multiply-then-reject method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi && "Rng::between requires lo <= hi");
  const std::uint64_t span = hi - lo + 1;
  // span wraps to 0 exactly when [lo, hi] covers all of uint64 — every raw
  // draw is in range, and feeding 0 to below() would be UB (mod by zero).
  if (span == 0) return (*this)();
  return lo + below(span);
}

bool Rng::flip() { return ((*this)() >> 63) != 0; }

bool Rng::flip(double p) { return uniform01() < p; }

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() { return Rng((*this)()); }

Rng Rng::fork_stream(std::uint64_t stream) const {
  // Key the child off the full parent state plus the stream index, then let
  // the seeding splitmix64 expansion decorrelate adjacent indices.  The
  // parent is untouched, so stream k always denotes the same child — the
  // property the parallel sampling service's determinism contract needs
  // (request k draws from stream k no matter which thread serves it).
  std::uint64_t x = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^
                    rotl(s_[3], 43);
  x ^= 0x9e3779b97f4a7c15ULL * (stream + 1);
  return Rng(x);
}

void Rng::jump() {
  // Standard xoshiro256** jump polynomial: advances the state by 2^128
  // steps, partitioning one stream into non-overlapping blocks.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if ((word >> b) & 1u) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace unigen
