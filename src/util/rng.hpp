#pragma once
// Deterministic, seedable pseudo-random number generator used throughout the
// library.
//
// The paper's implementation uses C++ `std::random_device` as its randomness
// source (Section 4, "Implementation issues").  For a library that must be
// testable and whose experiments must be repeatable, we instead route all
// randomness through one seedable engine (xoshiro256**, Blackman & Vigna).
// Seeding from std::random_device reproduces the paper's behaviour; seeding
// from a fixed value makes every experiment in this repository replayable.

#include <array>
#include <cstdint>
#include <vector>

namespace unigen {

/// xoshiro256** engine.  Satisfies std::uniform_random_bit_generator so it
/// can be plugged into <random> distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from std::random_device (non-deterministic, as in the paper).
  Rng();
  /// Seeds deterministically via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed);

  void seed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// Precondition: bound > 0 (asserted; an empty range has no uniform draw).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi
  /// (asserted).  The full range between(0, UINT64_MAX) is handled
  /// explicitly — its span wraps to 0 and must not reach below().
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Fair coin.
  bool flip();

  /// Bernoulli(p).  Precondition: 0 <= p <= 1.
  bool flip(double p);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent child generator (for per-thread / per-run
  /// streams).  Consumes one draw from the parent, so successive forks
  /// yield different children.
  Rng fork();

  /// Keyed fork: the child for stream index `k` is a pure function of the
  /// current parent state and `k`, and the parent is not advanced.  This is
  /// the reproducibility primitive of the parallel sampling service: work
  /// item k gets fork_stream(k), so its draws are identical no matter how
  /// many threads execute the fan-out or which thread picks the item up.
  Rng fork_stream(std::uint64_t stream) const;

  /// Advances this generator by 2^128 steps (the xoshiro256** jump
  /// polynomial): calling jump() t times partitions the stream into
  /// non-overlapping length-2^128 blocks, an alternative to fork_stream for
  /// long-lived per-thread generators.
  void jump();

  /// The raw engine state, for shipping a generator across a process
  /// boundary (service/ipc.hpp).  from_state(a.state()) draws the exact
  /// same sequence as `a` — the determinism contract survives transport.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  static Rng from_state(const std::array<std::uint64_t, 4>& s) {
    Rng r(0);
    for (int i = 0; i < 4; ++i) r.s_[i] = s[static_cast<std::size_t>(i)];
    return r;
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace unigen
