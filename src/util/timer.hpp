#pragma once
// Wall-clock stopwatch and deadline helpers.  Resource budgets (time and
// conflicts) are threaded through the SAT solver and every algorithm that
// the paper runs with timeouts (BSAT calls: 2500 s; whole runs: 20 h).

#include <chrono>
#include <limits>

namespace unigen {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which work must stop.  A default-constructed
/// Deadline never expires.
class Deadline {
 public:
  Deadline() = default;

  static Deadline in_seconds(double s) {
    Deadline d;
    d.armed_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(s));
    return d;
  }

  static Deadline never() { return Deadline{}; }

  bool expired() const { return armed_ && Clock::now() >= at_; }

  bool armed() const { return armed_; }

  /// Seconds remaining; +inf when unarmed, 0 when expired.
  double remaining_seconds() const;

 private:
  using Clock = std::chrono::steady_clock;
  bool armed_ = false;
  Clock::time_point at_{};
};

inline double Deadline::remaining_seconds() const {
  if (!armed_) return std::numeric_limits<double>::infinity();
  const double r = std::chrono::duration<double>(at_ - Clock::now()).count();
  return r > 0 ? r : 0.0;
}

}  // namespace unigen
