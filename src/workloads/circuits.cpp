#include "workloads/circuits.hpp"

#include <stdexcept>

#include "cnf/circuit.hpp"
#include "cnf/tseitin.hpp"
#include "util/gf2.hpp"
#include "util/rng.hpp"

namespace unigen::workloads {
namespace {

using Sig = Circuit::Sig;

std::vector<Sig> rotate_left(const std::vector<Sig>& w, std::size_t k) {
  const std::size_t n = w.size();
  std::vector<Sig> out(n);
  for (std::size_t i = 0; i < n; ++i) out[(i + k) % n] = w[i];
  return out;
}

}  // namespace

Cnf make_circuit_parity_bench(const CircuitParityOptions& options,
                              const std::string& name) {
  if (options.state_bits == 0 || options.input_bits == 0)
    throw std::invalid_argument("circuit bench needs state and input bits");
  Rng rng(options.seed);
  Circuit c;
  std::vector<Sig> state = c.input_word(options.state_bits, "s");
  const std::vector<Sig> pi = c.input_word(options.input_bits, "x");

  // Stretch the primary inputs to state width by repetition.
  std::vector<Sig> xw(options.state_bits);
  for (std::size_t i = 0; i < options.state_bits; ++i)
    xw[i] = pi[i % options.input_bits];

  // Nonlinear mixing rounds: add, rotate-XOR, majority — an ALU-ish
  // datapath in the spirit of the s-series next-state logic.
  for (std::size_t round = 0; round < options.rounds; ++round) {
    const auto sum = c.add_word(state, xw);
    const auto rot = rotate_left(sum, 1 + round % 3);
    std::vector<Sig> mixed(options.state_bits);
    for (std::size_t i = 0; i < options.state_bits; ++i) {
      const Sig a = sum[i];
      const Sig b = rot[i];
      const Sig m = c.maj3(a, b, state[(i + 2) % options.state_bits]);
      mixed[i] = c.lxor(c.lxor(a, b), m);
    }
    state = std::move(mixed);
  }

  // Outputs: next-state bits plus a few derived observation signals.
  std::vector<Sig> observables = state;
  for (std::size_t i = 0; i + 1 < options.state_bits; i += 2)
    observables.push_back(c.land(state[i], state[i + 1]));

  // Reference simulation fixes satisfiable parity targets.
  std::vector<bool> ref_inputs;
  for (std::size_t i = 0; i < c.num_inputs(); ++i) ref_inputs.push_back(rng.flip());
  Circuit probe = c;  // simulate the observables via a probing copy
  for (const Sig s : observables) probe.add_output(s);
  const auto ref = probe.simulate(ref_inputs);

  // Parity conditions on random subsets of observables.
  for (std::size_t k = 0; k < options.parity_constraints; ++k) {
    std::vector<Sig> subset;
    bool target = false;
    for (std::size_t i = 0; i < observables.size(); ++i) {
      if (rng.flip()) {
        subset.push_back(observables[i]);
        target ^= ref[i];
      }
    }
    if (subset.empty()) {
      subset.push_back(observables[k % observables.size()]);
      target = ref[k % observables.size()];
    }
    const Sig parity = c.xor_n(subset);
    c.add_output(target ? parity : Circuit::lnot(parity));
  }

  auto enc = tseitin_encode(c);
  enc.cnf.name = name;
  return std::move(enc.cnf);
}

AffineParityBench make_affine_parity_bench(const AffineParityOptions& options,
                                           const std::string& name) {
  Rng rng(options.seed);
  Circuit c;
  std::vector<Sig> word = c.input_word(options.input_bits, "x");
  const std::size_t n = options.input_bits;

  // Symbolic GF(2) shadow: signal i of `word` as a linear form over inputs.
  std::vector<Gf2Vector> forms;
  forms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Gf2Vector f(n);
    f.set(i, true);
    forms.push_back(std::move(f));
  }

  // Affine mixing: word[i] ^= word[(i+r)%n]  (LFSR-like diffusion).
  for (std::size_t round = 0; round < options.rounds; ++round) {
    const std::size_t r = 1 + round * 2 % (n - 1);
    std::vector<Sig> next(n);
    std::vector<Gf2Vector> next_forms = forms;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = c.lxor(word[i], word[(i + r) % n]);
      next_forms[i].xor_with(forms[(i + r) % n]);
    }
    word = std::move(next);
    forms = std::move(next_forms);
  }

  // Random parity constraints on the mixed word; track their linear forms
  // to compute the system's rank (and thus the exact count).
  Gf2System system(n);
  for (std::size_t k = 0; k < options.parity_constraints; ++k) {
    std::vector<Sig> subset;
    Gf2Vector combined(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.flip()) {
        subset.push_back(word[i]);
        combined.xor_with(forms[i]);
      }
    }
    if (subset.empty()) {
      subset.push_back(word[k % n]);
      combined.xor_with(forms[k % n]);
    }
    const bool rhs = rng.flip();
    const Sig parity = c.xor_n(subset);
    c.add_output(rhs ? parity : Circuit::lnot(parity));
    std::vector<std::uint32_t> cols;
    for (std::uint32_t i = 0; i < n; ++i)
      if (combined.get(i)) cols.push_back(i);
    // A constraint `0 = rhs` is either trivial or unsatisfiable; both are
    // handled by the consistency flag below.
    system.add_constraint(cols, rhs);
  }

  AffineParityBench bench;
  auto enc = tseitin_encode(c);
  enc.cnf.name = name;
  bench.cnf = std::move(enc.cnf);
  bench.rank = system.rank();
  bench.witness_count = system.consistent()
                            ? BigUint::pow2(n - system.rank())
                            : BigUint{};
  return bench;
}

AffineParityBench make_case110_like(std::size_t input_bits,
                                    std::size_t parity_constraints) {
  for (std::uint64_t seed = 1; seed < 1000; ++seed) {
    AffineParityOptions options;
    options.input_bits = input_bits;
    options.rounds = 3;
    options.parity_constraints = parity_constraints;
    options.seed = seed;
    AffineParityBench bench =
        make_affine_parity_bench(options, "case110_like");
    if (bench.rank == parity_constraints && !bench.witness_count.is_zero())
      return bench;
  }
  throw std::logic_error("case110_like: no full-rank seed found");
}

}  // namespace unigen::workloads
