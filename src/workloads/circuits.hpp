#pragma once
// Circuit-with-parity benchmark family — the stand-in for the paper's
// ISCAS89-derived instances ("constraints arising from ISCAS89 circuits
// with parity conditions on randomly chosen subsets of outputs and
// next-state variables") and its `case*` instances.  See DESIGN.md §3 for
// the substitution argument.
//
// Two generators:
//   * make_circuit_parity_bench — a nonlinear sequential-circuit step
//     (adder/majority/XOR mixing rounds over state and primary inputs) with
//     random parity conditions on the outputs.  Independent support =
//     {state, inputs}; the Tseitin core is the dependent support.
//   * make_affine_parity_bench — XOR/rotation-only (GF(2)-affine) mixing;
//     the generator computes the induced linear system symbolically, so the
//     exact witness count 2^(inputs − rank) is known by construction.  Used
//     for the Figure-1 instance (case110 substitute with |R_F| = 2^14) and
//     for counting tests.

#include <cstdint>
#include <string>

#include "cnf/cnf.hpp"
#include "util/bigint.hpp"

namespace unigen::workloads {

struct CircuitParityOptions {
  std::size_t state_bits = 16;
  std::size_t input_bits = 8;
  std::size_t rounds = 2;             ///< mixing depth (grows |X|)
  std::size_t parity_constraints = 5; ///< conditions on outputs
  std::uint64_t seed = 1;
};

/// Satisfiable by construction: the parity targets are read off a random
/// reference simulation.
Cnf make_circuit_parity_bench(const CircuitParityOptions& options,
                              const std::string& name);

struct AffineParityOptions {
  std::size_t input_bits = 32;
  std::size_t rounds = 2;
  std::size_t parity_constraints = 18;
  std::uint64_t seed = 1;
};

struct AffineParityBench {
  Cnf cnf;
  /// Exact witness count: 2^(input_bits − rank of the parity system).
  BigUint witness_count;
  std::size_t rank = 0;
};

AffineParityBench make_affine_parity_bench(const AffineParityOptions& options,
                                           const std::string& name);

/// The Figure-1 instance: an affine bench searched over seeds until the
/// parity system has full rank, giving exactly 2^(input_bits −
/// parity_constraints) witnesses (16384 with the defaults, matching the
/// paper's case110).
AffineParityBench make_case110_like(std::size_t input_bits = 32,
                                    std::size_t parity_constraints = 18);

}  // namespace unigen::workloads
