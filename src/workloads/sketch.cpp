#include "workloads/sketch.hpp"

#include <algorithm>
#include <stdexcept>

#include "cnf/circuit.hpp"
#include "cnf/tseitin.hpp"
#include "util/rng.hpp"

namespace unigen::workloads {
namespace {

using Sig = Circuit::Sig;

/// popcount(bits) as a little-endian word, via carry-save full-adder
/// reduction by weight column — the standard bit-count datapath.
std::vector<Sig> popcount_word(Circuit& c, std::vector<Sig> bits) {
  if (bits.empty()) return {Circuit::kFalse};
  std::vector<std::vector<Sig>> columns;
  columns.push_back(std::move(bits));
  std::vector<Sig> result;
  for (std::size_t w = 0; w < columns.size(); ++w) {
    // Note: carry_to may reallocate `columns`; always index, never hold a
    // reference across it.
    auto carry_to = [&](Sig s) {
      if (columns.size() == w + 1) columns.emplace_back();
      columns[w + 1].push_back(s);
    };
    while (columns[w].size() >= 3) {
      const Sig a = columns[w][columns[w].size() - 1];
      const Sig b = columns[w][columns[w].size() - 2];
      const Sig d = columns[w][columns[w].size() - 3];
      columns[w].resize(columns[w].size() - 3);
      columns[w].push_back(c.lxor(c.lxor(a, b), d));  // sum at this weight
      carry_to(c.maj3(a, b, d));
    }
    if (columns[w].size() == 2) {
      const Sig a = columns[w][0], b = columns[w][1];
      columns[w].clear();
      columns[w].push_back(c.lxor(a, b));
      carry_to(c.land(a, b));
    }
    result.push_back(columns[w].empty() ? Circuit::kFalse : columns[w][0]);
  }
  return result;
}

}  // namespace

SketchBench make_sketch_bench(const SketchOptions& options,
                              const std::string& name) {
  if (options.spec_input_bits > 16)
    throw std::invalid_argument("sketch: spec_input_bits > 16 is impractical");
  if (options.mode_bits > 63 || options.threshold == 0 ||
      options.threshold > (std::uint64_t{1} << options.mode_bits))
    throw std::invalid_argument("sketch: bad mode/threshold combination");

  Rng rng(options.seed);
  Circuit c;
  const auto selector = c.input_word(options.selector_bits, "c");
  const auto mode = c.input_word(options.mode_bits, "d");

  // Hidden spec subset T.
  std::vector<bool> spec_subset(options.selector_bits);
  for (std::size_t i = 0; i < options.selector_bits; ++i)
    spec_subset[i] = rng.flip();

  // One interpreter instantiation per spec input vector.  Spec inputs wider
  // than the selector word wrap around (every selector bit is still pinned
  // because all unit vectors occur among the instantiations).
  //
  // Each instantiation routes the selected bits through a popcount datapath
  // and then adds a per-instance nonce constant through a ripple-carry
  // chain.  Since lsb(popcount(v) + nonce) = parity(v) XOR (nonce & 1), the
  // asserted low bit pins exactly the parity — but the carry chain is a
  // structurally distinct circuit per instantiation, mirroring real sketch
  // encodings, which instantiate the interpreter separately per input with
  // no cross-instance sharing (structural hashing would otherwise collapse
  // the copies and shrink |X| unrealistically).
  const std::uint64_t instances = std::uint64_t{1} << options.spec_input_bits;
  Rng nonce_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  std::size_t count_width = 1;
  while ((std::size_t{1} << count_width) <= options.selector_bits)
    ++count_width;
  const std::size_t acc_width = count_width + 3;
  for (std::uint64_t input = 0; input < instances; ++input) {
    std::vector<Sig> selected;
    bool spec_value = false;
    for (std::size_t i = 0; i < options.selector_bits; ++i) {
      const bool input_bit = (input >> (i % options.spec_input_bits)) & 1u;
      if (input_bit) selected.push_back(selector[i]);
      spec_value ^= (spec_subset[i] && input_bit);
    }
    std::vector<Sig> count = popcount_word(c, std::move(selected));
    count.resize(acc_width, Circuit::kFalse);
    const std::uint64_t nonce =
        nonce_rng.below(std::uint64_t{1} << (acc_width - 1));
    const auto sum =
        c.add_word(count, c.constant_word(nonce, acc_width));
    spec_value ^= (nonce & 1u) != 0;
    c.add_output(spec_value ? sum[0] : Circuit::lnot(sum[0]));
  }

  // Don't-care mode word, lightly constrained: d < threshold.
  const auto bound = c.constant_word(options.threshold, options.mode_bits);
  c.add_output(c.ult_word(mode, bound));

  SketchBench bench;
  auto enc = tseitin_encode(c);
  enc.cnf.name = name;
  bench.cnf = std::move(enc.cnf);
  // Valid selectors: one XOR equation per residue class of selector bits.
  const std::size_t classes =
      std::min(options.spec_input_bits, options.selector_bits);
  bench.witness_count =
      BigUint(options.threshold) << (options.selector_bits - classes);
  return bench;
}

}  // namespace unigen::workloads
