#pragma once
// Program-synthesis benchmark family — the stand-in for the paper's
// sketch-derived instances (EnqueueSeqSK, LoginService2, Sort, Karatsuba,
// ProcessBean, tutorial3).  Those instances share one structural signature:
// a *huge* Tseitin support (up to 486k variables: the program interpreter
// unrolled over every spec input) with a *tiny* independent support (tens
// of control bits).  See DESIGN.md §3.
//
// Construction: synthesize the selector word c of a parity function.
//   * spec: a hidden random subset T of the k spec inputs;
//     spec(input) = XOR_{i∈T} input_i.
//   * program: prog(input; c) = lsb(popcount(c & input)) — semantically the
//     same parity, but computed through a full adder network, so each of
//     the 2^k spec instantiations contributes a large nonlinear circuit.
//   * check: ∧_{input ∈ {0,1}^k} prog(input; c) = spec(input).  Spec inputs
//     drive selector bits by residue class mod k, so the check pins the
//     XOR of (c_i ⊕ T_i) per class: #valid selectors =
//     2^(selector_bits − min(k, selector_bits)).
//   * mode word d (don't-care controls): constrained by d < threshold.
// Witness count is therefore known by construction:
//     threshold · 2^(selector_bits − min(spec_input_bits, selector_bits)).
// Sampling set = {c, d}; everything else is the dependent Tseitin core.

#include <cstdint>
#include <string>

#include "cnf/cnf.hpp"
#include "util/bigint.hpp"

namespace unigen::workloads {

struct SketchOptions {
  /// Spec checked over all 2^spec_input_bits input vectors.
  std::size_t spec_input_bits = 6;
  /// Selector word width (|c|).
  std::size_t selector_bits = 12;
  /// Don't-care mode word width (|d|).
  std::size_t mode_bits = 16;
  /// Constraint d < threshold; must satisfy 0 < threshold <= 2^mode_bits.
  std::uint64_t threshold = 40000;
  std::uint64_t seed = 1;
};

struct SketchBench {
  Cnf cnf;
  /// threshold · 2^(selector_bits − min(spec_input_bits, selector_bits)).
  BigUint witness_count;
};

SketchBench make_sketch_bench(const SketchOptions& options,
                              const std::string& name);

}  // namespace unigen::workloads
