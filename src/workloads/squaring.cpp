#include "workloads/squaring.hpp"

#include <stdexcept>

#include "cnf/circuit.hpp"
#include "cnf/tseitin.hpp"
#include "util/rng.hpp"

namespace unigen::workloads {

Cnf make_squaring_bench(const SquaringOptions& options,
                        const std::string& name) {
  if (options.constrained_bits > options.product_bits)
    throw std::invalid_argument("squaring: more constraints than product bits");
  Rng rng(options.seed);
  Circuit c;
  const auto x = c.input_word(options.operand_bits, "x");
  const auto y = c.input_word(options.operand_bits, "y");
  const auto product = c.mul_word(x, y, options.product_bits);

  // Reference operands fix satisfiable output-bit targets.
  std::vector<bool> ref_inputs;
  for (std::size_t i = 0; i < 2 * options.operand_bits; ++i)
    ref_inputs.push_back(rng.flip());
  Circuit probe = c;
  for (const auto s : product) probe.add_output(s);
  const auto ref_product = probe.simulate(ref_inputs);

  // Pin a random subset of product bits to the reference value.
  std::vector<std::size_t> positions(options.product_bits);
  for (std::size_t i = 0; i < options.product_bits; ++i) positions[i] = i;
  rng.shuffle(positions);
  for (std::size_t k = 0; k < options.constrained_bits; ++k) {
    const std::size_t bit = positions[k];
    c.add_output(ref_product[bit] ? product[bit]
                                  : Circuit::lnot(product[bit]));
  }

  auto enc = tseitin_encode(c);
  enc.cnf.name = name;
  return std::move(enc.cnf);
}

}  // namespace unigen::workloads
