#pragma once
// Bit-blasted arithmetic benchmark family — the stand-in for the paper's
// Squaring1–Squaring16 instances (bit-blasted equivalence/range constraints
// over multiplier networks, |S| = 72 in the paper).  See DESIGN.md §3.
//
// The instance constrains selected output bits of a bit-blasted product
// x·y to the values obtained from a hidden reference pair, so the formula
// is satisfiable by construction while the solution set is the (large,
// irregular) preimage of those output bits.

#include <cstdint>
#include <string>

#include "cnf/cnf.hpp"

namespace unigen::workloads {

struct SquaringOptions {
  /// Bits per operand; the sampling set has 2x this (x and y), so the
  /// paper's |S| = 72 corresponds to operand_bits = 36.
  std::size_t operand_bits = 36;
  /// Width of the computed (truncated) product.
  std::size_t product_bits = 40;
  /// Number of product bits pinned to the reference value.
  std::size_t constrained_bits = 10;
  std::uint64_t seed = 1;
};

Cnf make_squaring_bench(const SquaringOptions& options,
                        const std::string& name);

}  // namespace unigen::workloads
