#include "workloads/suite.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "workloads/circuits.hpp"
#include "workloads/sketch.hpp"
#include "workloads/squaring.hpp"

namespace unigen::workloads {
namespace {

/// Shrinks a sketch's spec width by log4-ish steps as scale decreases;
/// each step halves the instantiation count and thus |X|.
std::size_t scaled_spec_bits(std::size_t base, double scale) {
  if (scale >= 1.0) return base;
  const auto shrink = static_cast<std::size_t>(std::round(std::log2(1.0 / scale)));
  return std::max<std::size_t>(4, base > shrink ? base - shrink : 4);
}

SuiteInstance squaring_row(const std::string& name, const std::string& ref,
                           std::uint64_t seed, std::size_t constrained,
                           double scale) {
  SquaringOptions opts;
  // |S| = 72 (paper fidelity) from scale 0.5 upward; a smaller multiplier
  // below that so time-boxed default runs stay fast.
  opts.operand_bits = scale >= 0.5 ? 36 : 24;
  opts.product_bits = scale >= 0.5 ? 40 : 28;
  opts.constrained_bits = std::min(constrained, opts.product_bits / 3);
  opts.seed = seed;
  SuiteInstance row;
  row.name = name;
  row.family = "squaring";
  row.paper_ref = ref;
  row.cnf = make_squaring_bench(opts, name);
  return row;
}

SuiteInstance circuit_row(const std::string& name, const std::string& ref,
                          std::size_t state_bits, std::size_t input_bits,
                          std::size_t rounds, std::size_t parity,
                          std::uint64_t seed) {
  CircuitParityOptions opts;
  opts.state_bits = state_bits;
  opts.input_bits = input_bits;
  opts.rounds = rounds;
  opts.parity_constraints = parity;
  opts.seed = seed;
  SuiteInstance row;
  row.name = name;
  row.family = "circuit";
  row.paper_ref = ref;
  row.cnf = make_circuit_parity_bench(opts, name);
  return row;
}

SuiteInstance sketch_row(const std::string& name, const std::string& ref,
                         std::size_t spec_bits, std::size_t selector_bits,
                         std::size_t mode_bits, std::uint64_t threshold,
                         std::uint64_t seed, double scale) {
  SketchOptions opts;
  opts.spec_input_bits = scaled_spec_bits(spec_bits, scale);
  opts.selector_bits = selector_bits;
  opts.mode_bits = mode_bits;
  opts.threshold = threshold;
  opts.seed = seed;
  SuiteInstance row;
  row.name = name;
  row.family = "sketch";
  row.paper_ref = ref;
  SketchBench bench = make_sketch_bench(opts, name);
  row.cnf = std::move(bench.cnf);
  row.known_count = std::move(bench.witness_count);
  return row;
}

}  // namespace

std::vector<SuiteInstance> make_table1_suite(double scale) {
  std::vector<SuiteInstance> suite;
  // Paper Table 1, in row order: |X| / |S| of the original in paper_ref.
  suite.push_back(squaring_row("Squaring7_like", "Squaring7 (1628/72)", 7, 10, scale));
  suite.push_back(squaring_row("squaring8_like", "squaring8 (1101/72)", 8, 9, scale));
  suite.push_back(squaring_row("Squaring10_like", "Squaring10 (1099/72)", 10, 9, scale));
  suite.push_back(circuit_row("s1196a_7_4_like", "s1196a_7_4 (708/32)",
                              24, 8, 3, 6, 1196));
  suite.push_back(circuit_row("s1238a_7_4_like", "s1238a_7_4 (704/32)",
                              24, 8, 3, 7, 1238));
  suite.push_back(circuit_row("s953a_3_2_like", "s953a_3_2 (515/45)",
                              32, 13, 2, 6, 953));
  suite.push_back(sketch_row("EnqueueSeqSK_like", "EnqueueSeqSK (16466/42)",
                             7, 26, 16, 40000, 21, scale));
  suite.push_back(sketch_row("LoginService2_like", "LoginService2 (11511/36)",
                             6, 20, 16, 50000, 22, scale));
  suite.push_back(sketch_row("LLReverse_like", "LLReverse (63797/25)",
                             9, 15, 10, 700, 23, scale));
  suite.push_back(sketch_row("Sort_like", "Sort (12125/52)",
                             6, 36, 16, 60000, 24, scale));
  suite.push_back(sketch_row("Karatsuba_like", "Karatsuba (19594/41)",
                             8, 25, 16, 30000, 25, scale));
  suite.push_back(sketch_row("tutorial3_like", "tutorial3 (486193/31)",
                             13, 21, 10, 800, 26, scale));
  return suite;
}

std::vector<SuiteInstance> make_table2_suite(double scale) {
  std::vector<SuiteInstance> suite;
  // case* family (small circuit instances).
  suite.push_back(circuit_row("Case121_like", "Case121 (291/48)", 36, 12, 1, 5, 121));
  suite.push_back(circuit_row("Case1_b11_like", "Case1_b11_1 (340/48)", 36, 12, 1, 6, 111));
  suite.push_back(circuit_row("Case2_b12_like", "Case2_b12_2 (827/45)", 33, 12, 2, 6, 122));
  suite.push_back(circuit_row("Case35_like", "Case35 (400/46)", 34, 12, 1, 7, 35));
  // Squaring family.
  suite.push_back(squaring_row("Squaring1_like", "Squaring1 (891/72)", 1, 8, scale));
  suite.push_back(squaring_row("squaring8_like", "squaring8 (1101/72)", 8, 9, scale));
  suite.push_back(squaring_row("Squaring10_like", "Squaring10 (1099/72)", 10, 9, scale));
  suite.push_back(squaring_row("Squaring7_like", "Squaring7 (1628/72)", 7, 10, scale));
  suite.push_back(squaring_row("Squaring9_like", "Squaring9 (1434/72)", 9, 10, scale));
  suite.push_back(squaring_row("Squaring14_like", "Squaring14 (1458/72)", 14, 11, scale));
  suite.push_back(squaring_row("Squaring12_like", "Squaring12 (1507/72)", 12, 11, scale));
  suite.push_back(squaring_row("Squaring16_like", "Squaring16 (1627/72)", 16, 12, scale));
  // s526 family (|S| = 24).
  suite.push_back(circuit_row("s526_3_2_like", "s526_3_2 (365/24)", 18, 6, 2, 5, 526));
  suite.push_back(circuit_row("s526a_3_2_like", "s526a_3_2 (366/24)", 18, 6, 2, 5, 527));
  suite.push_back(circuit_row("s526_15_7_like", "s526_15_7 (452/24)", 18, 6, 3, 7, 528));
  // s1196/s1238 family (|S| = 32).
  suite.push_back(circuit_row("s1196a_7_4_like", "s1196a_7_4 (708/32)", 24, 8, 3, 6, 1196));
  suite.push_back(circuit_row("s1196a_3_2_like", "s1196a_3_2 (690/32)", 24, 8, 3, 5, 1197));
  suite.push_back(circuit_row("s1238a_7_4_like", "s1238a_7_4 (704/32)", 24, 8, 3, 7, 1238));
  suite.push_back(circuit_row("s1238a_15_7_like", "s1238a_15_7 (773/32)", 24, 8, 4, 8, 1239));
  suite.push_back(circuit_row("s1196a_15_7_like", "s1196a_15_7 (777/32)", 24, 8, 4, 7, 1198));
  suite.push_back(circuit_row("s1238a_3_2_like", "s1238a_3_2 (686/32)", 24, 8, 3, 5, 1240));
  suite.push_back(circuit_row("s953a_3_2_like", "s953a_3_2 (515/45)", 32, 13, 2, 6, 953));
  // Program-synthesis family.
  suite.push_back(sketch_row("TreeMax_like", "TreeMax (24859/19)",
                             10, 11, 8, 150, 27, scale));
  suite.push_back(sketch_row("LLReverse_like", "LLReverse (63797/25)",
                             9, 15, 10, 700, 23, scale));
  suite.push_back(sketch_row("LoginService2_like", "LoginService2 (11511/36)",
                             6, 20, 16, 50000, 22, scale));
  suite.push_back(sketch_row("EnqueueSeqSK_like", "EnqueueSeqSK (16466/42)",
                             7, 26, 16, 40000, 21, scale));
  suite.push_back(sketch_row("ProjectService3_like", "ProjectService3 (3175/55)",
                             5, 39, 16, 20000, 28, scale));
  suite.push_back(sketch_row("Sort_like", "Sort (12125/52)",
                             6, 36, 16, 60000, 24, scale));
  suite.push_back(sketch_row("Karatsuba_like", "Karatsuba (19594/41)",
                             8, 25, 16, 30000, 25, scale));
  suite.push_back(sketch_row("ProcessBean_like", "ProcessBean (4768/64)",
                             5, 48, 16, 25000, 29, scale));
  suite.push_back(sketch_row("tutorial3_like", "tutorial3 (486193/31)",
                             13, 21, 10, 800, 26, scale));
  return suite;
}

double bench_scale_from_env(double fallback) {
  const char* raw = std::getenv("UNIGEN_BENCH_SCALE");
  if (raw == nullptr) return fallback;
  const double parsed = std::atof(raw);
  if (parsed <= 0.0) return fallback;
  return std::min(parsed, 1.0);
}

}  // namespace unigen::workloads
