#include "fault_inject.hpp"

#include <algorithm>

namespace unigen {
namespace {

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool ScheduledFaults::inject_timeout(std::uint64_t key, std::uint64_t call) {
  if (plan_.find({key, call}) == plan_.end()) return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

SeededRateFaults::SeededRateFaults(std::uint64_t seed, double rate)
    : seed_(seed),
      threshold_(static_cast<std::uint64_t>(
          std::clamp(rate, 0.0, 1.0) * 4294967296.0)) {}

bool SeededRateFaults::would_fire(std::uint64_t key, std::uint64_t call) const {
  const std::uint64_t h = mix64(seed_ ^ mix64(key ^ mix64(call)));
  return (h & 0xffffffffull) < threshold_;
}

bool SeededRateFaults::inject_timeout(std::uint64_t key, std::uint64_t call) {
  if (!would_fire(key, call)) return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool CancelAfterProbes::inject_timeout(std::uint64_t /*key*/,
                                       std::uint64_t /*call*/) {
  // fetch_sub walks remaining_ through 0 exactly once; the probe that takes
  // it there trips the token.  Later probes see the wrapped value and do
  // nothing — the token stays tripped until the owner resets it.
  std::uint64_t cur = remaining_.load(std::memory_order_relaxed);
  while (cur > 0 && !remaining_.compare_exchange_weak(
                        cur, cur - 1, std::memory_order_relaxed)) {
  }
  if (cur == 1) token_.cancel();
  return false;
}

}  // namespace unigen
