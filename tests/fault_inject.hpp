#pragma once
// Deterministic fault injectors for the robustness test suite.
//
// Production code carries only the FaultInjector seam (service/budget.hpp);
// the implementations live here, in the test tree, so a release binary
// cannot accidentally link a fault plan.  Both injectors are deterministic
// in the schedule-independent coordinates (key, call) — an ApproxMC
// iteration index or a sampling request's stream, and the probe ordinal
// within it — so a plan fires at the same probes at every thread count,
// across a cut-and-resume, and on every replica of a seeded run.  Both are
// thread-safe: the decision is a pure function, and the only mutable state
// is the relaxed fired-counter used by tests to assert that every scheduled
// fault actually surfaced.
//
// Process-level faults (worker self-SIGKILL, sleep-forever hangs) follow
// the same (key, attempt) keying but cannot ride a function pointer across
// an exec boundary — they travel as the UNIGEN_WORKERD_FAULTS env var,
// built by ProcessFaultPlan (service/fleet_options.hpp) and interpreted by
// the unigen_workerd binary.

#include <cstdint>
#include <initializer_list>
#include <set>
#include <utility>

#include "service/budget.hpp"

namespace unigen {

/// Fires exactly at the scheduled (key, call) pairs.  The plan is fixed at
/// construction (immutable during a run, hence safely shared by workers).
class ScheduledFaults final : public FaultInjector {
 public:
  using Probe = std::pair<std::uint64_t, std::uint64_t>;

  ScheduledFaults() = default;
  ScheduledFaults(std::initializer_list<Probe> plan) : plan_(plan) {}
  explicit ScheduledFaults(std::set<Probe> plan) : plan_(std::move(plan)) {}

  bool inject_timeout(std::uint64_t key, std::uint64_t call) override;

  /// Faults that actually fired so far (a probe the algorithm never reached
  /// does not count — honest accounting is the point).
  std::uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }
  std::size_t planned() const { return plan_.size(); }

 private:
  std::set<Probe> plan_;
  std::atomic<std::uint64_t> fired_{0};
};

/// Seed-keyed rate injector: probe (key, call) faults iff
/// hash(seed, key, call) mod 2^32 < rate · 2^32.  Stateless apart from the
/// fired-counter, so the decision is reproducible from (seed, rate) alone —
/// the fuzz harness derives both from its case seed.
class SeededRateFaults final : public FaultInjector {
 public:
  /// `rate` in [0, 1]; clamped.
  SeededRateFaults(std::uint64_t seed, double rate);

  bool inject_timeout(std::uint64_t key, std::uint64_t call) override;

  std::uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  /// The decision function, exposed so tests can predict a plan.
  bool would_fire(std::uint64_t key, std::uint64_t call) const;

 private:
  std::uint64_t seed_;
  std::uint64_t threshold_;  ///< fire iff mix(...) low 32 bits < threshold_
  std::atomic<std::uint64_t> fired_{0};
};

/// A FaultInjector that trips a CancelToken after a fixed number of probe
/// inspections and never injects a timeout itself.  Because the injector is
/// consulted at every probe boundary, this turns the cancellation point
/// into a deterministic event — the way tests drive cancel-mid-epoch
/// without racing a second thread against the run.
class CancelAfterProbes final : public FaultInjector {
 public:
  CancelAfterProbes(CancelToken& token, std::uint64_t probes)
      : token_(token), remaining_(probes) {}

  bool inject_timeout(std::uint64_t key, std::uint64_t call) override;

 private:
  CancelToken& token_;
  std::atomic<std::uint64_t> remaining_;
};

}  // namespace unigen
