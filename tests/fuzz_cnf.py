#!/usr/bin/env python3
"""Randomized fuzz driver for the counting/sampling stack.

Feeds random seeds to the `fuzz_cnf` oracle binary (tests/fuzz_cnf_main.cpp),
which generates one deterministic random CNF per seed and differentially
tests ExactCounter, the enumerator-over-S oracle, ApproxMC's (1+eps) band,
simplify-on/off count safety, and serial-vs-parallel count equality.

Every failure is reproducible from its seed alone:

    tests/fuzz_cnf.py --repro 123456          # re-run one failing seed
    build/fuzz_cnf 123456                     # same, without python

Modes:
    tests/fuzz_cnf.py                         # endless randomized fuzzing
    tests/fuzz_cnf.py --runs 2000             # bounded randomized run
    tests/fuzz_cnf.py --smoke                 # the fixed-seed smoke set
                                              # (what the fuzz_smoke ctest runs)

The binary is looked up in build/ next to this file's repo root; override
with --binary.
"""

import argparse
import pathlib
import random
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BINARY = REPO_ROOT / "build" / "fuzz_cnf"

# The fixed smoke set: first seeds of the randomized space, cheap enough to
# stay well inside the 30-second ctest budget on one core.
SMOKE_FIRST = 1
SMOKE_COUNT = 25


def run_batch(binary, seeds):
    """Runs one batch of seeds; returns the failing seed or None."""
    cmd = [str(binary)] + [str(s) for s in seeds]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 0:
        return None
    sys.stderr.write(proc.stderr)
    # The binary stops at the first failing seed and names it; recover it
    # for the repro line even if stderr parsing fails.
    for line in proc.stderr.splitlines():
        if "FUZZ FAILURE at seed" in line:
            return int(line.split("seed")[1].split(":")[0].strip())
    return seeds[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", type=pathlib.Path, default=DEFAULT_BINARY)
    parser.add_argument("--runs", type=int, default=0,
                        help="total seeds to try (0 = run until interrupted)")
    parser.add_argument("--batch", type=int, default=20,
                        help="seeds per binary invocation")
    parser.add_argument("--seed", type=int, default=None,
                        help="base for the seed sequence (default: entropy)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the fixed smoke seed set and exit")
    parser.add_argument("--repro", type=int, default=None, metavar="SEED",
                        help="re-run one seed and exit")
    args = parser.parse_args()

    if not args.binary.exists():
        sys.exit(f"fuzz binary not found at {args.binary}; build the repo "
                 f"first (cmake --build build) or pass --binary")

    if args.repro is not None:
        failed = run_batch(args.binary, [args.repro])
        if failed is None:
            print(f"seed {args.repro} passes")
            return
        sys.exit(1)

    if args.smoke:
        failed = run_batch(args.binary,
                           range(SMOKE_FIRST, SMOKE_FIRST + SMOKE_COUNT))
        if failed is not None:
            sys.exit(f"smoke set failed at seed {failed}; "
                     f"repro: {args.binary} {failed}")
        print(f"fuzz smoke: {SMOKE_COUNT} seeds passed")
        return

    rng = random.Random(args.seed)
    tried = 0
    started = time.time()
    while args.runs <= 0 or tried < args.runs:
        batch = [rng.randrange(2**63) for _ in range(args.batch)]
        if args.runs > 0:
            batch = batch[: args.runs - tried]
        failed = run_batch(args.binary, batch)
        if failed is not None:
            sys.exit(f"\nfuzz failure at seed {failed}\n"
                     f"repro: {args.binary} {failed}\n"
                     f"       tests/fuzz_cnf.py --repro {failed}")
        tried += len(batch)
        rate = tried / max(time.time() - started, 1e-9)
        print(f"\r{tried} seeds passed ({rate:.1f}/s)", end="", flush=True)
    print()


if __name__ == "__main__":
    main()
