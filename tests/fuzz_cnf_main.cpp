// fuzz_cnf — randomized differential-testing driver (the oracle half of
// tests/fuzz_cnf.py, and the fixed-seed `fuzz_smoke` ctest).
//
// One seed = one deterministic fuzz case (tests/helpers.hpp:
// make_fuzz_case): a small random CNF, sometimes with XOR rows, sometimes
// with a random sampling set S.  Per case the driver cross-checks the
// stack's independent implementations against brute force and against each
// other:
//
//   1. ExactCounter (DPLL# with components/caching) vs. brute-force model
//      enumeration over the full support;
//   2. projected enumeration over S (count_projected_by_enumeration, the
//      blocking-clause oracle) vs. the brute-forced projection count;
//   3. ApproxMC: exact-mode results equal the truth; hashed estimates land
//      within the (1+ε) band (widened by the empirical slack the unit
//      suite uses, so a pass is deterministic per seed);
//   4. simplify-on vs. simplify-off ApproxMC byte-equality (count safety);
//   5. serial vs. parallel (2-thread) ApproxMC byte-equality (the
//      scheduling-independence contract);
//   6. the anytime contract under a seed-derived deterministic budget and
//      injected fault plan: statuses are honest (a Partial estimate comes
//      from completed iterations only, with the achieved-δ label), and
//      cutting the run mid-grant then resuming with the remainder is
//      byte-identical to the uninterrupted run;
//   7. the session server under a seed-derived register/sample/evict
//      script over three formulas with an LRU cap tight enough to thrash:
//      every response is byte-identical to a fresh reference pool serving
//      the same per-session request sequence (stream continuation — the
//      response's `warm` flag says when an eviction restarted a session's
//      streams, at which point the reference pool is rebuilt too), and a
//      cancelled request reports honest statuses while leaving the session
//      byte-exactly reusable.
//
// Exit code 0 when every seed passes; on the first failure it prints a
// one-line repro (`fuzz_cnf <seed>` / `fuzz_cnf.py --repro <seed>`) plus
// the DIMACS-ish summary of the offending case and exits 1.
//
// Usage: fuzz_cnf <seed> [<seed> ...]
//        fuzz_cnf --range <first> <count>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "counting/approxmc.hpp"
#include "counting/exact_counter.hpp"
#include "fault_inject.hpp"
#include "helpers.hpp"
#include "service/budget.hpp"
#include "service/sampling_server.hpp"

namespace {

using namespace unigen;

/// Widened acceptance band for hashed estimates, matching the unit suite
/// (test_approxmc.cpp): tolerance log2(1+ε) plus slack so that the
/// per-seed check stays deterministic at δ = 0.05.
constexpr double kLog2Band = 0.84799690655495  /* log2(1.8) */ + 0.6;

struct Failure {
  std::string what;
};

#define FUZZ_CHECK(cond, ...)                                   \
  do {                                                          \
    if (!(cond)) {                                              \
      char buf_[256];                                           \
      std::snprintf(buf_, sizeof buf_, __VA_ARGS__);            \
      return Failure{buf_};                                     \
    }                                                           \
  } while (0)

std::optional<Failure> run_seed(std::uint64_t seed) {
  const test::FuzzCase fc = test::make_fuzz_case(seed);
  const Cnf& cnf = fc.cnf;
  const std::vector<Var>& s = fc.sampling_set;

  // Ground truth by brute force (the generator keeps n <= 12).
  const std::uint64_t truth_total = test::brute_force_count(cnf);
  const std::uint64_t truth_projected =
      test::brute_force_projected_count(cnf, s);

  // 1. ExactCounter vs. brute force over the full support.
  ExactCounter exact;
  const auto ec = exact.count(cnf);
  FUZZ_CHECK(ec.has_value(), "ExactCounter timed out on a %d-var formula",
             cnf.num_vars());
  FUZZ_CHECK(*ec == BigUint(truth_total),
             "ExactCounter=%s but brute force=%" PRIu64,
             ec->to_string().c_str(), truth_total);

  // 2. Enumerator-over-S oracle vs. the brute-forced projection.
  const auto en = count_projected_by_enumeration(cnf, s, truth_projected + 8);
  FUZZ_CHECK(en.has_value(), "projected enumeration hit its bound");
  FUZZ_CHECK(*en == truth_projected,
             "enumerator-over-S=%" PRIu64 " but brute force=%" PRIu64, *en,
             truth_projected);

  // 3. ApproxMC within the (1+ε) band (exact-mode results must be equal).
  ApproxMcOptions amc;
  amc.epsilon = 0.8;
  amc.delta = 0.05;
  Rng amc_rng(seed ^ 0x5eedbeef);
  const ApproxMcResult approx = approx_count(cnf, amc, amc_rng);
  if (truth_projected == 0) {
    FUZZ_CHECK(approx.valid && approx.exact && approx.cell_count == 0,
               "ApproxMC did not report exact 0 on an unsat case");
  } else {
    FUZZ_CHECK(approx.valid, "ApproxMC produced no estimate");
    if (approx.exact) {
      FUZZ_CHECK(approx.cell_count == truth_projected,
                 "ApproxMC exact=%" PRIu64 " but truth=%" PRIu64,
                 approx.cell_count, truth_projected);
    } else {
      const double err =
          std::abs(approx.log2_value() -
                   std::log2(static_cast<double>(truth_projected)));
      FUZZ_CHECK(err <= kLog2Band,
                 "ApproxMC log2=%.3f truth log2=%.3f (err %.3f > band %.3f)",
                 approx.log2_value(),
                 std::log2(static_cast<double>(truth_projected)), err,
                 kLog2Band);
    }
  }

  // 4. Count safety: simplification must not change the reported count.
  {
    ApproxMcOptions off = amc;
    off.simplify.enabled = false;
    Rng rng_on(seed + 1), rng_off(seed + 1);
    const ApproxMcResult a = approx_count(cnf, amc, rng_on);
    const ApproxMcResult b = approx_count(cnf, off, rng_off);
    FUZZ_CHECK(a.valid == b.valid && a.exact == b.exact &&
                   a.cell_count == b.cell_count &&
                   a.hash_count == b.hash_count,
               "simplify on/off mismatch: on=(%d,%d,%" PRIu64 ",%u) "
               "off=(%d,%d,%" PRIu64 ",%u)",
               a.valid, a.exact, a.cell_count, a.hash_count, b.valid,
               b.exact, b.cell_count, b.hash_count);
  }

  // 5. Scheduling independence: serial and parallel counts byte-identical.
  {
    ApproxMcOptions par = amc;
    par.num_threads = 2;
    Rng rng_ser(seed + 2), rng_par(seed + 2);
    const ApproxMcResult a = approx_count(cnf, amc, rng_ser);
    const ApproxMcResult b = approx_count(cnf, par, rng_par);
    FUZZ_CHECK(a.valid == b.valid && a.exact == b.exact &&
                   a.cell_count == b.cell_count &&
                   a.hash_count == b.hash_count,
               "serial/parallel mismatch: serial=(%d,%d,%" PRIu64 ",%u) "
               "parallel=(%d,%d,%" PRIu64 ",%u)",
               a.valid, a.exact, a.cell_count, a.hash_count, b.valid,
               b.exact, b.cell_count, b.hash_count);
  }

  // 6. Anytime under deterministic budgets and injected faults.  The fault
  //    plan is pure in (seed, key, call), so a fresh same-seed injector
  //    replays identically across the reference, cut and resume runs.
  {
    const double rate = 0.08 * static_cast<double>((seed >> 3) % 3);
    ApproxMcOptions any = amc;
    SeededRateFaults ref_faults(seed, rate);
    any.budget.fault = &ref_faults;
    Rng rng_ref(seed + 3);
    const ApproxMcAnytime full = approx_count_anytime(cnf, any, rng_ref);
    // Wall-free fault-only budget: every iteration reaches a deterministic
    // end, so the run concludes — and the verdict must match the estimate.
    FUZZ_CHECK(full.status == RequestStatus::kComplete ||
                   full.status == RequestStatus::kFailed,
               "anytime full run ended %s", to_string(full.status));
    FUZZ_CHECK(full.result.valid ==
                   (full.status == RequestStatus::kComplete),
               "anytime verdict %s but valid=%d", to_string(full.status),
               full.result.valid);
    if (full.result.valid && !full.result.exact) {
      FUZZ_CHECK(full.achieved_delta == approxmc_delta_achieved(
                                            full.result.iterations_succeeded),
                 "achieved_delta %.6f inconsistent with %d estimates",
                 full.achieved_delta, full.result.iterations_succeeded);
    }

    const std::uint64_t total = full.result.bsat_calls;
    if (total > 1) {
      const std::uint64_t first = 1 + (seed % (total - 1));  // in [1, total)
      SeededRateFaults cut_faults(seed, rate);
      ApproxMcOptions cut_opts = amc;
      cut_opts.budget.fault = &cut_faults;
      cut_opts.budget.max_bsat_calls = first;
      Rng rng_cut(seed + 3);
      const ApproxMcAnytime cut = approx_count_anytime(cnf, cut_opts, rng_cut);
      FUZZ_CHECK(cut.status != RequestStatus::kComplete &&
                     cut.status != RequestStatus::kFailed,
                 "cut at %" PRIu64 "/%" PRIu64 " units still concluded (%s)",
                 first, total, to_string(cut.status));
      if (cut.status == RequestStatus::kPartial) {
        FUZZ_CHECK(cut.result.valid, "kPartial without an estimate");
        FUZZ_CHECK(cut.achieved_delta == approxmc_delta_achieved(
                                             cut.result.iterations_succeeded),
                   "partial achieved_delta %.6f vs %d estimates",
                   cut.achieved_delta, cut.result.iterations_succeeded);
      } else {
        FUZZ_CHECK(!cut.result.valid && cut.result.timed_out,
                   "%s but valid=%d timed_out=%d", to_string(cut.status),
                   cut.result.valid, cut.result.timed_out);
      }
      // A partial estimate is built from completed iterations only:
      // unsettled slots must not have contributed any work to the result.
      for (std::size_t i = 0; i < cut.state.outcomes.size(); ++i) {
        FUZZ_CHECK(cut.state.settled[i] || cut.state.outcomes[i].bsat_calls == 0,
                   "unsettled iteration %zu carries work", i);
      }

      SeededRateFaults resume_faults(seed, rate);
      Budget more;
      more.max_bsat_calls = total - first;
      more.fault = &resume_faults;
      const ApproxMcAnytime resumed =
          approx_count_resume(cnf, cut.state, more);
      FUZZ_CHECK(resumed.status == full.status &&
                     resumed.result.valid == full.result.valid &&
                     resumed.result.exact == full.result.exact &&
                     resumed.result.cell_count == full.result.cell_count &&
                     resumed.result.hash_count == full.result.hash_count &&
                     resumed.result.bsat_calls == full.result.bsat_calls &&
                     resumed.result.iterations_succeeded ==
                         full.result.iterations_succeeded &&
                     resumed.achieved_delta == full.achieved_delta,
                 "cut@%" PRIu64 "+resume != uninterrupted: "
                 "(%s,%d,%" PRIu64 ",%u,%" PRIu64 ") vs "
                 "(%s,%d,%" PRIu64 ",%u,%" PRIu64 ")",
                 first, to_string(resumed.status), resumed.result.valid,
                 resumed.result.cell_count, resumed.result.hash_count,
                 resumed.result.bsat_calls, to_string(full.status),
                 full.result.valid, full.result.cell_count,
                 full.result.hash_count, full.result.bsat_calls);
    }
  }

  // 7. The session server replays byte-identically against fresh pools.
  {
    const test::FuzzCase fb = test::make_fuzz_case(seed ^ 0xB10B5EEDull);
    const test::FuzzCase fg = test::make_fuzz_case(seed + 17);
    const Cnf* cnfs[3] = {&cnf, &fb.cnf, &fg.cnf};

    SamplingServerOptions so;
    so.registry.pool.num_threads = 2;
    so.registry.pool.seed = seed ^ 0xF00D;
    so.registry.max_sessions = 2;  // three formulas: the cap thrashes
    SamplingServer server(so);
    SamplerPoolOptions ref_template = so.registry.pool;
    ref_template.num_threads = 1;  // cross-width identity for free
    std::map<std::string, std::unique_ptr<SamplerPool>> refs;

    const auto mirror_check = [&](const Cnf& formula,
                                  const ServerSampleResponse& r,
                                  std::size_t n) -> std::optional<Failure> {
      const std::string key = r.key.hex();
      if (!r.warm)  // cold start or post-eviction: the stream restarts
        refs[key] = std::make_unique<SamplerPool>(formula, ref_template);
      FUZZ_CHECK(refs.count(key) == 1,
                 "server leg: warm response for an unseen session key");
      const auto want = refs[key]->sample_many(n);
      FUZZ_CHECK(want.size() == r.samples.size(),
                 "server leg: %zu slots, reference has %zu",
                 r.samples.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        FUZZ_CHECK(want[i].status == r.samples[i].status &&
                       want[i].witness == r.samples[i].witness,
                   "server leg: response diverges from the fresh pool at "
                   "slot %zu",
                   i);
      }
      return std::nullopt;
    };

    Rng script(seed + 4);
    for (int op = 0; op < 8; ++op) {
      const std::size_t f = static_cast<std::size_t>(script.below(3));
      const std::size_t n = 1 + static_cast<std::size_t>(script.below(3));
      const ServerSampleResponse r = server.sample(*cnfs[f], n);
      FUZZ_CHECK(r.status == RequestStatus::kComplete,
                 "server leg: unbudgeted request ended %s",
                 to_string(r.status));
      if (auto fail = mirror_check(*cnfs[f], r, n)) return fail;
    }

    // Cancel honesty + reusability: warm a session, hit it with a tripped
    // token (streams are consumed; the reference mirrors the same call),
    // then demand the follow-up request still match byte-for-byte.
    const std::size_t f = static_cast<std::size_t>(script.below(3));
    const ServerSampleResponse warm_up = server.sample(*cnfs[f], 2);
    if (auto fail = mirror_check(*cnfs[f], warm_up, 2)) return fail;
    CancelToken token;
    token.cancel();
    Budget cancelled;
    cancelled.cancel = &token;
    const ServerSampleResponse cut = server.sample(*cnfs[f], 3, cancelled);
    FUZZ_CHECK(cut.warm && cut.status == RequestStatus::kCancelled,
               "server leg: cancelled warm request ended %s (warm=%d)",
               to_string(cut.status), cut.warm);
    for (const auto& s : cut.samples)
      FUZZ_CHECK(s.status == SampleResult::Status::kCancelled,
                 "server leg: cancelled request leaked status %d",
                 static_cast<int>(s.status));
    refs[cut.key.hex()]->sample_many_within(3, cancelled);
    const ServerSampleResponse after = server.sample(*cnfs[f], 2);
    FUZZ_CHECK(after.warm, "server leg: session lost after cancellation");
    if (auto fail = mirror_check(*cnfs[f], after, 2)) return fail;

    const SessionRegistryStats st = server.stats();
    FUZZ_CHECK(st.prepare_failures == 0,
               "server leg: %" PRIu64 " unbudgeted prepares failed",
               st.prepare_failures);
    FUZZ_CHECK(st.hits + st.misses == st.requests && st.sessions <= 2,
               "server leg: ledger broken (%" PRIu64 "+%" PRIu64
               " != %" PRIu64 ", %zu live)",
               st.hits, st.misses, st.requests, st.sessions);
  }

  return std::nullopt;
}

void describe_case(std::uint64_t seed) {
  const test::FuzzCase fc = test::make_fuzz_case(seed);
  std::fprintf(stderr, "  case: %d vars, %zu clauses, %zu xors, |S|=%zu\n",
               fc.cnf.num_vars(), fc.cnf.num_clauses(), fc.cnf.num_xors(),
               fc.sampling_set.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> seeds;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--range") == 0 && i + 2 < argc) {
      const std::uint64_t first = std::strtoull(argv[i + 1], nullptr, 10);
      const std::uint64_t count = std::strtoull(argv[i + 2], nullptr, 10);
      for (std::uint64_t s = first; s < first + count; ++s)
        seeds.push_back(s);
      i += 2;
    } else {
      seeds.push_back(std::strtoull(argv[i], nullptr, 10));
    }
  }
  if (seeds.empty()) {
    std::fprintf(stderr,
                 "usage: fuzz_cnf <seed> [<seed> ...] | "
                 "fuzz_cnf --range <first> <count>\n");
    return 2;
  }

  for (const std::uint64_t seed : seeds) {
    const auto failure = run_seed(seed);
    if (failure) {
      std::fprintf(stderr,
                   "FUZZ FAILURE at seed %" PRIu64 ": %s\n"
                   "  repro: fuzz_cnf %" PRIu64 "   (or: tests/fuzz_cnf.py "
                   "--repro %" PRIu64 ")\n",
                   seed, failure->what.c_str(), seed, seed);
      describe_case(seed);
      return 1;
    }
  }
  std::printf("fuzz_cnf: %zu seed(s) passed\n", seeds.size());
  return 0;
}
