#pragma once
// Shared test helpers: brute-force reference semantics for small formulas
// and random formula generators for fuzz/property tests.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/types.hpp"
#include "util/rng.hpp"

namespace unigen::test {

/// All satisfying total assignments of `cnf`, by exhaustive enumeration.
/// Only usable for num_vars() <= ~22.
inline std::vector<Model> brute_force_models(const Cnf& cnf) {
  const Var n = cnf.num_vars();
  std::vector<Model> models;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    Model m(static_cast<std::size_t>(n));
    for (Var v = 0; v < n; ++v)
      m[static_cast<std::size_t>(v)] =
          ((bits >> v) & 1u) ? lbool::True : lbool::False;
    if (cnf.satisfied_by(m)) models.push_back(std::move(m));
  }
  return models;
}

inline std::uint64_t brute_force_count(const Cnf& cnf) {
  return brute_force_models(cnf).size();
}

/// Distinct projections of the brute-force models onto `vars`.
inline std::uint64_t brute_force_projected_count(const Cnf& cnf,
                                                 const std::vector<Var>& vars) {
  std::vector<std::uint64_t> keys;
  for (const Model& m : brute_force_models(cnf)) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (m[static_cast<std::size_t>(vars[i])] == lbool::True)
        key |= std::uint64_t{1} << i;
    }
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return static_cast<std::uint64_t>(
      std::unique(keys.begin(), keys.end()) - keys.begin());
}

/// Random k-CNF over n variables with c clauses.
inline Cnf random_cnf(Var n, std::size_t c, std::size_t k, Rng& rng) {
  Cnf cnf(n);
  for (std::size_t i = 0; i < c; ++i) {
    std::vector<Lit> clause;
    for (std::size_t j = 0; j < k; ++j)
      clause.emplace_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(n))),
                          rng.flip());
    cnf.add_clause(std::move(clause));
  }
  return cnf;
}

/// Random CNF+XOR formula: c clauses of width k plus x XOR constraints of
/// average width n/2.
inline Cnf random_cnf_xor(Var n, std::size_t c, std::size_t k, std::size_t x,
                          Rng& rng) {
  Cnf cnf = random_cnf(n, c, k, rng);
  for (std::size_t i = 0; i < x; ++i) {
    std::vector<Var> vars;
    for (Var v = 0; v < n; ++v)
      if (rng.flip()) vars.push_back(v);
    if (vars.empty()) vars.push_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(n))));
    cnf.add_xor(std::move(vars), rng.flip());
  }
  return cnf;
}

/// Random sampling set S: a uniformly drawn nonempty subset of at most
/// `max_size` variables, attached to `cnf` and returned (sorted, distinct).
/// Shared by the fuzz harness and the projected-counting property tests.
inline std::vector<Var> attach_random_sampling_set(Cnf& cnf,
                                                   std::size_t max_size,
                                                   Rng& rng) {
  std::vector<Var> all(static_cast<std::size_t>(cnf.num_vars()));
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<Var>(i);
  rng.shuffle(all);
  const std::size_t take = 1 + static_cast<std::size_t>(rng.below(
                                   std::min<std::uint64_t>(max_size,
                                                           all.size())));
  all.resize(take);
  std::sort(all.begin(), all.end());
  cnf.set_sampling_set(all);
  return all;
}

/// One randomly drawn fuzz instance: a small CNF (sometimes with XOR rows,
/// sometimes with a random sampling set) whose full and projected model
/// sets stay brute-forceable.  Deterministic in `seed` — the repro line a
/// failing fuzz run prints is just this seed.
struct FuzzCase {
  Cnf cnf;
  std::vector<Var> sampling_set;  ///< == cnf.sampling_set_or_all()
};

inline FuzzCase make_fuzz_case(std::uint64_t seed) {
  Rng rng(seed);
  const Var n = static_cast<Var>(5 + rng.below(8));          // 5..12 vars
  const std::size_t c = 2 + static_cast<std::size_t>(rng.below(
                                2 * static_cast<std::uint64_t>(n)));
  const std::size_t k = 2 + static_cast<std::size_t>(rng.below(3));
  FuzzCase fc;
  if (rng.flip(0.25)) {
    const std::size_t x = 1 + static_cast<std::size_t>(rng.below(3));
    fc.cnf = random_cnf_xor(n, c, k, x, rng);
  } else {
    fc.cnf = random_cnf(n, c, k, rng);
  }
  if (rng.flip(0.5))
    attach_random_sampling_set(fc.cnf, static_cast<std::size_t>(n), rng);
  fc.sampling_set = fc.cnf.sampling_set_or_all();
  return fc;
}

}  // namespace unigen::test
