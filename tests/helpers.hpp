#pragma once
// Shared test helpers: brute-force reference semantics for small formulas
// and random formula generators for fuzz/property tests.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/types.hpp"
#include "util/rng.hpp"

namespace unigen::test {

/// All satisfying total assignments of `cnf`, by exhaustive enumeration.
/// Only usable for num_vars() <= ~22.
inline std::vector<Model> brute_force_models(const Cnf& cnf) {
  const Var n = cnf.num_vars();
  std::vector<Model> models;
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    Model m(static_cast<std::size_t>(n));
    for (Var v = 0; v < n; ++v)
      m[static_cast<std::size_t>(v)] =
          ((bits >> v) & 1u) ? lbool::True : lbool::False;
    if (cnf.satisfied_by(m)) models.push_back(std::move(m));
  }
  return models;
}

inline std::uint64_t brute_force_count(const Cnf& cnf) {
  return brute_force_models(cnf).size();
}

/// Distinct projections of the brute-force models onto `vars`.
inline std::uint64_t brute_force_projected_count(const Cnf& cnf,
                                                 const std::vector<Var>& vars) {
  std::vector<std::uint64_t> keys;
  for (const Model& m : brute_force_models(cnf)) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (m[static_cast<std::size_t>(vars[i])] == lbool::True)
        key |= std::uint64_t{1} << i;
    }
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return static_cast<std::uint64_t>(
      std::unique(keys.begin(), keys.end()) - keys.begin());
}

/// Random k-CNF over n variables with c clauses.
inline Cnf random_cnf(Var n, std::size_t c, std::size_t k, Rng& rng) {
  Cnf cnf(n);
  for (std::size_t i = 0; i < c; ++i) {
    std::vector<Lit> clause;
    for (std::size_t j = 0; j < k; ++j)
      clause.emplace_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(n))),
                          rng.flip());
    cnf.add_clause(std::move(clause));
  }
  return cnf;
}

/// Random CNF+XOR formula: c clauses of width k plus x XOR constraints of
/// average width n/2.
inline Cnf random_cnf_xor(Var n, std::size_t c, std::size_t k, std::size_t x,
                          Rng& rng) {
  Cnf cnf = random_cnf(n, c, k, rng);
  for (std::size_t i = 0; i < x; ++i) {
    std::vector<Var> vars;
    for (Var v = 0; v < n; ++v)
      if (rng.flip()) vars.push_back(v);
    if (vars.empty()) vars.push_back(static_cast<Var>(rng.below(static_cast<std::uint64_t>(n))));
    cnf.add_xor(std::move(vars), rng.flip());
  }
  return cnf;
}

}  // namespace unigen::test
