// The anytime contract, end to end (ISSUE acceptance criteria):
//   * a deterministic budget cut mid-run yields kPartial with the honest
//     achieved-δ, and resume() reproduces the uninterrupted same-seed run
//     byte-for-byte — serially and on pools of 2 and 4 threads;
//   * every injected fault surfaces as an honest status (iteration-skip
//     accounting, UniGen's fresh-hash retry, bounded retry loops);
//   * cancellation is observed cooperatively, cut runs resume, and a
//     cancelled SamplerPool serves the next request byte-identically to a
//     fresh pool.

#include <gtest/gtest.h>

#include <vector>

#include "cnf/cnf.hpp"
#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "fault_inject.hpp"
#include "helpers.hpp"
#include "sat/incremental_bsat.hpp"
#include "service/budget.hpp"
#include "service/sampler_pool.hpp"
#include "util/rng.hpp"

namespace unigen {
namespace {

/// A formula the prologue cannot count exactly: 2^12 models >> pivot(0.8).
Cnf hashed_instance() { return Cnf(12); }

ApproxMcOptions det_options(std::uint64_t units, std::size_t threads) {
  ApproxMcOptions opts;
  opts.num_threads = threads;
  opts.budget.max_bsat_calls = units;
  return opts;
}

/// Byte-level equality of two anytime results, including the resume state's
/// per-iteration ledger.
void expect_identical(const ApproxMcAnytime& a, const ApproxMcAnytime& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.achieved_delta, b.achieved_delta);
  EXPECT_EQ(a.result.valid, b.result.valid);
  EXPECT_EQ(a.result.cell_count, b.result.cell_count);
  EXPECT_EQ(a.result.hash_count, b.result.hash_count);
  EXPECT_EQ(a.result.bsat_calls, b.result.bsat_calls);
  EXPECT_EQ(a.result.iterations_succeeded, b.result.iterations_succeeded);
  ASSERT_EQ(a.state.outcomes.size(), b.state.outcomes.size());
  ASSERT_EQ(a.state.settled.size(), b.state.settled.size());
  for (std::size_t i = 0; i < a.state.outcomes.size(); ++i) {
    EXPECT_EQ(a.state.settled[i], b.state.settled[i]) << "slot " << i;
    const ApproxMcCoreOutcome& x = a.state.outcomes[i];
    const ApproxMcCoreOutcome& y = b.state.outcomes[i];
    EXPECT_EQ(x.ok, y.ok) << "slot " << i;
    EXPECT_EQ(x.timed_out, y.timed_out) << "slot " << i;
    EXPECT_EQ(x.faulted, y.faulted) << "slot " << i;
    EXPECT_EQ(x.cell_count, y.cell_count) << "slot " << i;
    EXPECT_EQ(x.hash_count, y.hash_count) << "slot " << i;
    EXPECT_EQ(x.bsat_calls, y.bsat_calls) << "slot " << i;
  }
}

TEST(AnytimeCount, UnlimitedDeterministicRunCompletes) {
  const Cnf cnf = hashed_instance();
  Rng rng(101);
  const ApproxMcAnytime full =
      approx_count_anytime(cnf, det_options(100000, 1), rng);
  EXPECT_EQ(full.status, RequestStatus::kComplete);
  EXPECT_TRUE(full.result.valid);
  EXPECT_EQ(full.iterations_completed, full.result.iterations_requested);
  EXPECT_LE(full.achieved_delta, 0.2 + 1e-12);
  // Deterministic budgets force cold starts: the estimate is byte-identical
  // at every thread count.
  for (const std::size_t threads : {2u, 4u}) {
    Rng rng2(101);
    expect_identical(
        full, approx_count_anytime(cnf, det_options(100000, threads), rng2));
  }
}

class AnytimeCutResume : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AnytimeCutResume, ResumeEqualsUninterrupted) {
  const std::size_t threads = GetParam();
  const Cnf cnf = hashed_instance();

  // Reference: the uninterrupted run, and its true unit cost.
  Rng ref_rng(2024);
  const ApproxMcAnytime full =
      approx_count_anytime(cnf, det_options(100000, threads), ref_rng);
  ASSERT_EQ(full.status, RequestStatus::kComplete);
  const std::uint64_t total = full.result.bsat_calls;
  ASSERT_GT(total, 3u);

  // Cut at several depths, including mid-iteration awkward spots, then
  // resume with the remaining units: byte identity with `full`, and the
  // cut slice itself must be honest about what it settled.
  for (const std::uint64_t first : {std::uint64_t{1}, std::uint64_t{2},
                                    total / 3, total / 2, total - 1}) {
    Rng rng(2024);
    ApproxMcAnytime cut =
        approx_count_anytime(cnf, det_options(first, threads), rng);
    ASSERT_NE(cut.status, RequestStatus::kComplete) << "cut at " << first;
    EXPECT_TRUE(cut.status == RequestStatus::kPartial ||
                cut.status == RequestStatus::kTimedOut);
    EXPECT_LT(cut.iterations_completed, full.iterations_completed);
    // (No ordering claim against full.achieved_delta: the binomial median
    // tail is not monotone across even/odd estimate counts — 2 estimates
    // "achieve" e^{-3} < tail(3) because both must be bad to spoil t=2.)
    if (cut.status == RequestStatus::kPartial) {
      EXPECT_TRUE(cut.result.valid);
      EXPECT_EQ(cut.achieved_delta,
                approxmc_delta_achieved(cut.result.iterations_succeeded));
    } else {
      EXPECT_FALSE(cut.result.valid);
      EXPECT_TRUE(cut.result.timed_out);
      EXPECT_EQ(cut.achieved_delta, 1.0);
    }
    // The partial estimate must come from completed iterations only: every
    // settled slot in the admitted prefix is a deterministic end.
    for (std::size_t i = 0; i < cut.state.outcomes.size(); ++i) {
      if (!cut.state.settled[i]) {
        EXPECT_EQ(cut.state.outcomes[i].bsat_calls, 0u) << "slot " << i;
      }
    }

    Budget more;
    more.max_bsat_calls = total - first;
    const ApproxMcAnytime resumed =
        approx_count_resume(cnf, cut.state, more);
    expect_identical(full, resumed);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, AnytimeCutResume,
                         ::testing::Values(1u, 2u, 4u));

TEST(AnytimeCount, ResumeOfConcludedRunIsIdempotent) {
  const Cnf cnf = hashed_instance();
  Rng rng(77);
  const ApproxMcAnytime full =
      approx_count_anytime(cnf, det_options(100000, 1), rng);
  ASSERT_EQ(full.status, RequestStatus::kComplete);
  Budget more;
  more.max_bsat_calls = 50;
  const ApproxMcAnytime again = approx_count_resume(cnf, full.state, more);
  expect_identical(full, again);
}

TEST(AnytimeCount, ExactPrologueReplaysThroughResume) {
  Cnf cnf(3);  // 8 models <= pivot: resolved exactly in the prologue
  Rng rng(5);
  const ApproxMcAnytime first =
      approx_count_anytime(cnf, det_options(10, 1), rng);
  EXPECT_EQ(first.status, RequestStatus::kComplete);
  EXPECT_TRUE(first.result.exact);
  EXPECT_EQ(first.result.cell_count, 8u);
  EXPECT_EQ(first.achieved_delta, 0.0);
  Budget more;
  more.max_bsat_calls = 10;
  const ApproxMcAnytime replay = approx_count_resume(cnf, first.state, more);
  EXPECT_EQ(replay.status, RequestStatus::kComplete);
  EXPECT_TRUE(replay.result.exact);
  EXPECT_EQ(replay.result.cell_count, 8u);
}

TEST(AnytimeCount, FaultedIterationIsSkippedAndAccounted) {
  const Cnf cnf = hashed_instance();
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ScheduledFaults faults{{1, 0}, {2, 0}};  // cut iterations 1 and 2
    ApproxMcOptions opts;
    opts.num_threads = threads;
    opts.budget.fault = &faults;
    Rng rng(909);
    const ApproxMcAnytime r = approx_count_anytime(cnf, opts, rng);
    ASSERT_GE(r.result.iterations_requested, 3);
    // Wall-free faults are deterministic ends: the run completes, the two
    // faulted iterations are settled-but-skipped, and the confidence label
    // honestly reflects the thinner median.
    EXPECT_EQ(r.status, RequestStatus::kComplete);
    EXPECT_TRUE(r.result.valid);
    EXPECT_EQ(faults.fired(), 2u);
    EXPECT_EQ(r.iterations_completed, r.result.iterations_requested);
    EXPECT_EQ(r.result.iterations_succeeded,
              r.result.iterations_requested - 2);
    EXPECT_EQ(r.achieved_delta,
              approxmc_delta_achieved(r.result.iterations_succeeded));
    EXPECT_TRUE(r.state.outcomes[1].faulted);
    EXPECT_TRUE(r.state.outcomes[1].timed_out);
    EXPECT_FALSE(r.state.outcomes[1].ok);
    EXPECT_TRUE(r.state.outcomes[2].faulted);
  }
}

TEST(AnytimeCount, FaultPlanIsScheduleIndependent) {
  const Cnf cnf = hashed_instance();
  SeededRateFaults plan1(31337, 0.15);
  ApproxMcOptions opts;
  opts.num_threads = 1;
  opts.budget.fault = &plan1;
  Rng rng1(555);
  const ApproxMcAnytime serial = approx_count_anytime(cnf, opts, rng1);
  for (const std::size_t threads : {2u, 4u}) {
    SeededRateFaults plan(31337, 0.15);
    ApproxMcOptions popts;
    popts.num_threads = threads;
    popts.budget.fault = &plan;
    Rng rng(555);
    expect_identical(serial, approx_count_anytime(cnf, popts, rng));
    EXPECT_EQ(plan.fired(), plan1.fired());
  }
}

TEST(AnytimeCount, PreTrippedTokenCancelsImmediately) {
  const Cnf cnf = hashed_instance();
  CancelToken token;
  token.cancel();
  ApproxMcOptions opts;
  opts.budget.cancel = &token;
  Rng rng(8);
  const ApproxMcAnytime r = approx_count_anytime(cnf, opts, rng);
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  EXPECT_FALSE(r.result.valid);
}

TEST(AnytimeCount, CancelMidRunResumesToTheUninterruptedResult) {
  const Cnf cnf = hashed_instance();
  // Reference: a deterministic run under an empty fault plan (det mode on,
  // nothing fires).
  ScheduledFaults empty_plan;
  ApproxMcOptions ref_opts;
  ref_opts.budget.fault = &empty_plan;
  Rng ref_rng(13);
  const ApproxMcAnytime full = approx_count_anytime(cnf, ref_opts, ref_rng);
  ASSERT_EQ(full.status, RequestStatus::kComplete);

  // Cancel deterministically mid-run: the injector seam is consulted at
  // every probe, so "trip after N inspections" is an exact cut point.
  CancelToken token;
  CancelAfterProbes trip(token, 7);
  ApproxMcOptions opts;
  opts.budget.cancel = &token;
  opts.budget.fault = &trip;
  Rng rng(13);
  const ApproxMcAnytime cut = approx_count_anytime(cnf, opts, rng);
  EXPECT_EQ(cut.status, RequestStatus::kCancelled);
  EXPECT_LT(cut.iterations_completed, full.iterations_completed);

  // Resume under the (now inert) trip plan: the cancelled slice was
  // treated as never-run, so the continuation lands exactly on `full`.
  token.reset();
  Budget more;
  more.fault = &trip;
  const ApproxMcAnytime resumed = approx_count_resume(cnf, cut.state, more);
  expect_identical(full, resumed);
}

// --- sampling side ----------------------------------------------------

/// Small but nontrivial hashed sampling instance.
Cnf sampling_instance() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  return cnf;
}

TEST(AnytimeSampling, FaultsDriveTheFreshHashRetry) {
  const Cnf cnf = sampling_instance();
  ScheduledFaults faults{{0, 0}, {0, 1}};  // first request, first two probes
  UniGenOptions opts;
  opts.budget.fault = &faults;
  Rng rng(21);
  UniGen sampler(cnf, opts, rng);
  ASSERT_TRUE(sampler.prepare());
  const SampleResult r = sampler.sample();
  // Both faults fired as Section-5 retries (fresh hash, same i) and the
  // sample still concluded honestly.
  EXPECT_EQ(faults.fired(), 2u);
  EXPECT_GE(sampler.stats().bsat_timeout_retries, 2u);
  EXPECT_TRUE(r.status == SampleResult::Status::kOk ||
              r.status == SampleResult::Status::kFail);
  EXPECT_EQ(sampler.stats().samples_requested, 1u);
}

TEST(AnytimeSampling, UnitCapBoundsTheRetryLoopDeterministically) {
  const Cnf cnf = sampling_instance();
  // A plan that faults every probe of request 0 would retry forever; the
  // per-request unit cap turns that into a deterministic timeout.
  SeededRateFaults always(1, 1.0);
  UniGenOptions opts;
  opts.budget.fault = &always;
  opts.budget.max_bsat_calls = 5;
  Rng rng(22);
  UniGen sampler(cnf, opts, rng);
  ASSERT_TRUE(sampler.prepare());
  const SampleResult r = sampler.sample();
  EXPECT_EQ(r.status, SampleResult::Status::kTimeout);
  EXPECT_EQ(sampler.stats().samples_timed_out, 1u);
  EXPECT_EQ(sampler.stats().sample_bsat_calls, 5u);
  EXPECT_EQ(always.fired(), 5u);
  // ⊥ stays distinct from the budget expiry in the aggregates.
  EXPECT_EQ(sampler.stats().samples_failed, 0u);
}

TEST(AnytimeSampling, CancelledSampleIsDistinctFromBottom) {
  const Cnf cnf = sampling_instance();
  CancelToken token;
  UniGenOptions opts;
  opts.budget.cancel = &token;
  Rng rng(23);
  UniGen sampler(cnf, opts, rng);
  ASSERT_TRUE(sampler.prepare());
  token.cancel();
  const SampleResult r = sampler.sample();
  EXPECT_EQ(r.status, SampleResult::Status::kCancelled);
  EXPECT_EQ(sampler.stats().samples_cancelled, 1u);
  EXPECT_EQ(sampler.stats().samples_failed, 0u);
  EXPECT_EQ(sampler.stats().samples_timed_out, 0u);
  // success_rate counts the cancelled request in its denominator.
  EXPECT_EQ(sampler.stats().success_rate(), 0.0);
  token.reset();
  const SampleResult r2 = sampler.sample();
  EXPECT_NE(r2.status, SampleResult::Status::kCancelled);
}

TEST(AnytimeSampling, PoolCancelledCallIsHonestEverywhere) {
  const Cnf cnf = sampling_instance();
  SamplerPoolOptions popts;
  popts.num_threads = 2;
  SamplerPool pool(cnf, popts);
  ASSERT_TRUE(pool.prepare());

  CancelToken token;
  token.cancel();
  Budget budget;
  budget.cancel = &token;
  const SampleManyResult r = pool.sample_many_within(5, budget);
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  ASSERT_EQ(r.samples.size(), 5u);
  for (const SampleResult& s : r.samples)
    EXPECT_EQ(s.status, SampleResult::Status::kCancelled);
  const SamplerPoolStats st = pool.stats();
  EXPECT_EQ(st.samples_cancelled, 5u);
  EXPECT_EQ(st.requests, 5u);
  EXPECT_EQ(st.success_rate(), 0.0);

  const SampleBatchesResult b = pool.sample_batches_within(3, 4, budget);
  EXPECT_EQ(b.status, RequestStatus::kCancelled);
  for (const BatchResult& br : b.batches)
    EXPECT_EQ(br.status, SampleResult::Status::kCancelled);
}

TEST(AnytimeSampling, PoolAfterCancelMatchesAFreshPool) {
  const Cnf cnf = sampling_instance();
  SamplerPoolOptions popts;
  popts.num_threads = 2;

  // Pool A: a cancelled call burns streams 1..4, then a real call runs on
  // streams 5..8.
  SamplerPool pool_a(cnf, popts);
  ASSERT_TRUE(pool_a.prepare());
  CancelToken token;
  token.cancel();
  Budget cancelled;
  cancelled.cancel = &token;
  const SampleManyResult burned = pool_a.sample_many_within(4, cancelled);
  ASSERT_EQ(burned.status, RequestStatus::kCancelled);
  const std::vector<SampleResult> after = pool_a.sample_many(4);

  // Pool B: identical construction, the first call served normally on
  // streams 1..4, the second on 5..8 — the one we compare against.
  SamplerPool pool_b(cnf, popts);
  ASSERT_TRUE(pool_b.prepare());
  pool_b.sample_many(4);
  const std::vector<SampleResult> fresh = pool_b.sample_many(4);

  ASSERT_EQ(after.size(), fresh.size());
  for (std::size_t k = 0; k < after.size(); ++k) {
    EXPECT_EQ(after[k].status, fresh[k].status) << "slot " << k;
    EXPECT_EQ(after[k].witness, fresh[k].witness) << "slot " << k;
  }
}

TEST(AnytimeSampling, ExpiredDeadlineReportsTimedOutCall) {
  const Cnf cnf = sampling_instance();
  SamplerPoolOptions popts;
  popts.num_threads = 2;
  SamplerPool pool(cnf, popts);
  ASSERT_TRUE(pool.prepare());
  const SampleManyResult r =
      pool.sample_many_within(3, Budget::within_seconds(0.0));
  EXPECT_EQ(r.status, RequestStatus::kTimedOut);
  for (const SampleResult& s : r.samples)
    EXPECT_EQ(s.status, SampleResult::Status::kTimeout);
}

TEST(AnytimeSampling, CancelMidEpochServesAPrefixHonestly) {
  const Cnf cnf = sampling_instance();
  SamplerPoolOptions popts;
  popts.num_threads = 1;  // deterministic service order for the assertion
  SamplerPool pool(cnf, popts);
  ASSERT_TRUE(pool.prepare());

  // The injector seam is consulted at every probe, so "trip after N
  // inspections" cuts the epoch at an exact, repeatable point.  With a
  // single thread requests are served in order, so whichever request the
  // trip lands in, everything before it concluded normally and everything
  // at or after it reports kCancelled — the honest-prefix property.
  CancelToken token;
  CancelAfterProbes trip(token, 3);
  Budget budget;
  budget.cancel = &token;
  budget.fault = &trip;
  const SampleManyResult r = pool.sample_many_within(6, budget);
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  ASSERT_EQ(r.samples.size(), 6u);
  bool seen_cancelled = false;
  for (const SampleResult& s : r.samples) {
    if (s.status == SampleResult::Status::kCancelled) {
      seen_cancelled = true;
    } else {
      // Once the token tripped, no later request may produce a witness.
      EXPECT_FALSE(seen_cancelled) << "served request after the cut";
    }
  }
  EXPECT_TRUE(seen_cancelled);
}

}  // namespace
}  // namespace unigen
