// Tests for ApproxMC: parameter computations and the (ε, δ) guarantee
// checked empirically against known counts.

#include <gtest/gtest.h>

#include <cmath>

#include "counting/approxmc.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

TEST(ApproxMcParams, PivotFormula) {
  // pivot(0.8) = 2*ceil(3*sqrt(e)*(2.25)^2) = 2*ceil(25.04...) = 52.
  EXPECT_EQ(approxmc_pivot(0.8), 52u);
  // Monotone decreasing in epsilon.
  EXPECT_GT(approxmc_pivot(0.3), approxmc_pivot(0.8));
  EXPECT_GT(approxmc_pivot(0.8), approxmc_pivot(3.0));
  EXPECT_THROW(approxmc_pivot(0.0), std::invalid_argument);
  EXPECT_THROW(approxmc_pivot(-1.0), std::invalid_argument);
}

TEST(ApproxMcParams, IterationCountOddAndMonotone) {
  const int t_loose = approxmc_iteration_count(0.2);
  const int t_tight = approxmc_iteration_count(0.01);
  EXPECT_EQ(t_loose % 2, 1);
  EXPECT_EQ(t_tight % 2, 1);
  EXPECT_GE(t_tight, t_loose);
  EXPECT_LE(t_loose, 9);  // far below the CP'13 constant (137 for δ=0.2)
  EXPECT_THROW(approxmc_iteration_count(0.0), std::invalid_argument);
  EXPECT_THROW(approxmc_iteration_count(1.0), std::invalid_argument);
}

TEST(ApproxMc, ExactOnSmallFormulas) {
  // Fewer than pivot solutions: the result is exact.
  Cnf cnf(5);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(1, true)});
  // count = 2^3 = 8 <= pivot(0.8) = 52
  Rng rng(1);
  const auto r = approx_count(cnf, {}, rng);
  ASSERT_TRUE(r.valid);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.cell_count, 8u);
  EXPECT_EQ(r.hash_count, 0u);
}

TEST(ApproxMc, UnsatIsExactZero) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  Rng rng(2);
  const auto r = approx_count(cnf, {}, rng);
  ASSERT_TRUE(r.valid);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.cell_count, 0u);
}

TEST(ApproxMc, WithinToleranceOnFreeVariables) {
  // 2^14 models over 14 free variables.
  Cnf cnf(14);
  cnf.add_clause({Lit(0, false), Lit(0, true)});  // tautology, keeps vars
  Rng rng(3);
  ApproxMcOptions opts;  // eps=0.8, delta=0.2
  const auto r = approx_count(cnf, opts, rng);
  ASSERT_TRUE(r.valid);
  const double truth = 14.0;
  EXPECT_NEAR(r.log2_value(), truth, std::log2(1.8) + 0.2)
      << "estimate " << r.value();
}

TEST(ApproxMc, WithinToleranceOnXorSystem) {
  // Parity system with known count 2^(12-4) = 256.
  Cnf cnf(12);
  cnf.add_xor({0, 1, 2, 3}, true);
  cnf.add_xor({3, 4, 5}, false);
  cnf.add_xor({6, 7, 8, 9}, true);
  cnf.add_xor({9, 10, 11}, true);
  Rng rng(4);
  const auto r = approx_count(cnf, {}, rng);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.log2_value(), 8.0, std::log2(1.8) + 0.2);
}

TEST(ApproxMc, ProjectedCountingUsesSamplingSet) {
  // y free copies of x: total count 2^8 but projected on x only 2^4...
  // Construct: 4 "real" vars, 4 mirrored vars, sampling set = real vars.
  Cnf cnf(8);
  for (Var v = 0; v < 4; ++v) cnf.add_xor({v, v + 4}, false);  // mirror
  cnf.set_sampling_set({0, 1, 2, 3});
  Rng rng(5);
  const auto r = approx_count(cnf, {}, rng);
  ASSERT_TRUE(r.valid);
  EXPECT_TRUE(r.exact);  // 16 projections <= pivot
  EXPECT_EQ(r.cell_count, 16u);
}

TEST(ApproxMc, DeadlineTimeoutReported) {
  Rng rng(6);
  Cnf cnf(30);  // 2^30 free-variable models force the hashed path
  ApproxMcOptions opts;
  opts.budget.deadline = Deadline::in_seconds(0.0);
  const auto r = approx_count(cnf, opts, rng);
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(r.timed_out);
}

class ApproxMcGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(ApproxMcGuarantee, EstimateWithinToleranceMostOfTheTime) {
  // Random CNF with brute-forced truth; with δ=0.2 the estimate must land
  // within (1+ε) of the truth in the vast majority of seeds.  We assert
  // per-seed with a widened band (tolerance + slack) so the suite is
  // deterministic-stable, and rely on many seeds for coverage.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 503 + 17);
  Cnf cnf = test::random_cnf(12, 18, 3, rng);
  const std::uint64_t truth = test::brute_force_count(cnf);
  if (truth == 0) GTEST_SKIP() << "unsat draw";
  Rng counter_rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  ApproxMcOptions opts;
  opts.epsilon = 0.8;
  opts.delta = 0.05;
  const auto r = approx_count(cnf, opts, counter_rng);
  ASSERT_TRUE(r.valid);
  if (r.exact) {
    EXPECT_EQ(r.cell_count, truth);
  } else {
    const double err = std::abs(r.log2_value() -
                                std::log2(static_cast<double>(truth)));
    EXPECT_LE(err, std::log2(1.8) + 0.6) << "truth=" << truth;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ApproxMcGuarantee,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace unigen
