// Tests for BigUint against 64-bit and 128-bit reference arithmetic.

#include <gtest/gtest.h>

#include <cmath>

#include "util/bigint.hpp"
#include "util/rng.hpp"

namespace unigen {
namespace {

TEST(BigUint, ZeroBasics) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.to_uint64(), 0u);
  EXPECT_EQ(z.to_double(), 0.0);
}

TEST(BigUint, SmallValues) {
  BigUint x(12345);
  EXPECT_FALSE(x.is_zero());
  EXPECT_EQ(x.to_string(), "12345");
  EXPECT_EQ(x.to_uint64(), 12345u);
  EXPECT_EQ(x.bit_length(), 14u);
}

TEST(BigUint, AdditionMatchesUint64) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng() >> 1;  // avoid overflow
    const std::uint64_t b = rng() >> 1;
    EXPECT_EQ((BigUint(a) + BigUint(b)).to_uint64(), a + b);
  }
}

TEST(BigUint, AdditionCarriesAcrossWords) {
  const BigUint max64(~std::uint64_t{0});
  const BigUint sum = max64 + BigUint(1);
  EXPECT_EQ(sum, BigUint::pow2(64));
  EXPECT_EQ(sum.bit_length(), 65u);
}

TEST(BigUint, MultiplicationMatches128Bit) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const __uint128_t ref = static_cast<__uint128_t>(a) * b;
    const BigUint got = BigUint(a) * BigUint(b);
    BigUint expect(static_cast<std::uint64_t>(ref >> 64));
    expect <<= 64;
    expect += BigUint(static_cast<std::uint64_t>(ref));
    EXPECT_EQ(got, expect);
  }
}

TEST(BigUint, MultiplyByZero) {
  EXPECT_TRUE((BigUint(123) * BigUint(0)).is_zero());
  EXPECT_TRUE((BigUint(0) * BigUint::pow2(100)).is_zero());
}

TEST(BigUint, Pow2AndShift) {
  for (std::size_t k : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    const BigUint p = BigUint::pow2(k);
    EXPECT_EQ(p.bit_length(), k + 1);
    EXPECT_EQ(BigUint(1) << k, p);
    EXPECT_DOUBLE_EQ(p.log2(), static_cast<double>(k));
  }
}

TEST(BigUint, ShiftComposesWithMultiplication) {
  const BigUint x(0xdeadbeefcafebabeULL);
  EXPECT_EQ(x << 7, x * BigUint(128));
  EXPECT_EQ((x << 64) << 3, x << 67);
}

TEST(BigUint, SubtractionMatchesUint64) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::uint64_t a = rng(), b = rng();
    if (a < b) std::swap(a, b);
    BigUint x(a);
    x -= BigUint(b);
    EXPECT_EQ(x.to_uint64(), a - b);
  }
}

TEST(BigUint, SubtractionUnderflowThrows) {
  BigUint small(3);
  EXPECT_THROW(small -= BigUint(4), std::underflow_error);
}

TEST(BigUint, ComparisonOrdering) {
  EXPECT_LT(BigUint(3), BigUint(4));
  EXPECT_LT(BigUint(~std::uint64_t{0}), BigUint::pow2(64));
  EXPECT_GT(BigUint::pow2(128), BigUint::pow2(127));
  EXPECT_EQ(BigUint(7), BigUint(7));
}

TEST(BigUint, ToStringLargeKnownValue) {
  // 2^128 = 340282366920938463463374607431768211456
  EXPECT_EQ(BigUint::pow2(128).to_string(),
            "340282366920938463463374607431768211456");
  // 10^20
  BigUint ten20(10);
  BigUint acc(1);
  for (int i = 0; i < 20; ++i) acc = acc * BigUint(10);
  EXPECT_EQ(acc.to_string(), "100000000000000000000");
}

TEST(BigUint, Log2Accuracy) {
  const BigUint x = BigUint(3) << 100;  // log2 = 100 + log2(3)
  EXPECT_NEAR(x.log2(), 100.0 + std::log2(3.0), 1e-9);
  EXPECT_EQ(BigUint().log2(), -std::numeric_limits<double>::infinity());
}

TEST(BigUint, ToDoubleLarge) {
  EXPECT_DOUBLE_EQ(BigUint::pow2(100).to_double(), std::pow(2.0, 100));
}

TEST(BigUint, RandomBelowStaysBelow) {
  Rng rng(5);
  const BigUint bound = (BigUint(12345) << 70) + BigUint(17);
  for (int i = 0; i < 300; ++i) {
    const BigUint x = BigUint::random_below(bound, rng);
    EXPECT_LT(x, bound);
  }
}

TEST(BigUint, RandomBelowCoversSmallRange) {
  Rng rng(6);
  bool seen[5] = {};
  for (int i = 0; i < 300; ++i)
    seen[BigUint::random_below(BigUint(5), rng).to_uint64()] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(BigUint, RandomBelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(BigUint::random_below(BigUint(0), rng), std::invalid_argument);
}

TEST(BigUint, FitsUint64Flag) {
  EXPECT_TRUE(BigUint(~std::uint64_t{0}).fits_uint64());
  EXPECT_FALSE(BigUint::pow2(64).fits_uint64());
  EXPECT_TRUE(BigUint(0).fits_uint64());
}

}  // namespace
}  // namespace unigen
