// Unit tests of the anytime/robustness primitives: Budget, CancelToken,
// RequestStatus, the deterministic fault injectors, the leapfrog
// publication rule, the achieved-δ math, and WorkerPool's cooperative
// cancellation (drain + reuse).

#include <atomic>
#include <gtest/gtest.h>

#include "cnf/cnf.hpp"
#include "counting/approxmc.hpp"
#include "counting/approxmc_core.hpp"
#include "fault_inject.hpp"
#include "service/budget.hpp"
#include "service/worker_pool.hpp"
#include "util/rng.hpp"

namespace unigen {
namespace {

TEST(RequestStatusTest, ToStringCoversEveryStatus) {
  EXPECT_STREQ(to_string(RequestStatus::kComplete), "complete");
  EXPECT_STREQ(to_string(RequestStatus::kPartial), "partial");
  EXPECT_STREQ(to_string(RequestStatus::kFailed), "failed");
  EXPECT_STREQ(to_string(RequestStatus::kTimedOut), "timed_out");
  EXPECT_STREQ(to_string(RequestStatus::kCancelled), "cancelled");
}

TEST(CancelTokenTest, TripObserveReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.flag()->load());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(BudgetTest, DefaultIsUnlimitedAndWallFree) {
  const Budget b = Budget::unlimited();
  EXPECT_FALSE(b.cancelled());
  EXPECT_FALSE(b.wall_expired());
  EXPECT_FALSE(b.deterministic_units());
  EXPECT_TRUE(b.wall_free());
  EXPECT_FALSE(b.fault_fires(0, 0));
}

TEST(BudgetTest, DeterministicModeFlags) {
  Budget b;
  b.max_bsat_calls = 5;
  EXPECT_TRUE(b.deterministic_units());
  Budget c;
  ScheduledFaults faults;
  c.fault = &faults;
  EXPECT_TRUE(c.deterministic_units());
  Budget d;
  d.conflicts_per_call = 100;
  EXPECT_FALSE(d.deterministic_units());  // schedule-dependent on pools
  EXPECT_TRUE(d.wall_free());
}

TEST(BudgetTest, WallClocksBreakWallFree) {
  EXPECT_FALSE(Budget::within_seconds(10.0).wall_free());
  Budget b;
  b.bsat_timeout_s = 1.0;
  EXPECT_FALSE(b.wall_free());
  EXPECT_TRUE(Budget::within_seconds(0.0).wall_expired());
}

TEST(BudgetTest, PerCallDeadlineCapsByTimeout) {
  Budget b = Budget::within_seconds(1000.0);
  b.bsat_timeout_s = 0.001;
  // The per-call deadline is the nearer of the two clocks.
  EXPECT_LE(b.per_call_deadline().remaining_seconds(), 0.001 + 1e-6);
  Budget c = Budget::within_seconds(1000.0);
  EXPECT_GT(c.per_call_deadline().remaining_seconds(), 100.0);
}

TEST(BudgetTest, AdmissionStatusAtTheBoundaries) {
  // A live budget admits.
  EXPECT_EQ(Budget::unlimited().admission_status(), RequestStatus::kComplete);
  EXPECT_EQ(Budget::within_seconds(100.0).admission_status(),
            RequestStatus::kComplete);
  // Zero and negative wall deadlines are born expired.
  EXPECT_EQ(Budget::within_seconds(0.0).admission_status(),
            RequestStatus::kTimedOut);
  EXPECT_EQ(Budget::within_seconds(-1.0).admission_status(),
            RequestStatus::kTimedOut);
  // A pre-tripped cancel token wins over an expired deadline: the caller
  // asked for the request to stop, which is the more specific truth.
  CancelToken token;
  token.cancel();
  Budget b = Budget::within_seconds(0.0);
  b.cancel = &token;
  EXPECT_EQ(b.admission_status(), RequestStatus::kCancelled);
  // max_bsat_calls is NOT an admission question: 0 is the documented
  // "unlimited" sentinel and any positive grant admits at least one probe.
  Budget units;
  units.max_bsat_calls = 1;
  EXPECT_EQ(units.admission_status(), RequestStatus::kComplete);
}

TEST(BudgetTest, DegenerateDeadlineCountsReturnBeforeAnyProbe) {
  // in_seconds(0) and in_seconds(-1) must yield kTimedOut with ZERO BSAT
  // calls — deterministically, on any machine, not racing the first probe.
  Cnf cnf(6);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  for (const double s : {0.0, -1.0}) {
    ApproxMcOptions options;
    options.budget = Budget::within_seconds(s);
    Rng rng(11);
    const ApproxMcAnytime any = approx_count_anytime(cnf, options, rng);
    EXPECT_EQ(any.status, RequestStatus::kTimedOut) << "deadline " << s;
    EXPECT_FALSE(any.result.valid);
    EXPECT_TRUE(any.result.timed_out);
    EXPECT_EQ(any.result.bsat_calls, 0u) << "probe ran despite dead budget";
  }
  // Pre-tripped cancellation: same guarantee, kCancelled.
  CancelToken token;
  token.cancel();
  ApproxMcOptions options;
  options.budget.cancel = &token;
  Rng rng(11);
  const ApproxMcAnytime any = approx_count_anytime(cnf, options, rng);
  EXPECT_EQ(any.status, RequestStatus::kCancelled);
  EXPECT_EQ(any.result.bsat_calls, 0u);
}

TEST(BudgetTest, UnitBudgetBoundaryOneAndUnlimited) {
  // max_bsat_calls == 1 admits exactly the prologue probe; on a formula the
  // prologue counts exactly, that single unit completes the request.
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  ApproxMcOptions options;
  options.budget.max_bsat_calls = 1;
  Rng rng(5);
  const ApproxMcAnytime one = approx_count_anytime(cnf, options, rng);
  EXPECT_EQ(one.status, RequestStatus::kComplete);
  EXPECT_TRUE(one.result.exact);
  EXPECT_EQ(one.result.bsat_calls, 1u);
  // max_bsat_calls == 0 is unlimited, not zero-work (the boundary the
  // admission guard must NOT misread).
  ApproxMcOptions unlimited;
  unlimited.budget.max_bsat_calls = 0;
  Rng rng2(5);
  const ApproxMcAnytime full = approx_count_anytime(cnf, unlimited, rng2);
  EXPECT_EQ(full.status, RequestStatus::kComplete);
  EXPECT_TRUE(full.result.valid);
}

TEST(ScheduledFaultsTest, FiresExactlyOnPlan) {
  ScheduledFaults faults{{2, 0}, {2, 1}, {5, 3}};
  EXPECT_EQ(faults.planned(), 3u);
  EXPECT_FALSE(faults.inject_timeout(0, 0));
  EXPECT_TRUE(faults.inject_timeout(2, 0));
  EXPECT_TRUE(faults.inject_timeout(2, 1));
  EXPECT_FALSE(faults.inject_timeout(2, 2));
  EXPECT_TRUE(faults.inject_timeout(5, 3));
  EXPECT_EQ(faults.fired(), 3u);
}

TEST(SeededRateFaultsTest, DeterministicInSeedKeyCall) {
  SeededRateFaults a(42, 0.5);
  SeededRateFaults b(42, 0.5);
  int fired = 0;
  for (std::uint64_t key = 0; key < 8; ++key) {
    for (std::uint64_t call = 0; call < 32; ++call) {
      EXPECT_EQ(a.would_fire(key, call), b.would_fire(key, call));
      if (a.inject_timeout(key, call)) ++fired;
    }
  }
  EXPECT_EQ(a.fired(), static_cast<std::uint64_t>(fired));
  // Rate 0.5 over 256 draws: wildly loose bounds, just not degenerate.
  EXPECT_GT(fired, 32);
  EXPECT_LT(fired, 224);
  SeededRateFaults never(42, 0.0);
  SeededRateFaults always(42, 1.0);
  EXPECT_FALSE(never.would_fire(3, 3));
  EXPECT_TRUE(always.would_fire(3, 3));
}

TEST(CancelAfterProbesTest, TripsOnceAtTheScheduledProbe) {
  CancelToken token;
  CancelAfterProbes trip(token, 3);
  EXPECT_FALSE(trip.inject_timeout(0, 0));
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(trip.inject_timeout(0, 1));
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(trip.inject_timeout(1, 0));  // third inspection trips
  EXPECT_TRUE(token.cancelled());
  EXPECT_FALSE(trip.inject_timeout(1, 1));  // never injects a timeout
  EXPECT_TRUE(token.cancelled());
}

TEST(LeapfrogPublishTest, OnlyCompletedIterationsPublish) {
  ApproxMcCoreOutcome ok;
  ok.ok = true;
  ok.hash_count = 7;
  ok.bsat_calls = 3;
  const auto m = leapfrog_publish(ok);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 7u);

  // A cut iteration — timeout, injected fault, or cancellation — must not
  // seed later searches with the m its aborted search happened to stand at.
  ApproxMcCoreOutcome timed;
  timed.timed_out = true;
  timed.hash_count = 9;
  timed.bsat_calls = 2;
  EXPECT_FALSE(leapfrog_publish(timed).has_value());

  ApproxMcCoreOutcome faulted = timed;
  faulted.faulted = true;
  EXPECT_FALSE(leapfrog_publish(faulted).has_value());

  ApproxMcCoreOutcome cancelled;
  cancelled.cancelled = true;
  cancelled.hash_count = 4;
  EXPECT_FALSE(leapfrog_publish(cancelled).has_value());

  ApproxMcCoreOutcome barren;  // ran out of hash counts, no estimate
  barren.bsat_calls = 5;
  EXPECT_FALSE(leapfrog_publish(barren).has_value());
}

TEST(AchievedDeltaTest, MatchesTheBinomialMedianTail) {
  // t <= 0: no estimates, no confidence.
  EXPECT_EQ(approxmc_median_failure_tail(0), 1.0);
  EXPECT_EQ(approxmc_median_failure_tail(-3), 1.0);
  // t = 1: the median is the single iteration; it fails with 1-p = e^{-3/2}.
  EXPECT_NEAR(approxmc_median_failure_tail(1), std::exp(-1.5), 1e-12);
  // Monotone non-increasing over odd t, and delta_achieved is the same
  // function (the honesty label of a Partial result).
  double prev = 1.0;
  for (int t = 1; t <= 41; t += 2) {
    const double tail = approxmc_median_failure_tail(t);
    EXPECT_LE(tail, prev);
    EXPECT_EQ(approxmc_delta_achieved(t), tail);
    prev = tail;
  }
  // approxmc_iteration_count returns the first odd t beating delta.
  for (const double delta : {0.3, 0.2, 0.1, 0.05}) {
    const int t = approxmc_iteration_count(delta);
    EXPECT_EQ(t % 2, 1);
    EXPECT_LE(approxmc_median_failure_tail(t), delta);
    if (t > 2) {
      EXPECT_GT(approxmc_median_failure_tail(t - 2), delta);
    }
  }
}

TEST(WorkerPoolCancelTest, PreTrippedTokenDrainsWithoutExecuting) {
  Cnf cnf(4);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  WorkerPool pool(2, Rng(7));
  pool.start(cnf, cnf.sampling_set_or_all());
  CancelToken token;
  token.cancel();
  std::atomic<int> ran{0};
  const std::size_t executed =
      pool.run(16, 0,
               [&](IncrementalBsat&, std::size_t, std::size_t, Rng&) {
                 ran.fetch_add(1);
               },
               token.flag());
  // Every task is accounted for (run returned), none executed.
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(ran.load(), 0);
}

TEST(WorkerPoolCancelTest, PoolIsReusableAfterCancel) {
  Cnf cnf(4);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  WorkerPool pool(2, Rng(7));
  pool.start(cnf, cnf.sampling_set_or_all());

  CancelToken token;
  std::atomic<int> ran{0};
  // Trip the token from inside task 0: later tasks drain unexecuted.
  pool.run(64, 0,
           [&](IncrementalBsat&, std::size_t, std::size_t, Rng&) {
             ran.fetch_add(1);
             token.cancel();
           },
           token.flag());
  EXPECT_GE(ran.load(), 1);
  EXPECT_LT(ran.load(), 64);

  // The same pool serves the next run completely.
  std::atomic<int> second{0};
  const std::size_t executed = pool.run(
      8, 100,
      [&](IncrementalBsat&, std::size_t, std::size_t, Rng&) {
        second.fetch_add(1);
      });
  EXPECT_EQ(executed, 8u);
  EXPECT_EQ(second.load(), 8);
}

}  // namespace
}  // namespace unigen
