// Tests for the circuit IR: gate semantics via simulation, constant
// folding, structural hashing, word-level arithmetic, module instantiation.

#include <gtest/gtest.h>

#include "cnf/circuit.hpp"
#include "util/rng.hpp"

namespace unigen {
namespace {

using Sig = Circuit::Sig;

TEST(Circuit, ConstantsAndNot) {
  Circuit c;
  EXPECT_EQ(Circuit::lnot(Circuit::kFalse), Circuit::kTrue);
  EXPECT_EQ(Circuit::lnot(Circuit::kTrue), Circuit::kFalse);
}

TEST(Circuit, AndTruthTable) {
  Circuit c;
  const Sig a = c.add_input("a");
  const Sig b = c.add_input("b");
  c.add_output(c.land(a, b));
  EXPECT_FALSE(c.simulate({false, false})[0]);
  EXPECT_FALSE(c.simulate({true, false})[0]);
  EXPECT_FALSE(c.simulate({false, true})[0]);
  EXPECT_TRUE(c.simulate({true, true})[0]);
}

TEST(Circuit, XorOrMuxMajTruthTables) {
  Circuit c;
  const Sig a = c.add_input();
  const Sig b = c.add_input();
  const Sig s = c.add_input();
  c.add_output(c.lxor(a, b));
  c.add_output(c.lor(a, b));
  c.add_output(c.mux(s, a, b));
  c.add_output(c.maj3(a, b, s));
  for (int bits = 0; bits < 8; ++bits) {
    const bool va = bits & 1, vb = bits & 2, vs = bits & 4;
    const auto out = c.simulate({va, vb, vs});
    EXPECT_EQ(out[0], va != vb);
    EXPECT_EQ(out[1], va || vb);
    EXPECT_EQ(out[2], vs ? va : vb);
    EXPECT_EQ(out[3], (va && vb) || (va && vs) || (vb && vs));
  }
}

TEST(Circuit, ConstantFolding) {
  Circuit c;
  const Sig a = c.add_input();
  EXPECT_EQ(c.land(a, Circuit::kFalse), Circuit::kFalse);
  EXPECT_EQ(c.land(a, Circuit::kTrue), a);
  EXPECT_EQ(c.land(a, a), a);
  EXPECT_EQ(c.land(a, Circuit::lnot(a)), Circuit::kFalse);
  EXPECT_EQ(c.lxor(a, Circuit::kFalse), a);
  EXPECT_EQ(c.lxor(a, Circuit::kTrue), Circuit::lnot(a));
  EXPECT_EQ(c.lxor(a, a), Circuit::kFalse);
  EXPECT_EQ(c.lxor(a, Circuit::lnot(a)), Circuit::kTrue);
}

TEST(Circuit, StructuralHashingDeduplicates) {
  Circuit c;
  const Sig a = c.add_input();
  const Sig b = c.add_input();
  const std::size_t before = c.num_nodes();
  const Sig g1 = c.land(a, b);
  const Sig g2 = c.land(b, a);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(c.num_nodes(), before + 1);
  // XOR complement normalization: ~a ^ b == ~(a ^ b).
  const Sig x1 = c.lxor(Circuit::lnot(a), b);
  const Sig x2 = Circuit::lnot(c.lxor(a, b));
  EXPECT_EQ(x1, x2);
}

TEST(Circuit, AdderMatchesIntegerAddition) {
  Circuit c;
  const auto a = c.input_word(6, "a");
  const auto b = c.input_word(6, "b");
  const auto sum = c.add_word(a, b, /*keep_carry=*/true);
  for (const Sig s : sum) c.add_output(s);
  Rng rng(51);
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t x = rng.below(64), y = rng.below(64);
    std::vector<bool> in;
    for (int i = 0; i < 6; ++i) in.push_back((x >> i) & 1);
    for (int i = 0; i < 6; ++i) in.push_back((y >> i) & 1);
    const auto out = c.simulate(in);
    std::uint64_t got = 0;
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out[i]) got |= std::uint64_t{1} << i;
    EXPECT_EQ(got, x + y);
  }
}

TEST(Circuit, MultiplierMatchesIntegerProduct) {
  Circuit c;
  const auto a = c.input_word(5, "a");
  const auto b = c.input_word(5, "b");
  const auto prod = c.mul_word(a, b, 10);
  for (const Sig s : prod) c.add_output(s);
  Rng rng(53);
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t x = rng.below(32), y = rng.below(32);
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) in.push_back((x >> i) & 1);
    for (int i = 0; i < 5; ++i) in.push_back((y >> i) & 1);
    const auto out = c.simulate(in);
    std::uint64_t got = 0;
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out[i]) got |= std::uint64_t{1} << i;
    EXPECT_EQ(got, x * y);
  }
}

TEST(Circuit, ComparatorsMatchIntegers) {
  Circuit c;
  const auto a = c.input_word(4, "a");
  const auto b = c.input_word(4, "b");
  c.add_output(c.eq_word(a, b));
  c.add_output(c.ult_word(a, b));
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      std::vector<bool> in;
      for (int i = 0; i < 4; ++i) in.push_back((x >> i) & 1);
      for (int i = 0; i < 4; ++i) in.push_back((y >> i) & 1);
      const auto out = c.simulate(in);
      EXPECT_EQ(out[0], x == y);
      EXPECT_EQ(out[1], x < y);
    }
  }
}

TEST(Circuit, ConstantWord) {
  Circuit c;
  const auto w = c.constant_word(0b1011, 4);
  for (const Sig s : w) c.add_output(s);
  const auto out = c.simulate({});
  EXPECT_TRUE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_TRUE(out[3]);
}

TEST(Circuit, NaryTrees) {
  Circuit c;
  std::vector<Sig> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(c.add_input());
  c.add_output(c.and_n(ins));
  c.add_output(c.or_n(ins));
  c.add_output(c.xor_n(ins));
  Rng rng(57);
  for (int round = 0; round < 50; ++round) {
    std::vector<bool> in;
    bool all = true, any = false, parity = false;
    for (int i = 0; i < 7; ++i) {
      const bool b = rng.flip();
      in.push_back(b);
      all = all && b;
      any = any || b;
      parity ^= b;
    }
    const auto out = c.simulate(in);
    EXPECT_EQ(out[0], all);
    EXPECT_EQ(out[1], any);
    EXPECT_EQ(out[2], parity);
  }
}

TEST(Circuit, EmptyAndOrTrees) {
  Circuit c;
  EXPECT_EQ(c.and_n({}), Circuit::kTrue);
  EXPECT_EQ(c.or_n({}), Circuit::kFalse);
  EXPECT_EQ(c.xor_n({}), Circuit::kFalse);
}

TEST(Circuit, AppendInstantiatesSubcircuit) {
  // Sub-circuit: full adder.
  Circuit fa;
  const Sig a = fa.add_input();
  const Sig b = fa.add_input();
  const Sig cin = fa.add_input();
  fa.add_output(fa.lxor(fa.lxor(a, b), cin));
  fa.add_output(fa.maj3(a, b, cin));

  // Host: chain two full adders into a 2-bit adder.
  Circuit host;
  const auto x = host.input_word(2, "x");
  const auto y = host.input_word(2, "y");
  const auto s0 = host.append(fa, {x[0], y[0], Circuit::kFalse});
  const auto s1 = host.append(fa, {x[1], y[1], s0[1]});
  host.add_output(s0[0]);
  host.add_output(s1[0]);
  host.add_output(s1[1]);
  for (std::uint64_t vx = 0; vx < 4; ++vx) {
    for (std::uint64_t vy = 0; vy < 4; ++vy) {
      const auto out = host.simulate(
          {(vx & 1) != 0, (vx & 2) != 0, (vy & 1) != 0, (vy & 2) != 0});
      std::uint64_t got = static_cast<std::uint64_t>(out[0]) |
                          (static_cast<std::uint64_t>(out[1]) << 1) |
                          (static_cast<std::uint64_t>(out[2]) << 2);
      EXPECT_EQ(got, vx + vy);
    }
  }
}

TEST(Circuit, AppendBindingMismatchThrows) {
  Circuit sub;
  sub.add_input();
  Circuit host;
  EXPECT_THROW(host.append(sub, {}), std::invalid_argument);
}

TEST(Circuit, WidthMismatchThrows) {
  Circuit c;
  const auto a = c.input_word(3, "a");
  const auto b = c.input_word(4, "b");
  EXPECT_THROW(c.add_word(a, b), std::invalid_argument);
  EXPECT_THROW(c.eq_word(a, b), std::invalid_argument);
  EXPECT_THROW(c.ult_word(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace unigen
