// Tests for the Cnf container: evaluation semantics, sampling sets, and
// the XOR -> CNF expansion used by the exact counter.

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace unigen {
namespace {

using test::brute_force_count;
using test::brute_force_models;
using test::brute_force_projected_count;
using test::random_cnf_xor;

TEST(Lit, DimacsRoundTrip) {
  for (int d : {1, -1, 5, -5, 100, -100}) {
    EXPECT_EQ(Lit::from_dimacs(d).to_dimacs(), d);
  }
  EXPECT_EQ(Lit::from_dimacs(3).var(), 2);
  EXPECT_FALSE(Lit::from_dimacs(3).sign());
  EXPECT_TRUE(Lit::from_dimacs(-3).sign());
}

TEST(Lit, NegationInvolution) {
  const Lit l(7, false);
  EXPECT_EQ(~~l, l);
  EXPECT_NE(~l, l);
  EXPECT_EQ((~l).var(), l.var());
}

TEST(Cnf, GrowsVariableSpaceOnAdd) {
  Cnf cnf;
  cnf.add_clause({Lit(9, false)});
  EXPECT_EQ(cnf.num_vars(), 10);
}

TEST(Cnf, SatisfiedByChecksClausesAndXors) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  cnf.add_xor({1, 2}, true);
  Model m{lbool::False, lbool::True, lbool::False};
  EXPECT_TRUE(cnf.satisfied_by(m));
  m[2] = lbool::True;  // x1 ^ x2 now 0 != 1
  EXPECT_FALSE(cnf.satisfied_by(m));
  m[1] = lbool::False;
  EXPECT_FALSE(cnf.satisfied_by(m));  // clause now violated too
}

TEST(Cnf, SamplingSetDeduplicatesAndSorts) {
  Cnf cnf(5);
  cnf.set_sampling_set({3, 1, 3, 1, 4});
  ASSERT_TRUE(cnf.sampling_set().has_value());
  EXPECT_EQ(*cnf.sampling_set(), (std::vector<Var>{1, 3, 4}));
}

TEST(Cnf, SamplingSetOutOfRangeThrows) {
  Cnf cnf(3);
  EXPECT_THROW(cnf.set_sampling_set({5}), std::invalid_argument);
}

TEST(Cnf, SamplingSetOrAllDefaultsToAllVars) {
  Cnf cnf(3);
  EXPECT_EQ(cnf.sampling_set_or_all(), (std::vector<Var>{0, 1, 2}));
}

TEST(ExpandXors, SmallXorExactClauseCount) {
  Cnf cnf(3);
  cnf.add_xor({0, 1, 2}, true);
  const Cnf expanded = cnf.expand_xors();
  EXPECT_EQ(expanded.num_xors(), 0u);
  EXPECT_EQ(expanded.num_clauses(), 4u);  // 2^(3-1)
  EXPECT_EQ(expanded.num_vars(), 3);      // no chunking needed
  EXPECT_EQ(brute_force_count(expanded), brute_force_count(cnf));
}

TEST(ExpandXors, RhsFalsePolarity) {
  Cnf cnf(2);
  cnf.add_xor({0, 1}, false);  // equality
  const Cnf expanded = cnf.expand_xors();
  EXPECT_EQ(brute_force_count(expanded), 2u);
}

TEST(ExpandXors, LongXorChunksWithAuxVars) {
  Cnf cnf(12);
  std::vector<Var> vars;
  for (Var v = 0; v < 12; ++v) vars.push_back(v);
  cnf.add_xor(vars, true);
  const Cnf expanded = cnf.expand_xors(4);
  EXPECT_GT(expanded.num_vars(), 12);
  // Model count preserved: 2^11 over original vars; aux vars are defined.
  EXPECT_EQ(brute_force_count(expanded), 1u << 11);
}

TEST(ExpandXors, EmptyXorTrueBecomesUnsat) {
  Cnf cnf(1);
  cnf.add_xor(std::vector<Var>{}, true);
  const Cnf expanded = cnf.expand_xors();
  EXPECT_EQ(brute_force_count(expanded), 0u);
}

TEST(ExpandXors, DuplicateVarsCancel) {
  Cnf cnf(2);
  cnf.add_xor({0, 0, 1}, true);  // == x1 = 1
  const Cnf expanded = cnf.expand_xors();
  const auto models = brute_force_models(expanded);
  ASSERT_EQ(models.size(), 2u);
  for (const auto& m : models) EXPECT_EQ(m[1], lbool::True);
}

class ExpandXorsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExpandXorsFuzz, CountPreservedOnRandomFormulas) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 3);
  const Cnf cnf = random_cnf_xor(8, 10, 3, 3, rng);
  const Cnf expanded = cnf.expand_xors(4);
  EXPECT_EQ(expanded.num_xors(), 0u);
  // Counting over the expanded formula's full variable set equals counting
  // over the original: each original model extends uniquely to aux vars.
  std::vector<Var> orig(8);
  for (Var v = 0; v < 8; ++v) orig[static_cast<std::size_t>(v)] = v;
  EXPECT_EQ(brute_force_count(cnf),
            expanded.num_vars() <= 20 ? brute_force_count(expanded)
                                      : brute_force_projected_count(expanded, orig));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExpandXorsFuzz, ::testing::Range(0, 10));

TEST(Cnf, SummaryMentionsShape) {
  Cnf cnf(4);
  cnf.name = "probe";
  cnf.add_clause({Lit(0, false)});
  cnf.add_xor({1, 2}, true);
  cnf.set_sampling_set({0, 1});
  const std::string s = cnf.summary();
  EXPECT_NE(s.find("probe"), std::string::npos);
  EXPECT_NE(s.find("vars=4"), std::string::npos);
  EXPECT_NE(s.find("|S|=2"), std::string::npos);
}

}  // namespace
}  // namespace unigen
