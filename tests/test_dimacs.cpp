// Tests for DIMACS parsing/serialization including `c ind` sampling sets
// and CryptoMiniSAT-style `x` XOR lines.

#include <gtest/gtest.h>

#include "cnf/dimacs.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

TEST(Dimacs, ParsesPlainCnf) {
  const Cnf cnf = parse_dimacs_string(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  EXPECT_EQ(cnf.num_vars(), 3);
  ASSERT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses()[0],
            (std::vector<Lit>{Lit(0, false), Lit(1, true)}));
  EXPECT_EQ(cnf.clauses()[1],
            (std::vector<Lit>{Lit(1, false), Lit(2, false)}));
}

TEST(Dimacs, ParsesIndLines) {
  const Cnf cnf = parse_dimacs_string(
      "c ind 1 3 0\n"
      "c ind 5 0\n"
      "p cnf 5 1\n"
      "1 2 0\n");
  ASSERT_TRUE(cnf.sampling_set().has_value());
  EXPECT_EQ(*cnf.sampling_set(), (std::vector<Var>{0, 2, 4}));
}

TEST(Dimacs, ParsesXorLines) {
  const Cnf cnf = parse_dimacs_string(
      "p cnf 3 2\n"
      "x1 2 3 0\n"
      "x-1 2 0\n");
  ASSERT_EQ(cnf.num_xors(), 2u);
  EXPECT_EQ(cnf.xors()[0].vars, (std::vector<Var>{0, 1, 2}));
  EXPECT_TRUE(cnf.xors()[0].rhs);
  EXPECT_EQ(cnf.xors()[1].vars, (std::vector<Var>{0, 1}));
  EXPECT_FALSE(cnf.xors()[1].rhs);  // leading negation flips rhs
}

TEST(Dimacs, XorWithSpaceAfterX) {
  const Cnf cnf = parse_dimacs_string(
      "p cnf 2 1\n"
      "x 1 2 0\n");
  ASSERT_EQ(cnf.num_xors(), 1u);
  EXPECT_TRUE(cnf.xors()[0].rhs);
}

TEST(Dimacs, ClauseWrappingAcrossLines) {
  const Cnf cnf = parse_dimacs_string(
      "p cnf 4 1\n"
      "1 2\n"
      "3 4 0\n");
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0].size(), 4u);
}

TEST(Dimacs, ToleratesCrlfTrailingWhitespaceAndBlankLines) {
  const Cnf cnf = parse_dimacs_string(
      "c header comment\r\n"
      "p cnf 3 2  \r\n"
      "\r\n"
      "1 -2 0 \t\r\n"
      "   \n"
      "2 3 0\t \n"
      "\n");
  EXPECT_EQ(cnf.num_vars(), 3);
  ASSERT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses()[0],
            (std::vector<Lit>{Lit(0, false), Lit(1, true)}));
}

TEST(Dimacs, ToleratesCommentsBetweenClauses) {
  const Cnf cnf = parse_dimacs_string(
      "p cnf 4 2\n"
      "c a comment between clauses\n"
      "1 2 0\n"
      "c another one\n"
      "c and another\n"
      "3 4 0\n");
  EXPECT_EQ(cnf.num_clauses(), 2u);
}

TEST(Dimacs, ToleratesCommentsAndBlanksInsideWrappedClause) {
  const Cnf cnf = parse_dimacs_string(
      "p cnf 4 1\n"
      "1 2\n"
      "c interrupting comment\n"
      "\n"
      "3 4 0\n");
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0].size(), 4u);
}

TEST(Dimacs, MultipleClausesPerPhysicalLine) {
  // Tokens after a terminating 0 start the next clause — they must not be
  // silently dropped.
  const Cnf cnf = parse_dimacs_string(
      "p cnf 4 3\n"
      "1 2 0 3 4 0\n"
      "-1 0 x2 3 0\n");
  ASSERT_EQ(cnf.num_clauses(), 3u);
  EXPECT_EQ(cnf.clauses()[0],
            (std::vector<Lit>{Lit(0, false), Lit(1, false)}));
  EXPECT_EQ(cnf.clauses()[1],
            (std::vector<Lit>{Lit(2, false), Lit(3, false)}));
  EXPECT_EQ(cnf.clauses()[2], (std::vector<Lit>{Lit(0, true)}));
  ASSERT_EQ(cnf.num_xors(), 1u);
  EXPECT_EQ(cnf.xors()[0].vars, (std::vector<Var>{1, 2}));
}

TEST(Dimacs, TrailingSameLineCommentAfterClause) {
  const Cnf cnf = parse_dimacs_string(
      "p cnf 3 2\n"
      "1 2 0 c trailing note\n"
      "3 0 c ind 2 0\n");
  ASSERT_EQ(cnf.num_clauses(), 2u);
  // Even a trailing `c ind` is honored, as everywhere else.
  ASSERT_TRUE(cnf.sampling_set().has_value());
  EXPECT_EQ(*cnf.sampling_set(), (std::vector<Var>{1}));
}

TEST(Dimacs, SecondClauseOnLineCanWrap) {
  // A clause starting mid-line may still wrap onto the next line.
  const Cnf cnf = parse_dimacs_string(
      "p cnf 4 2\n"
      "1 2 0 3\n"
      "4 0\n");
  ASSERT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses()[1],
            (std::vector<Lit>{Lit(2, false), Lit(3, false)}));
}

TEST(Dimacs, IndDirectiveInsideWrappedClauseIsHonored) {
  // A `c ind` line between the physical lines of a wrapped clause must
  // register the sampling set, not vanish as a comment.
  const Cnf cnf = parse_dimacs_string(
      "p cnf 4 1\n"
      "1 2\n"
      "c ind 1 3 0\n"
      "3 4 0\n");
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0].size(), 4u);
  ASSERT_TRUE(cnf.sampling_set().has_value());
  EXPECT_EQ(*cnf.sampling_set(), (std::vector<Var>{0, 2}));
}

TEST(Dimacs, HalfNumericTokenInsideWrappedClauseStillFails) {
  // "c1 2 0" is not a comment: mid-clause it must surface as a parse
  // error with the right line, exactly as it would at top level.
  try {
    parse_dimacs_string("p cnf 3 1\n1 2\nc1 3 0\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Dimacs, ReportsLineNumberOnMalformedToken) {
  try {
    parse_dimacs_string("p cnf 3 2\n1 2 0\n1 two 0\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("two"), std::string::npos);
  }
}

TEST(Dimacs, ReportsLineNumberOnHalfNumericToken) {
  // "1a" must not be silently read as 1.
  try {
    parse_dimacs_string("p cnf 3 1\n1a 2 0\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Dimacs, UnterminatedClauseReportsLastLine) {
  try {
    parse_dimacs_string("p cnf 3 1\n1 2 3\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unterminated"), std::string::npos)
        << e.what();
  }
}

TEST(Dimacs, MissingHeaderThrows) {
  EXPECT_THROW(parse_dimacs_string("1 2 0\n"), std::runtime_error);
}

TEST(Dimacs, MalformedHeaderThrows) {
  EXPECT_THROW(parse_dimacs_string("p dnf 3 2\n"), std::runtime_error);
}

TEST(Dimacs, GarbageTokenThrows) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\nfoo 2 0\n"),
               std::runtime_error);
}

TEST(Dimacs, HeaderGrowsVariableSpace) {
  const Cnf cnf = parse_dimacs_string("p cnf 10 1\n1 0\n");
  EXPECT_EQ(cnf.num_vars(), 10);
}

TEST(Dimacs, RoundTripPreservesEverything) {
  Rng rng(47);
  Cnf cnf = test::random_cnf_xor(9, 12, 3, 3, rng);
  cnf.set_sampling_set({0, 2, 4, 6, 8});
  cnf.name = "roundtrip";
  const Cnf back = parse_dimacs_string(to_dimacs_string(cnf));
  EXPECT_EQ(back.num_vars(), cnf.num_vars());
  EXPECT_EQ(back.num_clauses(), cnf.num_clauses());
  EXPECT_EQ(back.num_xors(), cnf.num_xors());
  EXPECT_EQ(back.sampling_set(), cnf.sampling_set());
  // Semantics preserved: same brute-force count.
  EXPECT_EQ(test::brute_force_count(back), test::brute_force_count(cnf));
}

TEST(Dimacs, RoundTripXorRhsEncoding) {
  Cnf cnf(3);
  cnf.add_xor({0, 1, 2}, false);
  const Cnf back = parse_dimacs_string(to_dimacs_string(cnf));
  ASSERT_EQ(back.num_xors(), 1u);
  EXPECT_EQ(back.xors()[0].vars, cnf.xors()[0].vars);
  EXPECT_EQ(back.xors()[0].rhs, cnf.xors()[0].rhs);
}

TEST(Dimacs, FileIo) {
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false), Lit(1, true)});
  const std::string path = ::testing::TempDir() + "/unigen_dimacs_test.cnf";
  write_dimacs_file(cnf, path);
  const Cnf back = parse_dimacs_file(path);
  EXPECT_EQ(back.num_clauses(), 1u);
  EXPECT_EQ(back.num_vars(), 2);
}

TEST(Dimacs, MissingFileThrows) {
  EXPECT_THROW(parse_dimacs_file("/nonexistent/path.cnf"), std::runtime_error);
}

}  // namespace
}  // namespace unigen
