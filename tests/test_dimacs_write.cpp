// Tests for the canonical DIMACS/XOR writer (cnf/dimacs_write.hpp): one
// byte-exact serialization per formula structure, parse→write→parse
// structural round trips, and the declared-empty sampling-set encoding.

#include <gtest/gtest.h>

#include "cnf/dimacs.hpp"
#include "cnf/dimacs_write.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

/// Structural equality of the parts canonical form promises to preserve.
void expect_same_structure(const Cnf& a, const Cnf& b) {
  EXPECT_EQ(a.num_vars(), b.num_vars());
  EXPECT_EQ(a.clauses(), b.clauses());
  EXPECT_EQ(a.xors(), b.xors());
  EXPECT_EQ(a.sampling_set(), b.sampling_set());
}

TEST(DimacsWrite, PureFunctionOfStructureIgnoresName) {
  Cnf a(3);
  a.add_clause({Lit(0, false), Lit(1, true)});
  a.name = "instance-a";
  Cnf b(3);
  b.add_clause({Lit(0, false), Lit(1, true)});
  b.name = "a different name";
  EXPECT_EQ(to_dimacs_canonical_string(a), to_dimacs_canonical_string(b));
  // The legacy writer keeps the name header but delegates the body: it must
  // be exactly name comment + canonical form.
  EXPECT_EQ(to_dimacs_string(a),
            "c instance-a\n" + to_dimacs_canonical_string(a));
}

TEST(DimacsWrite, RoundTripHandWritten) {
  Cnf cnf(5);
  cnf.add_clause({Lit(0, false), Lit(1, true), Lit(4, false)});
  cnf.add_unit(Lit(2, true));
  cnf.add_xor({0, 2, 3}, true);
  cnf.add_xor({1, 4}, false);
  cnf.set_sampling_set({0, 1, 3});
  const Cnf back = parse_dimacs_string(to_dimacs_canonical_string(cnf));
  expect_same_structure(cnf, back);
}

TEST(DimacsWrite, DeclaredEmptySamplingSetSurvives) {
  // "S = {}" and "no S declared" mean different projections; the writer
  // must keep them distinguishable.
  Cnf declared_empty(2);
  declared_empty.add_clause({Lit(0, false), Lit(1, false)});
  declared_empty.set_sampling_set({});
  const std::string text = to_dimacs_canonical_string(declared_empty);
  EXPECT_NE(text.find("c ind 0\n"), std::string::npos) << text;
  const Cnf back = parse_dimacs_string(text);
  ASSERT_TRUE(back.sampling_set().has_value());
  EXPECT_TRUE(back.sampling_set()->empty());

  Cnf undeclared(2);
  undeclared.add_clause({Lit(0, false), Lit(1, false)});
  const std::string text2 = to_dimacs_canonical_string(undeclared);
  EXPECT_EQ(text2.find("c ind"), std::string::npos) << text2;
  EXPECT_FALSE(parse_dimacs_string(text2).sampling_set().has_value());
}

TEST(DimacsWrite, SamplingSetWrapsAtTenPerLine) {
  Cnf cnf(13);
  std::vector<Var> all;
  for (Var v = 0; v < 13; ++v) all.push_back(v);
  cnf.set_sampling_set(all);
  const std::string text = to_dimacs_canonical_string(cnf);
  EXPECT_NE(text.find("c ind 1 2 3 4 5 6 7 8 9 10 0\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("c ind 11 12 13 0\n"), std::string::npos) << text;
  expect_same_structure(cnf, parse_dimacs_string(text));
}

TEST(DimacsWrite, XorRhsEncodedInFirstLiteralSign) {
  Cnf cnf(3);
  cnf.add_xor({0, 1, 2}, true);
  cnf.add_xor({0, 1, 2}, false);
  const std::string text = to_dimacs_canonical_string(cnf);
  EXPECT_NE(text.find("x1 2 3 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("x-1 2 3 0\n"), std::string::npos) << text;
  expect_same_structure(cnf, parse_dimacs_string(text));
}

TEST(DimacsWrite, ConstantXorRowsPreserveSatisfiability) {
  // rhs=false (tautology) is elided; structure changes but semantics don't.
  Cnf taut(2);
  taut.add_clause({Lit(0, false)});
  taut.add_xor(XorConstraint{{}, false});
  const Cnf taut_back = parse_dimacs_string(to_dimacs_canonical_string(taut));
  EXPECT_EQ(taut_back.num_xors(), 0u);
  EXPECT_EQ(test::brute_force_count(taut_back), test::brute_force_count(taut));

  // rhs=true (contradiction) becomes the empty clause: still unsatisfiable.
  Cnf contra(2);
  contra.add_clause({Lit(0, false)});
  contra.add_xor(XorConstraint{{}, true});
  EXPECT_EQ(test::brute_force_count(contra), 0u);
  const Cnf back = parse_dimacs_string(to_dimacs_canonical_string(contra));
  EXPECT_EQ(test::brute_force_count(back), 0u);
}

TEST(DimacsWrite, RandomizedRoundTripAndFixpoint) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const test::FuzzCase fc = test::make_fuzz_case(seed);
    const std::string text = to_dimacs_canonical_string(fc.cnf);
    const Cnf back = parse_dimacs_string(text);
    expect_same_structure(fc.cnf, back);
    // write is a retraction of parse: one more round trip is byte-stable.
    EXPECT_EQ(to_dimacs_canonical_string(back), text) << "seed " << seed;
  }
}

TEST(DimacsWrite, ParseOfForeignTextReachesCanonicalFixpoint) {
  // Liberal input (wrapping, comments, multiple clauses per line, an xor
  // with several negations) normalizes in one parse→write step.
  const std::string liberal =
      "c some header\r\n"
      "p cnf 4 3\n"
      "1 2\n"
      "c interrupting comment\n"
      "-3 0 4 0\n"
      "x-1 -2 3 0\n"
      "c ind 2 4 0\n";
  const Cnf first = parse_dimacs_string(liberal);
  const std::string canon = to_dimacs_canonical_string(first);
  const Cnf second = parse_dimacs_string(canon);
  expect_same_structure(first, second);
  EXPECT_EQ(to_dimacs_canonical_string(second), canon);
}

}  // namespace
}  // namespace unigen
