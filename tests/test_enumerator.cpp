// Tests for BSAT: completeness, projection semantics, bounds, deadlines.

#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"
#include "sat/enumerator.hpp"

namespace unigen {
namespace {

using test::brute_force_count;
using test::brute_force_projected_count;
using test::random_cnf;
using test::random_cnf_xor;

TEST(Enumerator, ExhaustsSmallFormula) {
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false), Lit(1, false)});  // a | b
  // 6 of 8 assignments satisfy a|b.
  const auto result = bsat(cnf, 100);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.count, 6u);
  EXPECT_EQ(result.models.size(), 6u);
}

TEST(Enumerator, RespectsMaxModels) {
  Cnf cnf(4);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  const auto result = bsat(cnf, 3);
  EXPECT_FALSE(result.exhausted);
  EXPECT_EQ(result.count, 3u);
}

TEST(Enumerator, UnsatFormulaYieldsNothing) {
  Cnf cnf(1);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  const auto result = bsat(cnf, 10);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.count, 0u);
}

TEST(Enumerator, ModelsAreDistinctAndValid) {
  Rng rng(23);
  const Cnf cnf = random_cnf(8, 18, 3, rng);
  const auto result = bsat(cnf, 10000);
  ASSERT_TRUE(result.exhausted);
  std::set<std::vector<int>> distinct;
  for (const Model& m : result.models) {
    EXPECT_TRUE(cnf.satisfied_by(m));
    std::vector<int> key;
    for (const lbool v : m) key.push_back(static_cast<int>(v));
    distinct.insert(key);
  }
  EXPECT_EQ(distinct.size(), result.models.size());
  EXPECT_EQ(result.count, brute_force_count(cnf));
}

TEST(Enumerator, ProjectionCountsDistinctProjections) {
  // y is free; projecting on {x} must count each x-value once.
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  cnf.set_sampling_set({0});
  const auto result = bsat(cnf, 100);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.count, 2u);  // x=0 (with y=1) and x=1
}

TEST(Enumerator, ProjectedCountMatchesBruteForce) {
  Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    Cnf cnf = random_cnf_xor(8, 14, 3, 2, rng);
    const std::vector<Var> proj{0, 2, 4, 6};
    cnf.set_sampling_set(proj);
    const auto result = bsat(cnf, 10000);
    ASSERT_TRUE(result.exhausted);
    EXPECT_EQ(result.count, brute_force_projected_count(cnf, proj))
        << "round " << round;
  }
}

TEST(Enumerator, StoreModelsOffStillCounts) {
  Rng rng(5);
  const Cnf cnf = random_cnf(8, 16, 3, rng);
  Solver s;
  s.load(cnf);
  EnumerateOptions opts;
  opts.store_models = false;
  const auto result = enumerate_models(s, opts);
  EXPECT_TRUE(result.exhausted);
  EXPECT_TRUE(result.models.empty());
  EXPECT_EQ(result.count, brute_force_count(cnf));
}

TEST(Enumerator, ExpiredDeadlineReportsTimeout) {
  Rng rng(5);
  const Cnf cnf = random_cnf(16, 30, 3, rng);
  const auto result = bsat(cnf, UINT64_MAX, Deadline::in_seconds(0.0));
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.exhausted);
}

TEST(Enumerator, FullModelsReturnedUnderProjection) {
  // Even when blocking over the projection, returned models are total.
  Cnf cnf(3);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true), Lit(2, false)});
  cnf.set_sampling_set({0, 1});
  const auto result = bsat(cnf, 100);
  ASSERT_TRUE(result.exhausted);
  EXPECT_EQ(result.count, 2u);  // x1 free in projection, x2 forced
  for (const Model& m : result.models) {
    ASSERT_EQ(m.size(), 3u);
    EXPECT_TRUE(cnf.satisfied_by(m));
  }
}

}  // namespace
}  // namespace unigen
