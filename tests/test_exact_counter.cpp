// Tests for the DPLL# exact counter against brute force and against
// closed-form counts.

#include <gtest/gtest.h>

#include "counting/exact_counter.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

using test::brute_force_count;
using test::random_cnf;
using test::random_cnf_xor;

BigUint must_count(const Cnf& cnf) {
  ExactCounter counter;
  const auto result = counter.count(cnf);
  EXPECT_TRUE(result.has_value());
  return result.value_or(BigUint{});
}

TEST(ExactCounter, EmptyFormula) {
  Cnf cnf(5);
  EXPECT_EQ(must_count(cnf), BigUint(32));
}

TEST(ExactCounter, NoVariables) {
  Cnf cnf(0);
  EXPECT_EQ(must_count(cnf), BigUint(1));
}

TEST(ExactCounter, SingleUnit) {
  Cnf cnf(3);
  cnf.add_unit(Lit(1, false));
  EXPECT_EQ(must_count(cnf), BigUint(4));
}

TEST(ExactCounter, UnsatFormula) {
  Cnf cnf(2);
  cnf.add_unit(Lit(0, false));
  cnf.add_unit(Lit(0, true));
  EXPECT_EQ(must_count(cnf), BigUint(0));
}

TEST(ExactCounter, ExplicitEmptyClause) {
  Cnf cnf(4);
  cnf.add_clause({});
  EXPECT_EQ(must_count(cnf), BigUint(0));
}

TEST(ExactCounter, IsolatedVariablesDouble) {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false)});  // 3 of 4 over {0,1}
  EXPECT_EQ(must_count(cnf), BigUint(3u << 8));
}

TEST(ExactCounter, IndependentComponentsMultiply) {
  Cnf cnf(4);
  cnf.add_clause({Lit(0, false), Lit(1, false)});  // 3 models
  cnf.add_clause({Lit(2, false), Lit(3, false)});  // 3 models
  ExactCounter counter;
  EXPECT_EQ(counter.count(cnf).value(), BigUint(9));
  EXPECT_GT(counter.stats().component_splits, 0u);
}

TEST(ExactCounter, XorConstraintsViaExpansion) {
  Cnf cnf(6);
  cnf.add_xor({0, 1, 2}, true);
  cnf.add_xor({3, 4}, false);
  // 2^5 · 2^... : each independent xor halves: 2^6 / 4 = 16.
  EXPECT_EQ(must_count(cnf), BigUint(16));
}

TEST(ExactCounter, LongXorChunkingPreservesCount) {
  Cnf cnf(14);
  std::vector<Var> all;
  for (Var v = 0; v < 14; ++v) all.push_back(v);
  cnf.add_xor(all, false);
  EXPECT_EQ(must_count(cnf), BigUint(1u << 13));
}

TEST(ExactCounter, CacheIsExercised) {
  // Two disjoint copies of the same sub-formula share cache entries.
  Cnf cnf(8);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(0, true), Lit(1, true)});
  cnf.add_clause({Lit(4, false), Lit(5, false), Lit(6, false)});
  cnf.add_clause({Lit(4, true), Lit(5, true)});
  ExactCounter counter;
  const BigUint n = counter.count(cnf).value();
  EXPECT_EQ(n, BigUint(brute_force_count(cnf)));
  EXPECT_GT(counter.stats().cache_lookups, 0u);
}

TEST(ExactCounter, ExpiredDeadlineReturnsNullopt) {
  Rng rng(3);
  const Cnf cnf = random_cnf(18, 60, 3, rng);
  ExactCounterOptions opts;
  opts.deadline = Deadline::in_seconds(0.0);
  ExactCounter counter(opts);
  EXPECT_FALSE(counter.count(cnf).has_value());
}

TEST(ExactCounter, KnownCountPigeonHoleSat) {
  // 2 pigeons, 2 holes, one-hole-per-pigeon exactly: 2 permutation models.
  Cnf cnf(4);  // p(i,j) = 2i + j
  cnf.add_clause({Lit(0, false), Lit(1, false)});
  cnf.add_clause({Lit(2, false), Lit(3, false)});
  cnf.add_clause({Lit(0, true), Lit(1, true)});
  cnf.add_clause({Lit(2, true), Lit(3, true)});
  cnf.add_clause({Lit(0, true), Lit(2, true)});
  cnf.add_clause({Lit(1, true), Lit(3, true)});
  EXPECT_EQ(must_count(cnf), BigUint(2));
}

class ExactCounterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExactCounterFuzz, MatchesBruteForceOnRandomCnf) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 7);
  for (const std::size_t clauses : {10u, 25u, 40u}) {
    const Cnf cnf = random_cnf(10, clauses, 3, rng);
    EXPECT_EQ(must_count(cnf), BigUint(brute_force_count(cnf)))
        << "seed=" << GetParam() << " clauses=" << clauses;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactCounterFuzz, ::testing::Range(0, 20));

class ExactCounterXorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExactCounterXorFuzz, MatchesBruteForceOnCnfXor) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 11);
  const Cnf cnf = random_cnf_xor(9, 12, 3, 3, rng);
  EXPECT_EQ(must_count(cnf), BigUint(brute_force_count(cnf)));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExactCounterXorFuzz,
                         ::testing::Range(0, 15));

TEST(ProjectedCount, MatchesBruteForce) {
  Rng rng(19);
  for (int round = 0; round < 8; ++round) {
    const Cnf cnf = random_cnf_xor(8, 12, 3, 2, rng);
    const std::vector<Var> proj{1, 3, 5, 7};
    const auto got = count_projected_by_enumeration(cnf, proj, 10000);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, test::brute_force_projected_count(cnf, proj));
  }
}

TEST(ProjectedCount, BoundExceededReturnsNullopt) {
  Cnf cnf(8);  // 256 models, bound 10
  std::vector<Var> proj;
  for (Var v = 0; v < 8; ++v) proj.push_back(v);
  EXPECT_FALSE(count_projected_by_enumeration(cnf, proj, 10).has_value());
}

}  // namespace
}  // namespace unigen
