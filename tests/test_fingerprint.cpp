// Tests for the canonical formula fingerprint (cnf/fingerprint.hpp): the
// session registry's keying primitive.  The contract under test is
// "order-independent where presentation varies, order-sensitive where
// order is meaning".

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "cnf/fingerprint.hpp"
#include "helpers.hpp"

namespace unigen {
namespace {

Cnf base_formula() {
  Cnf cnf(6);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, true)});
  cnf.add_clause({Lit(2, false), Lit(3, false)});
  cnf.add_clause({Lit(4, true), Lit(5, false), Lit(0, true)});
  cnf.add_xor({{0, 2, 4}, true});
  return cnf;
}

TEST(Fingerprint, DeterministicAcrossBuilders) {
  const Cnf cnf = base_formula();
  EXPECT_EQ(fingerprint_cnf(cnf), fingerprint_cnf(cnf));
  FingerprintBuilder fb;
  fold_cnf(fb, cnf);
  EXPECT_EQ(fb.digest(), fingerprint_cnf(cnf));
  // digest() does not reset: folding more data changes the result.
  fb.add_scalar(1);
  EXPECT_FALSE(fb.digest() == fingerprint_cnf(cnf));
}

TEST(Fingerprint, ClauseOrderAndLiteralOrderArePresentation) {
  const Cnf a = base_formula();
  Cnf b(6);
  // Same clauses, reversed order, literals scrambled within each clause.
  b.add_clause({Lit(5, false), Lit(0, true), Lit(4, true)});
  b.add_clause({Lit(3, false), Lit(2, false)});
  b.add_clause({Lit(2, true), Lit(0, false), Lit(1, false)});
  b.add_xor({{4, 0, 2}, true});
  EXPECT_EQ(fingerprint_cnf(a), fingerprint_cnf(b));
}

TEST(Fingerprint, NameIsPresentation) {
  Cnf a = base_formula();
  Cnf b = base_formula();
  a.name = "left";
  b.name = "right";
  EXPECT_EQ(fingerprint_cnf(a), fingerprint_cnf(b));
}

TEST(Fingerprint, DuplicateClausesAreMeaning) {
  // The clause bag is a multiset: adding a copy of an existing clause must
  // change the digest (a plain XOR fold would cancel the pair).
  Cnf a = base_formula();
  Cnf b = base_formula();
  b.add_clause({Lit(2, false), Lit(3, false)});
  EXPECT_FALSE(fingerprint_cnf(a) == fingerprint_cnf(b));
}

TEST(Fingerprint, ClauseContentIsMeaning) {
  Cnf a = base_formula();
  Cnf b(6);
  b.add_clause({Lit(0, false), Lit(1, false), Lit(2, true)});
  b.add_clause({Lit(2, false), Lit(3, true)});  // flipped polarity
  b.add_clause({Lit(4, true), Lit(5, false), Lit(0, true)});
  b.add_xor({{0, 2, 4}, true});
  EXPECT_FALSE(fingerprint_cnf(a) == fingerprint_cnf(b));
  Cnf c = base_formula();
  c.add_xor({{0, 2, 4}, false});  // extra XOR, flipped rhs
  EXPECT_FALSE(fingerprint_cnf(a) == fingerprint_cnf(c));
}

TEST(Fingerprint, SamplingSetIsMeaning) {
  Cnf a = base_formula();
  Cnf b = base_formula();
  b.set_sampling_set({0, 1, 2});
  EXPECT_FALSE(fingerprint_cnf(a) == fingerprint_cnf(b));
  // Declaring the full support is the same meaning as declaring nothing.
  Cnf c = base_formula();
  c.set_sampling_set({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(fingerprint_cnf(a), fingerprint_cnf(c));
}

TEST(Fingerprint, OrderedChainIsOrderSensitive) {
  FingerprintBuilder a, b;
  a.add_ordered_clause({Lit(0, false)});
  a.add_ordered_clause({Lit(1, false)});
  b.add_ordered_clause({Lit(1, false)});
  b.add_ordered_clause({Lit(0, false)});
  EXPECT_FALSE(a.digest() == b.digest());
  // While the bag is not.
  FingerprintBuilder c, d;
  c.add_clause({Lit(0, false)});
  c.add_clause({Lit(1, false)});
  d.add_clause({Lit(1, false)});
  d.add_clause({Lit(0, false)});
  EXPECT_EQ(c.digest(), d.digest());
}

TEST(Fingerprint, ScalarsChainOrderSensitively) {
  FingerprintBuilder a, b;
  a.add_scalar(1);
  a.add_scalar(2);
  b.add_scalar(2);
  b.add_scalar(1);
  EXPECT_FALSE(a.digest() == b.digest());
}

TEST(Fingerprint, RandomFormulasRarelyCollide) {
  // 200 random formulas, all digests distinct (a collision here would be a
  // mixing bug, not bad luck, at 128 bits).
  Rng rng(0xF1D0);
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    const Cnf cnf = test::random_cnf(8, 6 + i % 5, 3, rng);
    seen.insert(fingerprint_cnf(cnf).hex());
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(Fingerprint, HexIsStable32Digits) {
  const Fingerprint f = fingerprint_cnf(base_formula());
  const std::string h = f.hex();
  EXPECT_EQ(h.size(), 32u);
  EXPECT_EQ(h, fingerprint_cnf(base_formula()).hex());
}

}  // namespace
}  // namespace unigen
