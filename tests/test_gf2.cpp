// Tests for GF(2) vectors and the row-reduced parity system.

#include <gtest/gtest.h>

#include <algorithm>

#include "util/gf2.hpp"
#include "util/rng.hpp"

namespace unigen {
namespace {

TEST(Gf2Vector, SetGetFlip) {
  Gf2Vector v(130);
  EXPECT_FALSE(v.any());
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 2u);
}

TEST(Gf2Vector, XorWith) {
  Gf2Vector a(100), b(100);
  a.set(3, true);
  a.set(70, true);
  b.set(3, true);
  b.set(99, true);
  a.xor_with(b);
  EXPECT_FALSE(a.get(3));
  EXPECT_TRUE(a.get(70));
  EXPECT_TRUE(a.get(99));
}

TEST(Gf2Vector, FirstSet) {
  Gf2Vector v(200);
  EXPECT_EQ(v.first_set(), Gf2Vector::npos);
  v.set(150, true);
  EXPECT_EQ(v.first_set(), 150u);
  v.set(7, true);
  EXPECT_EQ(v.first_set(), 7u);
}

TEST(Gf2System, SingleConstraintRankOne) {
  Gf2System sys(5);
  EXPECT_TRUE(sys.add_constraint({0, 2}, true));
  EXPECT_EQ(sys.rank(), 1u);
  EXPECT_TRUE(sys.consistent());
}

TEST(Gf2System, RedundantConstraintDoesNotGrowRank) {
  Gf2System sys(5);
  EXPECT_TRUE(sys.add_constraint({0, 1}, true));
  EXPECT_TRUE(sys.add_constraint({1, 2}, false));
  EXPECT_TRUE(sys.add_constraint({0, 2}, true));  // sum of the first two
  EXPECT_EQ(sys.rank(), 2u);
  EXPECT_TRUE(sys.consistent());
}

TEST(Gf2System, InconsistentSystemDetected) {
  Gf2System sys(4);
  EXPECT_TRUE(sys.add_constraint({0, 1}, true));
  EXPECT_TRUE(sys.add_constraint({1, 2}, true));
  EXPECT_FALSE(sys.add_constraint({0, 2}, true));  // implies 0 = 1
  EXPECT_FALSE(sys.consistent());
}

TEST(Gf2System, DuplicatedVarsCancelInConstraint) {
  Gf2System sys(4);
  // x0 ^ x0 ^ x1 = 1  ==  x1 = 1.
  EXPECT_TRUE(sys.add_constraint({0, 0, 1}, true));
  const auto units = sys.implied_units();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].first, 1u);
  EXPECT_TRUE(units[0].second);
}

TEST(Gf2System, ImpliedUnitsFromElimination) {
  Gf2System sys(3);
  EXPECT_TRUE(sys.add_constraint({0, 1}, true));
  EXPECT_TRUE(sys.add_constraint({0}, false));  // x0 = 0 -> x1 = 1
  const auto units = sys.implied_units();
  ASSERT_EQ(units.size(), 2u);
}

TEST(Gf2System, RankMatchesBruteForceSolutionCount) {
  // #solutions of consistent system = 2^(n - rank); check by enumeration.
  Rng rng(41);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 8;
    std::vector<std::pair<std::vector<std::uint32_t>, bool>> constraints;
    Gf2System sys(n);
    bool consistent = true;
    for (int i = 0; i < 5; ++i) {
      std::vector<std::uint32_t> vars;
      for (std::uint32_t v = 0; v < n; ++v)
        if (rng.flip()) vars.push_back(v);
      const bool rhs = rng.flip();
      constraints.emplace_back(vars, rhs);
      consistent = sys.add_constraint(vars, rhs) && consistent;
    }
    std::uint64_t solutions = 0;
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
      bool ok = true;
      for (const auto& [vars, rhs] : constraints) {
        bool parity = false;
        for (const auto v : vars) parity ^= ((bits >> v) & 1u) != 0;
        if (parity != rhs) {
          ok = false;
          break;
        }
      }
      solutions += ok;
    }
    const std::uint64_t expected =
        consistent ? (std::uint64_t{1} << (n - sys.rank())) : 0;
    EXPECT_EQ(solutions, expected) << "round " << round;
  }
}

TEST(Gf2Vector, ForEachSetMatchesPerBitProbe) {
  // The word-packed set-bit walk must enumerate exactly the bits a naive
  // per-bit get() scan finds, in the same ascending order — including bits
  // straddling uint64_t word boundaries.
  Rng rng(53);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 1 + rng.below(300);
    Gf2Vector v(n);
    for (std::size_t i = 0; i < n; ++i)
      if (rng.below(4) == 0) v.set(i, true);
    std::vector<std::size_t> reference;
    for (std::size_t i = 0; i < n; ++i)
      if (v.get(i)) reference.push_back(i);
    std::vector<std::size_t> packed;
    v.for_each_set([&](std::size_t i) { packed.push_back(i); });
    EXPECT_EQ(packed, reference) << "round " << round << " n=" << n;
  }
}

TEST(Gf2System, WordPackedRowExportMatchesPerBitReference) {
  // reduced_rows() / for_each_reduced_row() extract sparse rows by peeling
  // 64-bit words; this pins them against the per-bit formulation the code
  // used before word-packing, on systems wider than one word.
  Rng rng(59);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 70 + rng.below(120);
    Gf2System sys(n);
    for (int i = 0; i < 12; ++i) {
      std::vector<std::uint32_t> vars;
      for (std::uint32_t v = 0; v < n; ++v)
        if (rng.below(8) == 0) vars.push_back(v);
      if (vars.empty()) vars.push_back(static_cast<std::uint32_t>(rng.below(n)));
      if (!sys.add_constraint(vars, rng.flip())) break;
    }
    const auto rows = sys.reduced_rows();
    std::vector<Gf2System::Row> streamed;
    sys.for_each_reduced_row(
        [&](const Gf2System::Row& r) { streamed.push_back(r); });
    ASSERT_EQ(rows.size(), streamed.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ(rows[r].vars, streamed[r].vars);
      EXPECT_EQ(rows[r].rhs, streamed[r].rhs);
      // Per-bit reference: pivot first, then every other set column in
      // ascending order.
      ASSERT_FALSE(rows[r].vars.empty());
      std::vector<std::uint32_t> sorted_tail(rows[r].vars.begin() + 1,
                                             rows[r].vars.end());
      EXPECT_TRUE(std::is_sorted(sorted_tail.begin(), sorted_tail.end()));
      for (const auto v : sorted_tail) EXPECT_GT(v, rows[r].vars[0]);
    }
  }
}

TEST(Gf2System, ReducedRowsSpanSameSolutionSet) {
  Rng rng(43);
  const std::size_t n = 7;
  Gf2System sys(n);
  std::vector<std::pair<std::vector<std::uint32_t>, bool>> original;
  for (int i = 0; i < 4; ++i) {
    std::vector<std::uint32_t> vars;
    for (std::uint32_t v = 0; v < n; ++v)
      if (rng.flip()) vars.push_back(v);
    if (vars.empty()) vars.push_back(0);
    const bool rhs = rng.flip();
    original.emplace_back(vars, rhs);
    ASSERT_TRUE(sys.add_constraint(vars, rhs));
  }
  const auto reduced = sys.reduced_rows();
  // Every assignment satisfies the original system iff it satisfies the
  // reduced one.
  for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
    auto eval = [&](const std::vector<std::uint32_t>& vars, bool rhs) {
      bool parity = false;
      for (const auto v : vars) parity ^= ((bits >> v) & 1u) != 0;
      return parity == rhs;
    };
    bool orig_ok = true;
    for (const auto& [vars, rhs] : original) orig_ok = orig_ok && eval(vars, rhs);
    bool red_ok = true;
    for (const auto& row : reduced) red_ok = red_ok && eval(row.vars, row.rhs);
    ASSERT_EQ(orig_ok, red_ok) << "assignment " << bits;
  }
}

}  // namespace
}  // namespace unigen
