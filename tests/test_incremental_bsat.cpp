// Tests for the incremental BSAT engine: assumption-activated XOR hash
// rows, blocking-clause retraction, learnt-clause retention, and the
// one-persistent-solver guarantee (solver_rebuilds stays at 1) for both
// ApproxMC runs and UniGen instances.

#include <gtest/gtest.h>

#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "hashing/xor_hash.hpp"
#include "helpers.hpp"
#include "sat/incremental_bsat.hpp"

namespace unigen {
namespace {

using test::brute_force_projected_count;
using test::random_cnf;
using test::random_cnf_xor;

/// Reference count of cnf ∧ (first m rows of h), projected on `proj`.
std::uint64_t reference_cell_count(const Cnf& cnf, const XorHash& h,
                                   std::size_t m, const std::vector<Var>& proj) {
  Cnf hashed = cnf;
  for (std::size_t i = 0; i < m; ++i) hashed.add_xor(h.rows[i]);
  return brute_force_projected_count(hashed, proj);
}

TEST(IncrementalBsat, ActivatedRowsMatchBruteForceAtEveryLevel) {
  Rng rng(101);
  const std::vector<Var> proj{0, 1, 2, 3, 4, 5, 6, 7};
  for (int round = 0; round < 10; ++round) {
    const Cnf cnf = random_cnf(10, 22, 3, rng);
    IncrementalBsat engine(cnf, proj);
    const XorHash h = draw_xor_hash(proj, 5, rng);
    engine.push_rows(h);
    ASSERT_EQ(engine.hash_level(), 5u);
    // Climb the levels, then revisit lower ones: activation is by
    // assumption only, so levels nest and earlier levels stay available.
    for (std::size_t m : {0u, 1u, 3u, 5u, 2u, 0u}) {
      const auto r =
          engine.enumerate_cell(m, 100000, Deadline::never(), false);
      ASSERT_TRUE(r.exhausted);
      EXPECT_EQ(r.count, reference_cell_count(cnf, h, m, proj))
          << "round " << round << " m " << m;
    }
  }
}

TEST(IncrementalBsat, FreshEpochReplacesTheHash) {
  Rng rng(202);
  const std::vector<Var> proj{0, 1, 2, 3, 4, 5};
  const Cnf cnf = random_cnf(9, 18, 3, rng);
  IncrementalBsat engine(cnf, proj);
  const std::uint64_t base =
      engine.enumerate_cell(0, 100000, Deadline::never(), false).count;
  for (int epoch = 0; epoch < 25; ++epoch) {
    engine.begin_hash();
    const XorHash h = draw_xor_hash(proj, 3, rng);
    engine.push_rows(h);
    const auto r = engine.enumerate_cell(3, 100000, Deadline::never(), false);
    ASSERT_TRUE(r.exhausted);
    EXPECT_EQ(r.count, reference_cell_count(cnf, h, 3, proj)) << epoch;
    // Old epochs must not constrain the new one: level 0 still sees the
    // whole solution space.
    const auto unhashed =
        engine.enumerate_cell(0, 100000, Deadline::never(), false);
    EXPECT_EQ(unhashed.count, base) << epoch;
  }
  EXPECT_EQ(engine.stats().solver_rebuilds, 1u);
}

TEST(IncrementalBsat, RetractionRestoresTheModelCount) {
  Rng rng(303);
  const Cnf cnf = random_cnf(8, 16, 3, rng);
  const std::vector<Var> proj{0, 1, 2, 3, 4, 5, 6, 7};
  IncrementalBsat engine(cnf, proj);
  const auto first = engine.enumerate_cell(0, 100000, Deadline::never(), true);
  ASSERT_TRUE(first.exhausted);
  ASSERT_GT(first.count, 0u);
  // The first enumeration blocked every model; retraction must have undone
  // that, or the second pass would find nothing.
  const auto second = engine.enumerate_cell(0, 100000, Deadline::never(), true);
  EXPECT_EQ(second.count, first.count);
  EXPECT_EQ(engine.stats().retracted_blocks, first.count + second.count);
  EXPECT_EQ(engine.stats().reused_solves, 1u);
}

TEST(IncrementalBsat, LearntRetentionKeepsVerdictsCorrect) {
  // Many epochs on CNF+XOR formulas: everything the solver learns in one
  // cell must stay valid in every later cell.
  Rng rng(404);
  const std::vector<Var> proj{0, 1, 2, 3, 4, 5, 6};
  for (int round = 0; round < 6; ++round) {
    const Cnf cnf = random_cnf_xor(9, 16, 3, 2, rng);
    IncrementalBsat engine(cnf, proj);
    for (int epoch = 0; epoch < 8; ++epoch) {
      engine.begin_hash();
      const XorHash h = draw_xor_hash(proj, 4, rng);
      engine.push_rows(h);
      for (std::size_t m : {4u, 1u, 2u}) {
        const auto r =
            engine.enumerate_cell(m, 100000, Deadline::never(), false);
        ASSERT_TRUE(r.exhausted);
        EXPECT_EQ(r.count, reference_cell_count(cnf, h, m, proj))
            << "round " << round << " epoch " << epoch << " m " << m;
      }
    }
  }
}

TEST(IncrementalBsat, GaussReductionSoundWithAbsorberRows) {
  // Formulas whose XOR rows live entirely inside the priority set — the
  // shape that exercises reduce_priority_local_xors with absorber columns.
  Rng rng(505);
  const std::vector<Var> s{0, 1, 2, 3, 4, 5};
  for (int round = 0; round < 10; ++round) {
    Cnf cnf = random_cnf(10, 20, 3, rng);
    cnf.set_sampling_set(s);
    IncrementalBsat engine(cnf, s);
    for (std::size_t m : {1u, 3u, 5u}) {
      engine.begin_hash();
      const XorHash h = draw_xor_hash(s, m, rng);
      engine.push_rows(h);
      const auto r = engine.enumerate_cell(m, 100000, Deadline::never(), true);
      ASSERT_TRUE(r.exhausted);
      EXPECT_EQ(r.count, reference_cell_count(cnf, h, m, s))
          << "round " << round << " m " << m;
      for (const auto& model : r.models) {
        Model truncated = model;
        truncated.resize(static_cast<std::size_t>(cnf.num_vars()));
        EXPECT_TRUE(cnf.satisfied_by(truncated));
      }
    }
  }
}

TEST(IncrementalBsat, UnsatBaseFormulaStaysUnsat) {
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false)});
  cnf.add_clause({Lit(0, true)});
  IncrementalBsat engine(cnf, {0, 1});
  Rng rng(1);
  engine.push_rows(draw_xor_hash({0, 1}, 1, rng));
  EXPECT_EQ(engine.enumerate_cell(0, 10, Deadline::never(), false).count, 0u);
  EXPECT_EQ(engine.enumerate_cell(1, 10, Deadline::never(), false).count, 0u);
}

TEST(ApproxMc, OnePersistentSolverPerRun) {
  // The acceptance criterion of this PR: probe() performs zero Solver
  // constructions per BSAT call — the whole run shares one solver.
  Cnf cnf(14);
  cnf.add_clause({Lit(0, false), Lit(0, true)});
  Rng rng(3);
  const auto r = approx_count(cnf, {}, rng);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.solver_rebuilds, 1u);
  EXPECT_GT(r.bsat_calls, 1u);
  EXPECT_EQ(r.reused_solves, r.bsat_calls - 1);
  EXPECT_GT(r.retracted_blocks, 0u);
}

TEST(UniGen, OnePersistentSolverAcrossSamples) {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  Rng rng(7);
  UniGen sampler(cnf, {}, rng);
  ASSERT_TRUE(sampler.prepare());
  for (int i = 0; i < 25; ++i) sampler.sample();
  const auto& st = sampler.stats();
  EXPECT_GT(st.sample_bsat_calls, 25u);
  // accept_cell() shares one persistent solver across every sample (the
  // engine is built once, in prepare's easy-case check).
  EXPECT_EQ(st.solver_rebuilds, 1u);
  EXPECT_GT(st.reused_solves, 0u);
  EXPECT_GT(st.retracted_blocks, 0u);
  // prepare's ApproxMC run owns the only other solver of the instance.
  EXPECT_EQ(st.counter_solver_rebuilds, 1u);
}

}  // namespace
}  // namespace unigen
