// Tests for independent-support verification and minimization (Padoa
// queries).

#include <gtest/gtest.h>

#include <map>

#include "cnf/tseitin.hpp"
#include "helpers.hpp"
#include "support/independent_support.hpp"

namespace unigen {
namespace {

/// Reference semantics by brute force: S is independent iff no two models
/// share the same S-projection while differing elsewhere.
bool brute_force_independent(const Cnf& cnf, const std::vector<Var>& s) {
  std::map<std::vector<int>, std::vector<Model>> groups;
  for (const Model& m : test::brute_force_models(cnf)) {
    std::vector<int> key;
    for (const Var v : s)
      key.push_back(static_cast<int>(m[static_cast<std::size_t>(v)]));
    groups[key].push_back(m);
  }
  for (const auto& [key, models] : groups)
    if (models.size() > 1) return false;
  return true;
}

TEST(IndependentSupport, EqualityFormula) {
  // a = b: {a} and {b} are independent supports; {} is not.
  Cnf cnf(2);
  cnf.add_xor({0, 1}, false);
  EXPECT_EQ(is_independent_support(cnf, {0}), std::optional<bool>(true));
  EXPECT_EQ(is_independent_support(cnf, {1}), std::optional<bool>(true));
  EXPECT_EQ(is_independent_support(cnf, {}), std::optional<bool>(false));
  EXPECT_EQ(is_independent_support(cnf, {0, 1}), std::optional<bool>(true));
}

TEST(IndependentSupport, PaperExample) {
  // (a ∨ ¬b) ∧ (¬a ∨ b) — the Section-2 example with supports {a}, {b},
  // {a,b}.
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false), Lit(1, true)});
  cnf.add_clause({Lit(0, true), Lit(1, false)});
  EXPECT_EQ(is_independent_support(cnf, {0}), std::optional<bool>(true));
  EXPECT_EQ(is_independent_support(cnf, {1}), std::optional<bool>(true));
}

TEST(IndependentSupport, FreeVariableBlocksIndependence) {
  // b free: {a} cannot determine b.
  Cnf cnf(2);
  cnf.add_clause({Lit(0, false)});
  EXPECT_EQ(is_independent_support(cnf, {0}), std::optional<bool>(false));
  EXPECT_EQ(is_independent_support(cnf, {0, 1}), std::optional<bool>(true));
}

TEST(IndependentSupport, TseitinInputsAreIndependent) {
  Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  const auto d = c.add_input();
  c.add_output(c.lor(c.land(a, b), c.lxor(b, d)));
  const auto enc = tseitin_encode(c);
  EXPECT_EQ(is_independent_support(enc.cnf, enc.input_vars),
            std::optional<bool>(true));
}

TEST(IndependentSupport, BudgetExhaustionIsUnknown) {
  // A query that level-0 propagation/Gauss cannot settle: the solver must
  // actually search, so an expired deadline yields "unknown".
  Rng rng(99);
  const Cnf cnf = test::random_cnf(12, 30, 3, rng);
  SupportCheckOptions opts;
  opts.deadline = Deadline::in_seconds(0.0);
  EXPECT_EQ(is_independent_support(cnf, {0, 1, 2}, opts), std::nullopt);
}

TEST(IndependentSupport, MatchesBruteForceOnRandomFormulas) {
  Rng rng(13);
  for (int round = 0; round < 12; ++round) {
    const Cnf cnf = test::random_cnf_xor(7, 10, 3, 2, rng);
    std::vector<Var> s;
    for (Var v = 0; v < 7; ++v)
      if (rng.flip()) s.push_back(v);
    const auto got = is_independent_support(cnf, s);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, brute_force_independent(cnf, s)) << "round " << round;
  }
}

TEST(MinimizeSupport, ShrinksEqualityChain) {
  // x0 = x1 = x2 = x3: any single variable is a minimal support.
  Cnf cnf(4);
  cnf.add_xor({0, 1}, false);
  cnf.add_xor({1, 2}, false);
  cnf.add_xor({2, 3}, false);
  const auto minimal = minimize_independent_support(cnf, {0, 1, 2, 3});
  ASSERT_TRUE(minimal.has_value());
  EXPECT_EQ(minimal->size(), 1u);
}

TEST(MinimizeSupport, RejectsNonIndependentStart) {
  Cnf cnf(2);  // both vars free
  const auto minimal = minimize_independent_support(cnf, {0});
  EXPECT_FALSE(minimal.has_value());
}

TEST(MinimizeSupport, ResultIsStillIndependent) {
  Rng rng(17);
  Circuit c;
  std::vector<Circuit::Sig> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(c.add_input());
  // Output uses only the first three inputs: the last two stay necessary
  // in the support anyway (they are unconstrained, hence must be in S).
  c.add_output(c.lor(c.land(ins[0], ins[1]), ins[2]));
  const auto enc = tseitin_encode(c);
  const auto minimal =
      minimize_independent_support(enc.cnf, enc.input_vars, {}, &rng);
  ASSERT_TRUE(minimal.has_value());
  EXPECT_EQ(is_independent_support(enc.cnf, *minimal),
            std::optional<bool>(true));
  EXPECT_EQ(minimal->size(), enc.input_vars.size());  // already minimal
}

TEST(MinimizeSupport, DropsRedundantMirrors) {
  // Mirror pairs: {0,1,2} and {3,4,5} with x_{i+3} = x_i; a minimal support
  // has exactly one variable per pair.
  Cnf cnf(6);
  for (Var v = 0; v < 3; ++v) cnf.add_xor({v, v + 3}, false);
  std::vector<Var> all{0, 1, 2, 3, 4, 5};
  const auto minimal = minimize_independent_support(cnf, all);
  ASSERT_TRUE(minimal.has_value());
  EXPECT_EQ(minimal->size(), 3u);
  EXPECT_EQ(is_independent_support(cnf, *minimal), std::optional<bool>(true));
}

}  // namespace
}  // namespace unigen
