// Torture suite for the IPC frame layer (service/ipc.hpp) — the byte-level
// contract every fleet transport rides on.
//
// The incremental FrameReader must pop exactly the frames that were
// written no matter how the transport fragments the stream (TCP segments
// do not respect frame boundaries), must reject corrupt prefixes before
// allocating, and must not grow without bound across a long conversation.
// The blocking read path (read_frame_outcome) must classify the same
// corruptions into the worker's protocol-error taxonomy.  The write path
// must refuse a body that cannot be framed BEFORE any byte hits the wire
// (a u32 length wrap would silently desynchronize the peer), and its
// bounded mode must give up on a stalled peer within the deadline instead
// of wedging the single-threaded supervisor.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "service/ipc.hpp"

namespace unigen {
namespace {

/// Raw wire bytes of one frame: u32 LE length prefix + type byte + body.
std::string raw_frame(std::uint8_t type_byte, const std::string& body) {
  const std::uint32_t len = static_cast<std::uint32_t>(body.size() + 1);
  std::string out;
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>(type_byte));
  out += body;
  return out;
}

/// A bare length prefix with no payload behind it (for corrupt-prefix
/// tests: the reader must reject on the prefix alone).
std::string raw_prefix(std::uint32_t len) {
  std::string out;
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  return out;
}

struct ExpectedFrame {
  ipc::FrameType type;
  std::string body;
};

/// Feeds `wire` into a FrameReader in `chunk`-byte slices and asserts the
/// popped frames match `expected` exactly.
void expect_frames_chunked(const std::string& wire, std::size_t chunk,
                           const std::vector<ExpectedFrame>& expected) {
  ipc::FrameReader reader;
  std::vector<ExpectedFrame> got;
  ipc::FrameType type;
  std::string body;
  for (std::size_t pos = 0; pos < wire.size(); pos += chunk) {
    const std::size_t n = std::min(chunk, wire.size() - pos);
    reader.feed(wire.data() + pos, n);
    while (reader.next(type, body)) got.push_back({type, body});
  }
  ASSERT_EQ(got.size(), expected.size()) << "chunk=" << chunk;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].type, expected[i].type) << "frame " << i;
    EXPECT_EQ(got[i].body, expected[i].body) << "frame " << i;
  }
  EXPECT_FALSE(reader.next(type, body)) << "trailing partial frame";
}

std::vector<ExpectedFrame> mixed_frames() {
  return {
      {ipc::FrameType::kSetup, "setup-payload"},
      {ipc::FrameType::kReady, ""},
      {ipc::FrameType::kTask, std::string(300, 'a')},
      {ipc::FrameType::kHeartbeat, ""},
      {ipc::FrameType::kResult, std::string("\x00\x01\x02\xff", 4)},
      {ipc::FrameType::kError, "boom"},
  };
}

std::string wire_of(const std::vector<ExpectedFrame>& frames) {
  std::string wire;
  for (const ExpectedFrame& f : frames)
    wire += raw_frame(static_cast<std::uint8_t>(f.type), f.body);
  return wire;
}

TEST(FrameReader, OneByteAtATime) {
  const auto frames = mixed_frames();
  expect_frames_chunked(wire_of(frames), 1, frames);
}

TEST(FrameReader, EveryChunkSize) {
  const auto frames = mixed_frames();
  const std::string wire = wire_of(frames);
  // Every chunk size up to "whole stream at once" — covers every split
  // point relative to the length prefix, the type byte, and frame ends.
  for (std::size_t chunk = 1; chunk <= wire.size(); ++chunk)
    expect_frames_chunked(wire, chunk, frames);
}

TEST(FrameReader, SplitAtEveryBoundary) {
  const auto frames = mixed_frames();
  const std::string wire = wire_of(frames);
  // Two-feed splits at every byte position (including mid-prefix).
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    ipc::FrameReader reader;
    reader.feed(wire.data(), cut);
    std::vector<ExpectedFrame> got;
    ipc::FrameType type;
    std::string body;
    while (reader.next(type, body)) got.push_back({type, body});
    reader.feed(wire.data() + cut, wire.size() - cut);
    while (reader.next(type, body)) got.push_back({type, body});
    ASSERT_EQ(got.size(), frames.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i].body, frames[i].body) << "cut=" << cut;
  }
}

TEST(FrameReader, ZeroLengthPrefixThrows) {
  ipc::FrameReader reader;
  const std::string wire = raw_prefix(0);
  reader.feed(wire.data(), wire.size());
  ipc::FrameType type;
  std::string body;
  EXPECT_THROW(reader.next(type, body), std::runtime_error);
}

TEST(FrameReader, OversizedPrefixThrowsBeforeAllocation) {
  // 0xffffffff would be a 4 GiB allocation if the reader trusted the
  // prefix; it must throw from the 4 prefix bytes alone.
  for (const std::uint32_t len :
       {ipc::kMaxFrame + 1, 0x7fffffffu, 0xffffffffu}) {
    ipc::FrameReader reader;
    const std::string wire = raw_prefix(len);
    reader.feed(wire.data(), wire.size());
    ipc::FrameType type;
    std::string body;
    EXPECT_THROW(reader.next(type, body), std::runtime_error) << len;
  }
}

TEST(FrameReader, UnknownTypeByteThrows) {
  for (const std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{7},
                                 std::uint8_t{0x42}, std::uint8_t{0xff}}) {
    ipc::FrameReader reader;
    const std::string wire = raw_frame(bad, "body");
    reader.feed(wire.data(), wire.size());
    ipc::FrameType type;
    std::string body;
    EXPECT_THROW(reader.next(type, body), std::runtime_error) << int(bad);
  }
}

TEST(FrameReader, ValidTypeRangeMatchesEnum) {
  EXPECT_FALSE(ipc::valid_frame_type(0));
  for (std::uint8_t b = 1; b <= 6; ++b) EXPECT_TRUE(ipc::valid_frame_type(b));
  EXPECT_FALSE(ipc::valid_frame_type(7));
  EXPECT_FALSE(ipc::valid_frame_type(0xff));
}

TEST(FrameReader, CompactsUnderLongStream) {
  // A long-lived supervisor connection sees millions of heartbeat/result
  // frames; the reader must reclaim consumed bytes instead of growing its
  // buffer forever.  10k frames fed in ragged chunks, popped continuously
  // — the observable contract is that every frame comes out intact (the
  // compaction itself is internal, but an unbounded buffer would OOM long
  // before any real deployment noticed).
  ipc::FrameReader reader;
  const std::string body(57, 'h');
  const std::string one =
      raw_frame(static_cast<std::uint8_t>(ipc::FrameType::kHeartbeat), body);
  std::size_t popped = 0;
  std::string pending;
  ipc::FrameType type;
  std::string got;
  for (int i = 0; i < 10000; ++i) {
    pending += one;
    // Feed in a ragged, frame-misaligned slice pattern.
    const std::size_t n = 1 + (static_cast<std::size_t>(i) % 61);
    const std::size_t take = std::min(n, pending.size());
    reader.feed(pending.data(), take);
    pending.erase(0, take);
    while (reader.next(type, got)) {
      EXPECT_EQ(type, ipc::FrameType::kHeartbeat);
      EXPECT_EQ(got, body);
      ++popped;
    }
  }
  reader.feed(pending.data(), pending.size());
  while (reader.next(type, got)) ++popped;
  EXPECT_EQ(popped, 10000u);
}

// ---- blocking read path (read_frame_outcome) --------------------------

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void write_raw(const std::string& bytes) {
    ASSERT_EQ(::send(fds[1], bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  void close_writer() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(ReadFrameOutcome, ValidFrameRoundTrips) {
  SocketPair sp;
  ASSERT_TRUE(ipc::write_frame(sp.fds[1], ipc::FrameType::kTask, "payload"));
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kFrame);
  EXPECT_EQ(type, ipc::FrameType::kTask);
  EXPECT_EQ(body, "payload");
}

TEST(ReadFrameOutcome, EofOnClose) {
  SocketPair sp;
  sp.close_writer();
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kEof);
}

TEST(ReadFrameOutcome, EofOnTruncatedFrame) {
  SocketPair sp;
  const std::string whole =
      raw_frame(static_cast<std::uint8_t>(ipc::FrameType::kTask), "payload");
  sp.write_raw(whole.substr(0, whole.size() - 3));
  sp.close_writer();
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kEof);
}

TEST(ReadFrameOutcome, BadLengthOnZeroPrefix) {
  SocketPair sp;
  sp.write_raw(raw_prefix(0));
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kBadLength);
}

TEST(ReadFrameOutcome, BadLengthOnOversizedPrefixWithoutAllocating) {
  // The 4 GiB prefix must be rejected from the prefix alone — no payload
  // bytes exist to read, so a reader that tried to allocate-and-read
  // would block forever (or OOM); classification must be immediate.
  SocketPair sp;
  sp.write_raw(raw_prefix(0xffffffffu));
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kBadLength);
}

TEST(ReadFrameOutcome, BadTypeKeepsStreamInSync) {
  // An unknown type byte consumes exactly its frame: the next read must
  // pop the following valid frame — this is what lets the worker answer
  // with a structured Error and keep serving.
  SocketPair sp;
  sp.write_raw(raw_frame(0x42, "junk"));
  ASSERT_TRUE(ipc::write_frame(sp.fds[1], ipc::FrameType::kTask, "real"));
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kBadType);
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kFrame);
  EXPECT_EQ(type, ipc::FrameType::kTask);
  EXPECT_EQ(body, "real");
}

// ---- write path -------------------------------------------------------

TEST(WriteFrame, BodyFitsBoundary) {
  EXPECT_TRUE(ipc::frame_body_fits(0));
  EXPECT_TRUE(ipc::frame_body_fits(ipc::kMaxFrame - 1));  // len == kMaxFrame
  EXPECT_FALSE(ipc::frame_body_fits(ipc::kMaxFrame));
  // Past-u32 sizes must fail the same check, not wrap the length prefix.
  EXPECT_FALSE(ipc::frame_body_fits(std::size_t{1} << 32));
  EXPECT_FALSE(ipc::frame_body_fits((std::size_t{1} << 32) + 5));
}

TEST(WriteFrame, OversizeRefusedBeforeAnyIo) {
  // fd -1 proves no byte is ever written: if the oversize check came
  // after the prefix send, this would fail with kError (EBADF) instead.
  const std::string huge(static_cast<std::size_t>(ipc::kMaxFrame), 'x');
  EXPECT_EQ(ipc::write_frame_bounded(-1, ipc::FrameType::kSetup, huge, 0.0),
            ipc::WriteOutcome::kOversize);
  EXPECT_EQ(ipc::write_frame_bounded(-1, ipc::FrameType::kSetup, huge, 1.0),
            ipc::WriteOutcome::kOversize);
  EXPECT_FALSE(ipc::write_frame(-1, ipc::FrameType::kSetup, huge));
}

TEST(WriteFrame, LargestLegalBodyRoundTrips) {
  // Just-under-the-limit bodies are legal; exercise a multi-send body
  // (well past one socket buffer) through the bounded path and read it
  // back intact.  8 MiB keeps the test fast while guaranteeing several
  // partial sends.
  SocketPair sp;
  const std::string big(8u << 20, 'b');
  ipc::WriteOutcome wo = ipc::WriteOutcome::kError;
  std::thread writer([&] {
    wo = ipc::write_frame_bounded(sp.fds[1], ipc::FrameType::kResult, big,
                                  10.0);
  });
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(sp.fds[0], type, body),
            ipc::ReadOutcome::kFrame);
  writer.join();
  EXPECT_EQ(wo, ipc::WriteOutcome::kOk);
  EXPECT_EQ(type, ipc::FrameType::kResult);
  EXPECT_EQ(body, big);
}

TEST(WriteFrame, ErrorOnClosedPeer) {
  SocketPair sp;
  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  // MSG_NOSIGNAL discipline: a dead peer is a clean kError, not SIGPIPE
  // killing the supervisor.  May take one buffered send to surface.
  ipc::WriteOutcome wo =
      ipc::write_frame_bounded(sp.fds[1], ipc::FrameType::kTask, "x", 1.0);
  if (wo == ipc::WriteOutcome::kOk)
    wo = ipc::write_frame_bounded(sp.fds[1], ipc::FrameType::kTask, "x", 1.0);
  EXPECT_EQ(wo, ipc::WriteOutcome::kError);
}

TEST(WriteFrame, StalledPeerHitsDeadlineNotForever) {
  // A peer that stops draining must cost the supervisor at most the send
  // deadline.  Shrink both socket buffers, pre-fill the pipe with the
  // unbounded-ish path (large deadline), then assert the next bounded
  // send classifies as kStalled within ~the deadline.
  SocketPair sp;
  const int small = 4096;
  ::setsockopt(sp.fds[1], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(sp.fds[0], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  const std::string chunk(16 * 1024, 's');
  // Fill until a bounded send stalls; each attempt costs at most 0.2 s.
  const auto t0 = std::chrono::steady_clock::now();
  ipc::WriteOutcome wo = ipc::WriteOutcome::kOk;
  int sends = 0;
  while (wo == ipc::WriteOutcome::kOk && sends < 64) {
    wo = ipc::write_frame_bounded(sp.fds[1], ipc::FrameType::kTask, chunk,
                                  0.2);
    ++sends;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(wo, ipc::WriteOutcome::kStalled);
  // The loop wrote until the kernel buffers filled (all fast) plus one
  // stalled attempt (~0.2 s) — nowhere near 64 * 0.2 s, and emphatically
  // not forever.  Generous bound for sanitizer builds.
  EXPECT_LT(elapsed, 10.0);
}

TEST(WriteFrame, UnboundedLegacyPathStillWorks) {
  SocketPair sp;
  ASSERT_TRUE(ipc::write_frame(sp.fds[1], ipc::FrameType::kError, "e"));
  ipc::FrameType type;
  std::string body;
  ASSERT_TRUE(ipc::read_frame(sp.fds[0], type, body));
  EXPECT_EQ(type, ipc::FrameType::kError);
  EXPECT_EQ(body, "e");
}

}  // namespace
}  // namespace unigen
