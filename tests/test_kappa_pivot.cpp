// Tests for ComputeKappaPivot (paper Algorithm 2) and Theorem-1 constants.

#include <gtest/gtest.h>

#include <cmath>

#include "core/kappa_pivot.hpp"

namespace unigen {
namespace {

double epsilon_of(double kappa) {
  return (1.0 + kappa) * (2.23 + 0.48 / ((1.0 - kappa) * (1.0 - kappa))) - 1.0;
}

TEST(KappaPivot, RejectsEpsilonAtOrBelowMinimum) {
  EXPECT_THROW(compute_kappa_pivot(1.71), std::invalid_argument);
  EXPECT_THROW(compute_kappa_pivot(1.0), std::invalid_argument);
  EXPECT_THROW(compute_kappa_pivot(0.0), std::invalid_argument);
  EXPECT_THROW(compute_kappa_pivot(-3.0), std::invalid_argument);
  EXPECT_NO_THROW(compute_kappa_pivot(1.72));
}

TEST(KappaPivot, KappaSolvesDefiningEquation) {
  for (const double eps : {1.72, 2.0, 3.0, 6.0, 10.0, 20.0}) {
    const auto kp = compute_kappa_pivot(eps);
    EXPECT_GE(kp.kappa, 0.0);
    EXPECT_LT(kp.kappa, 1.0);
    EXPECT_NEAR(epsilon_of(kp.kappa), eps, 1e-6) << "eps=" << eps;
  }
}

TEST(KappaPivot, PivotFormula) {
  for (const double eps : {2.0, 6.0, 16.0}) {
    const auto kp = compute_kappa_pivot(eps);
    const double inv = 1.0 + 1.0 / kp.kappa;
    EXPECT_EQ(kp.pivot, static_cast<std::uint64_t>(
                            std::ceil(3.0 * std::exp(0.5) * inv * inv)));
  }
}

TEST(KappaPivot, PivotAtLeast17) {
  // The appendix relies on pivot >= 17 for every admissible ε.
  for (double eps = 1.72; eps < 60.0; eps += 0.37) {
    EXPECT_GE(compute_kappa_pivot(eps).pivot, 17u) << "eps=" << eps;
  }
}

TEST(KappaPivot, ThresholdsBracketPivot) {
  for (const double eps : {1.8, 2.5, 6.0, 12.0}) {
    const auto kp = compute_kappa_pivot(eps);
    EXPECT_LT(kp.lo_thresh, static_cast<double>(kp.pivot));
    EXPECT_GT(kp.hi_thresh, kp.pivot);
  }
}

TEST(KappaPivot, ThresholdsMatchAlgorithm2Formulas) {
  // hiThresh = ⌈1 + √2(1+κ)·pivot⌉ and loThresh = pivot/(√2(1+κ)): the √2
  // factors widen the acceptance band and are what Theorem 1's analysis
  // counts as a "good" cell — a regression dropping them rejects cells the
  // guarantee relies on.
  const double sqrt2 = std::sqrt(2.0);
  for (const double eps : {1.8, 2.5, 4.0, 6.0, 12.0, 20.0}) {
    const auto kp = compute_kappa_pivot(eps);
    EXPECT_EQ(kp.hi_thresh,
              static_cast<std::uint64_t>(std::ceil(
                  1.0 + sqrt2 * (1.0 + kp.kappa) *
                            static_cast<double>(kp.pivot))))
        << "eps=" << eps;
    EXPECT_NEAR(kp.lo_thresh,
                static_cast<double>(kp.pivot) / (sqrt2 * (1.0 + kp.kappa)),
                1e-9)
        << "eps=" << eps;
    // The band is strictly wider than the √2-less one on both sides.
    EXPECT_GT(kp.hi_thresh, static_cast<std::uint64_t>(std::floor(
                                1.0 + (1.0 + kp.kappa) *
                                          static_cast<double>(kp.pivot))));
    EXPECT_LT(kp.lo_thresh,
              static_cast<double>(kp.pivot) / (1.0 + kp.kappa));
  }
}

TEST(KappaPivot, SmallerEpsilonMeansBiggerCells) {
  // The paper's scalability/uniformity knob: tighter ε grows hiThresh, so
  // BSAT must enumerate more witnesses per cell.
  const auto tight = compute_kappa_pivot(1.75);
  const auto loose = compute_kappa_pivot(16.0);
  EXPECT_GT(tight.pivot, loose.pivot);
  EXPECT_GT(tight.hi_thresh, loose.hi_thresh);
}

TEST(KappaPivot, PaperEpsilon6Regression) {
  // The configuration used throughout the paper's experiments.
  const auto kp = compute_kappa_pivot(6.0);
  EXPECT_NEAR(kp.kappa, 0.544, 0.01);
  EXPECT_EQ(kp.pivot, 40u);
  EXPECT_EQ(kp.hi_thresh, 89u);
  EXPECT_NEAR(kp.lo_thresh, 18.32, 0.3);
}

}  // namespace
}  // namespace unigen
