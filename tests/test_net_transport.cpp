// TCP transport of the process fleet (service/net_transport.hpp): the
// socket layer in isolation, then the whole fleet over TCP loopback, then
// the multi-host shape — pre-started `unigen_workerd --listen` servers the
// supervisor dials instead of spawning.
//
// The load-bearing claim is the same one the socketpair fleet makes: the
// transport is invisible in the bytes.  Counts and sample/batch streams
// over a TCP fleet must equal the in-process pool's exactly, at every
// worker count, with and without killed connections — because a task is a
// pure function of its frame and the frames don't change, only the pipe
// they ride.

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/unigen.hpp"
#include "counting/approxmc.hpp"
#include "helpers.hpp"
#include "obs/trace.hpp"
#include "service/ipc.hpp"
#include "service/net_transport.hpp"
#include "service/process_fleet.hpp"
#include "service/sampler_pool.hpp"

namespace unigen {
namespace {

// ---- socket layer -----------------------------------------------------

TEST(Endpoint, ParseAccepts) {
  net::Endpoint e;
  ASSERT_TRUE(net::parse_endpoint("127.0.0.1:8080", e));
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 8080);
  ASSERT_TRUE(net::parse_endpoint("example.com:1", e));
  EXPECT_EQ(e.host, "example.com");
  EXPECT_EQ(e.port, 1);
  ASSERT_TRUE(net::parse_endpoint("[::1]:65535", e));
  EXPECT_EQ(e.host, "::1");
  EXPECT_EQ(e.port, 65535);
  ASSERT_TRUE(net::parse_endpoint("localhost:0", e));
  EXPECT_EQ(e.port, 0);
}

TEST(Endpoint, ParseRejects) {
  net::Endpoint e;
  EXPECT_FALSE(net::parse_endpoint("", e));
  EXPECT_FALSE(net::parse_endpoint("nohost", e));
  EXPECT_FALSE(net::parse_endpoint(":8080", e));          // empty host
  EXPECT_FALSE(net::parse_endpoint("host:", e));          // empty port
  EXPECT_FALSE(net::parse_endpoint("host:abc", e));       // non-numeric
  EXPECT_FALSE(net::parse_endpoint("host:12ab", e));
  EXPECT_FALSE(net::parse_endpoint("host:65536", e));     // > u16
  EXPECT_FALSE(net::parse_endpoint("host:-1", e));
  EXPECT_FALSE(net::parse_endpoint("[]:80", e));          // empty brackets
}

TEST(Endpoint, ToStringBracketsIpv6) {
  EXPECT_EQ(net::to_string({"127.0.0.1", 80}), "127.0.0.1:80");
  EXPECT_EQ(net::to_string({"::1", 80}), "[::1]:80");
  // Round trip through the parser.
  net::Endpoint e;
  ASSERT_TRUE(net::parse_endpoint(net::to_string({"::1", 443}), e));
  EXPECT_EQ(e.host, "::1");
  EXPECT_EQ(e.port, 443);
}

TEST(TcpListener, EphemeralBindReportsRealPort) {
  net::TcpListener listener;
  ASSERT_TRUE(listener.listen("127.0.0.1", 0));
  EXPECT_TRUE(listener.listening());
  EXPECT_NE(listener.endpoint().port, 0) << "port 0 must resolve ephemeral";
  EXPECT_EQ(listener.endpoint().host, "127.0.0.1");
}

TEST(TcpListener, AcceptTimesOutPromptly) {
  net::TcpListener listener;
  ASSERT_TRUE(listener.listen("127.0.0.1", 0));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(listener.accept(0.1), -1);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(s, 5.0) << "accept with no dialer must cost ~the deadline";
}

TEST(TcpConnect, RefusedPortFailsWithinDeadline) {
  // Bind-then-close guarantees a port nobody is listening on right now.
  std::uint16_t dead_port;
  {
    net::TcpListener listener;
    ASSERT_TRUE(listener.listen("127.0.0.1", 0));
    dead_port = listener.endpoint().port;
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(net::tcp_connect({"127.0.0.1", dead_port}, 2.0), -1);
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(s, 10.0);
}

TEST(TcpConnect, FramesRoundTripOverRealSockets) {
  // The ipc layer is fd-agnostic; prove it over an actual TCP pair,
  // both directions, including the bounded write path.
  net::TcpListener listener;
  ASSERT_TRUE(listener.listen("127.0.0.1", 0));
  const int client = net::tcp_connect(listener.endpoint(), 5.0);
  ASSERT_GE(client, 0);
  const int server = listener.accept(5.0);
  ASSERT_GE(server, 0);

  EXPECT_EQ(ipc::write_frame_bounded(client, ipc::FrameType::kSetup,
                                     "over-tcp", 5.0),
            ipc::WriteOutcome::kOk);
  ipc::FrameType type;
  std::string body;
  EXPECT_EQ(ipc::read_frame_outcome(server, type, body),
            ipc::ReadOutcome::kFrame);
  EXPECT_EQ(type, ipc::FrameType::kSetup);
  EXPECT_EQ(body, "over-tcp");

  ASSERT_TRUE(ipc::write_frame(server, ipc::FrameType::kReady, ""));
  EXPECT_EQ(ipc::read_frame_outcome(client, type, body),
            ipc::ReadOutcome::kFrame);
  EXPECT_EQ(type, ipc::FrameType::kReady);

  ::close(client);
  EXPECT_EQ(ipc::read_frame_outcome(server, type, body),
            ipc::ReadOutcome::kEof);
  ::close(server);
}

// ---- TCP-loopback fleet ----------------------------------------------

/// Same 504-model hashed-mode formula the fleet suite uses: big enough
/// that both embeddings actually run hashed and the workers solve.
Cnf hashed_mode_formula() {
  Cnf cnf(10);
  cnf.add_clause({Lit(0, false), Lit(1, false), Lit(2, false)});
  cnf.add_clause({Lit(3, false), Lit(4, true)});
  cnf.add_clause({Lit(5, false), Lit(6, false), Lit(7, true)});
  cnf.add_clause({Lit(8, false), Lit(9, false), Lit(0, true)});
  return cnf;
}

SamplerPoolOptions tcp_pool_options(std::size_t threads, std::uint64_t seed,
                                    const std::string& fault_plan = {}) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = seed;
  o.unigen.fleet.backend = ExecBackend::kProcessFleet;
  o.unigen.fleet.transport = FleetTransport::kTcp;
  o.unigen.fleet.fault_plan = fault_plan;
  return o;
}

SamplerPoolOptions inproc_pool_options(std::size_t threads,
                                       std::uint64_t seed) {
  SamplerPoolOptions o;
  o.num_threads = threads;
  o.seed = seed;
  return o;
}

void expect_same_results(const std::vector<SampleResult>& a,
                         const std::vector<SampleResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status) << "request " << i;
    EXPECT_EQ(a[i].witness, b[i].witness) << "request " << i;
  }
}

TEST(TcpFleet, CountMatchesInProcessAcrossWorkerCounts) {
  const Cnf cnf = hashed_mode_formula();
  ApproxMcOptions base;
  Rng ref_rng(4242);
  const ApproxMcResult reference = approx_count(cnf, base, ref_rng);
  ASSERT_TRUE(reference.valid);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ApproxMcOptions o = base;
    o.fleet.backend = ExecBackend::kProcessFleet;
    o.fleet.transport = FleetTransport::kTcp;
    o.fleet.num_workers = workers;
    Rng rng(4242);
    const ApproxMcResult got = approx_count(cnf, o, rng);
    ASSERT_TRUE(got.valid) << workers << " workers";
    EXPECT_EQ(got.cell_count, reference.cell_count) << workers << " workers";
    EXPECT_EQ(got.hash_count, reference.hash_count) << workers << " workers";
  }
}

TEST(TcpFleet, SampleStreamsMatchInProcessPool) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 777;
  constexpr std::size_t kRequests = 24;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(kRequests);
  }
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SamplerPoolOptions o = tcp_pool_options(2, kSeed);
    o.unigen.fleet.num_workers = workers;
    SamplerPool pool(cnf, o);
    ASSERT_TRUE(pool.prepare());
    ASSERT_NE(pool.fleet(), nullptr)
        << "TCP-loopback fleet should come up at " << workers << " workers";
    const auto got = pool.sample_many(kRequests);
    expect_same_results(reference, got);
    // Every worker came in through the listener, not a socketpair.
    EXPECT_GE(pool.fleet()->stats().dials, workers);
  }
}

TEST(TcpFleet, KilledConnectionRetriesByteIdentically) {
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 31;
  constexpr std::size_t kRequests = 12;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(kRequests);
  }
  SamplerPool pool(cnf, tcp_pool_options(
                            2, kSeed,
                            ProcessFaultPlan().kill_task(2).kill_task(7)
                                .to_env()));
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto got = pool.sample_many(kRequests);
  expect_same_results(reference, got);
  const FleetStats& fs = pool.fleet()->stats();
  EXPECT_GE(fs.crashes, 2u);
  EXPECT_GE(fs.redispatches, 2u);
  EXPECT_EQ(fs.poisoned_tasks, 0u);
}

TEST(TcpFleet, BatchStreamsMatchSocketpairFleet) {
  // Three-way identity: in-process pool, socketpair fleet, TCP fleet —
  // the exact acceptance gate, on the batch path.
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 88;
  std::vector<BatchResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_batches(6, 5);
  }
  auto run_fleet = [&](FleetTransport transport) {
    SamplerPoolOptions o = inproc_pool_options(2, kSeed);
    o.unigen.fleet.backend = ExecBackend::kProcessFleet;
    o.unigen.fleet.transport = transport;
    o.unigen.fleet.num_workers = 2;
    SamplerPool pool(cnf, o);
    EXPECT_TRUE(pool.prepare());
    EXPECT_NE(pool.fleet(), nullptr);
    return pool.sample_batches(6, 5);
  };
  const auto socketpair_out = run_fleet(FleetTransport::kSocketpair);
  const auto tcp_out = run_fleet(FleetTransport::kTcp);
  ASSERT_EQ(socketpair_out.size(), reference.size());
  ASSERT_EQ(tcp_out.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(socketpair_out[i].models, reference[i].models) << i;
    EXPECT_EQ(tcp_out[i].models, reference[i].models) << i;
    EXPECT_EQ(tcp_out[i].status, reference[i].status) << i;
  }
}

// ---- remote endpoints (multi-host shape) ------------------------------

std::string workerd_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return {};
  return path.substr(0, slash + 1) + "unigen_workerd";
}

/// A pre-started `unigen_workerd --listen 127.0.0.1:0` server — the thing
/// an operator would run on another host.  The ephemeral port is scraped
/// from the "unigen_workerd listening HOST:PORT" line on its stdout.
struct RemoteWorkerd {
  pid_t pid = -1;
  net::Endpoint endpoint;

  bool start() {
    int out[2];
    if (::pipe(out) != 0) return false;
    const std::string path = workerd_path();
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::dup2(out[1], 1);
      ::close(out[0]);
      ::close(out[1]);
      // A real remote server starts with its own clean environment; this
      // process's env may still carry a fault plan from an earlier
      // locally-spawned fleet in the same test binary.
      ::unsetenv("UNIGEN_WORKERD_FAULTS");
      ::execl(path.c_str(), path.c_str(), "--listen", "127.0.0.1:0",
              static_cast<char*>(nullptr));
      _exit(127);
    }
    ::close(out[1]);
    FILE* f = ::fdopen(out[0], "r");
    char line[256] = {0};
    const bool got = f != nullptr && std::fgets(line, sizeof(line), f);
    if (f != nullptr) std::fclose(f);  // worker keeps running; we just
                                       // stop listening to its stdout
    if (!got) return false;
    const char* marker = std::strstr(line, "listening ");
    if (marker == nullptr) return false;
    std::string ep_text(marker + std::strlen("listening "));
    while (!ep_text.empty() &&
           (ep_text.back() == '\n' || ep_text.back() == '\r'))
      ep_text.pop_back();
    return net::parse_endpoint(ep_text, endpoint);
  }
  void kill_server() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
  ~RemoteWorkerd() { kill_server(); }
};

TEST(RemoteFleet, DialedWorkersMatchInProcessByteForByte) {
  RemoteWorkerd a, b;
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 777;
  constexpr std::size_t kRequests = 16;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(kRequests);
  }
  SamplerPoolOptions o = tcp_pool_options(2, kSeed);
  o.unigen.fleet.endpoints = {net::to_string(a.endpoint),
                              net::to_string(b.endpoint)};
  {
    // num_workers 0 + endpoints → one worker per endpoint.
    SamplerPool pool(cnf, o);
    ASSERT_TRUE(pool.prepare());
    ASSERT_NE(pool.fleet(), nullptr) << "remote fleet should dial up";
    EXPECT_EQ(pool.fleet()->num_workers(), 2u);
    EXPECT_TRUE(pool.fleet()->worker_pids().empty())
        << "remote workers have no local pid to kill";
    const auto got = pool.sample_many(kRequests);
    expect_same_results(reference, got);
    EXPECT_GE(pool.fleet()->stats().dials, 2u);
  }
  // The serving loop resets per connection: a second fleet against the
  // same servers (fresh Setup) must come up and agree again.  Each server
  // serves one supervisor at a time, so the first pool must be gone (its
  // connections EOF'd) before the second can be accepted.
  SamplerPool again(cnf, o);
  ASSERT_TRUE(again.prepare());
  ASSERT_NE(again.fleet(), nullptr);
  expect_same_results(reference, again.sample_many(kRequests));
}

TEST(RemoteFleet, CountOverRemoteWorkersMatches) {
  RemoteWorkerd server;
  ASSERT_TRUE(server.start());
  const Cnf cnf = hashed_mode_formula();
  ApproxMcOptions base;
  Rng ref_rng(4242);
  const ApproxMcResult reference = approx_count(cnf, base, ref_rng);
  ASSERT_TRUE(reference.valid);
  ApproxMcOptions o = base;
  o.fleet.backend = ExecBackend::kProcessFleet;
  o.fleet.transport = FleetTransport::kTcp;
  o.fleet.endpoints = {net::to_string(server.endpoint)};
  o.fleet.num_workers = 2;  // both slots multiplex onto the one server
  Rng rng(4242);
  const ApproxMcResult got = approx_count(cnf, o, rng);
  ASSERT_TRUE(got.valid);
  EXPECT_EQ(got.cell_count, reference.cell_count);
  EXPECT_EQ(got.hash_count, reference.hash_count);
}

TEST(RemoteFleet, DeadServerSurvivedByTheOtherEndpoint) {
  RemoteWorkerd a, b;
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 61;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    pool.sample_many(6);
    reference = pool.sample_many(6);
  }
  SamplerPoolOptions o = tcp_pool_options(2, kSeed);
  o.unigen.fleet.endpoints = {net::to_string(a.endpoint),
                              net::to_string(b.endpoint)};
  // Keep the dead slot's re-dial loop cheap: refused loopback connects
  // fail instantly, and two respawn attempts are plenty to prove decay.
  o.unigen.fleet.max_respawns_per_worker = 2;
  o.unigen.fleet.respawn_backoff_initial_s = 0.01;
  o.unigen.fleet.respawn_backoff_max_s = 0.05;
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  const auto warm = pool.sample_many(6);
  ASSERT_EQ(warm.size(), 6u);
  // SIGKILL one server between calls — the supervisor sees EOF, re-dials
  // a dead port, abandons the slot, and the survivor serves the whole
  // next call byte-identically.
  a.kill_server();
  const auto got = pool.sample_many(6);
  expect_same_results(reference, got);
}

TEST(RemoteFleet, AllServersDeadDegradesGracefully) {
  // Endpoints that nobody listens on: start() must fail cleanly and the
  // pool must fall back in-process with identical bytes — the same
  // degradation contract as a missing worker binary.
  std::uint16_t dead_port;
  {
    net::TcpListener listener;
    ASSERT_TRUE(listener.listen("127.0.0.1", 0));
    dead_port = listener.endpoint().port;
  }
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 123;
  std::vector<SampleResult> reference;
  {
    SamplerPool pool(cnf, inproc_pool_options(2, kSeed));
    reference = pool.sample_many(10);
  }
  SamplerPoolOptions o = tcp_pool_options(2, kSeed);
  o.unigen.fleet.endpoints = {
      net::to_string({"127.0.0.1", dead_port})};
  o.unigen.fleet.connect_timeout_s = 1.0;
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  EXPECT_EQ(pool.fleet(), nullptr) << "dial failure must degrade, not hang";
  expect_same_results(reference, pool.sample_many(10));
}

TEST(RemoteFleet, SpansArriveTaggedInTheRequestTrace) {
  // PR 8's trace contract must survive the wire change: spans recorded in
  // a never-spawned remote worker ship back over TCP inside the Result
  // frame, land in the request's single trace, and carry the REMOTE
  // process's pid and the attempt ordinal.
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  RemoteWorkerd server;
  ASSERT_TRUE(server.start());
  const Cnf cnf = hashed_mode_formula();
  constexpr std::uint64_t kSeed = 31;
  SamplerPoolOptions o = tcp_pool_options(2, kSeed);
  o.unigen.fleet.endpoints = {net::to_string(server.endpoint)};
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  ASSERT_NE(pool.fleet(), nullptr);
  obs::clear_all();
  obs::set_enabled(true);
  const auto results = pool.sample_many(1);
  obs::set_enabled(false);
  ASSERT_EQ(results.size(), 1u);

  const auto events = obs::snapshot_events();
  obs::clear_all();
  ASSERT_FALSE(events.empty());
  std::set<std::uint64_t> traces;
  for (const auto& e : events) traces.insert(e.trace_id);
  EXPECT_EQ(traces.size(), 1u) << "one request, one trace — span fragments "
                                  "from the remote worker included";
  const auto worker_span = std::find_if(
      events.begin(), events.end(), [](const obs::TraceEvent& e) {
        return e.name == std::string("worker.task");
      });
  ASSERT_NE(worker_span, events.end()) << "remote worker's span must arrive";
  EXPECT_EQ(worker_span->worker, static_cast<std::uint32_t>(server.pid))
      << "span is tagged with the remote serving process's pid";
  EXPECT_EQ(worker_span->attempt, 1u);
}

TEST(RemoteFleet, MalformedEndpointRejectedUpFront) {
  const Cnf cnf = hashed_mode_formula();
  SamplerPoolOptions o = tcp_pool_options(2, 9);
  o.unigen.fleet.endpoints = {"not-an-endpoint"};
  SamplerPool pool(cnf, o);
  ASSERT_TRUE(pool.prepare());
  EXPECT_EQ(pool.fleet(), nullptr);
  EXPECT_EQ(pool.sample_many(4).size(), 4u) << "in-process fallback serves";
}

}  // namespace
}  // namespace unigen
